"""Section 4.4: distribution of energy in the processor core.

Paper: of the core energy (excluding the memory arrays), 33% goes to the
datapath (including busses), 20% to instruction fetch, 16% to decode,
9% to the memory interface, and 22% to miscellaneous control/buffering;
the core is about half of the per-instruction energy, the other half
being memory access.
"""

import time

import pytest

from repro.bench.harness import energy_breakdown
from repro.bench.reporting import dump_results, format_table
from repro.obs import Observability

PAPER_FRACTIONS = {
    "datapath": 0.33,
    "fetch": 0.20,
    "decode": 0.16,
    "mem_if": 0.09,
    "misc": 0.22,
}


def test_core_energy_distribution(benchmark):
    obs = Observability()
    started = time.perf_counter()
    result = benchmark.pedantic(energy_breakdown, args=(1.8,),
                                kwargs={"obs": obs},
                                rounds=1, iterations=1)
    dump_results("energy_breakdown", result,
                 metrics=obs.metrics.snapshot(),
                 wall_time_s=time.perf_counter() - started)
    fractions = result["core_fractions"]

    rows = [[bucket, "%.1f%%" % (100 * fractions[bucket]),
             "%.0f%%" % (100 * PAPER_FRACTIONS[bucket])]
            for bucket in PAPER_FRACTIONS]
    rows.append(["memory share of total",
                 "%.1f%%" % (100 * result["memory_share"]), "~50%"])
    print()
    print(format_table(["component", "measured", "paper"], rows,
                       title="Section 4.4: core energy distribution"))

    # Provenance view of the same run: where the joules land when
    # attributed by protocol layer (microbenchmarks run no netstack, so
    # instruction energy is app-layer and the rest is idle/sleep).
    layers = result["layer_energy_j"]
    total = sum(layers.values()) or 1.0
    layer_rows = [[layer, "%.3f nJ" % (1e9 * joules),
                   "%.1f%%" % (100 * joules / total)]
                  for layer, joules in sorted(layers.items(),
                                              key=lambda kv: -kv[1])
                  if joules]
    print(format_table(["layer", "energy", "share"], layer_rows,
                       title="Per-layer attribution (repro.obs.energy)"))

    for bucket, paper_value in PAPER_FRACTIONS.items():
        assert fractions[bucket] == pytest.approx(paper_value, abs=0.05), \
            bucket
    assert result["memory_share"] == pytest.approx(0.5, abs=0.08)
    # Ordering: datapath is the largest core consumer, mem-IF the smallest.
    assert fractions["datapath"] == max(fractions.values())
    assert fractions["mem_if"] == min(fractions.values())
