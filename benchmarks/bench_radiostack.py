"""Section 4.6: the MICA high-speed radio stack comparison.

Paper: sending one data byte (SEC-DED encode + CRC + byte-level SPI)
takes ~780 cycles in TinyOS (the ISR alone ~30%), versus 331 cycles on
SNAP -- a 60% reduction, despite SNAP's unoptimized compiler.
"""

import time

import pytest

from repro.bench.harness import radiostack_comparison
from repro.bench.reporting import dump_results, format_table
from repro.obs import Observability


def test_radiostack_comparison(benchmark):
    obs = Observability()
    started = time.perf_counter()
    result = benchmark.pedantic(radiostack_comparison, kwargs={"obs": obs},
                                rounds=1, iterations=1)
    dump_results("radiostack", result, metrics=obs.metrics.snapshot(),
                 wall_time_s=time.perf_counter() - started)

    rows = [
        ["SNAP cycles/byte", "%.0f" % result.snap_cycles, "331"],
        ["Mote cycles/byte", "%.0f" % result.avr_cycles, "~780"],
        ["Cycle reduction", "%.0f%%" % (100 * result.reduction), "60%"],
        ["Mote overhead fraction",
         "%.0f%%" % (100 * result.avr_overhead_fraction), "ISR ~30%"],
    ]
    print()
    print(format_table(["metric", "measured", "paper"], rows,
                       title="Section 4.6: high-speed radio stack"))

    assert result.snap_cycles == pytest.approx(331, rel=0.35)
    assert result.avr_cycles == pytest.approx(780, rel=0.25)
    # The headline: SNAP cuts the cycles by more than half.
    assert result.reduction > 0.5
    # A substantial slice of mote cycles is interrupt servicing.
    assert result.avr_overhead_fraction > 0.25
