"""Figure 4: energy per instruction type at 1.8 V, 0.9 V, and 0.6 V.

The paper runs "programs of one thousand of each instruction using
uniformly distributed random operands" and reports per-class energy with
three tiers: one-word register ops, two-word immediate ops, and memory
operations.  This benchmark regenerates the figure's series.
"""

import time

from repro.bench.harness import VOLTAGES, instruction_class_energy
from repro.bench.reporting import dump_results, format_table
from repro.obs import Observability

#: One-word, two-word, and memory tiers (the paper's three groups).
TIER_ONE_WORD = ("Arith Reg", "Logical Reg", "Shift", "Branch")
TIER_TWO_WORD = ("Arith Imm", "Logical Imm", "Bitfield")
TIER_MEMORY = ("Load", "Store")


def run_figure4(obs=None):
    return {voltage: instruction_class_energy(voltage, obs=obs)
            for voltage in VOLTAGES}


def test_fig4_energy_per_instruction_class(benchmark):
    obs = Observability()
    started = time.perf_counter()
    results = benchmark.pedantic(run_figure4, args=(obs,),
                                 rounds=1, iterations=1)
    dump_results("fig4_energy_per_class", results,
                 metrics=obs.metrics.snapshot(),
                 wall_time_s=time.perf_counter() - started)

    classes = sorted(results[1.8])
    rows = [[name] + ["%.1f" % (results[v][name] * 1e12) for v in VOLTAGES]
            for name in classes]
    print()
    print(format_table(
        ["Instruction class"] + ["pJ/ins @%.1fV" % v for v in VOLTAGES],
        rows, title="Figure 4: energy per instruction type"))

    at_18, at_06 = results[1.8], results[0.6]

    # Tier ordering: one-word < two-word < memory (Section 4.4).
    for voltage in VOLTAGES:
        tiers = results[voltage]
        one_word = max(tiers[c] for c in TIER_ONE_WORD)
        two_word_min = min(tiers[c] for c in TIER_TWO_WORD)
        two_word_max = max(tiers[c] for c in TIER_TWO_WORD)
        memory = min(tiers[c] for c in TIER_MEMORY)
        assert one_word < two_word_min, "one-word tier must be cheapest"
        assert two_word_max < memory, "memory ops must be most expensive"

    # "under 300pJ per instruction" at 1.8V for the common classes (the
    # rare slow-bus IMem load/store, with triple memory-array traffic,
    # sits just above).
    assert all(energy < 300e-12 for name, energy in at_18.items()
               if name != "IMem Load")
    assert at_18["IMem Load"] < 320e-12
    # "less than 75pJ/ins [at 0.6V], with many types using less than 25"
    assert all(energy < 75e-12 for energy in at_06.values())
    cheap = [name for name, energy in at_06.items() if energy < 25e-12]
    assert len(cheap) >= len(at_06) // 2

    # The voltage scaling matches Table 1's measured ratios (~x0.25 at
    # 0.9V, ~x0.11 at 0.6V).
    for name in classes:
        assert results[0.9][name] / at_18[name] == _approx(0.25)
        assert at_06[name] / at_18[name] == _approx(1 / 9)


def _approx(value, tolerance=0.02):
    class _Approx:
        def __eq__(self, other):
            return abs(other - value) <= tolerance
    return _Approx()
