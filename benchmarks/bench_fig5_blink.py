"""Figure 5: the periodic LED Blink comparison.

Paper: on the mote, 16 of 523 active cycles do the blinking -- the other
507 are timer-interrupt servicing and the TinyOS scheduler; one blink
costs 1960 nJ.  The SNAP version takes 41 cycles and 6.8 nJ at 1.8 V /
0.5 nJ at 0.6 V.  Code size: 184 B (SNAP) vs 1.4 KB (TinyOS).
"""

import time

import pytest

from repro.baseline import build_avr_blink
from repro.bench.harness import blink_comparison
from repro.bench.reporting import dump_results, format_table
from repro.netstack import build_blink_app
from repro.obs import Observability


def test_fig5_blink_comparison(benchmark):
    obs = Observability()
    started = time.perf_counter()
    result = benchmark.pedantic(blink_comparison, kwargs={"obs": obs},
                                rounds=1, iterations=1)
    dump_results("fig5_blink", result, metrics=obs.metrics.snapshot(),
                 wall_time_s=time.perf_counter() - started)

    rows = [
        ["SNAP cycles/iteration", "%.0f" % result.snap_cycles, "41"],
        ["SNAP energy @1.8V (nJ)", "%.1f" % (result.snap_energy_18 * 1e9), "6.8"],
        ["SNAP energy @0.6V (nJ)", "%.2f" % (result.snap_energy_06 * 1e9), "0.5"],
        ["Mote cycles/iteration", "%.0f" % result.avr_cycles, "523"],
        ["Mote useful cycles", "%.0f" % result.avr_useful_cycles, "16"],
        ["Mote overhead cycles", "%.0f" % result.avr_overhead_cycles, "507"],
        ["Mote energy (nJ)", "%.0f" % (result.avr_energy * 1e9), "1960"],
    ]
    print()
    print(format_table(["metric", "measured", "paper"], rows,
                       title="Figure 5: periodic LED Blink"))

    # The mote spends >90% of its cycles on scheduling overhead.
    assert result.avr_overhead_cycles / result.avr_cycles > 0.9
    assert result.avr_cycles == pytest.approx(523, rel=0.25)
    assert result.avr_useful_cycles == pytest.approx(16, abs=6)

    # SNAP needs an order of magnitude fewer cycles ...
    assert result.snap_cycles == pytest.approx(41, rel=0.4)
    assert result.avr_cycles / result.snap_cycles > 10
    # ... and two-plus orders of magnitude less energy.
    assert result.avr_energy / result.snap_energy_18 > 100
    assert result.avr_energy / result.snap_energy_06 > 1000
    assert result.snap_energy_18 == pytest.approx(6.8e-9, rel=0.5)
    assert result.snap_energy_06 == pytest.approx(0.5e-9, rel=0.5)


def test_fig5_code_sizes(benchmark):
    """Paper: 184 bytes for the SNAP Blink vs 1.4 KB for TinyOS."""

    def sizes():
        return (build_blink_app().text_size_bytes,
                build_avr_blink().size_bytes)

    started = time.perf_counter()
    snap_bytes, avr_bytes = benchmark.pedantic(sizes, rounds=1, iterations=1)
    dump_results("fig5_code_size",
                 {"snap_bytes": snap_bytes, "avr_bytes": avr_bytes},
                 wall_time_s=time.perf_counter() - started)
    print("\nBlink code size: SNAP %dB (paper 184B), TinyOS-style %dB "
          "(paper ~1.4KB)" % (snap_bytes, avr_bytes))
    assert snap_bytes < 500
    assert avr_bytes > snap_bytes  # the runtime machinery costs flash too
