"""Section 4.3: performance and wake-up latency.

Paper: 240 MIPS at 1.8 V, 61 at 0.9 V, 28 at 0.6 V; idle-to-active in
18 gate delays = 2.5 / 9.8 / 21.4 ns.  (The Atmel baseline: 4 MIPS and
4-65 ms wakeups.)

The per-voltage handler suite runs through the fleet sweep engine
(:mod:`repro.bench.sweep`, one ``handler_suite`` cell per published
operating point) and the :class:`ThroughputResult` dump the fidelity
claims read is reconstructed from the cells -- the suite runs exactly
once per voltage (throughput and the results summary reduce the same
rows; the old harness silently re-ran all six scenarios).
"""

import time

import pytest

from repro.baseline.energy import (
    WAKEUP_LATENCY_POWER_DOWN_S,
    WAKEUP_LATENCY_POWER_SAVE_S,
)
from repro.bench.harness import VOLTAGES, ThroughputResult
from repro.bench.reporting import dump_results, format_table
from repro.bench.sweep import Sweep, run_sweep

PAPER_MIPS = {1.8: 240.0, 0.9: 61.0, 0.6: 28.0}
PAPER_WAKEUP_NS = {1.8: 2.5, 0.9: 9.8, 0.6: 21.4}


def run_all_voltages(workers=1):
    """``{voltage: ThroughputResult}`` via one handler_suite sweep."""
    result = run_sweep(Sweep(scenario="handler_suite",
                             grid={"voltage": list(VOLTAGES)}),
                       workers=workers)
    assert not result.failed_cells, result.failed_cells
    results = {}
    for cell in result.cells:
        replica = cell["replicas"][0]
        results[replica["voltage"]] = ThroughputResult(
            voltage=replica["voltage"], mips=replica["mips"],
            wakeup_latency_s=replica["wakeup_latency_s"])
    return results


def test_throughput_and_wakeup_latency(benchmark):
    started = time.perf_counter()
    results = benchmark.pedantic(run_all_voltages, rounds=1, iterations=1)
    dump_results("throughput_wakeup", results,
                 wall_time_s=time.perf_counter() - started)

    rows = []
    for voltage in VOLTAGES:
        result = results[voltage]
        rows.append(["%.1f" % voltage,
                     "%.0f" % result.mips, "%.0f" % PAPER_MIPS[voltage],
                     "%.1f" % (result.wakeup_latency_s * 1e9),
                     "%.1f" % PAPER_WAKEUP_NS[voltage]])
    print()
    print(format_table(
        ["V", "MIPS", "paper MIPS", "wakeup ns", "paper ns"],
        rows, title="Section 4.3: throughput and wakeup latency"))

    for voltage in VOLTAGES:
        result = results[voltage]
        # Throughput within 15% of the paper at each published point.
        assert result.mips == pytest.approx(PAPER_MIPS[voltage], rel=0.15)
        # Wakeup latency is calibrated exactly (18 gate delays).
        assert result.wakeup_latency_s * 1e9 == pytest.approx(
            PAPER_WAKEUP_NS[voltage], rel=0.01)

    # The scaling ratios between voltages are the paper's own.
    assert (results[1.8].mips / results[0.9].mips
            == pytest.approx(240 / 61, rel=0.05))
    assert (results[1.8].mips / results[0.6].mips
            == pytest.approx(240 / 28, rel=0.05))

    # SNAP/LE wakes "on the order of nanoseconds instead of milliseconds":
    # five to seven orders of magnitude faster than the Atmel deep sleeps.
    slowest_snap = results[0.6].wakeup_latency_s
    assert WAKEUP_LATENCY_POWER_SAVE_S / slowest_snap > 1e5
    assert WAKEUP_LATENCY_POWER_DOWN_S / slowest_snap > 1e6
