"""Extension: the voltage/energy/performance trade-off curve.

Section 6 (future work) notes the processor is "typically too fast" for
data-monitoring workloads and that the authors "plan to redesign the
processor to sacrifice its performance for even lower energy per
instruction".  This sweep maps the existing design's operating curve
between the published points, plus an idle-power (leakage) study: at ten
events per second the node is asleep ~99.99% of the time, so the sleep
floor -- zero for ideal QDI, nonzero with leakage -- dominates the
budget, which is why the paper cares about leakage estimates.

The curve now runs through the fleet sweep engine
(:mod:`repro.bench.sweep`): one ``voltage_point`` cell per supply
voltage, with shared predecode across cells.  The dumped payload keeps
the historical ``{"sweep": [[v, mips, epi, edp], ...]}`` shape the
fidelity claims read, and the test cross-checks the engine against the
direct :func:`repro.bench.ablations.voltage_sweep` runner -- same
program, same config, bit-identical numbers.
"""

import pytest

import time

from repro.asm import build
from repro.bench.ablations import SWEEP_VOLTAGES, voltage_sweep
from repro.bench.reporting import dump_results, format_table
from repro.bench.sweep import Sweep, run_sweep
from repro.core import CoreConfig, SnapProcessor


def sweep_results(workers=1):
    """The (voltage, MIPS, energy/ins, energy-delay) curve via the sweep
    engine; cells come back in grid order, one per voltage."""
    result = run_sweep(Sweep(scenario="voltage_point",
                             grid={"voltage": list(SWEEP_VOLTAGES)}),
                       workers=workers)
    assert not result.failed_cells, result.failed_cells
    curve = []
    for cell in result.cells:
        replica = cell["replicas"][0]
        curve.append((replica["voltage"], replica["mips"],
                      replica["energy_per_instruction"],
                      replica["energy_delay"]))
    return curve, result


def test_voltage_sweep(benchmark):
    started = time.perf_counter()
    results, sweep = benchmark.pedantic(sweep_results, rounds=1,
                                        iterations=1)
    dump_results("voltage_sweep", {"sweep": results},
                 wall_time_s=time.perf_counter() - started)

    rows = [["%.2f" % v, "%.0f" % mips, "%.1f" % (epi * 1e12),
             "%.3g" % edp]
            for v, mips, epi, edp in results]
    print()
    print(format_table(["V", "MIPS", "pJ/ins", "E*delay (J*s/ins^2)"], rows,
                       title="Voltage sweep (SNAP/LE-slow direction)"))

    # The sweep engine and the direct runner are the same measurement:
    # the migration must not move a single bit of the curve.
    direct = voltage_sweep()
    assert [tuple(row) for row in results] == \
        [tuple(row) for row in direct]

    voltages = [r[0] for r in results]
    assert voltages == list(SWEEP_VOLTAGES)
    mips_values = [r[1] for r in results]
    epi_values = [r[2] for r in results]
    # Monotonic: faster and hungrier as the supply rises.
    assert mips_values == sorted(mips_values)
    assert epi_values == sorted(epi_values)
    # Below the published 0.6V point the energy keeps falling -- the
    # direction the authors' redesign pursues.
    assert epi_values[0] < epi_values[1]
    # Sanity at the published points.
    by_voltage = dict((round(r[0], 2), r) for r in results)
    assert by_voltage[0.6][2] * 1e12 == pytest.approx(24, rel=0.25)


def test_leakage_dominates_at_low_event_rates(benchmark):
    """With a nonzero sleep floor, idle energy dwarfs handler energy at
    ten events per second -- the motivation for the leakage future work."""

    def run(leakage):
        source = """
        boot:
            movi r1, 0
            movi r2, handler
            setaddr r1, r2
            jal arm
            done
        arm:
            movi r1, 0
            movi r2, 0x8000
            schedhi r1, r0
            schedlo r1, r2   ; 32.768 ms period
            ret
        handler:
            ld r3, 1(r0)
            addi r3, 1
            st r3, 1(r0)
            jal arm
            done
        """
        processor = SnapProcessor(config=CoreConfig(
            voltage=0.6, leakage_power=leakage))
        processor.load(build(source))
        processor.run(until=1.0)
        return processor.meter

    ideal = benchmark.pedantic(run, args=(0.0,), rounds=1, iterations=1)
    leaky = run(100e-9)  # 100 nW of leakage

    print("\nLeakage study over 1 s at ~30 events/s:")
    print("  ideal QDI: idle %.1f nJ, active %.1f nJ"
          % (ideal.idle_energy * 1e9,
             (ideal.total_energy - ideal.idle_energy) * 1e9))
    print("  100nW leakage: idle %.1f nJ, active %.1f nJ"
          % (leaky.idle_energy * 1e9,
             (leaky.total_energy - leaky.idle_energy) * 1e9))

    assert ideal.idle_energy == 0.0
    active = leaky.total_energy - leaky.idle_energy
    # Even 100 nW of leakage exceeds the active handler energy here.
    assert leaky.idle_energy > active
