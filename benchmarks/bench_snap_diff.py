"""snap-diff benchmark: the DVS comparative-analysis story, measured.

The paper's dynamic-voltage-scaling claim is a *cross-run* statement:
the same workload at 0.6V spends a fraction of the energy it spends at
1.8V, instruction for instruction.  This benchmark drives that claim
through the differential engine end to end -- two blink runs at the two
published supply points, aligned in stable mode (the structure must be
identical event for event) and compared per handler -- and times both
the comparison and the full localization self-test (perturb the
calibration, bisect, symbolicate).
"""

import time

import pytest

from repro.asm import build
from repro.bench.reporting import dump_results, format_table
from repro.core import CoreConfig
from repro.node import SensorNode
from repro.obs.diff import SELFTEST_APP, capture_run, compare, self_test

HORIZON = 0.02


def _blink_run(voltage, label):
    node = SensorNode(node_id=0, config=CoreConfig(voltage=voltage))
    node.load(build(SELFTEST_APP))
    node.processor.start()
    return capture_run(node, HORIZON, label=label)


def _voltage_diff():
    run_hi = _blink_run(1.8, "blink@1.8V")
    run_lo = _blink_run(0.6, "blink@0.6V")
    return compare(run_hi, run_lo, mode="stable")


def test_cross_run_voltage_diff(benchmark):
    started = time.perf_counter()
    report = benchmark.pedantic(_voltage_diff, rounds=1, iterations=1)
    wall = time.perf_counter() - started

    # Same program, same event ordering: stable alignment is clean.
    assert report["identical"] is True
    # ... but every handler got cheaper at the low supply point.
    handlers = [row for row in report["handlers"]
                if row["a"] and row["b"]]
    assert handlers
    assert all(row["d_energy"] < 0 for row in handlers)
    # Published shape: ~24 pJ/ins at 0.6V vs ~218 pJ/ins at 1.8V --
    # roughly an order of magnitude per instruction.
    timer = [row for row in handlers if row["handler"] == "TIMER0"][0]
    ratio = timer["b"]["energy"] / timer["a"]["energy"]
    assert ratio == pytest.approx(24.0 / 218.0, rel=0.5)

    dump_results("snap_diff", {
        "mode": report["mode"],
        "identical": report["identical"],
        "handlers": report["handlers"],
        "energy_ratio_0v6_over_1v8": ratio,
        "events": report["runs"]["a"]["events"],
    }, wall_time_s=wall)

    rows = [[row["handler"],
             "%.2f" % (row["a"]["energy"] * 1e9),
             "%.2f" % (row["b"]["energy"] * 1e9),
             "%+.2f" % (row["d_energy"] * 1e9)]
            for row in handlers]
    print()
    print(format_table(["handler", "nJ @1.8V", "nJ @0.6V", "delta nJ"],
                       rows, title="snap-diff: blink across the DVS range"))


def test_localization_self_test_speed(benchmark):
    """The whole localization path -- two instrumented runs, alignment,
    symbolication, verdict checks -- as one timed unit."""
    ok, failures, report = benchmark.pedantic(self_test, rounds=1,
                                              iterations=1)
    assert ok, failures
    assert report["divergence"]["handler"] == "TIMER0"
