"""Extension: network-level energy and lifetime.

Not a table in the paper, but its introduction's motivating claim: the
design goal "is to maximize the lifetime of a network".  This bench runs
the convergecast data-gathering workload across a multi-hop chain of
simulated SNAP/LE nodes and checks the network-level consequences of the
per-instruction numbers reproduced elsewhere: nanowatt-scale processor
power under realistic traffic, the relay funnel effect, and a
two-orders-of-magnitude lifetime advantage over a mote-class MCU running
the same instruction stream.
"""

import pytest

import os
import time

from repro.bench.reporting import dump_results, format_table
from repro.network.experiments import convergecast, lifetime_comparison


def run_experiment(telemetry_path=None):
    result = convergecast(chain_length=4, period_s=0.1, duration_s=10.0,
                          sample_every=0.5, telemetry=telemetry_path)
    comparison = lifetime_comparison(result, battery_j=2000.0)
    return result, comparison


def test_convergecast_lifetime(benchmark):
    # With BENCH_RESULTS_DIR set, record the run's live telemetry stream
    # next to the JSON dump: CI uploads it as an artifact, and any
    # ``snap-top --file ... --once`` can replay what a dashboard
    # attached to this benchmark would have shown.  Streaming rides
    # read-only observability paths, so the benchmark numbers are
    # unchanged by it.
    results_dir = os.environ.get("BENCH_RESULTS_DIR")
    telemetry_path = None
    if results_dir:
        os.makedirs(results_dir, exist_ok=True)
        telemetry_path = os.path.join(results_dir,
                                      "TELEMETRY_network_lifetime.ndjson")

    started = time.perf_counter()
    result, comparison = benchmark.pedantic(run_experiment,
                                            args=(telemetry_path,),
                                            rounds=1, iterations=1)
    wall_time_s = time.perf_counter() - started

    rows = [[str(node_id), str(report.instructions),
             str(report.packets_sent), str(report.packets_forwarded),
             "%.1f" % (report.average_power_w * 1e9)]
            for node_id, report in sorted(result.nodes.items())]
    print()
    print(format_table(["node", "instructions", "sent", "fwd", "nW"],
                       rows, title="Convergecast chain (10s, 100ms period)"))
    print("sink deliveries: %d; collisions: %d"
          % (result.sink_deliveries, result.channel_collisions))
    print("lifetime: SNAP %.0f years vs mote %.2f years (%.0fx)"
          % (comparison.snap_lifetime_s / 3.15e7,
             comparison.mote_lifetime_s / 3.15e7, comparison.ratio))

    # With BENCH_RESULTS_DIR set, persist the numbers, the full network
    # metrics snapshot (per-node counters, channel statistics), and the
    # per-node energy drain time-series.
    dump_results("network_lifetime",
                 {"nodes": result.nodes, "comparison": comparison,
                  "sink_deliveries": result.sink_deliveries,
                  "drain": result.drain},
                 metrics=result.metrics, wall_time_s=wall_time_s)

    # The drain curve covers the whole run for every node and is
    # monotonically non-decreasing (cumulative energy).
    node_ids = sorted(result.nodes)
    for node_id in node_ids:
        curve = [row for row in result.drain if row["node"] == node_id]
        assert len(curve) >= 20
        energies = [row["energy_j"] for row in curve]
        assert energies == sorted(energies)

    # The workload actually ran: every reporter's samples reached the
    # sink (3 reporters x ~99 periods).
    assert result.sink_deliveries >= 280
    assert result.channel_collisions < 30

    # Relays forward their descendants' traffic (the funnel).
    forwards = {nid: rep.packets_forwarded
                for nid, rep in result.nodes.items()}
    assert forwards[2] > forwards[3] > forwards[4]

    # Every node's processor stays in the nanowatt regime (Section 4.7's
    # claim under a realistic network workload).
    for report in result.nodes.values():
        assert report.average_power_w < 1e-6

    # The lifetime gap vs a mote-class MCU is at least two orders of
    # magnitude when the processor dominates the budget.
    assert comparison.ratio > 100
