"""Simulator throughput: the batched fast-path engine vs the per-event
reference interpreter.

Not a paper claim -- a harness claim: the ROADMAP's "fast as the
hardware allows" north star needs the simulator itself to keep up with
multi-node experiments, and the fast path is only admissible because it
is bit-identical to the reference engine (checked here on every
scenario, and continuously by the fidelity scorecard since both engines
feed the same goldens).

The dumped ``BENCH_SIM_SPEED.json`` carries instructions/host-second
and the fast-over-reference speedup per scenario; CI gates the speedup
against ``tests/goldens/sim_speed_baseline.json`` via
``python -m repro.bench.simspeed --check``.
"""

import time

from repro.bench.reporting import dump_results, format_table
from repro.bench.simspeed import results_table, run_all


def test_sim_speed(benchmark):
    started = time.perf_counter()
    results = benchmark.pedantic(run_all, kwargs={"repeats": 1},
                                 rounds=1, iterations=1)
    dump_results("SIM_SPEED", results,
                 wall_time_s=time.perf_counter() - started)

    print()
    print(results_table(results))

    # run_all already asserted bit-identical meters per scenario.  The
    # speedup floors here are deliberately loose (shared CI runners are
    # noisy); the committed-baseline gate in repro.bench.simspeed
    # enforces the real regression bound.
    assert results["straightline"]["speedup"] > 3.0
    assert results["blink"]["speedup"] > 2.0
    assert results["convergecast"]["speedup"] > 1.2
