"""Ablation: hardware event queue vs a software task scheduler.

The paper's core argument (Sections 3.1, 4.6) is that dispatching
handlers from the hardware event queue removes the task-scheduler
software a conventional system needs.  This ablation runs the same blink
workload on the same SNAP/LE core twice:

* **hardware dispatch** -- the timer event's handler does the work
  directly (the SNAP way);
* **software dispatch** -- the timer event's handler only *posts* a task
  id into a DMEM task queue, and a TinyOS-style software scheduler loop
  drains and dispatches it through a jump table (what SNAP/LE would have
  to do without the paper's `done`/event-table hardware).

The scenario assembly lives in :mod:`repro.bench.ablations` so the
fidelity scorecard can regenerate the same measurements.
"""

import time

from repro.bench.ablations import eventqueue_ablation
from repro.bench.reporting import dump_results, format_table
from repro.obs import Observability


def test_event_queue_ablation(benchmark):
    obs = Observability()
    started = time.perf_counter()
    results = benchmark.pedantic(eventqueue_ablation, kwargs={"obs": obs},
                                 rounds=1, iterations=1)
    dump_results("ablation_eventqueue", results,
                 metrics=obs.metrics.snapshot(),
                 wall_time_s=time.perf_counter() - started)
    hw_ins, hw_energy = results["hardware"]
    sw_ins, sw_energy = results["software"]

    rows = [
        ["hardware event dispatch", "%.1f" % hw_ins, "%.2f" % (hw_energy * 1e9)],
        ["software task scheduler", "%.1f" % sw_ins, "%.2f" % (sw_energy * 1e9)],
        ["overhead removed", "%.0f%%" % (100 * (1 - hw_ins / sw_ins)), ""],
    ]
    print()
    print(format_table(["dispatch mechanism", "ins/blink", "nJ/blink"], rows,
                       title="Ablation: hardware event queue"))

    # The hardware queue eliminates a material fraction of instructions
    # and energy per event -- the paper's core architectural claim.
    assert sw_ins > hw_ins * 1.5
    assert sw_energy > hw_energy * 1.5
