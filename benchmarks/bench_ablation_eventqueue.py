"""Ablation: hardware event queue vs a software task scheduler.

The paper's core argument (Sections 3.1, 4.6) is that dispatching
handlers from the hardware event queue removes the task-scheduler
software a conventional system needs.  This ablation runs the same blink
workload on the same SNAP/LE core twice:

* **hardware dispatch** -- the timer event's handler does the work
  directly (the SNAP way);
* **software dispatch** -- the timer event's handler only *posts* a task
  id into a DMEM task queue, and a TinyOS-style software scheduler loop
  drains and dispatches it through a jump table (what SNAP/LE would have
  to do without the paper's `done`/event-table hardware).
"""

import pytest

from repro.asm import build
from repro.bench.reporting import format_table
from repro.core import CoreConfig, SnapProcessor

HW_BLINK = """
boot:
    movi r1, 0
    movi r2, on_timer
    setaddr r1, r2
    jal arm
    done
arm:
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    ret
on_timer:
    jal blink
    jal arm
    done
blink:
    ld r3, 1(r0)
    xori r3, 1
    st r3, 1(r0)
    movi r4, 0x4000
    or r4, r3
    mov r15, r4
    ld r5, 2(r0)
    addi r5, 1
    st r5, 2(r0)
    ret
"""

SW_BLINK = """
    .equ TQ_BASE, 8
boot:
    movi r1, 0
    movi r2, on_timer
    setaddr r1, r2
    st r0, 4(r0)        ; tq head
    st r0, 5(r0)        ; tq tail
    st r0, 6(r0)        ; tq count
    jal arm
    done
arm:
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    ret

; The timer handler only posts a task, then runs the scheduler loop --
; the software-dispatch structure TinyOS imposes.
on_timer:
    ; post task id 1 (blink) into the queue
    ld r3, 5(r0)        ; tail
    movi r4, TQ_BASE
    add r4, r3
    movi r5, 1
    st r5, 0(r4)
    addi r3, 1
    andi r3, 3
    st r3, 5(r0)
    ld r3, 6(r0)
    addi r3, 1
    st r3, 6(r0)
    jal arm
    ; scheduler loop: drain the task queue
.sched:
    ld r3, 6(r0)        ; count
    beqz r3, .idle
    ld r4, 4(r0)        ; head
    movi r5, TQ_BASE
    add r5, r4
    ld r6, 0(r5)        ; task id
    addi r4, 1
    andi r4, 3
    st r4, 4(r0)
    subi r3, 1
    st r3, 6(r0)
    ; dispatch through a jump table
    movi r7, task_table
    add r7, r6
    ldi r7, 0(r7)       ; read the handler address from IMEM
    jalr r7
    jmp .sched
.idle:
    done

task_table:
    .word 0
    .word blink

blink:
    ld r3, 1(r0)
    xori r3, 1
    st r3, 1(r0)
    movi r4, 0x4000
    or r4, r3
    mov r15, r4
    ld r5, 2(r0)
    addi r5, 1
    st r5, 2(r0)
    ret
"""


def _measure(source, iterations=20):
    from repro.sensors import LedPort
    processor = SnapProcessor(config=CoreConfig(voltage=0.6))
    processor.mcp.attach_port(0, LedPort())
    processor.load(build(source))
    processor.run(until=50e-6)
    processor.meter.reset()
    processor.run(until=50e-6 + iterations * 100e-6 + 20e-6)
    blinks = processor.dmem.peek(2)
    meter = processor.meter
    return (meter.instructions / blinks, meter.total_energy / blinks)


def run_ablation():
    return {"hardware": _measure(HW_BLINK), "software": _measure(SW_BLINK)}


def test_event_queue_ablation(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    hw_ins, hw_energy = results["hardware"]
    sw_ins, sw_energy = results["software"]

    rows = [
        ["hardware event dispatch", "%.1f" % hw_ins, "%.2f" % (hw_energy * 1e9)],
        ["software task scheduler", "%.1f" % sw_ins, "%.2f" % (sw_energy * 1e9)],
        ["overhead removed", "%.0f%%" % (100 * (1 - hw_ins / sw_ins)), ""],
    ]
    print()
    print(format_table(["dispatch mechanism", "ins/blink", "nJ/blink"], rows,
                       title="Ablation: hardware event queue"))

    # The hardware queue eliminates a material fraction of instructions
    # and energy per event -- the paper's core architectural claim.
    assert sw_ins > hw_ins * 1.5
    assert sw_energy > hw_energy * 1.5
