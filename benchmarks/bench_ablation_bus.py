"""Ablation: the two-level bus hierarchy (Section 3.1).

SNAP/LE puts the commonly used execution units on fast busses and the
rare ones behind slow busses, "dramatically decreasing the amount of
capacitance on the fast busses".  The ablation compares the default
hierarchical calibration against a *flat* bus, where every unit sees
the full bus capacitance (every transfer pays the slow-bus cost).
"""

import dataclasses

import pytest

from repro.bench.harness import handler_table
from repro.bench.reporting import format_table
from repro.energy import DEFAULT_CALIBRATION, EnergyModel
from repro.energy.calibration import Calibration
from repro.isa.opcodes import Opcode, spec_for


def flat_bus_calibration():
    """Every execution unit pays the long-bus energy: model a single
    set of busses loaded by all ten units."""
    extra = DEFAULT_CALIBRATION.slow_bus_pj
    units = {unit: cost + extra
             for unit, cost in DEFAULT_CALIBRATION.unit_pj.items()}
    return dataclasses.replace(DEFAULT_CALIBRATION, unit_pj=units,
                               slow_bus_pj=0.0)


def run_ablation():
    """Average handler-suite energy per instruction, both calibrations."""
    hierarchical = handler_table(0.6)
    flat_rows = handler_table(0.6, calibration=flat_bus_calibration())
    h_epi = (sum(row.energy for row in hierarchical)
             / sum(row.instructions for row in hierarchical))
    f_epi = (sum(row.energy for row in flat_rows)
             / sum(row.instructions for row in flat_rows))
    return h_epi, f_epi


def test_bus_hierarchy_ablation(benchmark):
    h_epi, f_epi = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = [
        ["hierarchical (paper design)", "%.1f" % (h_epi * 1e12)],
        ["flat single bus", "%.1f" % (f_epi * 1e12)],
        ["energy saved", "%.1f%%" % (100 * (1 - h_epi / f_epi))],
    ]
    print()
    print(format_table(["bus organization", "pJ/ins @0.6V"], rows,
                       title="Ablation: two-level bus hierarchy"))

    # The hierarchy saves energy on the common-case instruction mix.
    assert f_epi > h_epi
    assert (f_epi - h_epi) / f_epi > 0.03


def test_slow_bus_penalty_only_hits_rare_units():
    """Sanity: the fast-bus units are unaffected by the slow-bus cost."""
    default = EnergyModel(voltage=1.8)
    flat = EnergyModel(voltage=1.8, calibration=flat_bus_calibration())
    # Common instructions get more expensive under the flat bus.
    for opcode in (Opcode.ADD, Opcode.LD, Opcode.SLL, Opcode.BEQZ):
        assert (flat.instruction_energy(spec_for(opcode)).total
                > default.instruction_energy(spec_for(opcode)).total)
    # Rare slow-bus instructions cost the same either way.
    for opcode in (Opcode.LDI, Opcode.RAND, Opcode.SCHEDLO):
        assert flat.instruction_energy(spec_for(opcode)).total == (
            pytest.approx(default.instruction_energy(spec_for(opcode)).total))
