"""Ablation: the two-level bus hierarchy (Section 3.1).

SNAP/LE puts the commonly used execution units on fast busses and the
rare ones behind slow busses, "dramatically decreasing the amount of
capacitance on the fast busses".  The ablation compares the default
hierarchical calibration against a *flat* bus, where every unit sees
the full bus capacitance (every transfer pays the slow-bus cost).

The flat-bus calibration and the ablation runner live in
:mod:`repro.bench.ablations` so the fidelity scorecard can regenerate
the same measurements.
"""

import time

import pytest

from repro.bench.ablations import bus_ablation, flat_bus_calibration
from repro.bench.reporting import dump_results, format_table
from repro.energy import EnergyModel
from repro.isa.opcodes import Opcode, spec_for
from repro.obs import Observability


def test_bus_hierarchy_ablation(benchmark):
    obs = Observability()
    started = time.perf_counter()
    results = benchmark.pedantic(bus_ablation, kwargs={"obs": obs},
                                 rounds=1, iterations=1)
    dump_results("ablation_bus", results, metrics=obs.metrics.snapshot(),
                 wall_time_s=time.perf_counter() - started)
    h_epi = results["hierarchical_epi"]
    f_epi = results["flat_epi"]

    rows = [
        ["hierarchical (paper design)", "%.1f" % (h_epi * 1e12)],
        ["flat single bus", "%.1f" % (f_epi * 1e12)],
        ["energy saved", "%.1f%%" % (100 * (1 - h_epi / f_epi))],
    ]
    print()
    print(format_table(["bus organization", "pJ/ins @0.6V"], rows,
                       title="Ablation: two-level bus hierarchy"))

    # The hierarchy saves energy on the common-case instruction mix.
    assert f_epi > h_epi
    assert (f_epi - h_epi) / f_epi > 0.03


def test_slow_bus_penalty_only_hits_rare_units():
    """Sanity: the fast-bus units are unaffected by the slow-bus cost."""
    default = EnergyModel(voltage=1.8)
    flat = EnergyModel(voltage=1.8, calibration=flat_bus_calibration())
    # Common instructions get more expensive under the flat bus.
    for opcode in (Opcode.ADD, Opcode.LD, Opcode.SLL, Opcode.BEQZ):
        assert (flat.instruction_energy(spec_for(opcode)).total
                > default.instruction_energy(spec_for(opcode)).total)
    # Rare slow-bus instructions cost the same either way.
    for opcode in (Opcode.LDI, Opcode.RAND, Opcode.SCHEDLO):
        assert flat.instruction_energy(spec_for(opcode)).total == (
            pytest.approx(default.instruction_energy(spec_for(opcode)).total))
