"""Section 4.6: the Sense application comparison.

Paper: one sample/average/display iteration takes 1118 cycles on the
mote, 781 of them (over 70%) in interrupt service and scheduler
overhead; the SNAP version needs 261 cycles.
"""

import time

import pytest

from repro.bench.harness import sense_comparison
from repro.bench.reporting import dump_results, format_table
from repro.obs import Observability


def test_sense_comparison(benchmark):
    obs = Observability()
    started = time.perf_counter()
    result = benchmark.pedantic(sense_comparison, kwargs={"obs": obs},
                                rounds=1, iterations=1)
    dump_results("sense", result, metrics=obs.metrics.snapshot(),
                 wall_time_s=time.perf_counter() - started)

    rows = [
        ["SNAP cycles/iteration", "%.0f" % result.snap_cycles, "261"],
        ["Mote cycles/iteration", "%.0f" % result.avr_cycles, "1118"],
        ["Mote overhead fraction",
         "%.0f%%" % (100 * result.avr_overhead_fraction), ">70%"],
        ["Mote/SNAP ratio",
         "%.1fx" % (result.avr_cycles / result.snap_cycles), "4.3x"],
    ]
    print()
    print(format_table(["metric", "measured", "paper"], rows,
                       title="Section 4.6: Sense"))

    assert result.snap_cycles == pytest.approx(261, rel=0.3)
    assert result.avr_cycles == pytest.approx(1118, rel=0.45)
    # The headline shape: most mote cycles are overhead, and SNAP needs
    # several times fewer cycles in total.
    assert result.avr_overhead_fraction > 0.70
    assert result.avr_cycles / result.snap_cycles > 2.0
