"""Ablation: word-level vs bit-level radio interface (Section 3.3).

The message coprocessor delivers whole 16-bit words, which the paper
argues "is a much more efficient scheme than the bit-by-bit interrupt
scheme most microcontrollers use" because the bit/word conversions are
handled off the core.  This ablation receives the same packet two ways
on the same SNAP/LE core:

* **word interface** -- the standard MAC: one event per 16-bit word;
* **bit interface** -- one event per *bit*; the handler shifts each bit
  into an assembly register and only runs the word path every 16 events
  (what the core would have to do if it serviced the radio pin itself).

The scenario code lives in :mod:`repro.bench.ablations` so the fidelity
scorecard can regenerate the same measurements.
"""

import time

from repro.bench.ablations import radio_interface_ablation
from repro.bench.reporting import dump_results, format_table
from repro.obs import Observability


def test_radio_interface_ablation(benchmark):
    obs = Observability()
    started = time.perf_counter()
    results = benchmark.pedantic(radio_interface_ablation,
                                 kwargs={"obs": obs},
                                 rounds=1, iterations=1)
    dump_results("ablation_radio_interface", results,
                 metrics=obs.metrics.snapshot(),
                 wall_time_s=time.perf_counter() - started)
    words = results["words"]
    word, bit = results["word"], results["bit"]
    rows = [
        ["word events (message coprocessor)",
         "%.0f" % (word["instructions"] / words),
         "%.2f" % (word["energy_j"] / words * 1e9),
         "%d" % word["wakeups"]],
        ["bit events (core does conversion)",
         "%.0f" % (bit["instructions"] / words),
         "%.2f" % (bit["energy_j"] / words * 1e9),
         "%d" % bit["wakeups"]],
    ]
    print()
    print(format_table(
        ["radio interface", "ins/word", "nJ/word @0.6V", "wakeups"],
        rows, title="Ablation: word vs bit radio interface"))

    # Bit-banging costs several times more instructions and energy per
    # received word, and one wakeup per bit instead of per word.
    assert bit["instructions"] > 3 * word["instructions"]
    assert bit["energy_j"] > 3 * word["energy_j"]
    assert bit["wakeups"] >= 10 * word["wakeups"]
