"""Ablation: word-level vs bit-level radio interface (Section 3.3).

The message coprocessor delivers whole 16-bit words, which the paper
argues "is a much more efficient scheme than the bit-by-bit interrupt
scheme most microcontrollers use" because the bit/word conversions are
handled off the core.  This ablation receives the same packet two ways
on the same SNAP/LE core:

* **word interface** -- the standard MAC: one event per 16-bit word;
* **bit interface** -- one event per *bit*; the handler shifts each bit
  into an assembly register and only runs the word path every 16 events
  (what the core would have to do if it serviced the radio pin itself).
"""

import pytest

from repro.asm import build
from repro.bench.reporting import format_table
from repro.core import CoreConfig, SnapProcessor
from repro.isa.events import Event
from repro.netstack import layout
from repro.netstack.drivers import build_rx_node

BIT_RX = """
boot:
    movi sp, 0x7C0
    movi r1, 3
    movi r2, bit_handler
    setaddr r1, r2
    movi r10, 0          ; bit count within the word
    movi r11, 0          ; word accumulator
    movi r12, 0x20       ; RX_BUF write pointer
    done

; One event per received bit: shift it in; every 16th bit, store the word.
bit_handler:
    mov r1, r15          ; the bit (0/1)
    sll r11, 1
    or r11, r1
    addi r10, 1
    movi r2, 16
    sub r2, r10
    beqz r2, .word_done
    done
.word_done:
    st r11, 0(r12)
    addi r12, 1
    movi r10, 0
    movi r11, 0
    ld r3, 0(r0)         ; words received
    addi r3, 1
    st r3, 0(r0)
    done
"""

PACKET = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 1, [9, 0x123, 0x456])


def _run_word_interface():
    processor = SnapProcessor(config=CoreConfig(voltage=0.6))
    from repro.radio import Radio
    processor.mcp.attach_radio(Radio(processor.kernel))
    processor.load(build_rx_node(2))
    processor.run(until=1e-4)
    processor.meter.reset()
    for word in PACKET:
        processor.mcp.radio_word_received(word)
        processor.run(until=processor.kernel.now + 1e-4)
    return processor.meter


def _run_bit_interface():
    processor = SnapProcessor(config=CoreConfig(voltage=0.6,
                                                event_queue_capacity=32))
    processor.load(build(BIT_RX))
    processor.run(until=1e-4)
    processor.meter.reset()
    for word in PACKET:
        for bit_index in range(15, -1, -1):
            processor.mcp.radio_word_received((word >> bit_index) & 1)
            processor.run(until=processor.kernel.now + 2e-5)
    return processor.meter


def run_ablation():
    word_meter = _run_word_interface()
    bit_meter = _run_bit_interface()
    return word_meter, bit_meter


def test_radio_interface_ablation(benchmark):
    word_meter, bit_meter = benchmark.pedantic(run_ablation,
                                               rounds=1, iterations=1)
    words = len(PACKET)
    rows = [
        ["word events (message coprocessor)",
         "%.0f" % (word_meter.instructions / words),
         "%.2f" % (word_meter.total_energy / words * 1e9),
         "%d" % word_meter.wakeups],
        ["bit events (core does conversion)",
         "%.0f" % (bit_meter.instructions / words),
         "%.2f" % (bit_meter.total_energy / words * 1e9),
         "%d" % bit_meter.wakeups],
    ]
    print()
    print(format_table(
        ["radio interface", "ins/word", "nJ/word @0.6V", "wakeups"],
        rows, title="Ablation: word vs bit radio interface"))

    # Bit-banging costs several times more instructions and energy per
    # received word, and one wakeup per bit instead of per word.
    assert bit_meter.instructions > 3 * word_meter.instructions
    assert bit_meter.total_energy > 3 * word_meter.total_energy
    assert bit_meter.wakeups >= 10 * word_meter.wakeups
