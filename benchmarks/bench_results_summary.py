"""Section 4.7: results summary.

Paper: handlers run in 70-250 instructions, costing 15-55 nJ at 1.8 V
and 1.6-5.8 nJ at 0.6 V.  At less than ten events per second this is
150-550 nW of active power at 1.8 V and 16-58 nW at 0.6 V -- orders of
magnitude below a conventional microcontroller.
"""

import time

import pytest

from repro.bench.harness import results_summary
from repro.bench.reporting import dump_results, format_table
from repro.obs import Observability

PAPER = {
    1.8: {"energy_nj": (15.0, 55.0), "power_nw": (150.0, 550.0)},
    0.6: {"energy_nj": (1.6, 5.8), "power_nw": (16.0, 58.0)},
}


def run_summary(obs=None):
    return {voltage: results_summary(voltage, obs=obs)
            for voltage in (1.8, 0.6)}


def test_results_summary(benchmark):
    obs = Observability()
    started = time.perf_counter()
    results = benchmark.pedantic(run_summary, args=(obs,),
                                 rounds=1, iterations=1)
    dump_results("results_summary", results,
                 metrics=obs.metrics.snapshot(),
                 wall_time_s=time.perf_counter() - started)

    rows = []
    for voltage, summary in sorted(results.items(), reverse=True):
        paper = PAPER[voltage]
        rows.append([
            "%.1fV" % voltage,
            "%.1f - %.1f" % (summary.min_handler_energy * 1e9,
                             summary.max_handler_energy * 1e9),
            "%.1f - %.1f" % paper["energy_nj"],
            "%.0f - %.0f" % (summary.power_at_10hz_low * 1e9,
                             summary.power_at_10hz_high * 1e9),
            "%.0f - %.0f" % paper["power_nw"],
        ])
    print()
    print(format_table(
        ["V", "handler nJ", "paper nJ", "power @10Hz nW", "paper nW"],
        rows, title="Section 4.7: results summary"))

    for voltage, summary in results.items():
        low_nj, high_nj = PAPER[voltage]["energy_nj"]
        assert summary.min_handler_energy * 1e9 == pytest.approx(
            low_nj, rel=0.45)
        assert summary.max_handler_energy * 1e9 == pytest.approx(
            high_nj, rel=0.45)
        # Power at ten events/second is simply 10x the handler energy;
        # confirm the nanowatt regime the paper emphasizes.
        assert summary.power_at_10hz_high < 1e-6  # under a microwatt
    # Energy scales ~9x between 1.8V and 0.6V (CV^2).
    ratio = (results[1.8].max_handler_energy
             / results[0.6].max_handler_energy)
    assert ratio == pytest.approx(9.0, rel=0.1)
