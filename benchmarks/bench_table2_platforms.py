"""Table 2: related microcontrollers.

Literature rows come from the paper; the SNAP/LE rows are measured on
this repository's simulator (average over the Table 1 handler suite).
Paper: SNAP/LE ~24 pJ/ins at 28 MIPS (0.6 V) and ~218 pJ/ins at
240 MIPS (1.8 V); the Atmel at 1500 pJ/ins is "almost 68 times the
energy consumption of SNAP/LE at 0.6V".
"""

import time

import pytest

from repro.bench.harness import handler_table, throughput_and_wakeup
from repro.bench.platforms import platform_table
from repro.bench.reporting import dump_results, format_table
from repro.obs import Observability

ATMEL_EPI = 1500e-12


def measure_snap_points(obs=None):
    points = {}
    for voltage in (0.6, 1.8):
        rows = handler_table(voltage, obs=obs)
        energy = sum(row.energy for row in rows)
        instructions = sum(row.instructions for row in rows)
        mips = throughput_and_wakeup(voltage, obs=obs).mips
        points[voltage] = (mips * 1e6, energy / instructions)
    return points


def test_table2_platform_comparison(benchmark):
    obs = Observability()
    started = time.perf_counter()
    points = benchmark.pedantic(measure_snap_points, args=(obs,),
                                rounds=1, iterations=1)
    dump_results("table2_platforms", points,
                 metrics=obs.metrics.snapshot(),
                 wall_time_s=time.perf_counter() - started)
    table = platform_table(snap_measurements=points)

    rows = [[row.name, "yes" if row.clocked else "no", row.speed_mips,
             str(row.datapath_bits), row.memory, row.voltage,
             row.energy_per_ins_pj,
             "measured" if row.measured else "paper"]
            for row in table]
    print()
    print(format_table(
        ["Processor", "Clocked", "MIPS", "bits", "Memory", "V", "pJ/ins",
         "source"],
        rows, title="Table 2: related microcontrollers"))

    epi_06 = points[0.6][1]
    epi_18 = points[1.8][1]
    # Paper's published SNAP/LE points, within tolerance.
    assert epi_06 == pytest.approx(24e-12, rel=0.15)
    assert epi_18 == pytest.approx(218e-12, rel=0.15)
    # "almost 68 times the energy consumption of SNAP/LE at 0.6V".
    assert ATMEL_EPI / epi_06 == pytest.approx(68, rel=0.2)
    # SNAP/LE at 0.6V beats every platform in the table by an order of
    # magnitude or more.
    assert ATMEL_EPI / epi_06 > 10
    # XScale-class parts at ~1 nJ/ins are "three to five times more
    # energy than SNAP/LE at 1.8V".
    assert 2.5 <= 1e-9 / epi_18 <= 6.5
