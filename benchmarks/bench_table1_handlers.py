"""Table 1: handler code statistics with energy numbers.

Paper (dynamic instructions / E at 1.8 V / E at 0.6 V):

    Packet Transmission   70   15.1 nJ   1.6 nJ
    Packet Reception     103   22.5 nJ   2.5 nJ
    AODV Route Reply     224   48.1 nJ   5.2 nJ
    AODV Forward         245   53.7 nJ   5.9 nJ
    Temperature App      140   30.5 nJ   3.4 nJ
    Threshold App        155   33.7 nJ   3.8 nJ

with energy per instruction ~215-219 pJ at 1.8 V, ~54-56 at 0.9 V, and
~23-24 at 0.6 V; total code size ~2.8 KB.
"""

import time

import pytest

from repro.bench.harness import VOLTAGES, handler_table
from repro.bench.reporting import dump_results, format_table
from repro.netstack import build_temperature_app
from repro.netstack.drivers import build_aodv_node
from repro.obs import Observability

PAPER_EPI_PJ = {1.8: 217.0, 0.9: 54.8, 0.6: 23.8}


def run_table1(obs=None):
    return {voltage: handler_table(voltage, obs=obs)
            for voltage in VOLTAGES}


def test_table1_handler_statistics(benchmark):
    obs = Observability()
    started = time.perf_counter()
    results = benchmark.pedantic(run_table1, args=(obs,),
                                 rounds=1, iterations=1)
    dump_results("table1_handlers", results,
                 metrics=obs.metrics.snapshot(),
                 wall_time_s=time.perf_counter() - started)

    rows = []
    for index, row18 in enumerate(results[1.8]):
        row09 = results[0.9][index]
        row06 = results[0.6][index]
        rows.append([
            row18.name,
            "%d" % row18.instructions, "%d" % row18.paper_instructions,
            "%.1f" % (row18.energy * 1e9),
            "%.1f" % (row18.energy_per_instruction * 1e12),
            "%.1f" % (row09.energy * 1e9),
            "%.1f" % (row06.energy * 1e9),
            "%.1f" % (row06.energy_per_instruction * 1e12),
        ])
    print()
    print(format_table(
        ["Software task", "ins", "paper", "E@1.8 nJ", "pJ/ins@1.8",
         "E@0.9 nJ", "E@0.6 nJ", "pJ/ins@0.6"],
        rows, title="Table 1: handler statistics"))

    for voltage in VOLTAGES:
        for row in results[voltage]:
            # Dynamic instruction counts within 1.6x of the paper's.
            ratio = row.instructions / row.paper_instructions
            assert 0.6 <= ratio <= 1.6, (row.name, voltage, ratio)
            # Energy per instruction near the paper's per-voltage value.
            epi = row.energy_per_instruction * 1e12
            assert epi == pytest.approx(PAPER_EPI_PJ[voltage], rel=0.15), \
                (row.name, voltage, epi)

    # Ordering of handler costs is preserved: TX < RX < the two routing
    # handlers.  (The paper has RREP slightly below Forward; this
    # reproduction's RREQ path also performs flood duplicate
    # suppression and reverse-route setup, which pushes RREP to
    # roughly Forward's cost -- see EXPERIMENTS.md.)
    names = [row.name for row in results[1.8]]
    costs = {row.name: row.instructions for row in results[1.8]}
    assert costs["Packet Transmission"] < costs["Packet Reception"]
    assert costs["Packet Reception"] < costs["AODV Route Reply"]
    assert costs["Packet Reception"] < costs["AODV Forward"]
    assert (abs(costs["AODV Route Reply"] - costs["AODV Forward"])
            < 0.4 * costs["AODV Forward"])
    assert "Temperature App" in names and "Threshold App" in names

    # Section 4.5: handler energy is "in the tens of nanojoules" at 1.8V
    # and single-digit nJ at 0.6V.
    for row in results[1.8]:
        assert 5e-9 < row.energy < 100e-9
    for row in results[0.6]:
        assert 0.5e-9 < row.energy < 10e-9


def test_code_size_near_paper(benchmark):
    """Section 4.5: total application code ~2.8 KB, fitting the 4 KB IMEM
    with room to spare."""

    def sizes():
        return (build_aodv_node(1).text_size_bytes,
                build_temperature_app().text_size_bytes)

    started = time.perf_counter()
    network_bytes, temperature_bytes = benchmark.pedantic(
        sizes, rounds=1, iterations=1)
    dump_results("table1_code_size",
                 {"network_bytes": network_bytes,
                  "temperature_bytes": temperature_bytes},
                 wall_time_s=time.perf_counter() - started)
    total = network_bytes + temperature_bytes
    print("\nCode size: network node %dB + temperature app %dB = %dB "
          "(paper: ~2.8KB total)" % (network_bytes, temperature_bytes, total))
    assert total < 4096  # fits IMEM
    assert 1000 < total < 3600
