"""Unit tests for the observability layer: metrics registry, trace bus,
sinks and exporters, and the batch-trimming Tracer."""

import json

import pytest

from repro.asm import build
from repro.core import CoreConfig, SnapProcessor
from repro.core.trace import Tracer
from repro.isa import Instruction, Opcode
from repro.obs import (
    EVENT_KINDS,
    JsonlSink,
    KindFilter,
    MemorySink,
    MetricsRegistry,
    Observability,
    TraceBus,
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
)
from repro.obs.events import EventEnqueued, InstructionRetired


def _instruction_event(time=1.5e-6, pc=4, energy=1e-12, duration=4e-8,
                       handler="TIMER0"):
    return InstructionRetired(
        time=time, node="cpu", pc=pc, mnemonic="add r1, r2",
        instr_class="Arith Reg", handler=handler, energy=energy,
        duration=duration)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc()
        registry.counter("a.count").inc(3)
        registry.gauge("a.depth").set(7)
        registry.gauge("a.depth").dec(2)
        registry.histogram("a.latency").observe(2.0)
        registry.histogram("a.latency").observe(4.0)

        snapshot = registry.snapshot()
        assert snapshot["a.count"] == 4
        assert snapshot["a.depth"] == 5
        assert snapshot["a.latency"]["count"] == 2
        assert snapshot["a.latency"]["mean"] == pytest.approx(3.0)
        assert snapshot["a.latency"]["min"] == 2.0
        assert snapshot["a.latency"]["max"] == 4.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert "x" in registry
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        json.dumps(registry.snapshot())


class TestHistogramPercentile:
    def test_empty_histogram_has_no_percentiles(self):
        from repro.obs.metrics import Histogram
        histogram = Histogram()
        assert histogram.percentile(50) is None
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["p50"] is None
        assert summary["min"] is None and summary["max"] is None

    def test_single_sample_is_every_percentile(self):
        from repro.obs.metrics import Histogram
        histogram = Histogram()
        histogram.observe(3.5)
        for p in (0, 50, 99, 100):
            assert histogram.percentile(p) == 3.5

    def test_percentile_clamps_out_of_range_p(self):
        from repro.obs.metrics import Histogram
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.percentile(-10) == 1.0
        assert histogram.percentile(250) == 3.0

    def test_values_at_the_decimation_boundary(self):
        # Filling the reservoir to exactly sample_limit triggers the
        # decimation: half the samples survive, the stride doubles, and
        # aggregates keep counting every observation.
        from repro.obs.metrics import Histogram
        histogram = Histogram(sample_limit=8)
        for value in range(8):
            histogram.observe(float(value))
        assert len(histogram._samples) == 4
        assert histogram._stride == 2
        assert histogram._samples == [0.0, 2.0, 4.0, 6.0]
        assert histogram.count == 8
        assert histogram.min == 0.0 and histogram.max == 7.0
        # Quantiles interpolate over the surviving, evenly-spaced subset.
        assert histogram.percentile(0) == 0.0
        assert histogram.percentile(100) == 6.0
        assert histogram.percentile(50) == pytest.approx(3.0)

    def test_decimation_is_deterministic_across_runs(self):
        from repro.obs.metrics import Histogram
        def run():
            histogram = Histogram(sample_limit=16)
            for value in range(1000):
                histogram.observe(float(value))
            return (histogram.percentile(50), histogram.percentile(90),
                    len(histogram._samples), histogram._stride)
        assert run() == run()


class TestTraceBus:
    def test_fan_out_to_multiple_sinks(self):
        bus = TraceBus()
        first, second = bus.attach(MemorySink()), bus.attach(MemorySink())
        bus.emit(_instruction_event())
        assert len(first) == 1 and len(second) == 1

    def test_detach(self):
        bus = TraceBus()
        sink = bus.attach(MemorySink())
        bus.detach(sink)
        bus.emit(_instruction_event())
        assert len(sink) == 0

    def test_memory_sink_ring_limit(self):
        sink = MemorySink(limit=3)
        for pc in range(10):
            sink(_instruction_event(pc=pc))
        assert len(sink) == 3
        assert [record["pc"] for record in sink.records()] == [7, 8, 9]

    def test_kind_filter(self):
        sink = MemorySink()
        filtered = KindFilter(["enqueue"], sink)
        filtered(_instruction_event())
        filtered(EventEnqueued(time=0.0, node="eq", event="SOFT", depth=1))
        assert len(sink) == 1
        assert sink.records()[0]["type"] == "enqueue"

    def test_event_records_carry_kind_and_fields(self):
        record = _instruction_event().to_record()
        assert record["type"] == "instruction"
        assert record["mnemonic"] == "add r1, r2"
        assert set(EVENT_KINDS) >= {"instruction", "dispatch", "enqueue",
                                    "drop", "radio_tx", "radio_rx",
                                    "radio_drop", "command", "energy"}


class TestJsonlAndChrome:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            sink(_instruction_event(pc=1))
            sink(_instruction_event(pc=2))
        records = read_jsonl(str(path))
        assert [r["pc"] for r in records] == [1, 2]
        assert sink.count == 2

    def test_jsonl_ignores_writes_after_close(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "trace.jsonl"))
        sink.close()
        sink(_instruction_event())
        assert sink.count == 0

    def test_chrome_trace_shapes(self, tmp_path):
        events = [_instruction_event(),
                  EventEnqueued(time=1e-6, node="eq", event="SOFT", depth=2)]
        entries = chrome_trace(events)
        slice_entry, instant_entry = entries
        assert slice_entry["ph"] == "X"
        assert slice_entry["dur"] > 0
        assert slice_entry["args"]["pc"] == "0x0004"
        assert instant_entry["ph"] == "i"
        assert instant_entry["args"]["event"] == "SOFT"

        path = tmp_path / "trace.json"
        write_chrome_trace(events, str(path))
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 2


class TestTracerTrimming:
    def _feed(self, tracer, count):
        nop = Instruction(Opcode.NOP)
        for index in range(count):
            tracer(None, index * 1e-6, index, nop)

    def test_keeps_exactly_limit_entries(self):
        tracer = Tracer(limit=5)
        self._feed(tracer, 23)
        assert len(tracer.entries) == 5
        assert [entry[1] for entry in tracer.entries] == [18, 19, 20, 21, 22]
        assert len(tracer) == 5

    def test_internal_buffer_is_bounded_by_twice_the_limit(self):
        tracer = Tracer(limit=4)
        nop = Instruction(Opcode.NOP)
        for index in range(100):
            tracer(None, 0.0, index, nop)
            assert len(tracer._entries) < 2 * tracer.limit
        assert len(tracer.entries) == 4

    def test_under_limit_keeps_everything(self):
        tracer = Tracer(limit=100)
        self._feed(tracer, 7)
        assert len(tracer.entries) == 7

    def test_format_last(self):
        tracer = Tracer(limit=10)
        self._feed(tracer, 3)
        assert tracer.format(last=1).count("\n") == 0
        assert "nop" in tracer.format()

    def test_traced_run_respects_limit(self):
        tracer = Tracer(limit=2)
        processor = SnapProcessor(config=CoreConfig(voltage=1.8,
                                                    trace_fn=tracer))
        processor.load(build("movi r1, 2\nadd r1, r1\nadd r1, r1\nhalt\n"))
        processor.run()
        assert len(tracer.entries) == 2
        assert tracer.entries[-1][2] == "halt"

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            Tracer(limit=0)
