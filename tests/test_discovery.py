"""Flood-based AODV route discovery and the SEC-DED receive path:
multi-node integration tests for the extension features."""

import pytest

from repro.netstack import layout
from repro.netstack.apps import THRESH_COUNT
from repro.netstack.drivers import build_discovery_node
from repro.netstack.tinyos_ports import (
    RS_RX_BAD,
    RS_RX_BUF,
    RS_RX_CORRECTED,
    RS_RX_COUNT,
    build_radiostack_app,
    build_radiostack_rx,
)
from repro.network import NetworkSimulator


def routes_of(node):
    dmem = node.processor.dmem
    table = []
    for entry in range(layout.ROUTE_ENTRIES):
        base = layout.ROUTE_TABLE + 3 * entry
        dest = dmem.peek(base)
        if dest:
            table.append((dest, dmem.peek(base + 1), dmem.peek(base + 2)))
    return table


def build_line(node_ids, spacing=1.0, comm_range=1.5):
    net = NetworkSimulator(comm_range=comm_range)
    nodes = {}
    for index, node_id in enumerate(node_ids):
        nodes[node_id] = net.add_node(
            node_id, program=build_discovery_node(node_id),
            position=(index * spacing, 0.0))
    net.run(until=0.05)
    return net, nodes


def discover(net, nodes, origin, target, settle=3.0):
    nodes[origin].processor.dmem.poke(layout.RREQ_TARGET_ADDR, target)
    nodes[origin].processor.raise_soft_event()
    net.run(until=net.kernel.now + settle)


class TestRouteDiscovery:
    def test_single_hop(self):
        net, nodes = build_line([1, 2])
        discover(net, nodes, 1, 2)
        assert (2, 2, 1) in routes_of(nodes[1])
        assert (1, 1, 1) in routes_of(nodes[2])  # reverse route

    def test_three_hop_chain(self):
        net, nodes = build_line([1, 2, 3, 4])
        discover(net, nodes, 1, 4)
        assert (4, 2, 3) in routes_of(nodes[1])
        assert (4, 3, 2) in routes_of(nodes[2])
        assert (4, 4, 1) in routes_of(nodes[3])
        # Reverse path got installed hop by hop during the flood.
        assert (1, 3, 3) in routes_of(nodes[4])

    def test_duplicate_suppression(self):
        """Each relay rebroadcasts a given RREQ exactly once, even in a
        dense topology where it hears several copies."""
        net = NetworkSimulator()  # full connectivity
        nodes = {nid: net.add_node(nid, program=build_discovery_node(nid))
                 for nid in (1, 2, 3, 4, 5)}
        net.run(until=0.05)
        discover(net, nodes, 1, 5)
        for nid in (2, 3, 4):
            rebroadcasts = nodes[nid].processor.dmem.peek(
                layout.REBROADCAST_COUNT_ADDR)
            assert rebroadcasts <= 1

    def test_reverse_route_keeps_shortest(self):
        """A duplicate RREQ over a longer path must not clobber the
        reverse route (the rt_add better-route rule)."""
        net, nodes = build_line([1, 2, 3, 4])
        discover(net, nodes, 1, 4)
        # Node 2 heard the RREQ directly from node 1 *and* node 3's
        # rebroadcast; the direct one must win.
        assert (1, 1, 1) in routes_of(nodes[2])

    def test_rrep_does_not_loop(self):
        """Bounded traffic: the reply travels each hop exactly once."""
        net, nodes = build_line([1, 2, 3, 4])
        words_before = net.channel.words_carried
        discover(net, nodes, 1, 4)
        # RREQ flood: 3 broadcasts; RREP: 3 unicast hops; each packet is
        # 9-10 words.  A looping RREP would carry hundreds of words.
        assert net.channel.words_carried - words_before < 100
        for node in nodes.values():
            for dest, _, hops in routes_of(node):
                assert hops <= 4

    def test_data_flows_over_discovered_route(self):
        net, nodes = build_line([1, 2, 3, 4])
        discover(net, nodes, 1, 4)
        packet = layout.make_packet(dst=2, src=1,
                                    pkt_type=layout.PKT_TYPE_DATA,
                                    seq=9, payload=[4, 0x280, 0x190])
        for index, word in enumerate(packet):
            net.kernel.schedule(0.001 * (index + 1),
                                nodes[2].radio.deliver, word)
        net.run(until=net.kernel.now + 1.0)
        assert nodes[2].processor.dmem.peek(layout.FWD_COUNT_ADDR) == 1
        assert nodes[3].processor.dmem.peek(layout.FWD_COUNT_ADDR) == 1
        sink = nodes[4].processor.dmem
        assert sink.peek(THRESH_COUNT) == 1
        assert sink.peek(layout.APP_DATA + 1) == 0x280

    def test_discovery_for_absent_node_is_quiet(self):
        """An RREQ for a node that does not exist floods once and dies."""
        net, nodes = build_line([1, 2, 3])
        discover(net, nodes, 1, 99)
        assert all(dest != 99 for node in nodes.values()
                   for dest, _, _ in routes_of(node))
        # The flood passed each relay exactly once.
        assert nodes[2].processor.dmem.peek(
            layout.REBROADCAST_COUNT_ADDR) == 1


class TestSecDedReceivePath:
    def _run(self, bit_error_rate, count=12, seed=3):
        net = NetworkSimulator(bit_error_rate=bit_error_rate,
                               corruption="flip", seed=seed)
        tx = net.add_node(0, program=build_radiostack_app())
        rx = net.add_node(1, program=build_radiostack_rx())
        net.run(until=0.01)
        for index in range(count):
            net.kernel.schedule(0.02 * (index + 1),
                                tx.processor.raise_soft_event)
        net.run(until=5.0)
        return rx.processor.dmem, count

    def test_clean_channel(self):
        dmem, count = self._run(0.0)
        assert dmem.peek(RS_RX_COUNT) == count
        assert dmem.peek(RS_RX_CORRECTED) == 0
        assert dmem.peek(RS_RX_BAD) == 0
        assert [dmem.peek(RS_RX_BUF + i) for i in range(count)] == \
            list(range(count))

    def test_noisy_channel_corrected_end_to_end(self):
        """Single-bit channel flips are corrected by the SNAP assembly
        decoder: every byte arrives intact."""
        dmem, count = self._run(0.5)
        assert dmem.peek(RS_RX_COUNT) == count
        assert dmem.peek(RS_RX_CORRECTED) > 0
        assert dmem.peek(RS_RX_BAD) == 0
        assert [dmem.peek(RS_RX_BUF + i) for i in range(count)] == \
            list(range(count))

    def test_double_errors_detected_not_miscorrected(self):
        """Inject two bit flips by hand: the decoder must flag the word
        rather than deliver a wrong byte."""
        from repro.core import CoreConfig, SnapProcessor
        from repro.radio import secded_encode

        processor = SnapProcessor(config=CoreConfig(voltage=0.6))
        from repro.radio import Radio
        processor.mcp.attach_radio(Radio(processor.kernel))
        processor.load(build_radiostack_rx())
        processor.run(until=1e-4)
        corrupted = secded_encode(0xA5) ^ 0b101  # two flipped bits
        processor.mcp.radio_word_received(corrupted)
        processor.run(until=processor.kernel.now + 1e-3)
        assert processor.dmem.peek(RS_RX_BAD) == 1
        assert processor.dmem.peek(RS_RX_COUNT) == 0
