"""Tests for the fleet sweep engine: grid expansion, seed derivation,
pooled-vs-serial bit-identity, failure isolation, and the shared
predecode tables that make replicas cheap."""

import itertools
import json
import os

import pytest

from repro.asm import build
from repro.bench.reporting import _jsonable
from repro.bench.sweep import (
    SCENARIOS,
    Sweep,
    cell_label,
    diverging_cells,
    run_sweep,
    strip_volatile,
    sweep_scenario,
)
from repro.bench.simspeed import meter_digest
from repro.core import (
    CoreConfig,
    PredecodeCache,
    SnapProcessor,
    shared_predecode,
)
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

#: Cheap deterministic scenario: no simulation, just echoes its inputs.
@sweep_scenario("_test_echo")
def _echo(params, seed):
    return {"x": params["x"], "y": params.get("y", 0), "seed": seed,
            "product": params["x"] * params.get("y", 1),
            "digest": {"x": params["x"], "seed": seed}}


@sweep_scenario("_test_fail_on")
def _fail_on(params, seed):
    if params["x"] == params.get("poison"):
        raise RuntimeError("poisoned cell x=%r" % params["x"])
    return {"x": params["x"], "digest": {"x": params["x"]}}


@sweep_scenario("_test_interrupt_on")
def _interrupt_on(params, seed):
    if params["x"] == params.get("stop_at"):
        raise KeyboardInterrupt()
    return {"x": params["x"], "digest": {"x": params["x"]}}


@sweep_scenario("_test_crash_on")
def _crash_on(params, seed):
    if params["x"] == params.get("poison"):
        os._exit(13)  # kill the pool worker outright
    return {"x": params["x"], "digest": {"x": params["x"]}}


class TestGrid:
    def test_cells_are_the_cartesian_product_in_grid_order(self):
        sweep = Sweep(scenario="_test_echo",
                      grid={"x": [1, 2], "y": [10, 20, 30]},
                      fixed={"z": 7})
        cells = sweep.cells()
        assert len(cells) == 6
        assert cells[0] == {"x": 1, "y": 10, "z": 7}
        assert cells[1] == {"x": 1, "y": 20, "z": 7}
        assert cells[-1] == {"x": 2, "y": 30, "z": 7}

    def test_empty_grid_is_one_cell(self):
        sweep = Sweep(scenario="_test_echo", fixed={"x": 1})
        assert sweep.cells() == [{"x": 1}]

    def test_replica_seeds_pairwise_distinct_across_the_grid(self):
        # The satellite regression at sweep scope: every (cell, replica)
        # seed across a replica grid is distinct -- no seed+offset
        # aliasing between a cell's replica j and its neighbour's j-1.
        sweep = Sweep(scenario="_test_echo", grid={"x": list(range(6))},
                      replicas=4)
        seeds = sweep.seeds()
        flat = [seed for cell in seeds for seed in cell]
        assert len(flat) == 24
        assert len(set(flat)) == 24

    def test_seeds_deterministic_for_base_seed(self):
        sweep = Sweep(scenario="_test_echo", grid={"x": [1, 2]},
                      replicas=3, base_seed=42)
        twin = Sweep(scenario="_test_echo", grid={"x": [1, 2]},
                     replicas=3, base_seed=42)
        other = Sweep(scenario="_test_echo", grid={"x": [1, 2]},
                      replicas=3, base_seed=43)
        assert sweep.seeds() == twin.seeds()
        assert sweep.seeds() != other.seeds()

    def test_cell_label(self):
        assert cell_label({"voltage": 0.6, "ber": 0.02}) \
            == "voltage=0.6,ber=0.02"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep scenario"):
            run_sweep(Sweep(scenario="_no_such_scenario"))


class TestSerialSweep:
    def test_cells_and_aggregates(self):
        sweep = Sweep(scenario="_test_echo",
                      grid={"x": [1, 2], "y": [10, 20]}, replicas=2)
        result = run_sweep(sweep)
        assert len(result.cells) == 4
        assert not result.failed_cells
        cell = result.cells[0]
        assert cell["params"] == {"x": 1, "y": 10}
        assert len(cell["replicas"]) == 2
        # Replicas differ only in seed; x/y/product aggregate exactly.
        assert cell["aggregates"]["product"] == {
            "mean": 10.0, "min": 10, "max": 10}
        seeds = cell["aggregates"]["seed"]
        assert seeds["min"] != seeds["max"]

    def test_payload_shape(self):
        result = run_sweep(Sweep(scenario="_test_echo", grid={"x": [1]}))
        payload = result.payload()
        assert payload["schema"] == "repro.bench.sweep/1"
        assert payload["cells_total"] == 1
        assert payload["cells_ok"] == 1
        assert payload["cells_failed"] == 0
        json.dumps(payload)  # JSON-clean all the way down

    def test_scenario_exception_is_one_failed_cell(self):
        sweep = Sweep(scenario="_test_fail_on",
                      grid={"x": [1, 2, 3]}, fixed={"poison": 2})
        result = run_sweep(sweep)
        assert len(result.ok_cells) == 2
        (failed,) = result.failed_cells
        assert failed["index"] == 1
        assert "poisoned cell x=2" in failed["error"]
        json.dumps(result.payload())

    def test_keyboard_interrupt_preserves_completed_cells(self):
        sweep = Sweep(scenario="_test_interrupt_on",
                      grid={"x": [1, 2, 3, 4]}, fixed={"stop_at": 3})
        result = run_sweep(sweep)
        assert result.interrupted
        assert [cell["index"] for cell in result.ok_cells] == [0, 1]
        for cell in result.cells[2:]:
            assert not cell.get("ok")
            assert cell["error"] == "interrupted"


class TestPooledSweep:
    def test_pooled_matches_serial_bit_for_bit(self):
        sweep = Sweep(scenario="voltage_point",
                      grid={"voltage": [1.8, 0.6]}, replicas=2)
        serial = run_sweep(sweep, workers=1)
        pooled = run_sweep(sweep, workers=4)
        assert not serial.failed_cells and not pooled.failed_cells
        assert diverging_cells(serial, pooled) == []
        # The aggregated JSON matches too, modulo host wall-time fields.
        assert strip_volatile(serial.payload()) \
            == strip_volatile(pooled.payload())

    def test_worker_crash_is_confined_to_its_cell(self):
        # The poisoned worker dies with os._exit; the pool breaks, the
        # already-completed cells keep their results, and the loss is
        # reported per-cell instead of taking down the sweep.
        sweep = Sweep(scenario="_test_crash_on",
                      grid={"x": [1, 2, 3, 4]}, fixed={"poison": 4})
        result = run_sweep(sweep, workers=2)
        assert [cell["index"] for cell in result.ok_cells] == [0, 1, 2]
        (failed,) = result.failed_cells
        assert failed["index"] == 3
        assert failed["error"]
        json.dumps(result.payload())

    def test_diverging_cells_reports_the_difference(self):
        base = Sweep(scenario="_test_echo", grid={"x": [1, 2]},
                     base_seed=0)
        other = Sweep(scenario="_test_echo", grid={"x": [1, 2]},
                      base_seed=99)
        a = run_sweep(base)
        b = run_sweep(other)
        divergences = diverging_cells(a, b)
        assert [index for index, _, _ in divergences] == [0, 1]
        assert all(digest_a != digest_b
                   for _, digest_a, digest_b in divergences)


_SMC_SOURCE = """
boot:
    movi r5, patch
    movi r7, %(word_add)d
    movi r2, 5
    movi r3, 7
    sti r7, 0(r5)
patch:
    mov r1, r0
    halt
"""


def _smc_program():
    word_add = encode(Instruction(Opcode.ADD, rd=2, rs=3))[0]
    return build(_SMC_SOURCE % {"word_add": word_add})


class TestSharedPredecode:
    def test_shared_tables_are_bit_transparent(self):
        from repro.bench.ablations import SWEEP_LOOP
        program = build(SWEEP_LOOP)

        baseline = SnapProcessor(config=CoreConfig(voltage=0.6))
        baseline.load(program)
        baseline.run()

        cache = PredecodeCache()
        digests = []
        with shared_predecode(cache):
            for _ in range(2):
                processor = SnapProcessor(config=CoreConfig(voltage=0.6))
                processor.load(program)
                processor.run()
                digests.append(meter_digest(processor))
        assert digests[0] == meter_digest(baseline)
        assert digests[1] == meter_digest(baseline)
        # One master table, leased twice.
        assert len(cache) == 1
        assert cache.misses == 1
        assert cache.hits == 1

    def test_different_voltages_get_different_tables(self):
        from repro.bench.ablations import SWEEP_LOOP
        program = build(SWEEP_LOOP)
        cache = PredecodeCache()
        with shared_predecode(cache):
            for voltage in (0.6, 1.8):
                processor = SnapProcessor(
                    config=CoreConfig(voltage=voltage))
                processor.load(program)
                processor.run()
        assert len(cache) == 2
        assert cache.misses == 2

    def test_self_modifying_code_never_pollutes_the_shared_table(self):
        program = _smc_program()

        baseline = SnapProcessor(config=CoreConfig(voltage=0.6))
        baseline.load(program)
        baseline.run()
        assert baseline.regs.peek(2) == 12  # the patched add executed

        cache = PredecodeCache()
        with shared_predecode(cache):
            first = SnapProcessor(config=CoreConfig(voltage=0.6))
            first.load(program)
            first.run()
            # The sti detached this core from the master for good.
            assert first._predec_master is None
            second = SnapProcessor(config=CoreConfig(voltage=0.6))
            second.load(program)
            second.run()
        assert meter_digest(first) == meter_digest(baseline)
        assert meter_digest(second) == meter_digest(baseline)
        assert second.regs.peek(2) == 12

    def test_reference_engine_ignores_the_cache(self):
        from repro.bench.ablations import SWEEP_LOOP
        program = build(SWEEP_LOOP)
        cache = PredecodeCache()
        with shared_predecode(cache):
            processor = SnapProcessor(
                config=CoreConfig(voltage=0.6, fast_path=False))
            processor.load(program)
            processor.run()
        assert len(cache) == 0


class TestSweepCli:
    def test_grid_parsing(self):
        from repro.tools.snap_sweep import parse_grid
        grid = parse_grid(["voltage=0.6,1.8", "n=3", "mode=flip"])
        assert grid == {"voltage": [0.6, 1.8], "n": [3],
                        "mode": ["flip"]}
        with pytest.raises(ValueError):
            parse_grid(["novalue"])

    def test_end_to_end_with_dump(self, tmp_path, capsys):
        from repro.tools.snap_sweep import main
        report = tmp_path / "report.json"
        code = main(["_test_echo", "--grid", "x=1,2", "--fixed", "y=5",
                     "--replicas", "2", "--serial-check",
                     "--json", str(report),
                     "--results-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        payload = json.loads(report.read_text())
        assert payload["cells_ok"] == 2
        assert payload["serial_check"]["identical"] is True
        dump = json.loads((tmp_path / "BENCH_SWEEP.json").read_text())
        assert dump["benchmark"] == "SWEEP"
        assert dump["results"]["serial_check"]["identical"] is True

    def test_failed_cell_sets_exit_code(self, tmp_path, capsys):
        from repro.tools.snap_sweep import main
        code = main(["_test_fail_on", "--grid", "x=1,2",
                     "--fixed", "poison=2"])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out
