"""Every example script runs to completion (their internal assertions
double as integration checks)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), "%s produced no output" % script


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 7


def test_quickstart_reports_event_driven_stats(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "sum(1..10)        = 55" in output
    assert "timer events      = 10" in output
    assert "wakeups" in output


def test_blink_comparison_shows_the_gap(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "blink_comparison.py"),
                   run_name="__main__")
    output = capsys.readouterr().out
    assert "Energy ratio mote/SNAP" in output
    assert "Overhead on the mote" in output
