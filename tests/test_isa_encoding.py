"""Encoder/decoder tests, including property-based round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    EncodingError,
    Instruction,
    Opcode,
    decode,
    decode_stream,
    encode,
)
from repro.isa.instruction import BRANCH_OFFSET_MAX, BRANCH_OFFSET_MIN
from repro.isa.opcodes import Format, all_specs, spec_for


def _sample_instruction(spec, rd=3, rs=5, imm=0x1234, offset=-7):
    fmt = spec.format
    if fmt == Format.N:
        return Instruction(spec.opcode)
    if fmt == Format.R:
        return Instruction(spec.opcode, rd=rd, rs=rs)
    if fmt == Format.B:
        return Instruction(spec.opcode, rs=rs, imm=offset)
    if fmt == Format.RI:
        return Instruction(spec.opcode, rd=rd, rs=rs, imm=imm)
    return Instruction(spec.opcode, imm=imm)


class TestRoundTrip:
    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.mnemonic)
    def test_every_opcode_round_trips(self, spec):
        instruction = _sample_instruction(spec)
        words = encode(instruction)
        assert len(words) == instruction.size
        decoded, size = decode(words)
        assert size == len(words)
        assert decoded == instruction

    @given(rd=st.integers(0, 15), rs=st.integers(0, 15))
    def test_r_format_registers(self, rd, rs):
        instruction = Instruction(Opcode.ADD, rd=rd, rs=rs)
        decoded, _ = decode(encode(instruction))
        assert (decoded.rd, decoded.rs) == (rd, rs)

    @given(rs=st.integers(0, 15),
           offset=st.integers(BRANCH_OFFSET_MIN, BRANCH_OFFSET_MAX))
    def test_branch_offset_sign(self, rs, offset):
        instruction = Instruction(Opcode.BNEZ, rs=rs, imm=offset)
        decoded, _ = decode(encode(instruction))
        assert decoded.imm == offset

    @given(imm=st.integers(0, 0xFFFF))
    def test_immediate_word(self, imm):
        instruction = Instruction(Opcode.MOVI, rd=1, rs=0, imm=imm)
        decoded, _ = decode(encode(instruction))
        assert decoded.imm == imm


class TestValidation:
    def test_branch_offset_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction(Opcode.BEQZ, rs=0, imm=32))
        with pytest.raises(ValueError):
            encode(Instruction(Opcode.BEQZ, rs=0, imm=-33))

    def test_register_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction(Opcode.ADD, rd=16, rs=0))

    def test_n_format_rejects_operands(self):
        with pytest.raises(ValueError):
            encode(Instruction(Opcode.DONE, rd=1, rs=0))

    def test_immediate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode(Instruction(Opcode.MOVI, rd=0, rs=0, imm=0x10000))


class TestDecodeErrors:
    def test_unknown_opcode(self):
        with pytest.raises(EncodingError):
            decode([0x3F << 10])

    def test_truncated_two_word(self):
        words = encode(Instruction(Opcode.MOVI, rd=0, rs=0, imm=1))
        with pytest.raises(EncodingError):
            decode(words[:1])

    def test_nonzero_pad_bits(self):
        word = encode(Instruction(Opcode.ADD, rd=1, rs=2))[0] | 0x1
        with pytest.raises(EncodingError):
            decode([word])

    def test_decode_past_end(self):
        with pytest.raises(EncodingError):
            decode([], offset=0)


class TestDecodeStream:
    def test_mixed_stream(self):
        words = (encode(Instruction(Opcode.MOVI, rd=1, rs=0, imm=7))
                 + encode(Instruction(Opcode.ADD, rd=1, rs=1))
                 + encode(Instruction(Opcode.DONE)))
        entries = decode_stream(words)
        assert [e[0] for e in entries] == [0, 2, 3]
        assert [e[1].opcode for e in entries] == [
            Opcode.MOVI, Opcode.ADD, Opcode.DONE]


class TestTwoWordClassification:
    def test_paper_instruction_word_counts(self):
        """Immediate and memory forms are two words (Section 4.4's energy
        tiers depend on this)."""
        assert spec_for(Opcode.ADD).two_word is False
        assert spec_for(Opcode.SLL).two_word is False
        assert spec_for(Opcode.ADDI).two_word is True
        assert spec_for(Opcode.LD).two_word is True
        assert spec_for(Opcode.ST).two_word is True
        assert spec_for(Opcode.BFS).two_word is True
