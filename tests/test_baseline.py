"""Baseline (AVR-like core + TinyOS-style runtime) tests."""

import pytest

from repro.baseline import (
    AtmelEnergyModel,
    AvrAsmError,
    AvrConfig,
    AvrCore,
    AvrFault,
    assemble_avr,
    build_avr_blink,
    build_avr_radiostack,
    build_avr_sense,
)
from repro.baseline.avr_core import (
    IRQ_ADC,
    IRQ_SPI,
    IRQ_TIMER,
    PORT_LEDS,
    PORT_MARKER,
)
from repro.radio import crc16_update, secded_encode


def run_simple(source, max_cycles=100000, **config):
    program = assemble_avr(source)
    core = AvrCore(program, AvrConfig(**config))
    core.run(max_wall_cycles=max_cycles)
    return core


class TestAvrAssembler:
    def test_labels_and_branches(self):
        program = assemble_avr("""
        start:
            ldi r16, 3
        loop:
            dec r16
            brne loop
            sleep
        """)
        assert program.address_of("loop") == 1

    def test_variables_get_addresses(self):
        program = assemble_avr(".var a, 2\n.var b, 1\nnop\n")
        assert program.variables["b"] == program.variables["a"] + 2

    def test_equ(self):
        program = assemble_avr(".equ K, 7\nldi r16, K\nsleep\n")
        assert program.instructions[0].imm == 7

    def test_undefined_label(self):
        with pytest.raises(AvrAsmError, match="undefined"):
            assemble_avr("rjmp nowhere\n")

    def test_duplicate_label(self):
        with pytest.raises(AvrAsmError, match="duplicate"):
            assemble_avr("a:\nnop\na:\nnop\n")

    def test_size_words_counts_two_word_forms(self):
        program = assemble_avr(".var v, 1\nlds r16, v\nnop\n")
        assert program.size_words == 3


class TestAvrCore:
    def test_arithmetic_and_flags(self):
        core = run_simple("""
        .var out, 1
            ldi r16, 200
            ldi r17, 100
            add r16, r17    ; 300 -> 44 with carry
            sts out, r16
            sleep
        """)
        assert core.variable("out") == 44
        assert core.flag_c

    def test_sixteen_bit_add_with_adc(self):
        core = run_simple("""
        .var lo, 1
        .var hi, 1
            ldi r16, 0xFF
            ldi r17, 0x01
            ldi r18, 0x02
            ldi r19, 0x00
            add r16, r18    ; 0x1FF + 0x002 = 0x201
            adc r17, r19
            sts lo, r16
            sts hi, r17
            sleep
        """)
        assert core.variable("lo") == 0x01
        assert core.variable("hi") == 0x02

    def test_loop_cycle_count(self):
        """dec(1) + brne(2 taken / 1 final) for a counted loop."""
        core = run_simple("""
            ldi r16, 10
        loop:
            dec r16
            brne loop
            sleep
        """)
        # ldi 1 + 9*(1+2) + (1+1) + sleep 1 = 31
        assert core.stats.cycles == 31

    def test_x_pointer_post_increment(self):
        core = run_simple("""
        .var buf, 4
            ldi r26, buf
            ldi r27, 0
            ldi r16, 5
            st X+, r16
            inc r16
            st X, r16
            sleep
        """)
        base = core.program.variables["buf"]
        assert core.sram[base] == 5
        assert core.sram[base + 1] == 6

    def test_rcall_ret(self):
        core = run_simple("""
        .var out, 1
            rcall fn
            sts out, r16
            sleep
        fn:
            ldi r16, 9
            ret
        """)
        assert core.variable("out") == 9

    def test_sleep_without_devices_halts(self):
        core = run_simple("nop\nsleep\n")
        assert core.halted

    def test_runaway_detected(self):
        with pytest.raises(AvrFault, match="budget"):
            run_simple("loop:\nrjmp loop\n",
                       max_cycles=None, max_instructions=1000)

    def test_marker_splits_cycles(self):
        core = run_simple("""
            ldi r16, 1
            out 0x07, r16   ; marker on
            nop
            nop
            ldi r16, 0
            out 0x07, r16   ; marker off
            nop
            sleep
        """)
        assert core.stats.useful_cycles == 4  # marker-on out + 2 nops + ldi
        assert core.stats.cycles > core.stats.useful_cycles


class TestInterrupts:
    def test_timer_interrupt_fires_and_returns(self):
        program = assemble_avr("""
        .var ticks, 1
            ldi r16, 0
            sts ticks, r16
            sei
            ldi r16, 1
            out 0x02, r16    ; enable timer
        idle:
            sleep
            rjmp idle
        timer_isr:
            push r16
            lds r16, ticks
            inc r16
            sts ticks, r16
            pop r16
            reti
        """)
        core = AvrCore(program, AvrConfig(timer_period_cycles=100),
                       vectors={IRQ_TIMER: "timer_isr"})
        core.run(max_wall_cycles=1050)
        assert core.variable("ticks") == 10
        assert core.stats.irqs == 10
        assert core.stats.wakeups == 10

    def test_interrupts_masked_until_sei(self):
        program = assemble_avr("""
        .var ticks, 1
            ldi r16, 1
            out 0x02, r16    ; timer on, but I-flag still clear
            ldi r17, 200
        spin:
            dec r17
            brne spin
            sleep            ; no wake source that can interrupt
        timer_isr:
            reti
        """)
        core = AvrCore(program, AvrConfig(timer_period_cycles=50),
                       vectors={IRQ_TIMER: "timer_isr"})
        core.run(max_wall_cycles=5000)
        assert core.stats.irqs == 0


class TestBlinkApp:
    def _run(self, iterations):
        program = build_avr_blink(period_ticks=2)
        core = AvrCore(program, AvrConfig(timer_period_cycles=2000),
                       vectors={IRQ_TIMER: "timer_isr"})
        core.run(max_wall_cycles=2000 * 2 * iterations + 5000)
        return core

    def test_blinks_happen(self):
        core = self._run(10)
        assert core.variable("blink_count") >= 10
        values = [value for _, value in core.leds_history]
        assert values[:4] == [1, 0, 1, 0]

    def test_overhead_dominates_like_figure5(self):
        """Figure 5: 16 useful vs 507 overhead cycles per blink."""
        first = self._run(10)
        second = self._run(20)
        d_blinks = second.variable("blink_count") - first.variable("blink_count")
        d_cycles = second.stats.cycles - first.stats.cycles
        d_useful = second.stats.useful_cycles - first.stats.useful_cycles
        per_iter = d_cycles / d_blinks
        useful = d_useful / d_blinks
        assert 350 <= per_iter <= 700      # paper: 523
        assert 10 <= useful <= 25          # paper: 16
        assert (per_iter - useful) / per_iter > 0.9

    def test_blink_energy_near_paper(self):
        """Figure 5: ~1960 nJ per blink on the mote."""
        first = self._run(10)
        second = self._run(20)
        d_blinks = second.variable("blink_count") - first.variable("blink_count")
        d_cycles = second.stats.cycles - first.stats.cycles
        energy = AtmelEnergyModel().active_energy(d_cycles / d_blinks)
        assert 1.2e-6 <= energy <= 2.7e-6


class TestSenseApp:
    def _run(self, iterations, sample=0x3FF):
        program = build_avr_sense(period_ticks=2)
        core = AvrCore(program, AvrConfig(timer_period_cycles=2000),
                       vectors={IRQ_TIMER: "timer_isr", IRQ_ADC: "adc_isr"})
        core.adc.sample_source = lambda: sample
        core.run(max_wall_cycles=2000 * 2 * iterations + 8000)
        return core

    def test_iterations_and_display(self):
        core = self._run(12)
        assert core.variable("sense_iters") >= 12
        assert core.leds_history  # something was displayed

    def test_overhead_fraction_matches_paper_shape(self):
        """Section 4.6: >70% of mote Sense cycles are overhead."""
        first = self._run(10)
        second = self._run(20)
        d_iters = second.variable("sense_iters") - first.variable("sense_iters")
        d_cycles = second.stats.cycles - first.stats.cycles
        d_useful = second.stats.useful_cycles - first.stats.useful_cycles
        per_iter = d_cycles / d_iters
        assert 500 <= per_iter <= 1400     # paper: 1118
        assert (per_iter - d_useful / d_iters) / per_iter > 0.7

    def test_two_interrupts_per_iteration(self):
        first = self._run(10)
        second = self._run(20)
        d_iters = second.variable("sense_iters") - first.variable("sense_iters")
        d_irqs = second.stats.irqs - first.stats.irqs
        # one timer IRQ per tick (2 ticks/iteration) + one ADC IRQ
        assert d_irqs / d_iters == pytest.approx(3.0, abs=0.5)


class TestRadioStackApp:
    def _run(self, bytes_count):
        program = build_avr_radiostack(period_ticks=1)
        core = AvrCore(program, AvrConfig(timer_period_cycles=4000),
                       vectors={IRQ_TIMER: "timer_isr", IRQ_SPI: "spi_isr"})
        core.run(max_wall_cycles=4000 * bytes_count + 8000)
        return core

    def test_codewords_match_golden_secded(self):
        core = self._run(6)
        sent = core.spi.sent
        words = [sent[i] | (sent[i + 1] << 8) for i in range(0, len(sent) - 1, 2)]
        assert words[:5] == [secded_encode(b) for b in range(5)]

    def test_crc_matches_golden(self):
        core = self._run(6)
        count = core.variable("bytes_sent")
        crc = 0xFFFF
        for byte in range(count):
            crc = crc16_update(crc, byte)
        assert core.variable("crc_lo") | (core.variable("crc_hi") << 8) == crc

    def test_cycles_per_byte_near_paper(self):
        """Section 4.6: ~780 mote cycles to send one byte."""
        first = self._run(10)
        second = self._run(20)
        d_bytes = second.variable("bytes_sent") - first.variable("bytes_sent")
        d_cycles = second.stats.cycles - first.stats.cycles
        assert 500 <= d_cycles / d_bytes <= 1000


class TestEnergyModel:
    def test_published_constants(self):
        model = AtmelEnergyModel()
        assert model.energy_per_instruction == pytest.approx(1500e-12)
        assert model.instruction_energy(1000) == pytest.approx(1.5e-6)

    def test_sleep_energy_scales(self):
        model = AtmelEnergyModel()
        idle = model.sleep_energy(4_000_000)          # one second idle
        deep = model.sleep_energy(4_000_000, deep=True)
        assert idle == pytest.approx(3.6e-3)
        assert deep < idle / 10
