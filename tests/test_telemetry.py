"""Streaming-telemetry tests: protocol, transports, dashboards, wiring.

The load-bearing guarantees, in order:

1. **Bit-identity** -- arming a :class:`TelemetryExporter` (at the
   default cadence, over any transport) changes no simulation result:
   the fig5-blink and convergecast meter digests match a bare run
   exactly.
2. **Never block** -- a slow, abandoned, or garbage-writing socket
   consumer costs *dropped records* (counted and surfaced), never a
   stalled simulation.
3. **Replayability** -- the NDJSON stream alone reconstructs the
   dashboard: the golden pins the stream's stable (float-free)
   projection, and a full write/read round-trip is exact.

Golden regen, after an intentional protocol or netstack change::

    PYTHONPATH=src python tests/test_telemetry.py --regen
"""

import io
import json
import os
import socket

from repro.asm import build
from repro.bench.simspeed import meter_digest
from repro.core import CoreConfig
from repro.core.kernel import Kernel
from repro.netstack import build_blink_app
from repro.network.experiments import convergecast
from repro.node import SensorNode
from repro.obs import (
    Blackbox,
    FileTransport,
    MetricsRegistry,
    NullTransport,
    Observability,
    SocketServerTransport,
    TelemetryExporter,
    TelemetryView,
    project_telemetry,
)
from repro.obs.telemetry import SCHEMA, read_stream
from repro.tools import snap_run, snap_top

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")
GOLDEN_STREAM = os.path.join(GOLDEN_DIR, "telemetry_stream.json")

BLINK = """
boot:
    movi r1, 0
    movi r2, handler
    setaddr r1, r2
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
handler:
    ld r3, 0(r0)
    xori r3, 1
    st r3, 0(r0)
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
"""


class FakeClock:
    """A deterministic wall clock: every read advances a fixed step, so
    recorded streams are byte-stable for the golden."""

    def __init__(self, step=0.125):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def _blink_node():
    node = SensorNode(node_id=0)
    node.load(build_blink_app(period_ticks=1000))
    return node


def stream_blink(until=0.2, interval=0.05):
    """The golden workload: a blink node streamed to an in-memory NDJSON
    buffer under the fake clock.  Returns the raw NDJSON text."""
    node = _blink_node()
    buffer = io.StringIO()
    exporter = TelemetryExporter.for_node(
        node, FileTransport(buffer), interval=interval, clock=FakeClock())
    exporter.start(horizon=until)
    node.run(until=until)
    exporter.close()
    return buffer.getvalue()


#: Reduce stream records to their float-free, machine-independent core
#: (repo golden convention).  The projection itself lives in
#: :mod:`repro.obs.project`, shared with the trace goldens and the
#: snap-diff alignment engine.
def stable_projection(records):
    return project_telemetry(records)


# -- metrics diff -------------------------------------------------------------


class TestMetricsDiff:
    def test_none_prev_returns_full_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        assert registry.diff(None) == registry.snapshot()

    def test_only_changed_metrics_are_returned(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("b").set(7)
        base = registry.snapshot()
        registry.counter("a").inc()
        diff = registry.diff(base)
        assert diff == {"a": 4}

    def test_new_metrics_always_included(self):
        registry = MetricsRegistry()
        base = registry.snapshot()
        registry.counter("late").inc()
        assert registry.diff(base) == {"late": 1}

    def test_histogram_summary_carries_min_max_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in (2.0, 5.0, 3.0):
            histogram.observe(value)
        summary = registry.snapshot()["h"]
        assert summary["min"] == 2.0
        assert summary["max"] == 5.0
        assert summary["sum"] == 10.0
        assert summary["count"] == 3

    def test_histogram_diff_triggers_on_new_observation(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        base = registry.snapshot()
        assert registry.diff(base) == {}
        registry.histogram("h").observe(2.0)
        assert "h" in registry.diff(base)


# -- the stream itself --------------------------------------------------------


class TestStream:
    def test_matches_golden(self):
        records = [json.loads(line)
                   for line in stream_blink().splitlines()]
        actual = stable_projection(records)
        with open(GOLDEN_STREAM) as handle:
            expected = json.load(handle)
        assert actual == expected, (
            "telemetry stream diverged from tests/goldens/"
            "telemetry_stream.json; if intentional: "
            "PYTHONPATH=src python tests/test_telemetry.py --regen")

    def test_round_trip_is_exact(self, tmp_path):
        text = stream_blink()
        path = tmp_path / "stream.ndjson"
        path.write_text(text)
        view, records = read_stream(str(path))
        lines = text.splitlines()
        assert len(records) == len(lines)
        assert view.malformed == 0 and view.lost == 0
        # Parsing and re-serializing every line loses nothing.
        for line, record in zip(lines, records):
            assert json.loads(line) == json.loads(
                json.dumps(record, separators=(",", ":")))

    def test_stream_structure(self):
        records = [json.loads(line)
                   for line in stream_blink().splitlines()]
        assert records[0]["type"] == "hello"
        assert records[0]["schema"] == SCHEMA
        assert records[1]["type"] == "metrics" and records[1]["full"]
        assert records[-1]["type"] == "bye"
        seqs = [record["seq"] for record in records]
        assert seqs == list(range(len(records)))
        types = {record["type"] for record in records}
        assert {"progress", "timeline", "handlers"} <= types

    def test_view_tolerates_unknown_and_malformed_input(self):
        view = TelemetryView()
        assert view.apply_line("not json {") is None
        assert view.malformed == 1
        assert view.apply_line("[1, 2]") is None
        assert view.malformed == 2
        # Unknown record types are ignored per the versioning rules.
        view.apply({"type": "from_the_future", "seq": 0})
        view.apply({"type": "progress", "seq": 5, "sim_s": 1.0})
        assert view.lost == 4          # seq 1..4 never arrived
        assert view.progress["sim_s"] == 1.0

    def test_exporter_does_not_keep_a_drained_kernel_alive(self):
        kernel = Kernel()
        exporter = TelemetryExporter(kernel, {}, None, NullTransport(),
                                     interval=0.01)
        exporter.start()
        # The only pending event is the exporter's own tick: it must not
        # re-arm, or an unbounded run would never return.
        assert kernel.run() <= 2
        assert kernel.pending == 0
        exporter.close()

    def test_exporter_rearms_while_work_is_pending(self):
        kernel = Kernel()
        ticks = []

        def work(count):
            ticks.append(count)
            if count < 5:
                kernel.schedule(0.01, work, count + 1)

        kernel.schedule(0.01, work, 0)
        exporter = TelemetryExporter(kernel, {}, None, NullTransport(),
                                     interval=0.01)
        exporter.start()
        kernel.run()
        assert len(ticks) == 6
        assert exporter.flushes >= 5
        exporter.close()


# -- bit-identity -------------------------------------------------------------


class TestBitIdentity:
    def test_fig5_blink_digest_identical(self, tmp_path):
        def blink(armed):
            node = _blink_node()
            exporter = None
            if armed:
                exporter = TelemetryExporter.for_node(
                    node, FileTransport(str(tmp_path / "blink.ndjson")))
                exporter.start(horizon=0.25)
            node.run(until=0.25)
            if exporter is not None:
                exporter.close()
            return meter_digest(node.processor)

        assert blink(False) == blink(True)

    def test_convergecast_digest_identical(self, tmp_path):
        plain = convergecast(duration_s=0.5)
        streamed = convergecast(
            duration_s=0.5,
            telemetry=str(tmp_path / "convergecast.ndjson"))
        assert plain.sink_deliveries == streamed.sink_deliveries
        for node_id in plain.nodes:
            assert plain.nodes[node_id].instructions \
                == streamed.nodes[node_id].instructions
            assert plain.nodes[node_id].energy_j \
                == streamed.nodes[node_id].energy_j
        # The stream really covered the run.
        view, records = read_stream(str(tmp_path / "convergecast.ndjson"))
        assert view.journey_stats["delivered"] > 0
        assert len(view.nodes) == 4


# -- backpressure and hostile consumers ---------------------------------------


def _drain_socket(sock, timeout=2.0):
    sock.settimeout(timeout)
    chunks = []
    try:
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    except socket.timeout:
        pass
    return b"".join(chunks)


class TestSocketTransport:
    def test_slow_consumer_drops_are_counted_not_blocking(self):
        transport = SocketServerTransport(max_pending=1024)
        client = socket.create_connection(("127.0.0.1", transport.port))
        try:
            assert transport.poll()          # accepted -> resync request
            # Shrink the kernel-side send buffer so an unread consumer
            # exerts real backpressure instead of vanishing into the
            # default socket buffers.
            for attached in transport._clients:
                attached.sock.setsockopt(socket.SOL_SOCKET,
                                         socket.SO_SNDBUF, 2048)
            node = _blink_node()
            exporter = TelemetryExporter.for_node(node, transport,
                                                  interval=0.002)
            exporter.start(horizon=0.25)
            node.run(until=0.25)            # client never reads a byte
            exporter.close()
            assert node.kernel.now >= 0.25  # the run completed regardless
            assert transport.dropped > 0    # and the cost was counted
            assert exporter.seq > transport.sent - transport.dropped
        finally:
            client.close()

    def test_garbage_writing_consumer_cannot_stall_the_sim(self):
        transport = SocketServerTransport()
        client = socket.create_connection(("127.0.0.1", transport.port))
        try:
            client.sendall(b"GET / HTTP/1.1\r\nHost: nonsense\r\n\r\n")
            node = _blink_node()
            exporter = TelemetryExporter.for_node(node, transport,
                                                  interval=0.01)
            exporter.start(horizon=0.1)
            node.run(until=0.05)
            client.sendall(b"\x00\xff" * 512)   # mid-run garbage too
            node.run(until=0.1)
            exporter.close()
            assert node.kernel.now >= 0.1
        finally:
            client.close()

    def test_abandoned_consumer_is_reaped(self):
        transport = SocketServerTransport()
        client = socket.create_connection(("127.0.0.1", transport.port))
        node = _blink_node()
        exporter = TelemetryExporter.for_node(node, transport,
                                              interval=0.01)
        exporter.start(horizon=0.1)
        node.run(until=0.03)
        assert transport.clients == 1
        client.close()                       # consumer walks away
        node.run(until=0.1)
        exporter.close()
        assert transport.clients == 0
        assert node.kernel.now >= 0.1

    def test_late_joiner_gets_preamble_resync(self):
        transport = SocketServerTransport()
        node = _blink_node()
        exporter = TelemetryExporter.for_node(node, transport,
                                              interval=0.01)
        exporter.start(horizon=0.1)
        node.run(until=0.05)                 # stream well underway
        client = socket.create_connection(("127.0.0.1", transport.port))
        try:
            node.run(until=0.1)
            exporter.close()
            lines = _drain_socket(client).decode().splitlines()
            records = [json.loads(line) for line in lines]
            # First thing a late joiner sees: hello, then a full
            # metrics snapshot -- a base for delta decoding.
            assert records[0]["type"] == "hello"
            assert records[0]["schema"] == SCHEMA
            metrics = next(r for r in records if r["type"] == "metrics")
            assert metrics["full"] is True
            view = TelemetryView()
            for record in records:
                view.apply(record)
            assert view.ready
            assert "node0.cpu.instructions" in view.metrics \
                or any("instructions" in name for name in view.metrics)
        finally:
            client.close()


# -- blackbox integration -----------------------------------------------------


class TestCrashBundleTail:
    def test_bundle_embeds_telemetry_tail(self):
        box = Blackbox(bundle_dir=None)
        node = _blink_node()
        box.observe(node)
        exporter = TelemetryExporter.for_node(
            node, NullTransport(), obs=box.obs, interval=0.01,
            watchdog=box.watchdog)
        exporter.start(horizon=0.05)
        node.run(until=0.05)
        bundle = box.capture(reason="manual")
        exporter.close()
        tail = bundle["telemetry"]
        assert tail["schema"] == SCHEMA
        assert tail["records"], "tail must hold the recent records"
        assert tail["records"][0]["seq"] >= 0
        assert {"records_sent", "transport_dropped",
                "buffer_dropped"} <= set(tail)

    def test_bundle_without_telemetry_is_unchanged(self):
        box = Blackbox(bundle_dir=None)
        node = _blink_node()
        box.observe(node)
        node.run(until=0.02)
        bundle = box.capture(reason="manual")
        assert "telemetry" not in bundle


# -- CLI wiring ---------------------------------------------------------------


class TestSnapRunTelemetry:
    def _write_blink(self, tmp_path):
        path = tmp_path / "blink.s"
        path.write_text(BLINK)
        return str(path)

    def test_telemetry_and_progress_smoke(self, tmp_path, capsys):
        stream = tmp_path / "run.ndjson"
        code = snap_run.main([
            self._write_blink(tmp_path), "--until", "0.05",
            "--telemetry", str(stream),
            "--telemetry-interval", "0.01", "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        assert "snap-run:" in captured.err       # heartbeat lines
        assert "sim " in captured.err and "ev/s" in captured.err
        view, records = read_stream(str(stream))
        assert records[0]["type"] == "hello"
        assert records[-1]["type"] == "bye"
        assert view.ready

    def test_progress_only_uses_null_transport(self, tmp_path, capsys):
        code = snap_run.main([
            self._write_blink(tmp_path), "--until", "0.03", "--progress"])
        captured = capsys.readouterr()
        assert code == 0
        assert "snap-run:" in captured.err

    def test_checkpointing_with_telemetry_armed(self, tmp_path):
        # The exporter's kernel tick is a host-side callback: capture
        # must skip it, not crash on it.
        stream = tmp_path / "run.ndjson"
        ckpt = tmp_path / "run.ckpt.json"
        code = snap_run.main([
            self._write_blink(tmp_path), "--until", "0.04",
            "--checkpoint-every", "0.02",
            "--checkpoint-path", str(ckpt),
            "--telemetry", str(stream)])
        assert code == 0
        assert ckpt.exists() and stream.exists()


class TestSnapTop:
    def test_once_renders_recorded_stream(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        path.write_text(stream_blink())
        out = io.StringIO()
        code = snap_top.main(["--file", str(path), "--once"], stdout=out)
        frame = out.getvalue()
        assert code == 0
        assert "snap-top" in frame and SCHEMA in frame
        assert "node0" in frame
        assert "hottest handlers" in frame

    def test_once_over_live_socket(self):
        transport = SocketServerTransport()
        node = _blink_node()
        exporter = TelemetryExporter.for_node(node, transport,
                                              interval=0.01)
        exporter.start(horizon=0.1)
        node.run(until=0.06)
        out = io.StringIO()
        # The dashboard connects mid-run; pump a few more flushes so the
        # resync and a full batch land, then close the stream.
        import threading

        result = {}

        def attach():
            result["code"] = snap_top.main(
                ["--connect", "127.0.0.1:%d" % transport.port, "--once",
                 "--retry", "5"], stdout=out)

        thread = threading.Thread(target=attach)
        thread.start()
        deadline = node.kernel.now + 0.5
        while thread.is_alive() and node.kernel.now < deadline:
            node.run(until=node.kernel.now + 0.01)
        exporter.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert result["code"] == 0
        assert "node0" in out.getvalue()

    def test_stdin_pipe(self):
        out = io.StringIO()
        code = snap_top.main(["--once"], stdout=out,
                             stdin=io.StringIO(stream_blink()))
        assert code == 0
        assert "node0" in out.getvalue()


# -- trajectory ---------------------------------------------------------------


class TestTrajectory:
    def _seed_runs(self, tmp_path):
        for label, deliveries, wall in (("run-a", 288, 30.5),
                                        ("run-b", 291, 28.1)):
            directory = tmp_path / label
            directory.mkdir()
            (directory / "BENCH_network_lifetime.json").write_text(
                json.dumps({"benchmark": "network_lifetime",
                            "results": {"sink_deliveries": deliveries},
                            "host": {"wall_time_s": wall}}))
        (tmp_path / "run-b" / "BENCH_FIDELITY.json").write_text(
            json.dumps({"schema": 1, "gate": {"ok": True, "failures": []},
                        "summary": {"match": 9, "within_band": 5},
                        "claims": []}))
        return [str(tmp_path / "run-a"), str(tmp_path / "run-b")]

    def test_trajectory_payload_and_table(self, tmp_path):
        from repro.report.trajectory import (
            SCHEMA as TRAJECTORY_SCHEMA,
            format_trajectory,
            trajectory,
        )

        payload = trajectory(self._seed_runs(tmp_path)
                             + [str(tmp_path / "missing")])
        assert payload["schema"] == TRAJECTORY_SCHEMA
        assert [run["label"] for run in payload["runs"]] \
            == ["run-a", "run-b"]
        assert payload["skipped"] == [str(tmp_path / "missing")]
        run_a, run_b = payload["runs"]
        assert run_a["metrics"]["network_lifetime.sink_deliveries"] == 288
        assert run_b["metrics"]["fidelity.gate_ok"] == 1
        table = format_trajectory(payload)
        assert "network_lifetime.sink_deliveries" in table
        assert "run-a" in table and "run-b" in table
        assert "+1.0%" in table            # 288 -> 291

    def test_snap_report_trajectory_mode(self, tmp_path, capsys):
        from repro.tools import snap_report

        directories = self._seed_runs(tmp_path)
        out_json = tmp_path / "trajectory.json"
        code = snap_report.main(["--trajectory"] + directories
                                + ["--trajectory-json", str(out_json)])
        captured = capsys.readouterr()
        assert code == 0
        assert "Benchmark trajectory over 2 runs" in captured.out
        payload = json.loads(out_json.read_text())
        assert payload["schema"] == "repro.report.trajectory/1"
        assert len(payload["runs"]) == 2

    def test_snap_report_trajectory_empty(self, tmp_path, capsys):
        # An empty feed is a normal state (fresh checkout, no results
        # yet), not a usage error: exit 0 with a clear explanation.
        from repro.tools import snap_report

        code = snap_report.main(["--trajectory", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "no BENCH_*.json runs found" in captured.err
        assert "(no benchmark results found)" in captured.out


def regen():
    records = [json.loads(line) for line in stream_blink().splitlines()]
    with open(GOLDEN_STREAM, "w") as handle:
        json.dump(stable_projection(records), handle, indent=1)
        handle.write("\n")
    print("wrote %s (%d records)" % (GOLDEN_STREAM, len(records)))


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        regen()
    else:
        print(__doc__)
