"""In-network aggregation tests: query flooding, depth-staggered windows,
and correct MAX/SUM aggregation over multi-hop chains."""

import pytest

from repro.netstack.aggregation import (
    AGG_DONE,
    AGG_NEXT_OP,
    AGG_OP_MAX,
    AGG_OP_SUM,
    AGG_REPLIES,
    AGG_RESULT,
    AGG_RESULT_COUNT,
    AGG_VALUE,
    build_aggregation_node,
)
from repro.network import NetworkSimulator


def build_chain(values, comm_range=1.5):
    """Nodes 1..N on a line with the given readings; node 1 is the sink."""
    net = NetworkSimulator(comm_range=comm_range)
    nodes = {}
    for index, (node_id, value) in enumerate(values.items()):
        nodes[node_id] = net.add_node(
            node_id, program=build_aggregation_node(node_id),
            position=(float(index), 0.0))
    net.run(until=0.05)
    for node_id, value in values.items():
        nodes[node_id].processor.dmem.poke(AGG_VALUE, value)
    return net, nodes


def run_query(net, nodes, sink=1, op=AGG_OP_MAX, settle=0.5):
    nodes[sink].processor.dmem.poke(AGG_NEXT_OP, op)
    nodes[sink].processor.raise_soft_event()
    net.run(until=net.kernel.now + settle)
    dmem = nodes[sink].processor.dmem
    return dmem.peek(AGG_RESULT), dmem.peek(AGG_RESULT_COUNT)


class TestAggregation:
    def test_max_over_three_hops(self):
        values = {1: 100, 2: 500, 3: 250, 4: 900}
        net, nodes = build_chain(values)
        result, count = run_query(net, nodes, op=AGG_OP_MAX)
        assert result == 900
        assert count == 4
        assert net.channel.collisions == 0

    def test_max_when_sink_holds_it(self):
        values = {1: 999, 2: 5, 3: 7, 4: 3}
        net, nodes = build_chain(values)
        result, count = run_query(net, nodes, op=AGG_OP_MAX)
        assert result == 999
        assert count == 4

    def test_sum_for_average(self):
        values = {1: 100, 2: 500, 3: 250, 4: 900}
        net, nodes = build_chain(values)
        result, count = run_query(net, nodes, op=AGG_OP_SUM)
        assert result == sum(values.values())
        assert count == 4
        assert result // count == sum(values.values()) // 4

    def test_consecutive_queries(self):
        values = {1: 10, 2: 20, 3: 30, 4: 40}
        net, nodes = build_chain(values)
        result, count = run_query(net, nodes, op=AGG_OP_MAX)
        assert (result, count) == (40, 4)
        # Readings change between queries.
        nodes[3].processor.dmem.poke(AGG_VALUE, 70)
        result, count = run_query(net, nodes, op=AGG_OP_MAX)
        assert (result, count) == (70, 4)
        assert nodes[1].processor.dmem.peek(AGG_DONE) == 2

    def test_relays_actually_aggregate(self):
        """Intermediate nodes merge their children's replies -- the data
        reduction happens *in the network*, not at the sink."""
        values = {1: 1, 2: 2, 3: 3, 4: 4}
        net, nodes = build_chain(values)
        run_query(net, nodes, op=AGG_OP_SUM)
        # Node 2 merged node 3's aggregate; node 3 merged node 4's.
        assert nodes[2].processor.dmem.peek(AGG_REPLIES) == 1
        assert nodes[3].processor.dmem.peek(AGG_REPLIES) == 1
        # The sink received ONE reply covering three nodes, not three.
        assert nodes[1].processor.dmem.peek(AGG_REPLIES) == 1

    def test_single_hop_star(self):
        """Full connectivity: every node answers the sink directly."""
        values = {1: 5, 2: 10, 3: 15}
        net, nodes = build_chain(values, comm_range=None)
        result, count = run_query(net, nodes, op=AGG_OP_SUM)
        assert result == 30
        assert count == 3

    def test_two_node_network(self):
        values = {1: 3, 2: 11}
        net, nodes = build_chain(values)
        result, count = run_query(net, nodes, op=AGG_OP_MAX)
        assert (result, count) == (11, 2)
