"""Kernel, memory, event queue, LFSR, and register-file tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    EventQueue,
    EventQueueOverflow,
    Kernel,
    Lfsr16,
    MemoryBank,
    MemoryFault,
    RegisterFile,
)
from repro.core.event_queue import POLICY_FAULT
from repro.isa.events import Event


class TestKernel:
    def test_events_run_in_time_order(self):
        kernel = Kernel()
        order = []
        kernel.schedule(2.0, order.append, "b")
        kernel.schedule(1.0, order.append, "a")
        kernel.schedule(3.0, order.append, "c")
        kernel.run()
        assert order == ["a", "b", "c"]
        assert kernel.now == 3.0

    def test_equal_times_run_in_schedule_order(self):
        kernel = Kernel()
        order = []
        for tag in range(5):
            kernel.schedule(1.0, order.append, tag)
        kernel.run()
        assert order == [0, 1, 2, 3, 4]

    def test_until_limits_time(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(1.0, fired.append, 1)
        kernel.schedule(5.0, fired.append, 2)
        kernel.run(until=2.0)
        assert fired == [1]
        assert kernel.now == 2.0
        kernel.run()
        assert fired == [1, 2]

    def test_cancel(self):
        kernel = Kernel()
        fired = []
        handle = kernel.schedule(1.0, fired.append, "x")
        kernel.cancel(handle)
        kernel.run()
        assert fired == []
        assert kernel.pending == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Kernel().schedule(-1.0, lambda: None)

    def test_schedule_during_run(self):
        kernel = Kernel()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                kernel.schedule(1.0, chain, n + 1)

        kernel.schedule(0.0, chain, 0)
        kernel.run()
        assert seen == [0, 1, 2, 3]

    def test_max_events(self):
        kernel = Kernel()
        for _ in range(10):
            kernel.schedule(1.0, lambda: None)
        assert kernel.run(max_events=4) == 4

    def test_until_landing_exactly_on_an_event_runs_it(self):
        """``run(until=t)`` with an event at exactly ``t`` executes the
        event and leaves the clock at ``t`` -- not one float ulp shy of
        it -- so a checkpoint boundary placed on an event time never
        splits that event between two runs."""
        kernel = Kernel()
        fired = []
        kernel.schedule(1.0, fired.append, "edge")
        kernel.schedule(1.0 + 2 ** -40, fired.append, "after")
        assert kernel.run(until=1.0) == 1
        assert fired == ["edge"]
        assert kernel.now == 1.0
        kernel.run()
        assert fired == ["edge", "after"]

    def test_cancel_then_reschedule_keeps_handle_order(self):
        """A callback cancelled and rescheduled at the same time runs in
        its *new* handle position; the dead handle stays dead."""
        kernel = Kernel()
        order = []
        first = kernel.schedule(1.0, order.append, "stale")
        kernel.schedule(1.0, order.append, "kept")
        kernel.cancel(first)
        kernel.schedule(1.0, order.append, "rearmed")
        kernel.cancel(first)  # idempotent on an already-dead handle
        kernel.run()
        assert order == ["kept", "rearmed"]
        assert kernel.pending == 0

    def test_mass_cancellation_leaves_heap_live(self):
        """Cancelling many entries must not strand the survivors behind
        dead heap nodes: pending, next_time, and execution all reflect
        only the live entries."""
        kernel = Kernel()
        fired = []
        handles = [kernel.schedule(1.0 + index * 0.1, fired.append, index)
                   for index in range(100)]
        for handle in handles[:99]:
            kernel.cancel(handle)
        assert kernel.pending == 1
        assert kernel.next_time() == pytest.approx(1.0 + 99 * 0.1)
        assert kernel.run() == 1
        assert fired == [99]
        assert kernel._queue == [] and kernel._live == {}

    def test_cancel_after_fire_does_not_leak(self):
        """Cancelling a handle that already fired must not retain state.

        Regression: cancelled handles used to be remembered in a set
        forever when the cancel arrived after the event had fired, which
        leaked memory across long timer-heavy runs.
        """
        kernel = Kernel()
        fired = []
        handle = kernel.schedule(1.0, fired.append, "x")
        kernel.run()
        assert fired == ["x"]
        kernel.cancel(handle)
        assert kernel._live == {}
        assert kernel.pending == 0

    def test_double_cancel_is_idempotent(self):
        kernel = Kernel()
        fired = []
        handle = kernel.schedule(1.0, fired.append, "x")
        kernel.cancel(handle)
        kernel.cancel(handle)
        kernel.run()
        assert fired == []
        assert kernel._live == {}

    def test_pending_excludes_cancelled(self):
        kernel = Kernel()
        handles = [kernel.schedule(1.0, lambda: None) for _ in range(3)]
        assert kernel.pending == 3
        kernel.cancel(handles[1])
        assert kernel.pending == 2
        kernel.run()
        assert kernel.pending == 0

    def test_run_until_advances_clock_when_queue_drains_early(self):
        """run(until=T) must leave now == T even if the queue drained
        before T -- back-to-back bounded runs see a consistent timeline."""
        kernel = Kernel()
        kernel.schedule(1.0, lambda: None)
        kernel.run(until=5.0)
        assert kernel.now == 5.0

    def test_run_until_with_empty_queue_advances_clock(self):
        kernel = Kernel()
        kernel.run(until=2.0)
        assert kernel.now == 2.0
        kernel.run(until=4.0)
        assert kernel.now == 4.0

    def test_event_exactly_at_until_runs(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(2.0, fired.append, 1)
        kernel.run(until=2.0)
        assert fired == [1]
        assert kernel.now == 2.0

    def test_max_events_cut_short_does_not_jump_to_until(self):
        """A run stopped by max_events stays at the last event executed;
        only a run that exhausted its runnable events advances to until."""
        kernel = Kernel()
        kernel.schedule(1.0, lambda: None)
        kernel.schedule(2.0, lambda: None)
        kernel.run(until=5.0, max_events=1)
        assert kernel.now == 1.0
        kernel.run(until=5.0)
        assert kernel.now == 5.0

    def test_advance_rejects_backwards_time(self):
        kernel = Kernel()
        kernel.advance(1.0)
        assert kernel.now == 1.0
        with pytest.raises(ValueError):
            kernel.advance(0.5)


class TestMemoryBank:
    def test_read_write(self):
        bank = MemoryBank(16)
        bank.write(3, 0x1234)
        assert bank.read(3) == 0x1234
        assert (bank.reads, bank.writes) == (1, 1)

    def test_values_masked_to_16_bits(self):
        bank = MemoryBank(4)
        bank.write(0, 0x1FFFF)
        assert bank.read(0) == 0xFFFF

    @pytest.mark.parametrize("address", [-1, 16, 1000])
    def test_out_of_range_faults(self, address):
        bank = MemoryBank(16)
        with pytest.raises(MemoryFault):
            bank.read(address)
        with pytest.raises(MemoryFault):
            bank.write(address, 0)

    def test_load_image(self):
        bank = MemoryBank(8)
        bank.load_image([1, 2, 3], base=2)
        assert bank.dump(2, 3) == [1, 2, 3]

    def test_load_image_overflow(self):
        with pytest.raises(MemoryFault):
            MemoryBank(4).load_image([0] * 5)

    def test_peek_poke_skip_counters(self):
        bank = MemoryBank(4)
        bank.poke(0, 9)
        assert bank.peek(0) == 9
        assert (bank.reads, bank.writes) == (0, 0)


class TestEventQueue:
    def test_fifo_order(self):
        queue = EventQueue(capacity=4)
        queue.insert(Event.TIMER1)
        queue.insert(Event.RADIO_RX)
        assert queue.pop().event == Event.TIMER1
        assert queue.pop().event == Event.RADIO_RX
        assert queue.pop() is None

    def test_drop_policy_counts(self):
        queue = EventQueue(capacity=2)
        assert queue.insert(Event.TIMER0)
        assert queue.insert(Event.TIMER1)
        assert not queue.insert(Event.TIMER2)
        assert queue.dropped == 1
        assert len(queue) == 2

    def test_fault_policy(self):
        queue = EventQueue(capacity=1, policy=POLICY_FAULT)
        queue.insert(Event.TIMER0)
        with pytest.raises(EventQueueOverflow):
            queue.insert(Event.TIMER1)

    def test_observer_called_on_insert_only(self):
        queue = EventQueue(capacity=1)
        seen = []
        queue.on_insert.append(lambda token: seen.append(token.event))
        queue.insert(Event.SOFT)
        queue.insert(Event.SOFT)  # dropped
        assert seen == [Event.SOFT]

    def test_raised_at_recorded(self):
        queue = EventQueue()
        queue.insert(Event.TIMER0, raised_at=1.5)
        assert queue.peek().raised_at == 1.5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            EventQueue(capacity=0)


class TestLfsr:
    def test_full_period(self):
        """Maximal-length 16-bit LFSR: period 2**16 - 1."""
        lfsr = Lfsr16(seed=1)
        seen = set()
        state = lfsr.state
        for _ in range(2 ** 16 - 1):
            state = lfsr.next()
            assert state not in seen
            seen.add(state)
        assert lfsr.state == 1  # back to the seed
        assert 0 not in seen

    def test_zero_seed_mapped_to_default(self):
        lfsr = Lfsr16(seed=0)
        assert lfsr.state != 0
        lfsr.next()
        assert lfsr.state != 0

    @given(seed=st.integers(1, 0xFFFF))
    def test_deterministic_for_seed(self, seed):
        a, b = Lfsr16(seed), Lfsr16(seed)
        assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]


class TestRegisterFile:
    def test_fifteen_physical_registers(self):
        regs = RegisterFile()
        assert len(regs.snapshot()) == 15

    def test_r15_access_is_a_bug(self):
        regs = RegisterFile()
        with pytest.raises(AssertionError):
            regs.read(15)
        with pytest.raises(AssertionError):
            regs.write(15, 0)

    def test_masking(self):
        regs = RegisterFile()
        regs.write(0, -1)
        assert regs.read(0) == 0xFFFF
