"""Energy-model tests against the paper's published aggregates."""

import pytest

from repro.energy import EnergyMeter, EnergyModel, voltage_scale
from repro.isa.opcodes import InstrClass, Opcode, spec_for


def _epi_pj(voltage, opcode):
    model = EnergyModel(voltage=voltage)
    return model.instruction_energy(spec_for(opcode)).total * 1e12


class TestVoltageScale:
    def test_published_ratios(self):
        """Table 1: ~218 -> ~55 -> ~24 pJ/ins tracks (V/1.8)^2."""
        assert voltage_scale(1.8) == pytest.approx(1.0)
        assert voltage_scale(0.9) == pytest.approx(0.25)
        assert voltage_scale(0.6) == pytest.approx(1 / 9, rel=1e-6)

    def test_invalid_voltage(self):
        with pytest.raises(ValueError):
            voltage_scale(0.0)


class TestEnergyTiers:
    """Section 4.4: three distinct tiers -- one-word register ops,
    two-word immediate ops, and memory ops."""

    def test_tier_ordering(self):
        arith_reg = _epi_pj(1.8, Opcode.ADD)
        arith_imm = _epi_pj(1.8, Opcode.ADDI)
        load = _epi_pj(1.8, Opcode.LD)
        assert arith_reg < arith_imm < load

    def test_under_300pj_at_nominal(self):
        """'the SNAP/LE core consumes under 300pJ per instruction'.

        Figure 4 covers 'the more commonly executed instructions'; the
        rare slow-bus IMEM load/store (triple memory-array traffic) may
        exceed the figure slightly, so it is checked at a looser bound.
        """
        for opcode in Opcode:
            spec = spec_for(opcode)
            limit = 320 if spec.instr_class in (InstrClass.IMEM_LOAD,
                                                InstrClass.IMEM_STORE) else 300
            assert _epi_pj(1.8, opcode) < limit

    def test_many_types_under_25pj_at_low_voltage(self):
        """'many instruction types using less than 25pJ/ins' at 0.6V."""
        cheap = [op for op in Opcode if _epi_pj(0.6, op) < 25]
        assert len(cheap) >= len(list(Opcode)) // 2

    def test_all_under_75pj_at_low_voltage(self):
        """'less than 75pJ/ins' at 0.6V."""
        for opcode in Opcode:
            assert _epi_pj(0.6, opcode) < 75

    def test_memory_about_half_of_load_energy(self):
        """Section 4.4: about half the per-instruction energy is memory."""
        model = EnergyModel(voltage=1.8)
        breakdown = model.instruction_energy(spec_for(Opcode.LD))
        fraction = breakdown.memory / breakdown.total
        assert 0.45 <= fraction <= 0.75

    def test_shift_is_in_cheapest_tier(self):
        assert _epi_pj(1.8, Opcode.SLL) == pytest.approx(
            _epi_pj(1.8, Opcode.ADD), rel=0.15)


class TestBreakdown:
    def test_components_sum_to_total(self):
        model = EnergyModel(voltage=0.9)
        for opcode in (Opcode.ADD, Opcode.LD, Opcode.RAND, Opcode.JMP):
            b = model.instruction_energy(spec_for(opcode))
            assert b.total == pytest.approx(b.memory + b.core)
            assert b.core == pytest.approx(
                b.fetch + b.decode + b.datapath + b.mem_if + b.misc)

    def test_slow_bus_units_pay_bus_energy(self):
        model = EnergyModel(voltage=1.8)
        ld = model.instruction_energy(spec_for(Opcode.LD))
        ldi = model.instruction_energy(spec_for(Opcode.LDI))
        assert ldi.datapath > ld.datapath


class TestMeter:
    def test_record_and_aggregate(self):
        model = EnergyModel(voltage=1.8)
        meter = EnergyMeter()
        for opcode in (Opcode.ADD, Opcode.ADD, Opcode.LD):
            spec = spec_for(opcode)
            meter.record_instruction(spec, model.instruction_energy(spec),
                                     1e-8, handler_tag="h")
        assert meter.instructions == 3
        assert meter.cycles == 4  # add, add, ld(2 words)
        assert meter.by_class[InstrClass.ARITH_REG].count == 2
        assert meter.by_handler["h"].instructions == 3
        assert meter.total_energy > 0

    def test_core_fractions_sum_to_one(self):
        model = EnergyModel(voltage=1.8)
        meter = EnergyMeter()
        spec = spec_for(Opcode.ADD)
        meter.record_instruction(spec, model.instruction_energy(spec), 1e-8)
        assert sum(meter.core_fractions().values()) == pytest.approx(1.0)

    def test_idle_energy_zero_without_leakage(self):
        """QDI: no switching while asleep -> no dynamic idle energy."""
        model = EnergyModel(voltage=0.6)
        assert model.idle_energy(100.0) == 0.0

    def test_leakage_when_configured(self):
        model = EnergyModel(voltage=0.6, leakage_power=1e-9)
        assert model.idle_energy(10.0) == pytest.approx(1e-8)

    def test_reset(self):
        meter = EnergyMeter()
        meter.record_wakeup(1e-12)
        meter.reset()
        assert meter.total_energy == 0.0
        assert meter.wakeups == 0

    def test_average_mips(self):
        model = EnergyModel(voltage=1.8)
        meter = EnergyMeter()
        spec = spec_for(Opcode.ADD)
        meter.record_instruction(spec, model.instruction_energy(spec), 1e-6)
        assert meter.average_mips() == pytest.approx(1.0)
