"""The observability overhead budget.

Two guarantees the scorecard's collectors rely on:

* **bit-identical results** -- attaching an (inert) ``Observability``
  must not change what the simulator computes, and a run with hooks
  disabled must reproduce the committed golden digest exactly;
* **bounded wall-time cost** -- metrics-only observability (no trace
  sinks attached) stays within a fixed factor of a hookless run, so
  leaving the hooks wired through the benchmark suite is affordable.
"""

import json
import os
import time

from repro.asm import build
from repro.core import CoreConfig, SnapProcessor
from repro.obs import Observability
from repro.sensors.ports import LedPort

GOLDEN = os.path.join(os.path.dirname(__file__), "goldens",
                      "obs_budget_digest.json")

#: Inert observability (metrics only, no sinks) may cost at most this
#: factor over a hookless run; measured ~1.5x, the margin absorbs CI
#: noise without letting a quadratic regression slip through.
BUDGET_FACTOR = 5.0

BLINK = """
boot:
    movi r1, 0
    movi r2, handler
    setaddr r1, r2
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
handler:
    ld r3, 0(r0)
    xori r3, 1
    st r3, 0(r0)
    movi r4, 0x4000
    or r4, r3
    mov r15, r4
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
"""


def _run(obs=None, until=0.02):
    processor = SnapProcessor(config=CoreConfig(voltage=0.6))
    processor.mcp.attach_port(0, LedPort())
    processor.load(build(BLINK))
    if obs is not None:
        processor.attach_observability(obs)
    processor.run(until=until)
    return processor


def _digest(processor):
    meter = processor.meter
    return {"instructions": meter.instructions,
            "wakeups": meter.wakeups,
            "energy_pj": round(meter.total_energy * 1e12, 6),
            "dmem0": processor.dmem.peek(0),
            "sim_time_s": processor.kernel.now}


def _best_of(n, factory):
    times = []
    for _ in range(n):
        started = time.perf_counter()
        _run(obs=factory())
        times.append(time.perf_counter() - started)
    return min(times)


class TestBitIdentical:
    def test_hookless_run_matches_golden_digest(self):
        digest = _digest(_run(obs=None))
        with open(GOLDEN) as handle:
            assert digest == json.load(handle)

    def test_attached_observability_changes_nothing(self):
        plain = _digest(_run(obs=None))
        observed = _digest(_run(obs=Observability()))
        profiled = _digest(_run(obs=Observability(profile=True)))
        assert observed == plain
        assert profiled == plain


class TestWallTimeBudget:
    def test_inert_observability_within_budget(self):
        # Best-of-3 on both sides to shed scheduler noise.
        plain = _best_of(3, lambda: None)
        inert = _best_of(3, lambda: Observability())
        assert inert <= plain * BUDGET_FACTOR, (
            "inert observability cost %.1fx (budget %.1fx): %.4fs vs %.4fs"
            % (inert / plain, BUDGET_FACTOR, inert, plain))

    def test_blackbox_within_budget(self):
        from repro.obs import Blackbox

        def boxed():
            box = Blackbox(bundle_dir=None)
            return box.obs

        plain = _best_of(3, lambda: None)
        black = _best_of(3, boxed)
        assert black <= plain * BUDGET_FACTOR, (
            "blackbox recording cost %.1fx (budget %.1fx): %.4fs vs %.4fs"
            % (black / plain, BUDGET_FACTOR, black, plain))


class TestBlackboxBitIdentical:
    """The flight recorder + watchdog must be pure observers: enabling
    them leaves the meter digests of the paper's scenarios bit-identical
    (the full-precision digest, not the rounded one above)."""

    def test_fig5_blink_digest_identical(self):
        from repro.bench.simspeed import meter_digest
        from repro.netstack import build_blink_app
        from repro.node.node import SensorNode
        from repro.obs import Blackbox

        def blink(box):
            node = SensorNode(node_id=0)
            node.load(build_blink_app(period_ticks=1000))
            if box is not None:
                box.observe(node)
            node.run(until=0.25)
            return meter_digest(node.processor)

        plain = blink(None)
        boxed = blink(Blackbox(bundle_dir=None))
        assert boxed == plain

    def test_convergecast_digest_identical(self):
        from repro.network.experiments import convergecast
        from repro.obs import Blackbox

        plain = convergecast(duration_s=0.5)
        box = Blackbox(bundle_dir=None)
        boxed = convergecast(duration_s=0.5, obs=box)
        assert box.watchdog.checks_run > 0, "watchdog never ran"
        for node_id, report in plain.nodes.items():
            other = boxed.nodes[node_id]
            assert other.instructions == report.instructions
            assert other.energy_j == report.energy_j
        assert boxed.sink_deliveries == plain.sink_deliveries


class TestFlightRecorderBudget:
    """Property test: the recorder's rings never exceed their entry or
    byte budgets, no matter how much traffic is pushed through them."""

    def test_ring_budget_under_random_traffic(self):
        from hypothesis import given, settings, strategies as st

        from repro.obs.blackbox import FlightRecorder

        @settings(max_examples=50, deadline=None)
        @given(st.lists(
            st.tuples(st.integers(0, 3),          # node index
                      st.integers(0, 2047),       # pc
                      st.booleans()),              # instruction vs event
            min_size=0, max_size=600),
            st.integers(1, 32), st.integers(1, 32))
        def run(feed, instruction_limit, event_limit):
            recorder = FlightRecorder(instruction_limit=instruction_limit,
                                      event_limit=event_limit)
            instruction = _decoded_instruction()
            for node_index, pc, is_instruction in feed:
                node = "node%d" % node_index
                if is_instruction:
                    recorder.record_instruction(node, 0.0, pc, instruction,
                                                "boot", 1e-12)
                else:
                    recorder.record_event("eq.insert", node, 0.0, pc)
            nodes = max(1, len(recorder.nodes))
            assert recorder.entry_count() <= recorder.max_entries(nodes)
            for node in recorder.nodes:
                assert len(recorder.instruction_tail(node)) \
                    <= instruction_limit
            assert len(recorder.event_tail()) <= event_limit
            # Byte budget: a bounded per-entry footprint times the entry
            # ceiling (entries are flat tuples of scalars).
            assert recorder.approx_size_bytes() \
                <= 200 * recorder.max_entries(nodes)
            snapshot = recorder.snapshot()
            total = (sum(len(tail)
                         for tail in snapshot["instructions"].values())
                     + len(snapshot["events"]))
            assert total == recorder.entry_count()

        run()

    def test_long_run_stays_bounded(self):
        from repro.netstack import build_blink_app
        from repro.node.node import SensorNode
        from repro.obs import Blackbox

        box = Blackbox(bundle_dir=None)
        node = SensorNode(node_id=0)
        node.load(build_blink_app(period_ticks=1000))
        box.observe(node)
        node.run(until=1.0)
        recorder = box.recorder
        assert node.meter.instructions > recorder.instruction_limit
        assert recorder.entry_count() <= recorder.max_entries()


def _decoded_instruction():
    """One real decoded instruction for feeding the recorder directly."""
    from repro.isa.encoding import decode
    from repro.asm import assemble
    module = assemble("boot:\n    movi r1, 5\n", name="t")
    instruction, _ = decode(module.text)
    return instruction
