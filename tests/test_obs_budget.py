"""The observability overhead budget.

Two guarantees the scorecard's collectors rely on:

* **bit-identical results** -- attaching an (inert) ``Observability``
  must not change what the simulator computes, and a run with hooks
  disabled must reproduce the committed golden digest exactly;
* **bounded wall-time cost** -- metrics-only observability (no trace
  sinks attached) stays within a fixed factor of a hookless run, so
  leaving the hooks wired through the benchmark suite is affordable.
"""

import json
import os
import time

from repro.asm import build
from repro.core import CoreConfig, SnapProcessor
from repro.obs import Observability
from repro.sensors.ports import LedPort

GOLDEN = os.path.join(os.path.dirname(__file__), "goldens",
                      "obs_budget_digest.json")

#: Inert observability (metrics only, no sinks) may cost at most this
#: factor over a hookless run; measured ~1.5x, the margin absorbs CI
#: noise without letting a quadratic regression slip through.
BUDGET_FACTOR = 5.0

BLINK = """
boot:
    movi r1, 0
    movi r2, handler
    setaddr r1, r2
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
handler:
    ld r3, 0(r0)
    xori r3, 1
    st r3, 0(r0)
    movi r4, 0x4000
    or r4, r3
    mov r15, r4
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
"""


def _run(obs=None, until=0.02):
    processor = SnapProcessor(config=CoreConfig(voltage=0.6))
    processor.mcp.attach_port(0, LedPort())
    processor.load(build(BLINK))
    if obs is not None:
        processor.attach_observability(obs)
    processor.run(until=until)
    return processor


def _digest(processor):
    meter = processor.meter
    return {"instructions": meter.instructions,
            "wakeups": meter.wakeups,
            "energy_pj": round(meter.total_energy * 1e12, 6),
            "dmem0": processor.dmem.peek(0),
            "sim_time_s": processor.kernel.now}


def _best_of(n, factory):
    times = []
    for _ in range(n):
        started = time.perf_counter()
        _run(obs=factory())
        times.append(time.perf_counter() - started)
    return min(times)


class TestBitIdentical:
    def test_hookless_run_matches_golden_digest(self):
        digest = _digest(_run(obs=None))
        with open(GOLDEN) as handle:
            assert digest == json.load(handle)

    def test_attached_observability_changes_nothing(self):
        plain = _digest(_run(obs=None))
        observed = _digest(_run(obs=Observability()))
        profiled = _digest(_run(obs=Observability(profile=True)))
        assert observed == plain
        assert profiled == plain


class TestWallTimeBudget:
    def test_inert_observability_within_budget(self):
        # Best-of-3 on both sides to shed scheduler noise.
        plain = _best_of(3, lambda: None)
        inert = _best_of(3, lambda: Observability())
        assert inert <= plain * BUDGET_FACTOR, (
            "inert observability cost %.1fx (budget %.1fx): %.4fs vs %.4fs"
            % (inert / plain, BUDGET_FACTOR, inert, plain))
