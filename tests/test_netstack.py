"""End-to-end tests of the SNAP software stack running on the simulated
processor: MAC, AODV routing, applications, and TinyOS ports."""

import pytest

from repro.core import CoreConfig
from repro.isa.events import Event
from repro.netstack import (
    build_blink_app,
    build_radiostack_app,
    build_sense_app,
    build_temperature_app,
    checksum,
)
from repro.netstack import layout
from repro.netstack.apps import (
    THRESH_COUNT,
    THRESH_EXCEED,
    TEMP_AVG,
    TEMP_ITERATIONS,
    TEMP_MAX,
    TEMP_MIN,
)
from repro.netstack.drivers import build_aodv_node, build_rx_node, build_tx_node
from repro.netstack.tinyos_ports import RS_CRC
from repro.network import NetworkSimulator
from repro.node import SensorNode
from repro.radio import crc16_update, secded_encode
from repro.sensors import ConstantSensor, TemperatureSensor


def stage_packet(node, words):
    """Poke a packet body (no checksum) into the node's TX buffer."""
    for index, word in enumerate(words):
        node.processor.dmem.poke(layout.TX_BUF + index, word)


def tx_rx_pair(receiver_program, **net_kwargs):
    net = NetworkSimulator(**net_kwargs)
    sender = net.add_node(0, program=build_tx_node(0))
    receiver = net.add_node(2, program=receiver_program)
    net.run(until=0.001)  # both nodes boot and sleep
    return net, sender, receiver


def send(net, sender, packet):
    stage_packet(sender, packet[:-1])  # the MAC computes the checksum
    sender.processor.raise_soft_event()
    net.run(until=net.kernel.now + 0.5)


class TestPacketHelpers:
    def test_checksum(self):
        assert checksum([1, 2, 3]) == 6
        assert checksum([0xFFFF, 1]) == 0  # 16-bit wraparound

    def test_make_and_parse(self):
        packet = layout.make_packet(2, 1, layout.PKT_TYPE_DATA, 9, [5, 6])
        parsed = layout.parse_packet(packet)
        assert parsed["dst"] == 2
        assert parsed["payload"] == [5, 6]

    def test_parse_rejects_bad_checksum(self):
        packet = layout.make_packet(2, 1, layout.PKT_TYPE_DATA, 9, [5])
        packet[-1] ^= 1
        with pytest.raises(ValueError, match="checksum"):
            layout.parse_packet(packet)

    def test_payload_limit(self):
        with pytest.raises(ValueError):
            layout.make_packet(1, 0, 1, 0, [0] * 27)


class TestMac:
    def test_packet_round_trip(self):
        net, sender, receiver = tx_rx_pair(build_rx_node(2))
        packet = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 1,
                                    [9, 0x100, 0x180])
        send(net, sender, packet)
        dmem = receiver.processor.dmem
        assert dmem.peek(layout.RX_COUNT_ADDR) == 1
        assert dmem.peek(layout.RX_BAD_ADDR) == 0
        received = [dmem.peek(layout.RX_BUF + i) for i in range(len(packet))]
        assert received == packet

    def test_transmitted_checksum_matches_golden(self):
        net, sender, receiver = tx_rx_pair(build_rx_node(2))
        packet = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 5, [1, 2, 3])
        send(net, sender, packet)
        dmem = receiver.processor.dmem
        body_len = layout.PKT_HEADER_WORDS + 3
        assert dmem.peek(layout.RX_BUF + body_len) == checksum(packet[:-1])

    def test_corrupted_packet_dropped(self):
        """Failure injection: flip every word with some probability and
        confirm the checksum path counts bad packets."""
        net, sender, receiver = tx_rx_pair(build_rx_node(2))
        # Deliver a corrupted packet directly to the receiver's radio.
        packet = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 1, [7])
        packet[3] ^= 0x0040  # corrupt the seq word
        for word in packet:
            receiver.radio.deliver(word)
        net.run(until=net.kernel.now + 0.5)
        dmem = receiver.processor.dmem
        assert dmem.peek(layout.RX_BAD_ADDR) == 1
        assert dmem.peek(layout.RX_COUNT_ADDR) == 0

    def test_back_to_back_packets(self):
        net, sender, receiver = tx_rx_pair(build_rx_node(2))
        for seq in range(3):
            packet = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, seq, [seq])
            send(net, sender, packet)
        assert receiver.processor.dmem.peek(layout.RX_COUNT_ADDR) == 3

    def test_tx_handler_instruction_count_near_paper(self):
        """Table 1: Packet Transmission approximately 70 instructions."""
        net, sender, receiver = tx_rx_pair(build_rx_node(2))
        packet = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 1, [9, 1, 2])
        sender.meter.reset()
        send(net, sender, packet)
        handler = sender.meter.by_handler["SOFT"]
        assert 50 <= handler.instructions <= 100


class TestAodv:
    def test_route_reply(self):
        """An RREQ naming this node triggers an RREP (Table 1 row 3)."""
        net, sender, node = tx_rx_pair(build_aodv_node(2))
        rreq = layout.make_packet(2, 0, layout.PKT_TYPE_RREQ, 7, [2])
        send(net, sender, rreq)
        assert node.processor.dmem.peek(layout.RREP_COUNT_ADDR) == 1
        assert node.radio.words_sent > 0  # the reply left the node

    def test_rreq_for_other_node_ignored(self):
        net, sender, node = tx_rx_pair(build_aodv_node(2))
        rreq = layout.make_packet(2, 0, layout.PKT_TYPE_RREQ, 7, [9])
        send(net, sender, rreq)
        assert node.processor.dmem.peek(layout.RREP_COUNT_ADDR) == 0

    def test_forwarding_rewrites_header(self):
        net, sender, node = tx_rx_pair(build_aodv_node(2))
        # Install: destination 5 is reachable via next hop 9.
        node.processor.dmem.poke(layout.ROUTE_TABLE + 0, 5)
        node.processor.dmem.poke(layout.ROUTE_TABLE + 1, 9)
        node.processor.dmem.poke(layout.ROUTE_TABLE + 2, 1)
        # A passive sniffer records what the relay transmits.
        sniffer = net.add_node(99)
        sniffer.radio.set_receive(True)
        sniffed = []
        sniffer.radio.on_word_received = sniffed.append
        data = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 3, [5, 17, 34])
        send(net, sender, data)
        assert node.processor.dmem.peek(layout.FWD_COUNT_ADDR) == 1
        # The sniffer hears both the original and the forwarded packet.
        forwarded = sniffed[len(data):]
        assert forwarded[layout.PKT_DST] == 9   # next hop
        assert forwarded[layout.PKT_SRC] == 2   # relay
        parsed = layout.parse_packet(forwarded)
        assert parsed["payload"] == [5, 17, 34]

    def test_rrep_installs_route(self):
        net, sender, node = tx_rx_pair(build_aodv_node(2))
        rrep = layout.make_packet(2, 7, layout.PKT_TYPE_RREP, 1, [4, 2])
        send(net, sender, rrep)
        dmem = node.processor.dmem
        # Route: dest 4 via next hop 7 (the RREP's MAC sender).
        assert dmem.peek(layout.ROUTE_TABLE + 0) == 4
        assert dmem.peek(layout.ROUTE_TABLE + 1) == 7

    def test_three_hop_route_reply_chain(self):
        """Full RREQ -> RREP exchange over the air between two stacks."""
        net = NetworkSimulator()
        requester = net.add_node(1, program=build_aodv_node(1))
        responder = net.add_node(2, program=build_aodv_node(2))
        net.run(until=0.001)
        # Hand-inject an RREQ from node 1 looking for node 2: stage it in
        # node 1's TX buffer and transmit via the MAC's CSMA-free path.
        # (Node 1's boot has no SOFT handler, so drive its radio directly.)
        rreq = layout.make_packet(2, 1, layout.PKT_TYPE_RREQ, 3, [2])
        for word in rreq:
            responder.radio.deliver(word)
        net.run(until=net.kernel.now + 1.0)
        assert responder.processor.dmem.peek(layout.RREP_COUNT_ADDR) == 1
        # The RREP travelled back over the channel and node 1 installed it.
        dmem = requester.processor.dmem
        assert dmem.peek(layout.ROUTE_TABLE + 0) == 2


class TestThresholdApp:
    def test_logs_larger_field(self):
        net, sender, node = tx_rx_pair(build_aodv_node(2))
        data = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 4,
                                  [2, 0x150, 0x250])
        send(net, sender, data)
        dmem = node.processor.dmem
        assert dmem.peek(THRESH_COUNT) == 1
        assert dmem.peek(layout.APP_DATA + 1) == 0x250  # the larger field
        assert dmem.peek(THRESH_EXCEED) == 1            # 0x250 > 0x200

    def test_below_threshold_not_counted(self):
        net, sender, node = tx_rx_pair(build_aodv_node(2))
        data = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 4,
                                  [2, 0x010, 0x020])
        send(net, sender, data)
        assert node.processor.dmem.peek(THRESH_EXCEED) == 0


class TestTemperatureApp:
    def _run_iterations(self, count, sensor=None):
        node = SensorNode(config=CoreConfig(voltage=0.6))
        node.attach_sensor(sensor or ConstantSensor(100), sensor_id=1)
        node.load(build_temperature_app(period_ticks=500))
        node.run(until=0.0004)
        node.meter.reset()
        node.run(until=0.0004 + count * 0.0005 + 0.0001)
        return node

    def test_iterations_counted(self):
        node = self._run_iterations(10)
        assert node.processor.dmem.peek(TEMP_ITERATIONS) == 10

    def test_constant_input_average_converges(self):
        node = self._run_iterations(20)
        assert node.processor.dmem.peek(TEMP_AVG) == 100

    def test_min_max_tracking(self):
        from repro.sensors import TraceSensor
        # One sample per 500us period.
        sensor = TraceSensor([50, 200, 125, 90], sample_hz=2000.0)
        node = self._run_iterations(4, sensor=sensor)
        dmem = node.processor.dmem
        assert dmem.peek(TEMP_MIN) == 50
        assert dmem.peek(TEMP_MAX) == 200

    def test_realistic_sensor_runs(self):
        node = self._run_iterations(16, sensor=TemperatureSensor(seed=3))
        assert node.processor.dmem.peek(TEMP_ITERATIONS) == 16
        assert 0 < node.processor.dmem.peek(TEMP_AVG) < 1024


class TestTinyOsPorts:
    def test_blink_toggles(self):
        node = SensorNode(config=CoreConfig(voltage=0.6))
        node.load(build_blink_app(period_ticks=1000))
        node.run(until=0.0105)
        assert node.leds.toggles(led=0) >= 9

    def test_blink_cycles_near_paper(self):
        """Figure 5: the SNAP Blink iteration takes ~41 cycles."""
        node = SensorNode(config=CoreConfig(voltage=0.6))
        node.load(build_blink_app(period_ticks=1000))
        node.run(until=0.0005)
        node.meter.reset()
        node.run(until=0.0105)
        handler = node.meter.by_handler["TIMER0"]
        cycles = handler.cycles / handler.invocations
        assert 25 <= cycles <= 55

    def test_sense_averages_and_displays(self):
        node = SensorNode(config=CoreConfig(voltage=0.6))
        node.attach_sensor(ConstantSensor(0x3FF), sensor_id=2)
        node.load(build_sense_app(period_ticks=1000))
        node.run(until=0.040)
        from repro.netstack.tinyos_ports import SENSE_AVG
        # After 32+ samples of 0x3FF the windowed average converges.
        assert node.processor.dmem.peek(SENSE_AVG) == 0x3FF
        assert node.leds.value == 0x3FF >> 7

    def test_radiostack_matches_golden_models(self):
        """The assembly SEC-DED and CRC agree with the Python references
        for a run of bytes."""
        net = NetworkSimulator()
        tx = net.add_node(0, program=build_radiostack_app())
        sniffer = net.add_node(1)
        sniffer.radio.set_receive(True)
        captured = []
        sniffer.radio.on_word_received = captured.append
        net.start()
        count = 8
        for _ in range(count):
            tx.processor.raise_soft_event()
        net.run(until=1.0)
        assert captured == [secded_encode(byte) for byte in range(count)]
        crc = 0xFFFF
        for byte in range(count):
            crc = crc16_update(crc, byte)
        assert tx.processor.dmem.peek(RS_CRC) == crc

    def test_radiostack_cycles_near_paper(self):
        """Section 4.6: ~331 cycles to send one byte through the stack."""
        net = NetworkSimulator()
        tx = net.add_node(0, program=build_radiostack_app())
        net.run(until=0.001)
        tx.meter.reset()
        tx.processor.raise_soft_event()
        net.run(until=1.0)
        handler = tx.meter.by_handler["SOFT"]
        assert 200 <= handler.cycles <= 400


class TestCodeSizes:
    def test_blink_code_size_small(self):
        """Section 4.6: SNAP Blink is a few hundred bytes (paper: 184B)
        versus 1.4KB for the TinyOS version."""
        program = build_blink_app()
        assert program.text_size_bytes < 500

    def test_table1_apps_fit_comfortably(self):
        """Section 4.5: the application suite totals ~2.8KB, leaving room
        in the 4KB IMEM."""
        total = (build_aodv_node(1).text_size_bytes
                 + build_temperature_app().text_size_bytes)
        assert total < 3500
