"""Assembler tests: syntax, directives, pseudo-instructions, fixups."""

import pytest

from repro.asm import AsmError, assemble, build
from repro.isa import Instruction, Opcode, decode_stream, encode


def _opcodes(program):
    return [ins.opcode for _, ins in decode_stream(program.imem)]


class TestBasicSyntax:
    def test_comments_and_blank_lines(self):
        module = assemble("""
            ; a comment
            # another comment
            nop  ; trailing
            add r1, r2  # trailing hash
        """)
        assert len(module.text) == 2

    def test_labels_on_own_line_and_inline(self):
        program = build("""
        start:
            nop
        inline: add r1, r2
            jmp start
        """)
        assert program.symbols["start"] == 0
        assert program.symbols["inline"] == 1

    def test_multiple_labels_one_address(self):
        program = build("a:\nb:\n  nop\n")
        assert program.symbols["a"] == program.symbols["b"] == 0

    def test_case_insensitive_mnemonics(self):
        module = assemble("ADD r1, r2\nMovI r3, 4\n")
        assert module.text[0] == encode(Instruction(Opcode.ADD, rd=1, rs=2))[0]

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_error_carries_line_number(self):
        with pytest.raises(AsmError, match="3"):
            assemble("nop\nnop\nbogus r1\n")


class TestDirectives:
    def test_equ(self):
        program = build("""
            .equ BASE, 0x100
            .equ NEXT, BASE + 4
            movi r1, NEXT
            halt
        """)
        assert program.imem[1] == 0x104

    def test_equ_must_be_constant(self):
        with pytest.raises(AsmError, match="constant"):
            assemble(".equ X, some_label\n")

    def test_word_and_space(self):
        module = assemble("""
            .data
            values: .word 1, 2, 0xFFFF
            buffer: .space 4
        """)
        assert module.data == [1, 2, 0xFFFF, 0, 0, 0, 0]

    def test_word_with_label_reference(self):
        program = build("""
            .data
        table: .word handler
            .text
        handler:
            nop
        """)
        assert program.dmem[0] == program.symbols["handler"]

    def test_ascii(self):
        module = assemble('.data\n.ascii "Hi"\n')
        assert module.data == [ord("H"), ord("i")]

    def test_org_pads(self):
        module = assemble("nop\n.org 4\nnop\n")
        assert len(module.text) == 5

    def test_org_backwards_rejected(self):
        with pytest.raises(AsmError, match="backwards"):
            assemble("nop\nnop\n.org 1\n")

    def test_instructions_rejected_in_data(self):
        with pytest.raises(AsmError, match="only allowed in .text"):
            assemble(".data\nadd r1, r2\n")

    def test_unknown_directive(self):
        with pytest.raises(AsmError, match="unknown directive"):
            assemble(".bogus 1\n")


class TestOperands:
    def test_memory_operand_forms(self):
        program = build("ld r1, 4(r2)\nld r3, (r4)\nst r5, 0x10(sp)\nhalt\n")
        entries = decode_stream(program.imem)
        assert entries[0][1].imm == 4
        assert entries[1][1].imm == 0
        assert entries[2][1] == Instruction(Opcode.ST, rd=5, rs=13, imm=0x10)

    def test_shift_amount(self):
        program = build("sll r1, 15\nhalt\n")
        assert decode_stream(program.imem)[0][1].rs == 15

    def test_shift_amount_range(self):
        with pytest.raises(AsmError):
            assemble("sll r1, 16\n")

    def test_negative_immediate_wraps(self):
        program = build("movi r1, -1\nhalt\n")
        assert program.imem[1] == 0xFFFF

    def test_bfs_requires_constant_mask(self):
        with pytest.raises(AsmError, match="constant"):
            assemble("bfs r1, r2, somewhere\n")

    def test_operand_count_errors(self):
        with pytest.raises(AsmError):
            assemble("add r1\n")
        with pytest.raises(AsmError):
            assemble("done r1\n")


class TestBranches:
    def test_backward_branch(self):
        program = build("top:\n  nop\n  bnez r1, top\n  halt\n")
        entry = decode_stream(program.imem)[1][1]
        assert entry.imm == -2  # from word 2 back to word 0

    def test_forward_branch(self):
        program = build("  beqz r1, skip\n  nop\nskip:\n  halt\n")
        assert decode_stream(program.imem)[0][1].imm == 1

    def test_branch_out_of_range(self):
        body = "\n".join(["nop"] * 40)
        with pytest.raises(AsmError, match="out of range"):
            assemble("  beqz r1, far\n%s\nfar:\n  halt\n" % body)

    def test_branch_numeric_offset(self):
        program = build("bnez r1, -1\nhalt\n")
        assert decode_stream(program.imem)[0][1].imm == -1


class TestPseudoInstructions:
    def test_ret_is_jr_lr(self):
        program = build("ret\n")
        assert decode_stream(program.imem)[0][1] == Instruction(
            Opcode.JR, rd=14, rs=0)

    def test_li_is_movi(self):
        program = build("li r1, 5\nhalt\n")
        assert decode_stream(program.imem)[0][1].opcode == Opcode.MOVI

    def test_push_pop_expansion(self):
        program = build("push r1\npop r2\nhalt\n")
        opcodes = _opcodes(program)
        assert opcodes[:4] == [Opcode.SUBI, Opcode.ST, Opcode.LD, Opcode.ADDI]

    def test_inc_dec(self):
        program = build("inc r1\ndec r2\nhalt\n")
        assert _opcodes(program)[:2] == [Opcode.ADDI, Opcode.SUBI]

    def test_call(self):
        program = build("call fn\nhalt\nfn: ret\n")
        entries = decode_stream(program.imem)
        assert entries[0][1].opcode == Opcode.JAL
        assert entries[0][1].imm == program.symbols["fn"]


class TestSymbols:
    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError, match="duplicate"):
            assemble("x:\nnop\nx:\nnop\n")

    def test_dot_labels_are_local(self):
        module = assemble(".loop:\n  nop\n")
        assert not module.symbols[".loop"].exported

    def test_timer_program_from_paper_syntax(self):
        """The schedhi/schedlo/cancel forms from Section 3.4 assemble."""
        program = build("""
            movi r1, 0
            movi r2, 0x12
            schedhi r1, r2
            movi r2, 0x3456
            schedlo r1, r2
            cancel r1
            done
        """)
        opcodes = _opcodes(program)
        assert Opcode.SCHEDHI in opcodes
        assert Opcode.SCHEDLO in opcodes
        assert Opcode.CANCEL in opcodes
