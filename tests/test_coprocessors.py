"""Timer and message coprocessor tests."""

import pytest

from repro.coprocessors import (
    CMD_QUERY,
    CMD_RX,
    CMD_TX,
    Fifo,
    MessageCoprocessor,
    TimerCoprocessor,
    make_command,
)
from repro.core import EventQueue, Kernel
from repro.core.exceptions import WouldBlock
from repro.isa.events import Event
from repro.radio import Radio
from repro.sensors import ConstantSensor, LedPort


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def queue():
    return EventQueue(capacity=8)


class TestFifo:
    def test_order(self):
        fifo = Fifo(capacity=4)
        for value in (1, 2, 3):
            fifo.push(value)
        assert [fifo.pop() for _ in range(3)] == [1, 2, 3]

    def test_overflow_and_underflow(self):
        fifo = Fifo(capacity=1)
        fifo.push(1)
        with pytest.raises(OverflowError):
            fifo.push(2)
        fifo.pop()
        with pytest.raises(IndexError):
            fifo.pop()

    def test_occupancy_stats(self):
        fifo = Fifo(capacity=4)
        fifo.push(1)
        fifo.push(2)
        fifo.pop()
        assert fifo.max_occupancy == 2

    def test_masks_to_16_bits(self):
        fifo = Fifo()
        fifo.push(0x12345)
        assert fifo.pop() == 0x2345


class TestTimerCoprocessor:
    def test_schedlo_starts_countdown(self, kernel, queue):
        timer = TimerCoprocessor(kernel, queue, tick_hz=1_000_000)
        timer.schedlo(0, 100)
        assert timer.is_running(0)
        kernel.run()
        assert kernel.now == pytest.approx(100e-6)
        assert queue.pop().event == Event.TIMER0

    def test_schedhi_extends_range_to_24_bits(self, kernel, queue):
        """Section 3.2/3.4: schedhi sets the top 8 of 24 bits."""
        timer = TimerCoprocessor(kernel, queue, tick_hz=1_000_000)
        timer.schedhi(1, 0x01)          # 0x010000 ticks = 65536 us
        timer.schedlo(1, 0x0000)
        kernel.run()
        assert kernel.now == pytest.approx(0x010000 / 1e6)
        assert queue.pop().event == Event.TIMER1

    def test_three_independent_timers(self, kernel, queue):
        timer = TimerCoprocessor(kernel, queue, tick_hz=1_000_000)
        timer.schedlo(0, 300)
        timer.schedlo(1, 100)
        timer.schedlo(2, 200)
        kernel.run()
        order = [queue.pop().event for _ in range(3)]
        assert order == [Event.TIMER1, Event.TIMER2, Event.TIMER0]

    def test_cancel_running_inserts_token(self, kernel, queue):
        """The cancel-race design: a cancelled timer still produces a
        token (Section 3.2)."""
        timer = TimerCoprocessor(kernel, queue, tick_hz=1_000_000)
        timer.schedlo(0, 1000)
        timer.cancel(0)
        assert not timer.is_running(0)
        assert queue.pop().event == Event.TIMER0
        kernel.run()
        assert queue.pop() is None  # and no second token at expiry time

    def test_cancel_idle_timer_is_noop(self, kernel, queue):
        timer = TimerCoprocessor(kernel, queue, tick_hz=1_000_000)
        timer.cancel(2)
        assert queue.pop() is None

    def test_exactly_one_token_per_schedule(self, kernel, queue):
        """Software sees one token whether it cancels or the timer
        expires -- never zero, never two."""
        timer = TimerCoprocessor(kernel, queue, tick_hz=1_000_000)
        timer.schedlo(0, 10)
        kernel.run()                  # expires
        timer.cancel(0)               # too late: no extra token
        assert len(queue) == 1

    def test_reschedule_restarts(self, kernel, queue):
        timer = TimerCoprocessor(kernel, queue, tick_hz=1_000_000)
        timer.schedlo(0, 1000)
        timer.schedlo(0, 10)
        kernel.run()
        assert kernel.now == pytest.approx(10e-6)
        assert len(queue) == 1

    def test_remaining(self, kernel, queue):
        timer = TimerCoprocessor(kernel, queue, tick_hz=1_000_000)
        timer.schedlo(0, 100)
        assert timer.remaining(0) == pytest.approx(100e-6)
        assert timer.remaining(1) is None

    def test_bad_index(self, kernel, queue):
        timer = TimerCoprocessor(kernel, queue)
        with pytest.raises(ValueError):
            timer.schedlo(3, 10)


class TestMessageCoprocessor:
    def test_pop_empty_would_block(self, kernel, queue):
        mcp = MessageCoprocessor(kernel, queue)
        with pytest.raises(WouldBlock):
            mcp.pop_to_core()

    def test_query_delivers_value_and_event(self, kernel, queue):
        mcp = MessageCoprocessor(kernel, queue)
        mcp.attach_sensor(2, ConstantSensor(0x0123))
        mcp.push_from_core(make_command(CMD_QUERY, 2))
        assert mcp.pop_to_core() == 0x0123
        assert queue.pop().event == Event.QUERY_DONE

    def test_query_unattached_sensor(self, kernel, queue):
        mcp = MessageCoprocessor(kernel, queue)
        with pytest.raises(ValueError, match="unattached sensor"):
            mcp.push_from_core(make_command(CMD_QUERY, 9))

    def test_led_port_write(self, kernel, queue):
        mcp = MessageCoprocessor(kernel, queue)
        led = LedPort()
        mcp.attach_port(0, led)
        mcp.push_from_core(make_command(4, 0x005))
        assert led.value == 5

    def test_tx_command_then_data(self, kernel, queue):
        mcp = MessageCoprocessor(kernel, queue)
        radio = Radio(kernel)
        mcp.attach_radio(radio)
        mcp.push_from_core(make_command(CMD_TX))
        mcp.push_from_core(0xBEEF)
        assert radio.tx_pending == 1
        kernel.run()
        assert radio.words_sent == 1
        assert queue.pop().event == Event.RADIO_TX_DONE

    def test_rx_word_raises_event(self, kernel, queue):
        mcp = MessageCoprocessor(kernel, queue)
        radio = Radio(kernel)
        mcp.attach_radio(radio)
        mcp.push_from_core(make_command(CMD_RX))
        radio.deliver(0x7777)
        assert mcp.pop_to_core() == 0x7777
        assert queue.pop().event == Event.RADIO_RX

    def test_rx_requires_radio(self, kernel, queue):
        mcp = MessageCoprocessor(kernel, queue)
        with pytest.raises(ValueError, match="no radio"):
            mcp.push_from_core(make_command(CMD_RX))

    def test_sensor_interrupt_event(self, kernel, queue):
        mcp = MessageCoprocessor(kernel, queue)
        mcp.sensor_interrupt()
        assert queue.pop().event == Event.SENSOR_IRQ

    def test_outgoing_observer_fires(self, kernel, queue):
        mcp = MessageCoprocessor(kernel, queue)
        calls = []
        mcp.on_outgoing_data.append(lambda: calls.append(1))
        mcp._deliver(1)
        assert calls == [1]

    def test_unknown_command_rejected(self, kernel, queue):
        mcp = MessageCoprocessor(kernel, queue)
        with pytest.raises(ValueError, match="unknown"):
            mcp.push_from_core(make_command(0xF))


class TestCommands:
    def test_make_and_split(self):
        word = make_command(CMD_QUERY, 0x123)
        from repro.coprocessors import command_kind, command_payload
        assert command_kind(word) == CMD_QUERY
        assert command_payload(word) == 0x123

    def test_range_checks(self):
        with pytest.raises(ValueError):
            make_command(16)
        with pytest.raises(ValueError):
            make_command(1, 0x1000)
