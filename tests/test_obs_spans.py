"""Distributed packet-journey tracing and energy-timeline tests.

Covers the journey tracker's reconstruction of multi-hop AODV traffic
(the ISSUE's acceptance scenario: a 5-node chain with a complete
source -> forward -> sink journey tree), the Chrome flow-event export,
the timeline sampler's aligned drain curves, histogram percentiles, the
JSONL sink's context-manager protocol, and -- most importantly -- that
a run with all of this disabled stays bit-identical to an
uninstrumented one.
"""

import io
import json
import os

import pytest

from repro.network.experiments import convergecast
from repro.obs import (
    Histogram,
    JsonlSink,
    Observability,
    TimelineSampler,
    chrome_trace,
    read_jsonl,
)
from repro.tools.snap_net_trace import main as net_trace_main
from repro.tools.snap_net_trace import run_chain_scenario


# -- histogram percentiles ----------------------------------------------------

class TestHistogramPercentiles:
    def test_empty_histogram_has_no_percentiles(self):
        hist = Histogram()
        assert hist.percentile(50) is None
        assert hist.summary()["p50"] is None

    def test_single_observation(self):
        hist = Histogram()
        hist.observe(7.0)
        assert hist.percentile(0) == 7.0
        assert hist.percentile(50) == 7.0
        assert hist.percentile(100) == 7.0

    def test_percentiles_interpolate(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(90) == pytest.approx(90.1)

    def test_clamps_out_of_range_p(self):
        hist = Histogram()
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.percentile(-5) == 1.0
        assert hist.percentile(150) == 3.0

    def test_reservoir_decimates_deterministically(self):
        hist = Histogram(sample_limit=64)
        for value in range(1000):
            hist.observe(float(value))
        assert len(hist._samples) < 128
        # Aggregates stay exact; quantiles approximate on the decimated,
        # evenly spaced subset.
        assert hist.count == 1000
        assert hist.max == 999.0
        assert hist.percentile(50) == pytest.approx(499.5, abs=40)
        # Two identical streams give identical quantiles (no randomness).
        other = Histogram(sample_limit=64)
        for value in range(1000):
            other.observe(float(value))
        assert other._samples == hist._samples

    def test_summary_includes_quantiles(self):
        hist = Histogram()
        for value in range(10):
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 10
        assert summary["p50"] == pytest.approx(4.5)
        assert summary["p99"] <= summary["max"]


# -- JSONL sink context manager ----------------------------------------------

class TestJsonlSinkContextManager:
    def test_with_block_flushes_and_closes(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        obs = Observability()
        with JsonlSink(path) as sink:
            obs.bus.attach(sink)
            obs.sleep_enter("n0", 0.0)
            obs.wakeup("n0", 1.0, idle=1.0)
            assert not sink.closed
        assert sink.closed
        records = read_jsonl(path)
        assert [r["type"] for r in records] == ["sleep", "wakeup"]
        assert sink.count == 2

    def test_close_after_exception(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with pytest.raises(RuntimeError):
            with JsonlSink(path) as sink:
                obs = Observability()
                obs.bus.attach(sink)
                obs.sleep_enter("n0", 0.0)
                raise RuntimeError("boom")
        assert sink.closed
        assert len(read_jsonl(path)) == 1

    def test_flush_makes_events_visible_before_close(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        obs = Observability()
        obs.bus.attach(sink)
        obs.sleep_enter("n0", 0.0)
        sink.flush()
        assert len(read_jsonl(path)) == 1
        sink.close()

    def test_double_close_is_safe(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()
        assert sink.closed


# -- the acceptance scenario --------------------------------------------------

@pytest.fixture(scope="module")
def chain5():
    """The ISSUE's acceptance scenario: 5-node chain, 2 DATA packets."""
    return run_chain_scenario(nodes=5, packets=2, sample_every=0.05)


class TestJourneyReconstruction:
    def test_multihop_journey_tree_is_complete(self, chain5):
        net, obs, _ = chain5
        tracker = obs.journeys
        delivered = [j for j in tracker.journeys if j.delivered]
        assert delivered, "no journey reached the sink"
        journey = delivered[0]
        ops = [span.op for span in journey.spans]
        # Source send, at least one relay forward, sink delivery.
        assert "send" in ops and "forward" in ops and "deliver" in ops
        assert journey.forwards >= 3          # 4 hops = 3 relays
        assert journey.hop_count == 4
        assert journey.origin == "node1"
        assert journey.destination == 5

    def test_span_tree_parents_link_hops(self, chain5):
        _, obs, _ = chain5
        journey = [j for j in obs.journeys.journeys if j.delivered][0]
        spans = {span.span: span for span in journey.spans}
        deliver = [s for s in journey.spans if s.op == "deliver"][0]
        # Walk deliver -> receive -> air -> forward ... up to the send.
        chain_ops = []
        cursor = deliver
        while cursor is not None:
            chain_ops.append(cursor.op)
            cursor = spans.get(cursor.parent)
        assert chain_ops[-1] == "send"
        assert chain_ops.count("forward") == 3
        assert chain_ops.count("air") == 4

    def test_per_hop_latency_and_energy_attributed(self, chain5):
        _, obs, _ = chain5
        journey = [j for j in obs.journeys.journeys if j.delivered][0]
        assert journey.latency is not None and journey.latency > 0
        assert journey.energy > 0
        for span in journey.spans:
            if span.op in ("send", "forward", "receive", "overhear"):
                assert span.energy > 0, span
        rows = [row for row in obs.journeys.hop_rows()
                if row["journey"] == journey.id
                and row["outcome"] == "receive"]
        assert len(rows) == 4
        for row in rows:
            assert row["latency_s"] > 0
            assert row["energy_j"] > 0
        # Hop latencies also land in the metrics histogram.
        assert obs.metrics.histogram("net.hop_latency_s").count >= 4
        assert obs.metrics.counter("net.journeys_delivered").value >= 1

    def test_chrome_trace_exports_flow_events(self, chain5):
        _, obs, extras = chain5
        entries = chrome_trace(extras["memory"].events)
        json.dumps(entries)  # must be serializable as-is
        journey = [j for j in obs.journeys.journeys if j.delivered][0]
        flows = [e for e in entries
                 if e["ph"] in ("s", "t", "f") and e["id"] == journey.id]
        phases = [e["ph"] for e in flows]
        assert phases[0] == "s" and phases[-1] == "f"
        assert "t" in phases
        # The flow hops across node tracks from source to sink.
        assert flows[0]["pid"] == "node1"
        assert flows[-1]["pid"] == "node5"
        finish = [e for e in flows if e["ph"] == "f"][0]
        assert finish.get("bp") == "e"
        slices = [e for e in entries
                  if e["ph"] == "X"
                  and e.get("args", {}).get("journey") == journey.id]
        assert len(slices) == len(journey.spans)

    def test_journey_summaries_are_json_friendly(self, chain5):
        _, obs, _ = chain5
        summaries = obs.journeys.summaries()
        json.dumps(summaries)
        delivered = [s for s in summaries if s["delivered"]]
        assert delivered and delivered[0]["hops"] == 4

    def test_report_renders_trees(self, chain5):
        _, obs, _ = chain5
        report = obs.journeys.report()
        assert "journey #" in report
        assert "deliver node5" in report
        assert "forward" in report


class TestDisabledBitIdentity:
    def test_observed_run_matches_uninstrumented_run(self):
        def fingerprint(net):
            rows = []
            for node_id, node in sorted(net.nodes.items()):
                meter = node.meter
                radio = node.radio
                rows.append((node_id, meter.instructions, meter.cycles,
                             meter.total_energy, meter.wakeups,
                             radio.words_sent, radio.words_received,
                             radio.words_dropped, radio.tx_time,
                             radio.rx_time))
            return (net.kernel.now, net.channel.words_carried,
                    net.channel.collisions, net.channel.noise_corruptions,
                    tuple(rows))

        kwargs = dict(nodes=5, packets=2, bit_error_rate=0.02,
                      corruption="flip", seed=3, sample_every=0)
        traced, _, _ = run_chain_scenario(observe=True, **kwargs)
        plain, plain_obs, _ = run_chain_scenario(observe=False, **kwargs)
        assert plain_obs is None
        assert fingerprint(traced) == fingerprint(plain)


class TestDropReconstruction:
    def test_bit_error_drop(self):
        net, obs, _ = run_chain_scenario(nodes=2, packets=1,
                                         bit_error_rate=1.0,
                                         sample_every=0)
        reasons = [reason for journey in obs.journeys.journeys
                   for reason in journey.drop_reasons]
        assert "bit_error" in reasons
        assert not any(j.delivered for j in obs.journeys.journeys)
        assert obs.metrics.counter("net.drops.bit_error").value >= 1

    def test_no_route_drop(self):
        net, obs, _ = run_chain_scenario(nodes=2, packets=1, no_route=True,
                                         sample_every=0)
        reasons = [reason for journey in obs.journeys.journeys
                   for reason in journey.drop_reasons]
        assert "no_route" in reasons


# -- timeline sampler ---------------------------------------------------------

class TestTimelineSampler:
    def test_rows_are_aligned_across_nodes(self, chain5):
        net, _, extras = chain5
        sampler = extras["sampler"]
        assert sampler is not None and sampler.rows
        by_time = {}
        for row in sampler.rows:
            by_time.setdefault(row["time_s"], []).append(row["node"])
        for time_s, nodes in by_time.items():
            assert sorted(nodes) == sorted(net.nodes), time_s
        assert len(by_time) >= 5

    def test_drain_curves_are_monotonic(self, chain5):
        net, _, extras = chain5
        sampler = extras["sampler"]
        assert sorted(sampler.node_ids()) == sorted(net.nodes)
        for node_id in net.nodes:
            curve = sampler.drain_curve(node_id)
            energies = [energy for _, energy in curve]
            assert energies == sorted(energies)
            assert energies[-1] > 0
        # The source spends more than an idle-most relay would at zero:
        # every curve ends at the node's true cumulative total.
        node = net.nodes[1]
        expected = node.total_energy(include_radio=True)
        assert sampler.drain_curve(1)[-1][1] == pytest.approx(expected)

    def test_to_csv_round_trips(self, chain5):
        _, _, extras = chain5
        sampler = extras["sampler"]
        buffer = io.StringIO()
        sampler.to_csv(buffer)
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0].startswith("time_s,node,energy_j")
        assert len(lines) == len(sampler.rows) + 1

    def test_sampler_emits_timeline_events(self):
        _, obs, extras = run_chain_scenario(nodes=2, packets=1,
                                            sample_every=0.05)
        events = [e for e in extras["memory"].events
                  if e.kind == "timeline"]
        assert events
        assert {e.node for e in events} == {"node1", "node2"}
        assert all(e.energy >= e.radio_energy for e in events)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TimelineSampler(kernel=None, nodes={}, interval=0.0)

    def test_convergecast_carries_drain_series(self):
        result = convergecast(chain_length=3, period_s=0.1, duration_s=1.0,
                              sample_every=0.25)
        assert result.drain
        nodes = {row["node"] for row in result.drain}
        assert nodes == {1, 2, 3}
        for node_id in nodes:
            energies = [row["energy_j"] for row in result.drain
                        if row["node"] == node_id]
            assert len(energies) >= 4
            assert energies == sorted(energies)

    def test_convergecast_without_sampling_has_no_drain(self):
        result = convergecast(chain_length=2, period_s=0.1, duration_s=0.5)
        assert result.drain is None


# -- the CLI ------------------------------------------------------------------

class TestSnapNetTraceCli:
    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            net_trace_main(["--help"])
        assert excinfo.value.code == 0
        assert "snap-net-trace" in capsys.readouterr().out

    def test_default_run_prints_journeys(self, capsys, tmp_path):
        chrome = str(tmp_path / "net.json")
        drain = str(tmp_path / "drain.csv")
        jsonl = str(tmp_path / "net.jsonl")
        code = net_trace_main(["--nodes", "3", "--packets", "1",
                               "--chrome", chrome, "--drain-csv", drain,
                               "--jsonl", jsonl])
        out = capsys.readouterr().out
        assert code == 0
        assert "journey #1" in out
        assert "deliver node3" in out
        assert "Per-hop table" in out
        with open(chrome) as handle:
            trace = json.load(handle)
        assert any(e["ph"] == "s" for e in trace["traceEvents"])
        assert os.path.getsize(drain) > 0
        assert read_jsonl(jsonl)

    def test_json_output_mode(self, capsys):
        code = net_trace_main(["--nodes", "2", "--packets", "1",
                               "--sample-every", "0", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["journeys"] and payload["hops"]

    def test_rejects_tiny_chain(self, capsys):
        assert net_trace_main(["--nodes", "1"]) == 1
        assert "at least 2 nodes" in capsys.readouterr().err
