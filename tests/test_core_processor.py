"""Processor-level tests: event-driven execution, sleep/wake, r15 stalls,
handler atomicity, and the paper's architectural claims."""

import pytest

from repro.asm import build
from repro.core import CoreConfig, SimulationDeadlock, SnapProcessor
from repro.core.processor import Mode
from repro.core.exceptions import SimulationError
from repro.isa.events import Event


def make_processor(source, voltage=0.6, **config_kwargs):
    config_kwargs.setdefault("max_instructions", 1_000_000)
    proc = SnapProcessor(config=CoreConfig(voltage=voltage, **config_kwargs))
    proc.load(build(source))
    return proc


PERIODIC_COUNTER = """
boot:
    movi r1, 0
    movi r2, handler
    setaddr r1, r2
    movi r1, 0
    movi r2, 50
    schedlo r1, r2
    done
handler:
    ld r3, 0(r0)
    addi r3, 1
    st r3, 0(r0)
    movi r1, 0
    movi r2, 50
    schedlo r1, r2
    done
"""


class TestEventDrivenExecution:
    def test_boot_then_sleep(self):
        proc = make_processor("movi r1, 1\ndone\n")
        proc.run()
        assert proc.asleep
        assert proc.regs.peek(1) == 1

    def test_periodic_timer_handler(self):
        proc = make_processor(PERIODIC_COUNTER)
        proc.run(until=0.00052)  # ten 50us periods plus slack
        assert proc.dmem.peek(0) == 10
        assert proc.meter.by_handler["TIMER0"].invocations == 10

    def test_wakeup_counts_match_events(self):
        proc = make_processor(PERIODIC_COUNTER)
        proc.run(until=0.00052)
        assert proc.meter.wakeups == 10

    def test_sleep_has_zero_dynamic_energy(self):
        """QDI: all switching activity stops while asleep."""
        proc = make_processor("done\n")
        proc.run()
        baseline = proc.meter.total_energy
        proc.kernel.schedule(1.0, lambda: None)
        proc.kernel.run()
        assert proc.meter.total_energy == baseline
        assert proc.meter.idle_energy == 0.0

    def test_wakeup_latency_tens_of_nanoseconds(self):
        """The paper's headline: wake in tens of ns, not milliseconds."""
        proc = make_processor(PERIODIC_COUNTER, voltage=0.6)
        proc.run(until=0.00006)
        assert proc.meter.wakeups == 1
        assert proc.timing.wakeup_latency == pytest.approx(21.4e-9)

    def test_handler_atomicity(self):
        """A new event never preempts a running handler; it queues."""
        source = """
        boot:
            movi r1, 0
            movi r2, slow_handler
            setaddr r1, r2
            movi r1, 7
            movi r2, fast_handler
            setaddr r1, r2
            movi r1, 0
            movi r2, 10
            schedlo r1, r2
            done
        slow_handler:
            ; record entry order marker
            ld r3, 1(r0)
            addi r3, 1
            st r3, 1(r0)
            st r3, 2(r0)         ; slow handler ran at order r3
            movi r4, 200
        .spin:
            subi r4, 1
            bnez r4, .spin
            done
        fast_handler:
            ld r3, 1(r0)
            addi r3, 1
            st r3, 1(r0)
            st r3, 3(r0)         ; fast handler ran at order r3
            done
        """
        proc = make_processor(source)
        # Raise a SOFT event while the slow handler will be mid-execution.
        proc.kernel.schedule(11e-6, proc.raise_soft_event)
        proc.run(until=0.01)
        assert proc.dmem.peek(2) == 1  # slow handler completed first
        assert proc.dmem.peek(3) == 2  # soft handler ran strictly after

    def test_event_queue_overflow_drops(self):
        proc = make_processor("done\n", event_queue_capacity=2)
        proc.run(until=1e-9)
        # Saturate the queue while the core is still asleep at boot end.
        for _ in range(5):
            proc.raise_soft_event()
        assert proc.event_queue.dropped == 3

    def test_setaddr_bad_event_faults(self):
        proc = make_processor("movi r1, 12\nmovi r2, 0\nsetaddr r1, r2\ndone\n")
        with pytest.raises(SimulationError, match="event number"):
            proc.run()

    def test_instruction_budget(self):
        proc = make_processor(".spin: jmp .spin\n", max_instructions=100)
        with pytest.raises(SimulationError, match="budget"):
            proc.run()


class TestR15Convention:
    def test_write_to_r15_reaches_coprocessor(self):
        proc = make_processor("movi r15, 0x4005\ndone\n")  # LED port 0 <- 5
        from repro.sensors import LedPort
        led = LedPort()
        proc.mcp.attach_port(0, led)
        proc.run()
        assert led.value == 5

    def test_read_from_r15_pops_outgoing(self):
        proc = make_processor("mov r1, r15\nst r1, 0(r0)\ndone\n")
        proc.mcp.outgoing.push(0xABCD)
        proc.run()
        assert proc.dmem.peek(0) == 0xABCD

    def test_read_from_empty_r15_stalls_then_resumes(self):
        proc = make_processor("mov r1, r15\nst r1, 0(r0)\ndone\n")
        proc.kernel.schedule(1e-3, proc.mcp._deliver, 0x1234)
        proc.run()
        assert proc.dmem.peek(0) == 0x1234
        assert proc.asleep

    def test_stall_with_no_source_deadlocks(self):
        proc = make_processor("mov r1, r15\ndone\n")
        with pytest.raises(SimulationDeadlock):
            proc.run()

    def test_stalled_core_consumes_no_energy(self):
        proc = make_processor("movi r1, 1\nmov r2, r15\ndone\n")
        proc.kernel.schedule(1.0, proc.mcp._deliver, 7)
        proc.run(until=0.5)
        energy_at_stall = proc.meter.total_energy
        assert proc.mode == Mode.STALLED
        proc.run()
        # Only the remaining instructions' energy was added; no energy
        # accrued during the ~1s stall itself.
        extra = proc.meter.total_energy - energy_at_stall
        assert extra < 1e-9

    def test_two_r15_reads_in_one_instruction(self):
        proc = make_processor("add r15, r15\ndone\n")
        proc.mcp.outgoing.push(3)
        proc.mcp.outgoing.push(4)
        from repro.sensors import LedPort
        led = LedPort()
        proc.mcp.attach_port(0, led)
        # add r15, r15 pops 3 and 4, writes 7 back to r15 -> LED command?
        # 7 is CMD_IDLE payload; attach a radio-free idle is fine.
        proc.run()
        # 3 + 4 = 7 pushed as a command word: kind 0 (idle), no radio
        # attached -> silently accepted.
        assert proc.mcp.commands_processed == 1


class TestHandlerDispatch:
    def test_handler_table_via_setaddr(self):
        source = """
        boot:
            movi r1, 7
            movi r2, soft
            setaddr r1, r2
            done
        soft:
            movi r3, 42
            done
        """
        proc = make_processor(source)
        proc.kernel.schedule(1e-6, proc.raise_soft_event)
        proc.run()
        assert proc.regs.peek(3) == 42

    def test_back_to_back_events_no_sleep(self):
        source = """
        boot:
            movi r1, 7
            movi r2, soft
            setaddr r1, r2
            done
        soft:
            ld r3, 0(r0)
            addi r3, 1
            st r3, 0(r0)
            done
        """
        proc = make_processor(source)

        def raise_two():
            proc.raise_soft_event()
            proc.raise_soft_event()

        proc.kernel.schedule(1e-6, raise_two)
        proc.run()
        assert proc.dmem.peek(0) == 2
        # Exactly one wakeup: the second token was consumed without
        # sleeping in between.
        assert proc.meter.wakeups == 1

    def test_handler_tags_customizable(self):
        proc = make_processor(PERIODIC_COUNTER)
        proc.handler_tags[Event.TIMER0] = "sample"
        proc.run(until=0.00011)
        assert proc.meter.by_handler["sample"].invocations == 2


class TestStatistics:
    def test_cycles_count_instruction_words(self):
        proc = make_processor("movi r1, 1\nadd r1, r1\nhalt\n")
        proc.run()
        assert proc.meter.instructions == 3
        assert proc.meter.cycles == 4

    def test_mips_scales_with_voltage(self):
        results = {}
        for voltage in (0.6, 1.8):
            proc = make_processor(
                "movi r2, 200\n.l: subi r2, 1\nbnez r2, .l\nhalt\n",
                voltage=voltage)
            results[voltage] = proc.run().average_mips()
        assert results[1.8] / results[0.6] == pytest.approx(8.56, rel=0.02)
