"""Property-based assemble -> disassemble -> assemble round-trips.

``Instruction.text()`` is the disassembler's output syntax; feeding it
back through the assembler must reproduce the original encoding for
every opcode format (N, R, B, RI, J).

Canonicalization: a handful of forms drop an operand field in their
rendered syntax -- single-operand R ops (``rand``, ``seed``, ``cancel``,
``jr``, ``jalr``) print only ``rd``, and the implicit-``rs`` immediate
ops (``movi``, ``addi``, ``subi``, ``andi``, ``ori``, ``xori``) print
``rd, imm``.  Those fields are architecturally zero in assembled code,
so the strategy generates them as zero; everything else ranges freely.
"""

import pytest
from hypothesis import given, strategies as st

from repro.asm import assemble
from repro.isa import Instruction, Opcode, decode, encode
from repro.isa.instruction import BRANCH_OFFSET_MAX, BRANCH_OFFSET_MIN
from repro.isa.opcodes import Format, all_specs

#: Opcodes whose canonical syntax omits ``rs`` (it assembles as zero).
IMPLICIT_RS = {
    Opcode.RAND, Opcode.SEED, Opcode.CANCEL, Opcode.JR, Opcode.JALR,
    Opcode.MOVI, Opcode.ADDI, Opcode.SUBI, Opcode.ANDI, Opcode.ORI,
    Opcode.XORI,
}


@st.composite
def canonical_instruction(draw):
    spec = draw(st.sampled_from(all_specs()))
    opcode, fmt = spec.opcode, spec.format
    if fmt == Format.N:
        return Instruction(opcode)
    if fmt == Format.R:
        rd = draw(st.integers(0, 15))
        rs = 0 if opcode in IMPLICIT_RS else draw(st.integers(0, 15))
        return Instruction(opcode, rd=rd, rs=rs)
    if fmt == Format.B:
        return Instruction(
            opcode, rs=draw(st.integers(0, 15)),
            imm=draw(st.integers(BRANCH_OFFSET_MIN, BRANCH_OFFSET_MAX)))
    if fmt == Format.RI:
        rd = draw(st.integers(0, 15))
        rs = 0 if opcode in IMPLICIT_RS else draw(st.integers(0, 15))
        return Instruction(opcode, rd=rd, rs=rs,
                           imm=draw(st.integers(0, 0xFFFF)))
    return Instruction(opcode, imm=draw(st.integers(0, 0xFFFF)))


def roundtrip(instruction):
    """text -> assemble -> words; words -> decode -> instruction."""
    module = assemble(instruction.text() + "\n", name="roundtrip")
    decoded, size = decode(module.text)
    return module.text, decoded, size


class TestTextRoundTrip:
    @given(instruction=canonical_instruction())
    def test_text_assembles_to_identical_words(self, instruction):
        words = encode(instruction)
        assembled, decoded, size = roundtrip(instruction)
        assert assembled == words
        assert size == len(words) == instruction.size
        assert decoded == instruction
        # Second lap is a fixed point.
        assert roundtrip(decoded)[0] == words

    @pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.mnemonic)
    def test_every_opcode_text_round_trips(self, spec):
        fmt = spec.format
        rs = 0 if spec.opcode in IMPLICIT_RS else 5
        if fmt == Format.N:
            instruction = Instruction(spec.opcode)
        elif fmt == Format.R:
            instruction = Instruction(spec.opcode, rd=3, rs=rs)
        elif fmt == Format.B:
            instruction = Instruction(spec.opcode, rs=5, imm=-7)
        elif fmt == Format.RI:
            instruction = Instruction(spec.opcode, rd=3, rs=rs, imm=0x1234)
        else:
            instruction = Instruction(spec.opcode, imm=0x0456)
        assembled, decoded, _ = roundtrip(instruction)
        assert assembled == encode(instruction)
        assert decoded == instruction

    def test_branch_offset_extremes(self):
        for offset in (BRANCH_OFFSET_MIN, -1, 0, 1, BRANCH_OFFSET_MAX):
            instruction = Instruction(Opcode.BNEZ, rs=2, imm=offset)
            _, decoded, _ = roundtrip(instruction)
            assert decoded.imm == offset

    def test_jump_address_extremes(self):
        for address in (0, 1, 0x7FFF, 0xFFFF):
            instruction = Instruction(Opcode.JMP, imm=address)
            _, decoded, _ = roundtrip(instruction)
            assert decoded.imm == address

    def test_multi_instruction_listing_round_trips(self):
        program = [
            Instruction(Opcode.MOVI, rd=1, rs=0, imm=7),
            Instruction(Opcode.ADD, rd=1, rs=1),
            Instruction(Opcode.SLL, rd=1, rs=2),
            Instruction(Opcode.BNEZ, rs=1, imm=-2),
            Instruction(Opcode.LD, rd=3, rs=0, imm=16),
            Instruction(Opcode.DONE),
        ]
        listing = "\n".join(i.text() for i in program) + "\n"
        module = assemble(listing, name="listing")
        expected = [word for i in program for word in encode(i)]
        assert module.text == expected
