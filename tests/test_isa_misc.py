"""Register naming, disassembly, and opcode metadata tests."""

import pytest

from repro.isa import (
    Instruction,
    Opcode,
    disassemble_words,
    encode,
    register_name,
    register_number,
)
from repro.isa.opcodes import InstrClass, Unit, all_specs, spec_for
from repro.isa.registers import REG_LINK, REG_MSG, REG_STACK


class TestRegisters:
    def test_aliases(self):
        assert register_number("sp") == REG_STACK == 13
        assert register_number("lr") == REG_LINK == 14
        assert register_number("msg") == REG_MSG == 15

    def test_round_trip(self):
        for number in range(16):
            assert register_number(register_name(number)) == number

    def test_alias_rendering(self):
        assert register_name(15, prefer_alias=True) == "msg"
        assert register_name(15) == "r15"

    @pytest.mark.parametrize("bad", ["r16", "x1", "", "r-1", "16"])
    def test_invalid_names(self, bad):
        with pytest.raises(ValueError):
            register_number(bad)

    def test_invalid_number(self):
        with pytest.raises(ValueError):
            register_name(16)


class TestOpcodeMetadata:
    def test_fast_bus_assignment_matches_paper(self):
        """Section 3.1: adder, logic, DMEM load-store, shifter and
        jump/branch on the fast busses; the rest on slow busses."""
        assert spec_for(Opcode.ADD).on_fast_bus
        assert spec_for(Opcode.AND).on_fast_bus
        assert spec_for(Opcode.LD).on_fast_bus
        assert spec_for(Opcode.SLL).on_fast_bus
        assert spec_for(Opcode.BEQZ).on_fast_bus
        assert not spec_for(Opcode.LDI).on_fast_bus
        assert not spec_for(Opcode.SCHEDLO).on_fast_bus
        assert not spec_for(Opcode.RAND).on_fast_bus

    def test_instruction_classes(self):
        assert spec_for(Opcode.ADD).instr_class == InstrClass.ARITH_REG
        assert spec_for(Opcode.ADDI).instr_class == InstrClass.ARITH_IMM
        assert spec_for(Opcode.MOVI).instr_class == InstrClass.LOGICAL_IMM
        assert spec_for(Opcode.LD).instr_class == InstrClass.LOAD
        assert spec_for(Opcode.BFS).instr_class == InstrClass.BITFIELD

    def test_units(self):
        assert spec_for(Opcode.RAND).unit == Unit.LFSR
        assert spec_for(Opcode.SCHEDHI).unit == Unit.TIMER
        assert spec_for(Opcode.DONE).unit == Unit.EVENT

    def test_store_reads_rd(self):
        """Stores read the value from rd (needed for r15 pop counting)."""
        assert spec_for(Opcode.ST).reads_rd
        assert not spec_for(Opcode.ST).writes_rd

    def test_every_spec_has_class_and_unit(self):
        for spec in all_specs():
            assert isinstance(spec.instr_class, InstrClass)
            assert isinstance(spec.unit, Unit)


class TestDisassembly:
    def test_instruction_text_round_trips_through_assembler(self):
        from repro.asm import assemble
        samples = [
            Instruction(Opcode.ADD, rd=1, rs=2),
            Instruction(Opcode.SLL, rd=3, rs=7),
            Instruction(Opcode.MOVI, rd=4, rs=0, imm=0xBEEF),
            Instruction(Opcode.LD, rd=5, rs=6, imm=12),
            Instruction(Opcode.BFS, rd=1, rs=2, imm=0x0FF0),
            Instruction(Opcode.BNEZ, rs=2, imm=-3),
            Instruction(Opcode.JMP, imm=0x0100),
            Instruction(Opcode.DONE),
        ]
        source = "\n".join(ins.text() for ins in samples)
        module = assemble(source)
        expected = [word for ins in samples for word in encode(ins)]
        assert module.text == expected

    def test_disassemble_words_handles_data(self):
        words = encode(Instruction(Opcode.ADD, rd=1, rs=2)) + [0xFFFF]
        lines = disassemble_words(words)
        assert "add" in lines[0]
        assert ".word 0xffff" in lines[1]
