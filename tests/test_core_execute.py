"""Instruction-semantics tests, including property-based ALU checks
against a Python two's-complement oracle."""

import pytest
from hypothesis import given, strategies as st

from repro.asm import build
from repro.core import CoreConfig, SnapProcessor

words16 = st.integers(0, 0xFFFF)


def run_program(source, regs=None, dmem=None, voltage=1.8):
    """Assemble, preload registers/memory, run to halt, return processor."""
    proc = SnapProcessor(config=CoreConfig(voltage=voltage,
                                           max_instructions=100000))
    proc.load(build(source))
    for index, value in (regs or {}).items():
        proc.regs.poke(index, value)
    for address, value in (dmem or {}).items():
        proc.dmem.poke(address, value)
    proc.run()
    assert proc.halted
    return proc


class TestArithmetic:
    @given(a=words16, b=words16)
    def test_add_matches_oracle(self, a, b):
        proc = run_program("add r1, r2\nhalt\n", regs={1: a, 2: b})
        assert proc.regs.peek(1) == (a + b) & 0xFFFF
        assert proc.carry == ((a + b) >> 16)

    @given(a=words16, b=words16)
    def test_sub_matches_oracle(self, a, b):
        proc = run_program("sub r1, r2\nhalt\n", regs={1: a, 2: b})
        assert proc.regs.peek(1) == (a - b) & 0xFFFF
        assert proc.carry == (1 if a < b else 0)

    @given(a=words16, b=words16, c=words16, d=words16)
    def test_32bit_add_with_carry_chain(self, a, b, c, d):
        """add/addc implement >16-bit arithmetic (Section 3.4)."""
        proc = run_program("add r1, r3\naddc r2, r4\nhalt\n",
                           regs={1: a, 2: b, 3: c, 4: d})
        full = ((b << 16) | a) + ((d << 16) | c)
        assert proc.regs.peek(1) == full & 0xFFFF
        assert proc.regs.peek(2) == (full >> 16) & 0xFFFF

    @given(a=words16, b=words16, c=words16, d=words16)
    def test_32bit_sub_with_borrow_chain(self, a, b, c, d):
        proc = run_program("sub r1, r3\nsubc r2, r4\nhalt\n",
                           regs={1: a, 2: b, 3: c, 4: d})
        full = (((b << 16) | a) - ((d << 16) | c)) & 0xFFFFFFFF
        assert proc.regs.peek(1) == full & 0xFFFF
        assert proc.regs.peek(2) == (full >> 16) & 0xFFFF

    @given(a=words16, imm=words16)
    def test_addi_subi(self, a, imm):
        proc = run_program("addi r1, %d\nsubi r2, %d\nhalt\n" % (imm, imm),
                           regs={1: a, 2: a})
        assert proc.regs.peek(1) == (a + imm) & 0xFFFF
        assert proc.regs.peek(2) == (a - imm) & 0xFFFF


class TestLogic:
    @given(a=words16, b=words16)
    def test_logical_ops(self, a, b):
        proc = run_program(
            "and r1, r5\nor r2, r5\nxor r3, r5\nnot r4, r5\nhalt\n",
            regs={1: a, 2: a, 3: a, 4: 0, 5: b})
        assert proc.regs.peek(1) == a & b
        assert proc.regs.peek(2) == a | b
        assert proc.regs.peek(3) == a ^ b
        assert proc.regs.peek(4) == (~b) & 0xFFFF

    @given(a=words16, imm=words16)
    def test_logical_imm(self, a, imm):
        proc = run_program(
            "andi r1, %d\nori r2, %d\nxori r3, %d\nhalt\n" % (imm, imm, imm),
            regs={1: a, 2: a, 3: a})
        assert proc.regs.peek(1) == a & imm
        assert proc.regs.peek(2) == a | imm
        assert proc.regs.peek(3) == a ^ imm

    @given(value=words16, mask=words16, src=words16)
    def test_bfs_semantics(self, value, mask, src):
        """bfs sets the masked field of dst from src (Section 3.4)."""
        proc = run_program("bfs r1, r2, %d\nhalt\n" % mask,
                           regs={1: value, 2: src})
        assert proc.regs.peek(1) == (value & ~mask) | (src & mask)


class TestShifts:
    @given(value=words16, amount=st.integers(0, 15))
    def test_shift_immediate(self, value, amount):
        proc = run_program(
            "sll r1, %d\nsrl r2, %d\nsra r3, %d\nhalt\n"
            % (amount, amount, amount),
            regs={1: value, 2: value, 3: value})
        signed = value - 0x10000 if value & 0x8000 else value
        assert proc.regs.peek(1) == (value << amount) & 0xFFFF
        assert proc.regs.peek(2) == value >> amount
        assert proc.regs.peek(3) == (signed >> amount) & 0xFFFF

    @given(value=words16, amount=st.integers(0, 15))
    def test_shift_variable(self, value, amount):
        proc = run_program("sllv r1, r4\nsrlv r2, r4\nhalt\n",
                           regs={1: value, 2: value, 4: amount})
        assert proc.regs.peek(1) == (value << amount) & 0xFFFF
        assert proc.regs.peek(2) == value >> amount


class TestMemory:
    @given(value=words16, base=st.integers(0, 100), offset=st.integers(0, 100))
    def test_store_load_round_trip(self, value, base, offset):
        proc = run_program("st r1, %d(r2)\nld r3, %d(r2)\nhalt\n"
                           % (offset, offset),
                           regs={1: value, 2: base})
        assert proc.regs.peek(3) == value
        assert proc.dmem.peek(base + offset) == value

    def test_imem_self_modification(self):
        """The core can write its own IMEM (Section 3.1) -- used for
        over-the-radio reprogramming."""
        proc = run_program("""
            movi r1, 0x0000      ; nop encoding
            sti r1, target(r0)
            movi r2, 1
        target:
            halt                  ; overwritten with nop before reaching it
            movi r2, 2
            halt
        """)
        assert proc.regs.peek(2) == 2

    def test_imem_load_reads_code(self):
        proc = run_program("ldi r1, 0(r0)\nhalt\n")
        assert proc.regs.peek(1) == proc.imem.peek(0)


class TestControlFlow:
    def test_branch_taken_and_not_taken(self):
        proc = run_program("""
            movi r1, 0
            beqz r1, .yes
            movi r2, 99
        .yes:
            movi r3, 1
            bnez r1, .no
            movi r4, 2
        .no:
            halt
        """)
        assert proc.regs.peek(2) == 0
        assert proc.regs.peek(3) == 1
        assert proc.regs.peek(4) == 2

    @given(value=words16)
    def test_sign_branches(self, value):
        proc = run_program("""
            bltz r1, .neg
            movi r2, 1
            jmp .end
        .neg:
            movi r2, 2
        .end:
            halt
        """, regs={1: value})
        expected = 2 if value & 0x8000 else 1
        assert proc.regs.peek(2) == expected

    def test_jal_and_ret(self):
        proc = run_program("""
            movi sp, 0x700
            jal fn
            movi r2, 5
            halt
        fn:
            movi r1, 7
            ret
        """)
        assert proc.regs.peek(1) == 7
        assert proc.regs.peek(2) == 5

    def test_jalr(self):
        proc = run_program("""
            movi r1, fn
            jalr r1
            halt
        fn:
            movi r2, 9
            jr lr
        """)
        assert proc.regs.peek(2) == 9
        assert proc.halted

    def test_nested_calls_with_stack(self):
        proc = run_program("""
            movi sp, 0x400
            jal outer
            halt
        outer:
            push lr
            jal inner
            pop lr
            addi r1, 1
            ret
        inner:
            movi r1, 10
            ret
        """)
        assert proc.regs.peek(1) == 11


class TestRandSeed:
    def test_rand_is_deterministic_after_seed(self):
        proc_a = run_program("movi r1, 77\nseed r1\nrand r2\nrand r3\nhalt\n")
        proc_b = run_program("movi r1, 77\nseed r1\nrand r2\nrand r3\nhalt\n")
        assert proc_a.regs.peek(2) == proc_b.regs.peek(2)
        assert proc_a.regs.peek(3) == proc_b.regs.peek(3)
        assert proc_a.regs.peek(2) != proc_a.regs.peek(3)

    def test_rand_nonzero(self):
        proc = run_program("rand r1\nhalt\n")
        assert proc.regs.peek(1) != 0
