"""Integration tests for observability wired into the core, node, and
network layers: the zero-cost-when-disabled guarantee, profiler/meter
reconciliation, metrics wiring, and the snapshot APIs."""

import json

import pytest

from repro.asm import build
from repro.core import CoreConfig, SnapProcessor
from repro.network import NetworkSimulator
from repro.node import SensorNode
from repro.obs import MemorySink, Observability

BLINK = """
boot:
    movi r1, 0
    movi r2, handler
    setaddr r1, r2
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
handler:
    ld r3, 0(r0)
    xori r3, 1
    st r3, 0(r0)
    movi r4, 0x4000
    or r4, r3
    mov r15, r4          ; write LED port
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
"""

SENDER = """
boot:
    movi r1, 4           ; RADIO_TX_DONE -> ignore handler
    movi r2, idle
    setaddr r1, r2
    movi r15, 0x2000     ; TX command
    movi r15, 0x1234     ; data word
    done
idle:
    done
"""

RECEIVER = """
boot:
    movi r1, 3           ; RADIO_RX event
    movi r2, on_word
    setaddr r1, r2
    movi r15, 0x1000     ; RX command
    done
on_word:
    mov r3, r15
    st r3, 0(r0)
    done
"""


def _run_blink(obs=None, until=0.0005):
    node = SensorNode(config=CoreConfig(voltage=0.6))
    node.load(build(BLINK))
    if obs is not None:
        node.attach_observability(obs)
    node.run(until=until)
    return node


class TestZeroCost:
    def test_observability_disabled_by_default(self):
        processor = SnapProcessor()
        assert processor.obs is None
        assert processor.event_queue.obs is None
        assert processor.mcp.obs is None
        node = SensorNode()
        assert node.radio.obs is None
        assert NetworkSimulator().obs is None

    def test_disabled_run_is_bit_identical_to_instrumented_run(self):
        plain = _run_blink()
        traced = _run_blink(obs=Observability(profile=True))

        # Exact float equality, not approx: the disabled path must not
        # perturb the simulation in any way.
        assert plain.meter.total_energy == traced.meter.total_energy
        assert plain.meter.instructions == traced.meter.instructions
        assert plain.meter.busy_time == traced.meter.busy_time
        assert plain.meter.idle_time == traced.meter.idle_time
        assert plain.meter.wakeups == traced.meter.wakeups
        assert plain.kernel.now == traced.kernel.now
        assert plain.leds.toggles(led=0) == traced.leds.toggles(led=0)

    def test_network_run_is_bit_identical(self):
        def run(obs=None):
            net = NetworkSimulator(seed=7)
            net.add_node(0, program=build(SENDER))
            net.add_node(1, program=build(RECEIVER))
            if obs is not None:
                net.attach_observability(obs)
            net.run(until=0.05)
            return net

        plain, traced = run(), run(obs=Observability())
        assert plain.total_energy(include_radio=True) == \
            traced.total_energy(include_radio=True)
        assert plain.nodes[1].processor.dmem.peek(0) == \
            traced.nodes[1].processor.dmem.peek(0) == 0x1234


class TestProfiler:
    def test_reconciles_with_energy_meter(self):
        obs = Observability(profile=True)
        node = _run_blink(obs=obs)
        profiled, metered = obs.profiler.reconcile(node.meter)
        assert profiled == pytest.approx(metered, rel=1e-12)
        assert obs.profiler.instructions == node.meter.instructions
        # Per-handler energies partition the profiled total.
        assert sum(h.energy for h in obs.profiler.handler_profiles()) == \
            pytest.approx(profiled, rel=1e-12)

    def test_handler_attribution(self):
        obs = Observability(profile=True)
        _run_blink(obs=obs)
        tags = {handler.tag for handler in obs.profiler.handler_profiles()}
        assert "boot" in tags
        timer = [h for h in obs.profiler.handler_profiles()
                 if h.tag != "boot"]
        assert timer and timer[0].invocations >= 2
        assert timer[0].energy_per_invocation > 0
        assert timer[0].instructions_per_invocation > 0

    def test_hotspots_sorted_by_energy(self):
        obs = Observability(profile=True)
        _run_blink(obs=obs)
        spots = obs.profiler.hotspots(top=5)
        assert len(spots) == 5
        energies = [spot.energy for spot in spots]
        assert energies == sorted(energies, reverse=True)
        assert all(spot.mnemonic for spot in spots)

    def test_report_mentions_handlers_and_hotspots(self):
        obs = Observability(profile=True)
        _run_blink(obs=obs)
        report = obs.profiler.report(top=3)
        assert "-- handlers (by energy) --" in report
        assert "-- hot PCs (top 3 by energy) --" in report
        assert "boot" in report


class TestMetricsWiring:
    def test_processor_and_queue_metrics_match_meter(self):
        obs = Observability()
        node = _run_blink(obs=obs)
        snapshot = obs.metrics.snapshot()
        assert snapshot["node0.cpu.instructions"] == node.meter.instructions
        assert snapshot["node0.cpu.wakeups"] == node.meter.wakeups
        assert snapshot["node0.cpu.eq.inserted"] == \
            node.processor.event_queue.inserted
        assert snapshot["node0.cpu.dispatch_latency"]["count"] == \
            node.meter.dispatch_count

    def test_radio_and_channel_metrics(self):
        obs = Observability()
        net = NetworkSimulator()
        net.attach_observability(obs)
        net.add_node(0, program=build(SENDER))
        net.add_node(1, program=build(RECEIVER))
        net.run(until=0.05)

        snapshot = obs.metrics.snapshot()
        assert snapshot["node0.radio.tx_words"] == 1
        assert snapshot["node1.radio.rx_words"] == 1
        assert snapshot["channel.words_carried"] == 1
        assert snapshot["node0.cpu.mcp.commands"] >= 1

    def test_radio_events_on_the_bus(self):
        obs = Observability()
        sink = obs.bus.attach(MemorySink())
        net = NetworkSimulator()
        net.attach_observability(obs)
        net.add_node(0, program=build(SENDER))
        net.add_node(1, program=build(RECEIVER))
        net.run(until=0.05)

        kinds = [record["type"] for record in sink.records()]
        assert "radio_tx" in kinds and "radio_rx" in kinds
        assert "command" in kinds
        tx = next(r for r in sink.records() if r["type"] == "radio_tx")
        assert tx["word"] == 0x1234 and tx["node"] == "node0.radio"


class TestSnapshots:
    def test_node_metrics_snapshot(self):
        node = _run_blink()
        snapshot = node.metrics_snapshot()
        assert snapshot["cpu"]["instructions"] == node.meter.instructions
        assert snapshot["cpu"]["mode"] == "sleeping"
        assert snapshot["event_queue"]["inserted"] >= 2
        assert snapshot["mcp"]["commands"] >= 1
        # The blink program is not the netstack, but harvest still reads
        # the (zeroed) counter cells without side effects.
        assert set(snapshot["mac"]) == {"tx_packets", "rx_packets", "rx_bad"}
        json.dumps(snapshot)

    def test_network_snapshot_totals_are_consistent(self):
        net = NetworkSimulator()
        net.add_node(0, program=build(SENDER))
        net.add_node(1, program=build(RECEIVER))
        net.add_node(2)  # passive sniffer, no program
        net.run(until=0.05)

        snapshot = net.snapshot(include_netstack=False)
        assert snapshot["time_s"] == net.kernel.now
        assert set(snapshot["nodes"]) == {0, 1, 2}
        totals = snapshot["totals"]
        assert totals["instructions"] == sum(
            node.meter.instructions for node in net.nodes.values())
        assert totals["energy_j"] == pytest.approx(net.total_energy())
        assert totals["radio_words_sent"] == 1
        assert snapshot["channel"]["words_carried"] == 1
        json.dumps(snapshot)
