"""Fast-path engine tests: predecode invalidation (self-modifying code),
stall accounting, and bit-identity against the reference interpreter.

The batched fast path (``CoreConfig(fast_path=True)``, the default) is
only admissible because it is indistinguishable from the per-event
reference engine in every architecturally visible way: register and
memory state, every meter accumulator at full float precision, and the
exact per-instruction timestamps seen by trace and observability hooks.
These tests pin that equivalence on the paths where the engines diverge
most -- self-modifying code, r15 stalls, and timer-driven sleep/wake.
"""

import pytest

from repro.asm import build
from repro.bench.simspeed import meter_digest
from repro.core import CoreConfig, SnapProcessor
from repro.core.processor import Mode
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.netstack import build_blink_app
from repro.node import SensorNode
from repro.obs import MemorySink, Observability

ENGINES = [True, False]


def make_processor(source, fast_path=True, **config_kwargs):
    config_kwargs.setdefault("max_instructions", 1_000_000)
    proc = SnapProcessor(config=CoreConfig(voltage=0.6, fast_path=fast_path,
                                           **config_kwargs))
    proc.load(build(source))
    return proc


# -- stall accounting ---------------------------------------------------------


class TestStallAccounting:
    @pytest.mark.parametrize("fast_path", ENGINES)
    def test_stalled_instruction_charges_one_imem_read(self, fast_path):
        """Regression: a stalled r15 read used to charge its IMEM fetch
        on every retry, double-counting ``imem.reads`` (and the derived
        IMEM access statistics) for each stall cycle.  One retired
        dynamic instruction is exactly one fetch of its words."""
        proc = make_processor("mov r1, r15\nst r1, 0(r0)\ndone\n",
                              fast_path=fast_path)
        proc.kernel.schedule(1e-3, proc.mcp._deliver, 0x1234)
        proc.run()
        assert proc.dmem.peek(0) == 0x1234
        assert proc.asleep
        # mov (1 word) + st (2 words) + done (1 word), each charged once
        # even though the mov stalled and retried after the delivery.
        assert proc.imem.reads == 4

    @pytest.mark.parametrize("fast_path", ENGINES)
    def test_stall_leaves_pc_at_stalled_instruction(self, fast_path):
        proc = make_processor("movi r1, 1\nmov r2, r15\ndone\n",
                              fast_path=fast_path)
        proc.kernel.schedule(1.0, proc.mcp._deliver, 7)
        proc.run(until=0.5)
        assert proc.mode == Mode.STALLED
        assert proc.pc == 2  # movi is two words; the mov stalled at 2
        proc.run()
        assert proc.regs.peek(2) == 7


# -- self-modifying code through the predecode cache --------------------------

# Two passes over a patch site: pass 1 executes the original instruction
# (populating the decode cache for that pc), then rewrites it with sti;
# pass 2 must execute the *new* instruction -- exactly what a cold decode
# of the patched image would run.

PATCH_ONE_WORD = """
boot:
    movi r2, 5
    movi r3, 7
    movi r6, 2
    movi r4, %(word)d
    movi r5, patch
loop:
patch:
    mov r1, r0
    sti r4, 0(r5)
    subi r6, 1
    bnez r6, loop
    done
"""

PATCH_SECOND_WORD = """
boot:
    movi r6, 2
    movi r4, 99
    movi r5, patch
loop:
patch:
    movi r1, 11
    sti r4, 1(r5)
    subi r6, 1
    bnez r6, loop
    done
"""


class TestSelfModifyingCode:
    @pytest.mark.parametrize("fast_path", ENGINES)
    def test_sti_rewrites_one_word_instruction(self, fast_path):
        """``mov r1, r0`` at the patch site becomes ``add r2, r3``; the
        second pass must run the new instruction, not the cached one."""
        add_word = encode(Instruction(Opcode.ADD, rd=2, rs=3))[0]
        proc = make_processor(PATCH_ONE_WORD % {"word": add_word},
                              fast_path=fast_path)
        proc.run()
        assert proc.asleep
        assert proc.regs.peek(1) == 0    # pass 1: the original mov r1, r0
        assert proc.regs.peek(2) == 12   # pass 2: add r2, r3 (5 + 7)

    @pytest.mark.parametrize("fast_path", ENGINES)
    def test_sti_rewrites_second_word_of_two_word_instruction(self,
                                                              fast_path):
        """Patching only the immediate word of a cached ``movi`` must
        invalidate the slot at the *previous* address (the opcode word
        did not change)."""
        proc = make_processor(PATCH_SECOND_WORD, fast_path=fast_path)
        proc.run()
        assert proc.asleep
        assert proc.regs.peek(1) == 99   # pass 2 saw the patched immediate

    def test_poke_invalidates_predecode(self):
        proc = make_processor("movi r1, 11\ndone\n")
        proc._predecode(0)
        assert proc._predec[0] is not None
        proc.imem.poke(1, 99)            # the movi's immediate word
        assert proc._predec[0] is None
        assert proc._predecode(0)[0].imm == 99

    def test_write_invalidates_previous_slot_too(self):
        proc = make_processor("movi r1, 11\ndone\n")
        proc._predecode(0)
        proc._predecode(2)               # the done
        proc.imem.write(2, proc.imem.peek(2))
        # Writing word 2 drops slot 2 and slot 1 (word 2 could have been
        # the second word of a two-word instruction at 1); slot 0 stays.
        assert proc._predec[2] is None
        assert proc._predec[0] is not None

    def test_load_image_invalidates_range(self):
        proc = make_processor("movi r1, 11\ndone\n")
        proc._predecode(0)
        proc._predecode(2)
        proc.imem.load_image([0, 0], base=8)
        assert proc._predec[0] is not None   # untouched range survives
        proc.imem.load_image(list(proc.imem.dump(0, 3)), base=0)
        assert proc._predec[0] is None
        assert proc._predec[2] is None


# -- bit-identity against the reference interpreter ---------------------------

TIMER_WORKLOAD = """
boot:
    movi r1, 0
    movi r2, handler
    setaddr r1, r2
    movi r1, 0
    movi r2, 50
    schedlo r1, r2
    done
handler:
    ld r3, 0(r0)
    addi r3, 1
    st r3, 0(r0)
    movi r1, 0
    movi r2, 50
    schedlo r1, r2
    done
"""


def _run_traced(fast_path, until):
    trace = []
    proc = make_processor(
        TIMER_WORKLOAD, fast_path=fast_path,
        trace_fn=lambda p, t, pc, ins: trace.append((t, pc, str(ins))))
    proc.run(until=until)
    return proc, trace


class TestBitIdentity:
    def test_timer_workload_identical_traces_and_meters(self):
        """Every per-instruction timestamp, pc, and mnemonic -- and every
        meter accumulator at full float precision -- must match between
        the two engines across ten sleep/wake/dispatch cycles."""
        fast, fast_trace = _run_traced(True, until=0.00052)
        ref, ref_trace = _run_traced(False, until=0.00052)
        assert fast.dmem.peek(0) == 10
        assert fast_trace == ref_trace
        assert meter_digest(fast) == meter_digest(ref)

    def test_blink_app_identical_obs_streams(self):
        """With observability attached the fast path keeps bursting; the
        full event records (timestamps and energies included) must still
        be identical to the reference engine's."""
        streams = {}
        for fast_path in ENGINES:
            obs = Observability()
            sink = obs.bus.attach(MemorySink())
            node = SensorNode(config=CoreConfig(voltage=0.6,
                                                fast_path=fast_path))
            node.load(build_blink_app(period_ticks=200))
            node.attach_observability(obs)
            node.run(until=0.05)
            streams[fast_path] = [event.to_record()
                                  for event in sink.events]
        assert streams[True] == streams[False]
        assert len(streams[True]) > 50

    def test_burst_counters_only_move_on_fast_path(self):
        fast, _ = _run_traced(True, until=0.00052)
        ref, _ = _run_traced(False, until=0.00052)
        assert fast.bursts > 0
        assert fast.burst_instructions == fast.meter.instructions
        assert ref.bursts == 0
        assert ref.burst_instructions == 0

    def test_hoist_absorb_round_trip(self):
        proc = make_processor(TIMER_WORKLOAD)
        proc.run(until=0.00052)
        meter = proc.meter
        before = meter_digest(proc)
        meter.absorb_hot(*meter.hoist_hot())
        assert meter_digest(proc) == before
