"""MAC robustness: framing recovery and CSMA backoff."""

import pytest

from repro.asm import assemble, link
from repro.core import CoreConfig
from repro.isa.events import Event
from repro.netstack import layout
from repro.netstack.drivers import build_rx_node, null_dispatch_source
from repro.netstack.mac import mac_source
from repro.netstack.runtime import boot_source
from repro.network import NetworkSimulator


class TestFramingRecovery:
    def _receiver(self):
        net = NetworkSimulator()
        node = net.add_node(2, program=build_rx_node(2))
        net.run(until=0.001)
        return net, node

    def _feed(self, net, node, words, spacing=1e-3):
        for index, word in enumerate(words):
            net.kernel.schedule(spacing * (index + 1), node.radio.deliver,
                                word)
        net.run(until=net.kernel.now + spacing * (len(words) + 4))

    def test_word_loss_desync_detected(self):
        """Dropping a header word shifts the stream so a payload word
        lands in the LEN slot; the length sanity check catches the wild
        value and resets instead of waiting forever."""
        net, node = self._receiver()
        packet = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 1,
                                    [0x4000, 9, 0x5000])
        damaged = packet[:2] + packet[3:]  # TYPE word lost: stream shifts
        self._feed(net, node, damaged)
        dmem = node.processor.dmem
        # The shifted stream put 0x4000 into the LEN position -> the
        # framing check fired; nothing was (mis)delivered, and the node
        # is alive and asleep, not wedged waiting for 0x4000 words.
        assert dmem.peek(layout.RX_BAD_ADDR) >= 1
        assert dmem.peek(layout.RX_COUNT_ADDR) == 0
        assert node.processor.asleep

    def test_recovers_when_stream_realigns(self):
        """After a framing reset that consumes the tail of the damaged
        stream, the next clean packet is received normally.  (Full
        mid-stream realignment would need the preamble/start-symbol
        framing that the real node's radio hardware provides.)"""
        net, node = self._receiver()
        # Header fragment whose (shifted) LEN word is wild and final.
        fragment = [2, 0, 1, 7, 0x4000]
        self._feed(net, node, fragment)
        assert node.processor.dmem.peek(layout.RX_BAD_ADDR) == 1
        clean = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 2, [7])
        self._feed(net, node, clean)
        assert node.processor.dmem.peek(layout.RX_COUNT_ADDR) == 1

    def test_plausible_but_wrong_length_caught_by_checksum(self):
        """A corrupted LEN that stays in range is caught one layer up,
        by the additive checksum."""
        net, node = self._receiver()
        packet = layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 1, [9, 8])
        packet[layout.PKT_LEN] = 3  # claims one extra payload word
        self._feed(net, node, packet + [0x1111])  # filler word
        dmem = node.processor.dmem
        assert dmem.peek(layout.RX_COUNT_ADDR) == 0
        assert dmem.peek(layout.RX_BAD_ADDR) >= 1


def build_csma_tx_node(node_id):
    """A node whose SOFT event sends the staged packet via CSMA: random
    backoff on timer 2, transmission from the TIMER2 handler."""
    source = boot_source(
        handlers={Event.SOFT: "csma_soft_handler",
                  Event.TIMER2: "mac_backoff_expired",
                  Event.RADIO_RX: "mac_rx_handler"},
        init_calls=("mac_rx_init",),
        node_id=node_id, start_rx=True)
    driver = layout.equates() + """
csma_soft_handler:
    jal mac_send_csma
    done
"""
    return link([assemble(source, name="boot"),
                 assemble(mac_source(), name="mac"),
                 assemble(driver, name="csmadrv"),
                 assemble(null_dispatch_source(), name="nulldisp")])


class TestCsma:
    def _contention_run(self, use_csma, seeds=(1, 14)):
        """Two senders triggered simultaneously; count sink receptions."""
        from repro.netstack.drivers import build_tx_node
        builder = build_csma_tx_node if use_csma else build_tx_node
        net = NetworkSimulator()
        a = net.add_node(1, program=builder(1))
        b = net.add_node(2, program=builder(2))
        sink = net.add_node(3, program=build_rx_node(3))
        net.run(until=0.001)
        # Distinct LFSR seeds give the two nodes distinct backoffs.
        a.processor.lfsr.seed(seeds[0])
        b.processor.lfsr.seed(seeds[1])
        for node, seq in ((a, 1), (b, 2)):
            packet = layout.make_packet(3, node.node_id,
                                        layout.PKT_TYPE_DATA, seq, [3, seq])
            for index, word in enumerate(packet[:-1]):
                node.processor.dmem.poke(layout.TX_BUF + index, word)
        a.processor.raise_soft_event()
        b.processor.raise_soft_event()
        net.run(until=1.0)
        return (sink.processor.dmem.peek(layout.RX_COUNT_ADDR),
                net.channel.collisions)

    def test_simultaneous_send_without_csma_collides(self):
        received, collisions = self._contention_run(use_csma=False)
        assert collisions > 0
        assert received < 2

    def test_csma_backoff_separates_the_senders(self):
        received, collisions = self._contention_run(use_csma=True)
        assert received == 2
        assert collisions == 0

    def test_backoff_uses_the_lfsr(self):
        """Identical seeds -> identical backoffs -> collision; the rand
        instruction is what provides the separation."""
        received, collisions = self._contention_run(use_csma=True,
                                                    seeds=(7, 7))
        assert collisions > 0


def build_csma_ca_tx_node(node_id):
    """CSMA/CA: short slots plus clear-channel assessment."""
    source = boot_source(
        handlers={Event.SOFT: "ca_soft_handler",
                  Event.TIMER2: "mac_backoff_ca_expired",
                  Event.RADIO_RX: "mac_rx_handler"},
        init_calls=("mac_rx_init",),
        node_id=node_id, start_rx=True)
    driver = layout.equates() + """
ca_soft_handler:
    jal mac_send_csma_ca
    done
"""
    return link([assemble(source, name="boot"),
                 assemble(mac_source(), name="mac"),
                 assemble(driver, name="cadrv"),
                 assemble(null_dispatch_source(), name="nulldisp")])


class TestCsmaCa:
    def _run(self, seeds):
        net = NetworkSimulator()
        a = net.add_node(1, program=build_csma_ca_tx_node(1))
        b = net.add_node(2, program=build_csma_ca_tx_node(2))
        sink = net.add_node(3, program=build_rx_node(3))
        net.run(until=0.001)
        a.processor.lfsr.seed(seeds[0])
        b.processor.lfsr.seed(seeds[1])
        for node, seq in ((a, 1), (b, 2)):
            packet = layout.make_packet(3, node.node_id,
                                        layout.PKT_TYPE_DATA, seq, [3, seq])
            for index, word in enumerate(packet[:-1]):
                node.processor.dmem.poke(layout.TX_BUF + index, word)
        a.processor.raise_soft_event()
        b.processor.raise_soft_event()
        net.run(until=1.0)
        return (sink.processor.dmem.peek(layout.RX_COUNT_ADDR),
                net.channel.collisions)

    def test_carrier_sense_defers_the_later_sender(self):
        """With CCA, ~32us backoff slots are enough: the later sender
        hears the earlier one's transmission and defers, where the
        sense-free variant needed ~8ms slots."""
        received, collisions = self._run(seeds=(1, 14))
        assert received == 2
        assert collisions == 0

    def test_cca_command_reports_channel_state(self):
        """Direct check of the coprocessor CCA path."""
        from repro.coprocessors.commands import CMD_CCA, make_command
        net = NetworkSimulator()
        a = net.add_node(1)
        b = net.add_node(2)
        b.radio.transmit(0xAAAA)   # b is on the air
        a.processor.mcp.push_from_core(make_command(CMD_CCA))
        assert a.processor.mcp.pop_to_core() == 1
        net.kernel.run()           # transmission completes
        a.processor.mcp.push_from_core(make_command(CMD_CCA))
        assert a.processor.mcp.pop_to_core() == 0
