"""Tests for the CLI tools, hex image format, and the debugger."""

import pytest

from repro.asm import build
from repro.core import CoreConfig, SnapProcessor
from repro.tools import Debugger
from repro.tools.hexfile import dump_program, load_words
from repro.tools.snap_as import main as as_main
from repro.tools.snap_cc import main as cc_main
from repro.tools.snap_dis import main as dis_main
from repro.tools.snap_prof import main as prof_main
from repro.tools.snap_run import main as run_main

SAMPLE_ASM = """
boot:
    movi r1, 5
    movi r2, 0
.loop:
    add r2, r1
    subi r1, 1
    bnez r1, .loop
    st r2, 0(r0)
    halt
"""

SAMPLE_C = """
int result;
void init() {
    int i;
    result = 0;
    for (i = 1; i <= 4; i = i + 1) result = result + i;
}
"""


class TestHexFile:
    def test_round_trip(self):
        program = build(SAMPLE_ASM + "\n.data\n.word 7, 8\n")
        text = dump_program(program)
        imem, dmem = load_words(text)
        assert imem == program.imem
        assert dmem == program.dmem

    def test_comments_and_blanks_ignored(self):
        imem, dmem = load_words("# hi\n@text\n0001\n\n# x\n0002\n")
        assert imem == [1, 2]
        assert dmem == []


class TestCliTools:
    def test_assemble_run_roundtrip(self, tmp_path, capsys):
        source_path = tmp_path / "prog.s"
        source_path.write_text(SAMPLE_ASM)
        image_path = tmp_path / "prog.hex"
        assert as_main([str(source_path), "-o", str(image_path)]) == 0
        assert image_path.exists()
        assert run_main([str(image_path), "--dump-dmem", "1"]) == 0
        output = capsys.readouterr().out
        assert "000f" in output  # 5+4+3+2+1 = 15 in dmem[0]
        assert "halted" in output

    def test_run_directly_from_assembly(self, tmp_path, capsys):
        source_path = tmp_path / "prog.s"
        source_path.write_text(SAMPLE_ASM)
        assert run_main([str(source_path), "--trace", "--max-trace", "5"]) == 0
        output = capsys.readouterr().out
        assert "instructions : " in output
        assert "halt" in output  # the trace shows the final instruction

    def test_listing_mode(self, tmp_path, capsys):
        source_path = tmp_path / "prog.s"
        source_path.write_text(SAMPLE_ASM)
        assert as_main([str(source_path), "--listing"]) == 0
        assert "movi r1, 5" in capsys.readouterr().out

    def test_assembler_error_reported(self, tmp_path, capsys):
        source_path = tmp_path / "bad.s"
        source_path.write_text("bogus r1, r2\n")
        assert as_main([str(source_path)]) == 1
        assert "unknown mnemonic" in capsys.readouterr().err

    def test_cc_tool(self, tmp_path, capsys):
        source_path = tmp_path / "app.c"
        source_path.write_text(SAMPLE_C)
        out_path = tmp_path / "app.s"
        assert cc_main([str(source_path), "-o", str(out_path),
                        "--with-runtime"]) == 0
        text = out_path.read_text()
        assert "init:" in text
        assert "__mulu:" in text

    def test_cc_error_reported(self, tmp_path, capsys):
        source_path = tmp_path / "bad.c"
        source_path.write_text("void f() { undefined_thing = 1; }\n")
        assert cc_main([str(source_path)]) == 1
        assert "undefined" in capsys.readouterr().err

    def test_dis_tool(self, tmp_path, capsys):
        program = build(SAMPLE_ASM)
        image_path = tmp_path / "prog.hex"
        image_path.write_text(dump_program(program))
        assert dis_main([str(image_path)]) == 0
        assert "movi r1, 5" in capsys.readouterr().out

    def test_run_runaway_reports_error(self, tmp_path, capsys):
        source_path = tmp_path / "spin.s"
        source_path.write_text(".spin: jmp .spin\n")
        assert run_main([str(source_path),
                         "--max-instructions", "1000"]) == 1
        assert "budget" in capsys.readouterr().err


class TestSnapProf:
    def _source(self, tmp_path):
        source_path = tmp_path / "prog.s"
        source_path.write_text(SAMPLE_ASM)
        return str(source_path)

    def test_profile_smoke(self, tmp_path, capsys):
        assert prof_main([self._source(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "attribution  :" in output
        assert "-- handlers (by energy) --" in output
        assert "boot" in output
        assert "-- hot PCs" in output

    def test_trace_exports(self, tmp_path, capsys):
        import json

        jsonl_path = tmp_path / "trace.jsonl"
        chrome_path = tmp_path / "trace.json"
        assert prof_main([self._source(tmp_path),
                          "--jsonl", str(jsonl_path),
                          "--chrome", str(chrome_path),
                          "--metrics", "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "jsonl trace" in output and "chrome trace" in output

        lines = [json.loads(line)
                 for line in jsonl_path.read_text().splitlines()]
        assert lines, "jsonl trace must not be empty"
        assert lines[-1]["type"] == "energy"  # final cumulative sample
        assert any(record["type"] == "instruction" for record in lines)

        chrome = json.loads(chrome_path.read_text())
        assert len(chrome["traceEvents"]) == len(lines)
        assert any(entry["ph"] == "X" for entry in chrome["traceEvents"])

        # The metrics snapshot is printed as JSON and counts what ran.
        snapshot_text = output[output.index("{"):output.rindex("}") + 1]
        snapshot = json.loads(snapshot_text)
        instructions = sum(1 for record in lines
                           if record["type"] == "instruction")
        assert snapshot["snap.instructions"] == instructions

    def test_bad_input_reports_error(self, tmp_path, capsys):
        source_path = tmp_path / "bad.s"
        source_path.write_text("bogus r1, r2\n")
        assert prof_main([str(source_path)]) == 1
        assert "snap-prof" in capsys.readouterr().err


class TestDebugger:
    def _debugger(self, source=SAMPLE_ASM):
        program = build(source)
        processor = SnapProcessor(config=CoreConfig(voltage=1.8))
        processor.load(program)
        return Debugger(processor, program=program), processor, program

    def test_step(self):
        debugger, processor, _ = self._debugger()
        stop = debugger.step()
        assert stop.reason == "step"
        assert debugger.registers()["r1"] == 5
        stop = debugger.step(2)
        assert stop.reason == "step"
        assert debugger.registers()["r2"] == 5  # after first add

    def test_breakpoint_by_symbol(self):
        source = SAMPLE_ASM.replace(".loop", "loop_top")
        debugger, processor, _ = self._debugger(source)
        debugger.add_breakpoint("loop_top")
        stop = debugger.cont()
        assert stop.reason == "breakpoint"
        assert stop.pc == debugger.program.address_of("loop_top")
        # Continue: hits the breakpoint again on the next iteration.
        stop = debugger.cont()
        assert stop.reason == "breakpoint"
        assert debugger.registers()["r1"] == 4

    def test_watchpoint(self):
        debugger, processor, _ = self._debugger()
        debugger.add_watchpoint(0)
        stop = debugger.cont()
        assert stop.reason == "watchpoint"
        assert "0x000f" in stop.detail
        assert processor.dmem.peek(0) == 15

    def test_run_to_completion(self):
        debugger, processor, _ = self._debugger()
        stop = debugger.cont()
        assert stop.reason == "done"
        assert processor.halted

    def test_remove_breakpoint(self):
        debugger, processor, _ = self._debugger()
        debugger.add_breakpoint(0)
        debugger.remove_breakpoint(0)
        stop = debugger.cont()
        assert stop.reason == "done"

    def test_disassemble_at(self):
        debugger, _, _ = self._debugger()
        lines = debugger.disassemble_at(0, count=2)
        assert "movi r1, 5" in lines[0]

    def test_chained_user_trace_still_called(self):
        program = build(SAMPLE_ASM)
        seen = []
        processor = SnapProcessor(config=CoreConfig(
            voltage=1.8, trace_fn=lambda p, t, pc, ins: seen.append(pc)))
        processor.load(program)
        debugger = Debugger(processor, program=program)
        debugger.step(3)
        assert len(seen) == 3
