"""Coverage for smaller pieces: tracer, dispatch latency, hex tools'
corner cases, node-id LFSR seeding, and channel CCA."""

import pytest

from repro.asm import build
from repro.core import CoreConfig, Kernel, SnapProcessor
from repro.core.trace import Tracer
from repro.isa.events import Event
from repro.netstack.runtime import boot_source
from repro.radio import Channel, Radio


class TestTracer:
    def _run_traced(self, limit=100000):
        tracer = Tracer(limit=limit)
        processor = SnapProcessor(config=CoreConfig(voltage=1.8,
                                                    trace_fn=tracer))
        processor.load(build("movi r1, 2\nadd r1, r1\nhalt\n"))
        processor.run()
        return tracer

    def test_records_every_instruction(self):
        tracer = self._run_traced()
        assert len(tracer.entries) == 3
        assert tracer.entries[0][2] == "movi r1, 2"
        assert tracer.entries[-1][2] == "halt"

    def test_limit_keeps_most_recent(self):
        tracer = self._run_traced(limit=2)
        assert len(tracer.entries) == 2
        assert tracer.entries[-1][2] == "halt"

    def test_format(self):
        tracer = self._run_traced()
        text = tracer.format(last=1)
        assert "halt" in text and "0003:" in text  # movi(2) + add(1) words


class TestDispatchLatency:
    def test_idle_dispatch_is_the_wakeup_latency(self):
        source = """
        boot:
            movi r1, 7
            movi r2, h
            setaddr r1, r2
            done
        h:
            done
        """
        processor = SnapProcessor(config=CoreConfig(voltage=0.6))
        processor.load(build(source))
        processor.kernel.schedule(1e-3, processor.raise_soft_event)
        processor.run()
        meter = processor.meter
        assert meter.dispatch_count == 1
        assert meter.dispatch_latency_mean == pytest.approx(
            processor.timing.wakeup_latency, rel=0.01)

    def test_queued_events_wait_behind_handlers(self):
        """A token raised mid-handler is dispatched only after the
        running handler finishes -- its latency includes the queueing."""
        source = """
        boot:
            movi r1, 7
            movi r2, slow
            setaddr r1, r2
            done
        slow:
            movi r3, 500
        .spin:
            subi r3, 1
            bnez r3, .spin
            done
        """
        processor = SnapProcessor(config=CoreConfig(voltage=0.6))
        processor.load(build(source))

        def burst():
            processor.raise_soft_event()
            processor.raise_soft_event()

        processor.kernel.schedule(1e-6, burst)
        processor.run()
        meter = processor.meter
        assert meter.dispatch_count == 2
        # The second token waited for the whole first handler.
        assert meter.dispatch_latency_max > 10 * processor.timing.wakeup_latency


class TestNodeIdSeeding:
    def test_boot_seeds_lfsr_from_node_id(self):
        """Two nodes with different ids draw different random sequences
        right after boot (distinct CSMA backoffs)."""
        states = {}
        for node_id in (2, 3):
            source = boot_source(handlers={}, node_id=node_id)
            processor = SnapProcessor(config=CoreConfig(voltage=0.6))
            processor.load(build(source))
            processor.run()
            states[node_id] = [processor.lfsr.next() for _ in range(3)]
        assert states[2] != states[3]


class TestChannelCca:
    def test_busy_near_respects_range(self):
        kernel = Kernel()
        channel = Channel(comm_range=1.0)
        near = Radio(kernel, name="near")
        far = Radio(kernel, name="far")
        listener = Radio(kernel, name="listener")
        channel.join(near, position=(0.5, 0.0))
        channel.join(far, position=(9.0, 0.0))
        channel.join(listener, position=(0.0, 0.0))
        far.transmit(1)
        assert not listener.carrier_sense()  # out of range
        near.transmit(2)
        assert listener.carrier_sense()
        kernel.run()
        assert not listener.carrier_sense()

    def test_own_transmission_counts_as_busy(self):
        kernel = Kernel()
        radio = Radio(kernel)
        assert not radio.carrier_sense()
        radio.transmit(7)
        assert radio.carrier_sense()

    def test_no_channel_means_idle(self):
        assert not Radio(Kernel()).carrier_sense()


class TestEventQueueUnderLoad:
    def test_burst_beyond_capacity_drops_and_recovers(self):
        """Failure injection: a 20-token burst against an 8-deep queue
        drops the excess, then the system keeps working normally."""
        source = """
        boot:
            movi r1, 7
            movi r2, h
            setaddr r1, r2
            done
        h:
            ld r3, 0(r0)
            addi r3, 1
            st r3, 0(r0)
            done
        """
        processor = SnapProcessor(config=CoreConfig(voltage=0.6))
        processor.load(build(source))
        processor.run(until=1e-6)
        for _ in range(20):
            processor.raise_soft_event()
        processor.run(until=0.001)
        handled_first = processor.dmem.peek(0)
        assert handled_first == 8                      # the queue depth
        assert processor.event_queue.dropped == 12
        # After the burst, normal operation resumes.
        processor.raise_soft_event()
        processor.run(until=0.002)
        assert processor.dmem.peek(0) == handled_first + 1
