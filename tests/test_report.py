"""The paper-fidelity scorecard: claims registry sanity, end-to-end
grading of a full harness collection, the committed-baseline gate, and
the perturbation self-test that proves the gate trips on calibration
drift."""

import json
import os

import pytest

from repro.report import (
    CLAIMS,
    GRADE_DRIFT,
    GRADE_MATCH,
    GRADE_MISSING,
    GRADE_SHAPE_VIOLATION,
    GRADE_WITHIN_BAND,
    MissingMeasurement,
    ShapeClaim,
    ValueClaim,
    claims_by_id,
    collect,
    compare_to_baseline,
    evaluate,
    experiments_block,
    fidelity_payload,
    markdown_scorecard,
    measurements_view,
    perturb_measurements,
)
from repro.report.collect import COLLECTORS
from repro.report.evaluate import evaluate_claim

GOLDEN = os.path.join(os.path.dirname(__file__), "goldens",
                      "fidelity_baseline.json")


@pytest.fixture(scope="session")
def entries():
    """One full harness collection shared by every grading test."""
    return collect()


@pytest.fixture(scope="session")
def measurements(entries):
    return measurements_view(entries)


@pytest.fixture(scope="session")
def scorecard(measurements):
    return evaluate(measurements)


class TestClaimsRegistry:
    def test_ids_unique_and_nonempty(self):
        by_id = claims_by_id()
        assert len(by_id) == len(CLAIMS)
        assert len(CLAIMS) > 100

    def test_every_claim_names_a_known_benchmark(self):
        for claim in CLAIMS:
            assert claim.benchmark in COLLECTORS, claim.id

    def test_value_claim_bands_are_sane(self):
        for claim in CLAIMS:
            if not isinstance(claim, ValueClaim):
                continue
            if claim.band_abs is not None:
                assert claim.band_abs > 0, claim.id
            else:
                low, high = claim.band
                assert low < 1.0 < high, claim.id
                assert claim.match_rel > 0, claim.id

    def test_registry_covers_every_benchmark(self):
        # Every collector payload backs at least one claim, so a
        # benchmark silently dropped from the suite surfaces as missing.
        claimed = {claim.benchmark for claim in CLAIMS}
        assert claimed == set(COLLECTORS)


class TestFullCollection:
    def test_every_claim_gradeable(self, scorecard):
        missing = [r.id for r in scorecard.results
                   if r.grade == GRADE_MISSING]
        assert missing == []

    def test_gate_passes(self, scorecard):
        ok, failures = scorecard.gate()
        assert ok, [(r.id, r.grade, r.detail) for r in failures]

    def test_grades_match_committed_baseline(self, scorecard):
        with open(GOLDEN) as handle:
            baseline = json.load(handle)["grades"]
        diff = compare_to_baseline(scorecard, baseline)
        assert diff["regressions"] == []
        assert diff["new"] == []
        assert diff["removed"] == []
        # The simulator is deterministic, so the grades are too.
        assert scorecard.grades() == baseline

    def test_ingest_path_grades_identically(self, entries, scorecard,
                                            tmp_path):
        from repro.report import load_results_dir
        for name, entry in entries.items():
            payload = {"benchmark": name, "results": entry["results"],
                       "metrics": entry["metrics"], "host": entry["host"]}
            path = tmp_path / ("BENCH_%s.json" % name)
            path.write_text(json.dumps(payload))
        loaded = load_results_dir(str(tmp_path))
        assert set(loaded) == set(entries)
        regraded = evaluate(measurements_view(loaded))
        assert regraded.grades() == scorecard.grades()


class TestPerturbationGate:
    def test_calibration_drift_trips_the_gate(self, measurements):
        perturbed = perturb_measurements(measurements, 1.4)
        graded = evaluate(perturbed)
        ok, failures = graded.gate()
        assert not ok
        counts = graded.counts()
        # A 40% calibration error must push a broad swath of the energy
        # claims out of band, not just a couple.
        assert counts[GRADE_DRIFT] >= 20
        # And it must register as a regression against the baseline.
        with open(GOLDEN) as handle:
            baseline = json.load(handle)["grades"]
        diff = compare_to_baseline(graded, baseline)
        assert len(diff["regressions"]) >= 20

    def test_tiny_drift_stays_inside_the_bands(self, measurements):
        perturbed = perturb_measurements(measurements, 1.004)
        graded = evaluate(perturbed)
        assert graded.counts()[GRADE_DRIFT] == 0

    def test_perturbation_does_not_mutate_the_input(self, measurements):
        before = json.dumps(measurements, sort_keys=True)
        perturb_measurements(measurements, 2.0)
        assert json.dumps(measurements, sort_keys=True) == before


def _value_claim(**overrides):
    spec = dict(id="t.value", section="T", metric="m", benchmark="b",
                source="paper", unit="pJ", expected=100.0,
                extract=lambda m: m["v"], band=(0.9, 1.1))
    spec.update(overrides)
    return ValueClaim(**spec)


class TestEvaluator:
    def test_relative_band_grades(self):
        claim = _value_claim()
        assert evaluate_claim(claim, {"v": 100.5}).grade == GRADE_MATCH
        assert evaluate_claim(claim, {"v": 107.0}).grade == GRADE_WITHIN_BAND
        assert evaluate_claim(claim, {"v": 120.0}).grade == GRADE_DRIFT
        assert evaluate_claim(claim, {"v": 80.0}).grade == GRADE_DRIFT

    def test_absolute_band_grades(self):
        claim = _value_claim(band=None, band_abs=10.0, match_abs=1.0)
        assert evaluate_claim(claim, {"v": 100.9}).grade == GRADE_MATCH
        assert evaluate_claim(claim, {"v": 108.0}).grade == GRADE_WITHIN_BAND
        assert evaluate_claim(claim, {"v": 111.0}).grade == GRADE_DRIFT

    def test_delta_rel_reported(self):
        result = evaluate_claim(_value_claim(), {"v": 110.0})
        assert result.delta_rel == pytest.approx(0.10)
        assert result.measured == 110.0
        assert result.expected == 100.0

    def test_missing_measurement(self):
        def extract(measurements):
            raise MissingMeasurement("nope")
        result = evaluate_claim(_value_claim(extract=extract), {})
        assert result.grade == GRADE_MISSING
        assert "nope" in result.detail

    def test_shape_claim(self):
        claim = ShapeClaim(id="t.shape", section="T", metric="ordering",
                           benchmark="b", source="paper",
                           check=lambda m: (m["a"] < m["b"],
                                            "a=%d b=%d" % (m["a"], m["b"])))
        assert evaluate_claim(claim, {"a": 1, "b": 2}).grade == GRADE_MATCH
        bad = evaluate_claim(claim, {"a": 3, "b": 2})
        assert bad.grade == GRADE_SHAPE_VIOLATION
        assert bad.detail == "a=3 b=2"

    def test_severity_ordering_drives_baseline_diff(self):
        scorecard = evaluate({"v": 120.0}, claims=[_value_claim()])
        diff = compare_to_baseline(scorecard, {"t.value": "match"})
        assert [entry["id"] for entry in diff["regressions"]] == ["t.value"]
        back = evaluate({"v": 100.0}, claims=[_value_claim()])
        diff = compare_to_baseline(back, {"t.value": "drift"})
        assert [entry["id"] for entry in diff["improvements"]] == ["t.value"]


class TestRendering:
    def test_markdown_scorecard_structure(self, scorecard, entries):
        text = markdown_scorecard(scorecard, entries=entries)
        assert text.startswith("# Paper-fidelity scorecard")
        assert "**Gate: PASS**" in text
        for section in ("Section 4.3", "Figure 4", "Table 1", "Figure 5",
                        "Table 2", "Section 4.7", "Extensions"):
            assert "## %s" % section in text, section
        assert "## Benchmark runs" in text

    def test_fidelity_payload_shape(self, scorecard, entries):
        payload = fidelity_payload(scorecard, entries=entries)
        assert payload["gate"]["ok"] is True
        assert len(payload["claims"]) == len(CLAIMS)
        assert set(payload["benchmarks"]) == set(entries)
        json.dumps(payload)  # fully serializable

    def test_experiments_block_sections(self, measurements):
        block = experiments_block(measurements)
        assert "snap_report" in block  # the regeneration command note
        for needle in ("Section 4.3", "Figure 4", "Table 1", "Figure 5",
                       "Table 2", "Section 4.7"):
            assert needle in block, needle


class TestCli:
    def test_list_names_collectors(self, capsys):
        from repro.tools.snap_report import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert out == list(COLLECTORS)

    def test_empty_results_dir_is_usage_error(self, tmp_path):
        from repro.tools.snap_report import main
        assert main(["--results-dir", str(tmp_path)]) == 2
