"""Sensor, ADC, and port model tests."""

import pytest

from repro.core import Kernel
from repro.sensors import (
    Adc,
    ConstantSensor,
    InterruptSensor,
    LedPort,
    TemperatureSensor,
    TraceSensor,
)


class TestAdc:
    def test_range_endpoints(self):
        adc = Adc(bits=10, low=0.0, high=1.0)
        assert adc.convert(-5.0) == 0
        assert adc.convert(5.0) == adc.max_code == 1023

    def test_monotonic(self):
        adc = Adc(bits=8, low=0.0, high=10.0)
        codes = [adc.convert(v / 10) for v in range(0, 101)]
        assert codes == sorted(codes)

    def test_reconstruction_error_within_one_lsb(self):
        adc = Adc(bits=10, low=-10.0, high=50.0)
        step = 60.0 / 1024
        for value in (-10.0, 0.0, 17.3, 49.9):
            code = adc.convert(value)
            assert abs(adc.to_physical(code) - value) <= step

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Adc(bits=0)
        with pytest.raises(ValueError):
            Adc(low=1.0, high=0.0)


class TestSensors:
    def test_constant(self):
        assert ConstantSensor(7).read(123.0) == 7

    def test_trace_replays_by_time(self):
        sensor = TraceSensor([10, 20, 30], sample_hz=1.0)
        assert sensor.read(0.5) == 10
        assert sensor.read(1.5) == 20
        assert sensor.read(3.5) == 10  # wraps

    def test_trace_no_wrap_clamps(self):
        sensor = TraceSensor([1, 2], sample_hz=1.0, wrap=False)
        assert sensor.read(99.0) == 2

    def test_trace_requires_samples(self):
        with pytest.raises(ValueError):
            TraceSensor([])

    def test_temperature_deterministic_and_in_range(self):
        a = TemperatureSensor(seed=42)
        b = TemperatureSensor(seed=42)
        readings = [a.read(t * 3600.0) for t in range(24)]
        assert readings == [b.read(t * 3600.0) for t in range(24)]
        assert all(0 <= code <= a.adc.max_code for code in readings)

    def test_temperature_follows_diurnal_cycle(self):
        sensor = TemperatureSensor(base_c=20.0, amplitude_c=10.0,
                                   period_s=86400.0, noise_c=0.0)
        quarter = sensor.temperature_at(86400.0 / 4)
        three_quarter = sensor.temperature_at(3 * 86400.0 / 4)
        assert quarter == pytest.approx(30.0)
        assert three_quarter == pytest.approx(10.0)

    def test_interrupt_sensor_fires_and_latches(self):
        kernel = Kernel()
        sensor = InterruptSensor(kernel, values=[5, 6])
        fired = []
        sensor.on_interrupt = lambda: fired.append(kernel.now)
        sensor.schedule_interrupts([1.0, 2.0])
        kernel.run()
        assert fired == [1.0, 2.0]
        assert sensor.read(kernel.now) == 6


class TestPorts:
    def test_history_and_value(self):
        port = LedPort()
        port.write(1, 0.0)
        port.write(0, 1.0)
        assert port.value == 0
        assert port.history == [(0.0, 1), (1.0, 0)]

    def test_toggle_counting(self):
        port = LedPort()
        for time, value in enumerate([1, 0, 1, 1, 0]):
            port.write(value, float(time))
        assert port.toggles(led=0) == 3
