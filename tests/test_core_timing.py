"""Timing-model tests against the paper's published numbers."""

import pytest

from repro.core.timing import (
    GATE_DELAY_BY_VOLTAGE,
    TimingModel,
    WAKEUP_GATE_DELAYS,
    gate_delay_at,
    gate_delays_for,
)
from repro.isa.opcodes import Opcode, spec_for


class TestWakeupLatency:
    """Section 4.3: 18 gate delays; 2.5 / 9.8 / 21.4 ns at 1.8/0.9/0.6 V."""

    def test_eighteen_gate_delays(self):
        assert WAKEUP_GATE_DELAYS == 18

    @pytest.mark.parametrize("voltage,expected_ns", [
        (1.8, 2.5), (0.9, 9.8), (0.6, 21.4)])
    def test_published_wakeup_latencies(self, voltage, expected_ns):
        model = TimingModel(voltage)
        assert model.wakeup_latency * 1e9 == pytest.approx(expected_ns, rel=1e-9)


class TestVoltageScaling:
    def test_throughput_ratios_match_paper(self):
        """240/61 = 3.93 and 240/28 = 8.57 are the same ratios as the
        wakeup latencies, so one gate-delay scale reproduces both."""
        ratio_09 = gate_delay_at(0.9) / gate_delay_at(1.8)
        ratio_06 = gate_delay_at(0.6) / gate_delay_at(1.8)
        assert ratio_09 == pytest.approx(240 / 61, rel=0.01)
        assert ratio_06 == pytest.approx(240 / 28, rel=0.01)

    def test_interpolation_is_monotonic(self):
        voltages = [0.45, 0.6, 0.75, 0.9, 1.2, 1.5, 1.8]
        delays = [gate_delay_at(v) for v in voltages]
        assert delays == sorted(delays, reverse=True)

    def test_interpolation_exact_at_published_points(self):
        for voltage, delay in GATE_DELAY_BY_VOLTAGE.items():
            assert gate_delay_at(voltage) == delay

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            gate_delay_at(0.2)
        with pytest.raises(ValueError):
            gate_delay_at(3.0)


class TestInstructionDelays:
    def test_two_word_instructions_slower(self):
        model = TimingModel(1.8)
        assert (model.delay_for_opcode(Opcode.ADDI)
                > model.delay_for_opcode(Opcode.ADD))

    def test_memory_ops_slowest_fast_bus_class(self):
        assert (gate_delays_for(spec_for(Opcode.LD))
                > gate_delays_for(spec_for(Opcode.ADDI))
                > gate_delays_for(spec_for(Opcode.ADD)))

    def test_slow_bus_units_pay_extra(self):
        """IMEM load/store ride the slow busses (Section 3.1)."""
        assert (gate_delays_for(spec_for(Opcode.LDI))
                > gate_delays_for(spec_for(Opcode.LD)))

    def test_taken_branch_penalty(self):
        spec = spec_for(Opcode.BNEZ)
        assert gate_delays_for(spec, taken=True) > gate_delays_for(spec)

    def test_average_instruction_rate_near_240mips_at_nominal(self):
        """Rough static check; the dynamic check runs real handlers."""
        model = TimingModel(1.8)
        # A representative data-monitoring mix (Section 4.5: Arith Reg
        # most frequent, Load second).
        mix = [(Opcode.ADD, 0.35), (Opcode.MOV, 0.08), (Opcode.LD, 0.18),
               (Opcode.ST, 0.07), (Opcode.ADDI, 0.12), (Opcode.MOVI, 0.10),
               (Opcode.BNEZ, 0.07), (Opcode.SLL, 0.03)]
        average = sum(model.delay_for_opcode(op) * weight
                      for op, weight in mix)
        mips = 1.0 / average / 1e6
        assert 190 <= mips <= 290
