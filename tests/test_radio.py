"""Radio transceiver, channel, SEC-DED, and CRC tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Kernel
from repro.radio import (
    Channel,
    Radio,
    RadioConfig,
    RadioMode,
    SecDedStatus,
    crc16_ccitt,
    crc16_update,
    secded_decode,
    secded_encode,
)


class TestTransceiver:
    def test_word_duration_matches_bit_rate(self):
        config = RadioConfig(bit_rate=19_200.0, word_bits=16)
        assert config.word_duration == pytest.approx(16 / 19_200)

    def test_transmit_takes_word_duration(self):
        kernel = Kernel()
        radio = Radio(kernel)
        radio.transmit(0x1234)
        kernel.run()
        assert kernel.now == pytest.approx(radio.config.word_duration)
        assert radio.words_sent == 1

    def test_tx_queue_serializes(self):
        kernel = Kernel()
        radio = Radio(kernel)
        completions = []
        radio.on_tx_complete = lambda: completions.append(kernel.now)
        for word in range(3):
            radio.transmit(word)
        kernel.run()
        assert radio.words_sent == 3
        # on_tx_complete fires once, when the queue fully drains.
        assert len(completions) == 1
        assert kernel.now == pytest.approx(3 * radio.config.word_duration)

    def test_rx_mode_gates_delivery(self):
        kernel = Kernel()
        radio = Radio(kernel)
        received = []
        radio.on_word_received = received.append
        radio.deliver(1)
        radio.set_receive(True)
        radio.deliver(2)
        assert received == [2]
        assert radio.words_dropped == 1

    def test_tx_queue_overflow(self):
        kernel = Kernel()
        radio = Radio(kernel, tx_queue_depth=2)
        radio.transmit(0)  # in flight
        radio.transmit(1)
        radio.transmit(2)
        with pytest.raises(OverflowError):
            radio.transmit(3)

    def test_returns_to_rx_after_tx(self):
        kernel = Kernel()
        radio = Radio(kernel)
        radio.set_receive(True)
        radio.transmit(0xAA)
        assert radio.mode == RadioMode.TX
        kernel.run()
        assert radio.mode == RadioMode.RX

    def test_energy_accounting(self):
        kernel = Kernel()
        radio = Radio(kernel)
        radio.transmit(1)
        kernel.run()
        expected = radio.config.word_duration * radio.config.tx_power_w
        assert radio.radio_energy() == pytest.approx(expected)


class TestChannel:
    def _pair(self, **channel_kwargs):
        kernel = Kernel()
        channel = Channel(**channel_kwargs)
        sender = Radio(kernel, name="tx")
        receiver = Radio(kernel, name="rx")
        channel.join(sender, position=(0, 0))
        channel.join(receiver, position=(1, 0))
        receiver.set_receive(True)
        return kernel, channel, sender, receiver

    def test_broadcast_delivery(self):
        kernel, channel, sender, receiver = self._pair()
        received = []
        receiver.on_word_received = received.append
        sender.transmit(0xCAFE)
        kernel.run()
        assert received == [0xCAFE]
        assert channel.words_carried == 1

    def test_out_of_range_not_delivered(self):
        kernel, channel, sender, receiver = self._pair(comm_range=0.5)
        received = []
        receiver.on_word_received = received.append
        sender.transmit(1)
        kernel.run()
        assert received == []

    def test_collision_corrupts(self):
        kernel = Kernel()
        channel = Channel()
        a = Radio(kernel, name="a")
        b = Radio(kernel, name="b")
        victim = Radio(kernel, name="victim")
        for radio in (a, b, victim):
            channel.join(radio)
        victim.set_receive(True)
        received = []
        victim.on_word_received = received.append
        a.transmit(1)
        b.transmit(2)  # overlaps in time with a's word
        kernel.run()
        assert received == []
        assert channel.collisions >= 1

    def test_sequential_transmissions_do_not_collide(self):
        kernel, channel, sender, receiver = self._pair()
        received = []
        receiver.on_word_received = received.append
        sender.transmit(1)
        kernel.run()
        sender.transmit(2)
        kernel.run()
        assert received == [1, 2]
        assert channel.collisions == 0

    def test_bit_error_injection(self):
        kernel, channel, sender, receiver = self._pair(bit_error_rate=1.0)
        received = []
        receiver.on_word_received = received.append
        sender.transmit(1)
        kernel.run()
        assert received == []
        assert channel.noise_corruptions == 1


class TestSecDed:
    @given(byte=st.integers(0, 255))
    def test_round_trip(self, byte):
        word = secded_encode(byte)
        decoded, status = secded_decode(word)
        assert decoded == byte
        assert status == SecDedStatus.OK

    @given(byte=st.integers(0, 255), bit=st.integers(0, 12))
    def test_single_error_corrected(self, byte, bit):
        word = secded_encode(byte) ^ (1 << bit)
        decoded, status = secded_decode(word)
        assert decoded == byte
        assert status == SecDedStatus.CORRECTED

    @given(byte=st.integers(0, 255),
           bits=st.lists(st.integers(0, 12), min_size=2, max_size=2,
                         unique=True))
    def test_double_error_detected(self, byte, bits):
        word = secded_encode(byte)
        for bit in bits:
            word ^= 1 << bit
        decoded, status = secded_decode(word)
        assert status == SecDedStatus.UNCORRECTABLE
        assert decoded is None

    def test_codeword_fits_radio_word(self):
        for byte in range(256):
            assert secded_encode(byte) < (1 << 13)


class TestCrc:
    def test_known_value(self):
        """CRC-16-CCITT of ASCII '123456789' with init 0xFFFF is 0x29B1."""
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty(self):
        assert crc16_ccitt(b"") == 0xFFFF

    @given(data=st.binary(min_size=1, max_size=64),
           index=st.integers(0, 63), flip=st.integers(1, 255))
    def test_detects_single_byte_corruption(self, data, index, flip):
        if index >= len(data):
            index %= len(data)
        corrupted = bytearray(data)
        corrupted[index] ^= flip
        assert crc16_ccitt(data) != crc16_ccitt(bytes(corrupted))

    @given(data=st.binary(max_size=32))
    def test_update_composes(self, data):
        crc = 0xFFFF
        for byte in data:
            crc = crc16_update(crc, byte)
        assert crc == crc16_ccitt(data)
