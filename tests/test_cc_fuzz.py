"""Differential fuzzing of the C compiler: randomly generated programs
(expressions, assignments, if/else, bounded while loops) are compiled,
run on the simulated SNAP core, and checked against a Python oracle that
interprets the same program with 16-bit unsigned semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm.errors import LinkError
from repro.cc import build_c_node
from repro.core import CoreConfig, SnapProcessor

MASK = 0xFFFF
VARIABLES = ["a", "b", "c", "d"]

#: AST-node budget for generated programs.  Calibrated so the worst
#: generated program compiles to well under the 2048-word IMEM: linking
#: is expected to *succeed* for every fuzz case, and a LinkError fails
#: the property outright instead of being assumed away.
MAX_PROGRAM_COST = 120

# -- program AST as plain tuples -----------------------------------------------
# expr := ("num", n) | ("var", name) | ("bin", op, l, r) | ("shift", op, l, k)
# stmt := ("assign", name, expr) | ("if", expr, [stmt], [stmt])
#       | ("loop", n, body)   # a counted loop over a dedicated counter

_BIN_OPS = ["+", "-", "*", "&", "|", "^", "<", ">", "==", "!="]


@st.composite
def expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return ("num", draw(st.integers(0, MASK)))
        return ("var", draw(st.sampled_from(VARIABLES)))
    if draw(st.integers(0, 4)) == 0:
        return ("shift", draw(st.sampled_from(["<<", ">>"])),
                draw(expressions(depth=depth + 1)),
                draw(st.integers(0, 7)))
    return ("bin", draw(st.sampled_from(_BIN_OPS)),
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)))


@st.composite
def statements(draw, depth=0):
    kind = draw(st.integers(0, 5))
    if kind <= 2 or depth >= 2:
        return ("assign", draw(st.sampled_from(VARIABLES)),
                draw(expressions()))
    if kind <= 4:
        return ("if", draw(expressions()),
                draw(st.lists(statements(depth=depth + 1),
                              min_size=1, max_size=3)),
                draw(st.lists(statements(depth=depth + 1),
                              min_size=0, max_size=2)))
    # A guaranteed-terminating counted loop over a dedicated counter
    # variable that generated code never assigns.
    count = draw(st.integers(0, 8))
    body = draw(st.lists(statements(depth=depth + 1),
                         min_size=1, max_size=2))
    return ("loop", count, body)


# -- render to C ------------------------------------------------------------------


def render_expr(expr):
    kind = expr[0]
    if kind == "num":
        return str(expr[1])
    if kind == "var":
        return expr[1]
    if kind == "shift":
        return "(%s %s %d)" % (render_expr(expr[2]), expr[1], expr[3])
    return "(%s %s %s)" % (render_expr(expr[2]), expr[1], render_expr(expr[3]))


class _Counters:
    """Allocates one dedicated C variable per loop, in traversal order."""

    def __init__(self):
        self.used = 0

    def next(self):
        name = "t%d" % self.used
        self.used += 1
        return name


def render_stmt(stmt, counters, indent="    "):
    kind = stmt[0]
    if kind == "assign":
        return ["%s%s = %s;" % (indent, stmt[1], render_expr(stmt[2]))]
    if kind == "if":
        lines = ["%sif (%s) {" % (indent, render_expr(stmt[1]))]
        for inner in stmt[2]:
            lines.extend(render_stmt(inner, counters, indent + "    "))
        lines.append("%s} else {" % indent)
        for inner in stmt[3]:
            lines.extend(render_stmt(inner, counters, indent + "    "))
        lines.append("%s}" % indent)
        return lines
    count, body = stmt[1], stmt[2]
    counter = counters.next()
    lines = ["%s%s = %d;" % (indent, counter, count),
             "%swhile (%s) {" % (indent, counter)]
    for inner in body:
        lines.extend(render_stmt(inner, counters, indent + "    "))
    lines.append("%s    %s = %s - 1;" % (indent, counter, counter))
    lines.append("%s}" % indent)
    return lines


def expr_cost(expr):
    kind = expr[0]
    if kind in ("num", "var"):
        return 1
    if kind == "shift":
        return 1 + expr_cost(expr[2])
    return 1 + expr_cost(expr[2]) + expr_cost(expr[3])


def stmt_cost(stmt):
    kind = stmt[0]
    if kind == "assign":
        return 2 + expr_cost(stmt[2])
    if kind == "if":
        return (3 + expr_cost(stmt[1])
                + sum(stmt_cost(inner) for inner in stmt[2])
                + sum(stmt_cost(inner) for inner in stmt[3]))
    return 4 + sum(stmt_cost(inner) for inner in stmt[2])


@st.composite
def programs(draw):
    """Statement lists trimmed to :data:`MAX_PROGRAM_COST` AST nodes.

    Trimming (rather than ``assume``) keeps every draw a valid test
    case: oversized tails are dropped, never resampled, so the property
    exercises the compiler on all of them and a link failure is a real
    bug, not noise to discard.
    """
    stmts = draw(st.lists(statements(), min_size=1, max_size=5))
    trimmed, cost = [], 0
    for stmt in stmts:
        cost += stmt_cost(stmt)
        if trimmed and cost > MAX_PROGRAM_COST:
            break
        trimmed.append(stmt)
    return trimmed


def count_loops(program):
    total = 0
    stack = list(program)
    while stack:
        stmt = stack.pop()
        if stmt[0] == "if":
            stack.extend(stmt[2])
            stack.extend(stmt[3])
        elif stmt[0] == "loop":
            total += 1
            stack.extend(stmt[2])
    return total


def render_program(initial, program):
    lines = ["int %s;" % name for name in VARIABLES]
    lines.extend("int t%d;" % index for index in range(count_loops(program)))
    lines.append("void init() {")
    for name in VARIABLES:
        lines.append("    %s = %d;" % (name, initial[name]))
    counters = _Counters()
    for stmt in program:
        lines.extend(render_stmt(stmt, counters))
    lines.append("}")
    return "\n".join(lines)


# -- the Python oracle ---------------------------------------------------------------


def eval_expr(expr, env):
    kind = expr[0]
    if kind == "num":
        return expr[1]
    if kind == "var":
        return env[expr[1]]
    if kind == "shift":
        value = eval_expr(expr[2], env)
        if expr[1] == "<<":
            return (value << expr[3]) & MASK
        return value >> expr[3]
    op = expr[1]
    left = eval_expr(expr[2], env)
    right = eval_expr(expr[3], env)
    if op == "+":
        return (left + right) & MASK
    if op == "-":
        return (left - right) & MASK
    if op == "*":
        return (left * right) & MASK
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<":
        return 1 if left < right else 0
    if op == ">":
        return 1 if left > right else 0
    if op == "==":
        return 1 if left == right else 0
    return 1 if left != right else 0


def exec_stmt(stmt, env):
    kind = stmt[0]
    if kind == "assign":
        env[stmt[1]] = eval_expr(stmt[2], env)
        return
    if kind == "if":
        branch = stmt[2] if eval_expr(stmt[1], env) else stmt[3]
        for inner in branch:
            exec_stmt(inner, env)
        return
    count, body = stmt[1], stmt[2]
    for _ in range(count):
        for inner in body:
            exec_stmt(inner, env)


# -- the differential test ----------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(initial=st.fixed_dictionaries(
           {name: st.integers(0, 40) for name in VARIABLES}),
       program=programs())
def test_compiled_programs_match_the_oracle(initial, program):
    source = render_program(initial, program)

    env = dict(initial)
    for stmt in program:
        exec_stmt(stmt, env)

    # Generated programs are size-capped (MAX_PROGRAM_COST), so linking
    # must succeed: a LinkError here is a compiler code-size regression,
    # not an expected edge case.
    linked = build_c_node(source)
    processor = SnapProcessor(config=CoreConfig(voltage=1.8,
                                                max_instructions=3_000_000))
    processor.load(linked)
    processor.run()
    assert processor.asleep

    for name in VARIABLES:
        got = processor.dmem.peek(linked.symbols["g_" + name])
        assert got == env[name], (
            "variable %s: simulator %d != oracle %d\nprogram:\n%s"
            % (name, got, env[name], source))


def test_oversized_program_diagnostic():
    """A program too big for IMEM fails to link with a diagnostic naming
    the limit, the per-module section sizes, and the offending module.

    (The fuzz property above never generates such programs -- its draws
    are capped -- so the overflow path gets this dedicated regression.)
    """
    body = ["    a = (a + %d);" % index for index in range(900)]
    source = "int a;\nvoid init() {\n%s\n}" % "\n".join(body)
    with pytest.raises(LinkError) as excinfo:
        build_c_node(source)
    message = str(excinfo.value)
    assert "exceeds IMEM (2048 words)" in message, message
    assert "section sizes:" in message, message
    assert "first module past the limit:" in message, message
