"""Flight recorder, watchdog invariants, and crash bundles."""

import json
import os

import pytest

from repro.cc.compiler import build_c_node
from repro.core.exceptions import MemoryFault
from repro.isa.events import Event
from repro.netstack import build_blink_app
from repro.node.node import SensorNode
from repro.obs import (
    Blackbox,
    InvariantViolation,
    Observability,
    normalize_bundle,
    render_markdown,
)
from repro.tools.debugger import Debugger
from repro.tools.snap_flight import DEMO_CRASH_C, main as snap_flight_main

GOLDEN = os.path.join(os.path.dirname(__file__), "goldens",
                      "crash_bundle.json")

# The same deliberately-faulting guest the snap-flight demo and the CI
# smoke job run: at the third timer tick it stores through a pointer one
# past anything DMEM can hold.
FAULTY = DEMO_CRASH_C
FAULT_LINE = 1 + next(index for index, line
                      in enumerate(FAULTY.splitlines())
                      if "*p = 1;" in line)


def _faulty_node():
    program = build_c_node(FAULTY, handlers={Event.TIMER0: "on_timer"},
                           source_name="crash.c")
    node = SensorNode(node_id=0)
    node.load(program)
    return node


def _blink_node(node_id=0):
    node = SensorNode(node_id=node_id)
    node.load(build_blink_app(period_ticks=1000))
    return node


class TestWatchdog:
    def test_clean_run_trips_nothing(self):
        box = Blackbox(bundle_dir=None)
        node = _blink_node()
        box.observe(node)
        box.run(node, until=0.25)
        assert box.watchdog.checks_run > 10
        assert box.last_bundle is None

    def test_meter_perturbation_trips_energy_conservation(self):
        box = Blackbox(bundle_dir=None)
        node = _blink_node()
        box.observe(node)
        node.run(until=0.01)
        node.meter.total_energy += 1e-9
        with pytest.raises(InvariantViolation) as caught:
            box.watchdog.check()
        assert caught.value.invariant == "energy_conservation"
        assert caught.value.node == node.processor.name
        # The violation carries a flight-recorder snapshot of the tail.
        assert caught.value.snapshot["instructions"][node.processor.name]

    def test_leaked_cancel_trips_heap_liveness(self):
        box = Blackbox(bundle_dir=None)
        node = _blink_node()
        box.observe(node)
        node.run(until=0.01)
        # The bug class: an entry nulled on the heap while its handle
        # stays in the live index.
        entry = next(iter(node.kernel._live.values()))
        entry[2] = None
        with pytest.raises(InvariantViolation) as caught:
            box.watchdog.check()
        assert caught.value.invariant == "heap_liveness"

    def test_class_count_mismatch_trips_meter_consistency(self):
        box = Blackbox(bundle_dir=None)
        node = _blink_node()
        box.observe(node)
        node.run(until=0.01)
        next(iter(node.meter.by_class.values())).count += 1
        with pytest.raises(InvariantViolation) as caught:
            box.watchdog.check()
        assert caught.value.invariant == "meter_consistency"

    def test_mac_illegal_rx_index_trips(self):
        from repro.netstack import layout
        box = Blackbox(bundle_dir=None)
        node = _blink_node()
        box.observe(node)
        node.run(until=0.01)
        node.processor.dmem.poke(layout.RX_INDEX_ADDR, 33)
        with pytest.raises(InvariantViolation) as caught:
            box.watchdog.check()
        assert caught.value.invariant == "mac_legality"

    def test_disabled_invariant_is_skipped(self):
        box = Blackbox(bundle_dir=None, invariants=("clock_monotonic",))
        node = _blink_node()
        box.observe(node)
        node.run(until=0.01)
        node.meter.total_energy += 1e-9
        box.watchdog.check()  # energy check disabled: no raise

    def test_watchdog_does_not_keep_a_drained_kernel_alive(self):
        box = Blackbox(bundle_dir=None)
        node = _blink_node()
        box.observe(node)
        # An unbounded run ends when the program halts or the queue
        # drains; the watchdog must stand down rather than re-arm
        # forever.  Blink never halts, so use a bounded run and then
        # check the disarm logic directly on an empty queue.
        node.run(until=0.05)
        for handle in list(node.kernel._live):
            if handle != box.watchdog._handle:
                node.kernel.cancel(handle)
        while node.kernel.step():
            pass
        assert not box.watchdog.armed


class TestCrashBundle:
    def test_guest_fault_produces_symbolicated_bundle(self, tmp_path):
        box = Blackbox(bundle_dir=str(tmp_path))
        node = _faulty_node()
        box.observe(node)
        with pytest.raises(MemoryFault) as caught:
            box.run(node, until=1.0)
        bundle = caught.value.crash_bundle
        assert bundle["reason"] == "guest_fault"
        assert bundle["error"]["type"] == "MemoryFault"
        tail = bundle["disassembly"][node.processor.name]
        assert len(tail) <= box.recorder.instruction_limit
        # The faulting store's tail must symbolicate back to the C
        # source line holding `*p = 1;`.
        last = tail[-1]
        assert last["source"]["file"] == "crash.c"
        assert last["source"]["function"] == "on_timer"
        assert last["source"]["line"] == FAULT_LINE
        # Node state captured at the fault.
        state = bundle["nodes"][node.processor.name]
        assert state["registers"]["r1"] == 6000
        assert state["mode"] == "running"
        assert state["event_queue"] == []
        # Both bundle files landed on disk.
        json_path, md_path = caught.value.crash_bundle_paths
        assert os.path.getsize(json_path) > 0
        assert "crash.c" in open(md_path).read()

    def test_invariant_violation_bundle_reason(self, tmp_path):
        box = Blackbox(bundle_dir=str(tmp_path), watchdog_interval=1e-4)
        node = _blink_node()
        box.observe(node)
        node.kernel.schedule(
            5e-4, lambda: setattr(node.meter, "total_energy",
                                  node.meter.total_energy + 1e-9))
        with pytest.raises(InvariantViolation) as caught:
            box.run(node, until=1.0)
        bundle = caught.value.crash_bundle
        assert bundle["reason"] == "invariant_violation"
        assert bundle["error"]["invariant"] == "energy_conservation"

    def test_host_exception_bundle_reason(self):
        box = Blackbox(bundle_dir=None)
        node = _blink_node()
        box.observe(node)

        def boom():
            raise RuntimeError("host bug in a kernel callback")
        node.kernel.schedule(5e-3, boom)
        with pytest.raises(RuntimeError):
            box.run(node, until=1.0)
        assert box.last_bundle["reason"] == "host_exception"

    def test_markdown_render_covers_the_tail(self):
        box = Blackbox(bundle_dir=None)
        node = _faulty_node()
        box.observe(node)
        with pytest.raises(MemoryFault):
            box.run(node, until=1.0)
        report = render_markdown(box.last_bundle)
        assert "# Crash bundle" in report
        assert "crash.c:%d" % FAULT_LINE in report
        assert "MemoryFault" in report

    def test_bundle_matches_golden(self, tmp_path):
        assert snap_flight_main(["demo-crash", "--out", str(tmp_path)]) == 0
        with open(tmp_path / "crash.json") as handle:
            bundle = json.load(handle)
        with open(GOLDEN) as handle:
            golden = json.load(handle)
        assert normalize_bundle(bundle) == golden


class TestSnapFlightCli:
    def test_demo_crash_modes(self, tmp_path, capsys):
        for mode in ("fault", "invariant", "leak"):
            out = tmp_path / mode
            assert snap_flight_main(
                ["demo-crash", "--out", str(out), "--mode", mode]) == 0
            captured = capsys.readouterr().out
            assert "last C line  : crash.c:" in captured
            assert (out / "crash.json").exists()
            assert (out / "crash.md").exists()

    def test_inspect_and_replay(self, tmp_path, capsys):
        assert snap_flight_main(["demo-crash", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert snap_flight_main(
            ["inspect", str(tmp_path / "crash.json")]) == 0
        assert "## node0.cpu" in capsys.readouterr().out
        assert snap_flight_main(
            ["replay-tail", str(tmp_path / "crash.json"), "--tail", "4"]) == 0
        replay = capsys.readouterr().out
        assert "crash.c:" in replay

    def test_demo_fault_line_is_a_store(self):
        # The CI smoke greps for `last C line : crash.c:`; make sure the
        # demo guest still contains the faulting store it symbolicates.
        assert "*p = 1;" in DEMO_CRASH_C


class TestDebuggerDetach:
    def test_detach_restores_previous_trace_fn(self):
        calls = []

        def original(processor, time, pc, instruction):
            calls.append(pc)

        node = _blink_node()
        node.processor.config.trace_fn = original
        debugger = Debugger(node.processor)
        installed = node.processor.config.trace_fn
        assert getattr(installed, "__self__", None) is debugger
        debugger.step(5)
        assert calls, "chained trace_fn must still fire while attached"
        seen = len(calls)
        debugger.detach()
        assert node.processor.config.trace_fn is original
        node.run(until=0.01)
        assert len(calls) > seen
        debugger.detach()  # idempotent
        assert node.processor.config.trace_fn is original

    def test_where_symbolicates_current_pc(self):
        node = _faulty_node()
        debugger = Debugger(node.processor)
        debugger.add_breakpoint("g_on_timer"
                                if "g_on_timer" in
                                (node.processor.program.symbols or {})
                                else "on_timer")
        stop = debugger.cont()
        assert stop.reason == "breakpoint"
        loc = debugger.where()
        assert loc.function == "on_timer"
        assert loc.file == "crash.c"


class TestOccupancyGauges:
    def test_load_reports_imem_dmem_occupancy(self):
        obs = Observability()
        node = _blink_node()
        node.attach_observability(obs)
        snapshot = obs.metrics.snapshot()
        name = node.processor.name
        used = snapshot[name + ".imem.occupancy_words"]
        assert used == len(node.processor.program.imem)
        frac = snapshot[name + ".imem.occupancy_frac"]
        assert 0.0 < frac <= 1.0
        assert name + ".dmem.occupancy_words" in snapshot

    def test_load_after_attach_also_reports(self):
        obs = Observability()
        node = SensorNode(node_id=0)
        node.attach_observability(obs)
        node.load(build_blink_app(period_ticks=1000))
        snapshot = obs.metrics.snapshot()
        assert snapshot[node.processor.name + ".imem.occupancy_words"] > 0
