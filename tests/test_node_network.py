"""Node assembly and multi-node network simulation tests."""

import pytest

from repro.asm import build
from repro.core import CoreConfig
from repro.network import (
    NetworkSimulator,
    grid_positions,
    line_positions,
    random_positions,
)
from repro.node import SensorNode
from repro.sensors import ConstantSensor

BLINK = """
boot:
    movi r1, 0
    movi r2, handler
    setaddr r1, r2
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
handler:
    ld r3, 0(r0)
    xori r3, 1
    st r3, 0(r0)
    movi r4, 0x4000
    or r4, r3
    mov r15, r4          ; write LED port
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
"""

SENDER = """
boot:
    movi r1, 4           ; RADIO_TX_DONE -> ignore handler
    movi r2, idle
    setaddr r1, r2
    movi r15, 0x2000     ; TX command
    movi r15, 0x1234     ; data word
    done
idle:
    done
"""

RECEIVER = """
boot:
    movi r1, 3           ; RADIO_RX event
    movi r2, on_word
    setaddr r1, r2
    movi r15, 0x1000     ; RX command
    done
on_word:
    mov r3, r15
    st r3, 0(r0)
    done
"""


class TestSensorNode:
    def test_blink_program_toggles_leds(self):
        node = SensorNode(config=CoreConfig(voltage=0.6))
        node.load(build(BLINK))
        node.run(until=0.00095)
        assert node.leds.toggles(led=0) >= 8

    def test_sensor_attachment_and_query(self):
        node = SensorNode()
        node.attach_sensor(ConstantSensor(0x55), sensor_id=2)
        node.load(build("""
        boot:
            movi r1, 6         ; QUERY_DONE -> ignore handler
            movi r2, idle
            setaddr r1, r2
            movi r15, 0x3002   ; Query sensor 2
            mov r1, r15
            st r1, 0(r0)
            done
        idle:
            done
        """))
        node.run()
        assert node.processor.dmem.peek(0) == 0x55

    def test_total_energy_includes_radio_when_asked(self):
        node = SensorNode()
        node.load(build(SENDER))
        node.run()
        assert node.total_energy(include_radio=True) > node.total_energy()


class TestNetworkSimulator:
    def test_two_node_radio_link(self):
        net = NetworkSimulator()
        sender = net.add_node(0, program=build(SENDER))
        receiver = net.add_node(1, program=build(RECEIVER))
        net.run(until=0.1)
        assert receiver.processor.dmem.peek(0) == 0x1234
        assert sender.radio.words_sent == 1

    def test_range_limits_delivery(self):
        net = NetworkSimulator(comm_range=1.0)
        net.add_node(0, program=build(SENDER), position=(0.0, 0.0))
        far = net.add_node(1, program=build(RECEIVER), position=(5.0, 0.0))
        net.run(until=0.1)
        assert far.processor.dmem.peek(0) == 0

    def test_duplicate_node_id_rejected(self):
        net = NetworkSimulator()
        net.add_node(0)
        with pytest.raises(ValueError):
            net.add_node(0)

    def test_passive_sniffer_stays_unstarted(self):
        net = NetworkSimulator()
        net.add_node(0, program=build(SENDER))
        sniffer = net.add_node(1)  # joined to the channel, no program
        net.run(until=0.05)
        assert not sniffer.loaded
        assert sniffer.processor.mode.value == "reset"
        assert sniffer.meter.instructions == 0

    def test_network_total_energy_includes_radio_when_asked(self):
        net = NetworkSimulator()
        net.add_node(0, program=build(SENDER))
        net.add_node(1, program=build(RECEIVER))
        net.run(until=0.05)
        with_radio = net.total_energy(include_radio=True)
        assert with_radio > net.total_energy()
        assert with_radio == pytest.approx(sum(
            node.total_energy(include_radio=True)
            for node in net.nodes.values()))

    def test_network_energy_sums_nodes(self):
        net = NetworkSimulator()
        net.add_node(0, program=build(SENDER))
        net.add_node(1, program=build(RECEIVER))
        net.run(until=0.1)
        total = net.total_energy()
        assert total == pytest.approx(sum(
            node.meter.total_energy for node in net.nodes.values()))


class TestTopology:
    def test_line(self):
        positions = line_positions(4, spacing=2.0)
        assert positions == [(0.0, 0.0), (2.0, 0.0), (4.0, 0.0), (6.0, 0.0)]

    def test_grid(self):
        assert len(grid_positions(3, 4)) == 12

    def test_random_deterministic(self):
        assert random_positions(5, seed=1) == random_positions(5, seed=1)
        assert random_positions(5, seed=1) != random_positions(5, seed=2)
