"""Reliable MAC tests: ACKs, retransmission, and the Section 3.2
cancel-token software contract, over clean and lossy channels."""

import pytest

from repro.netstack import layout
from repro.netstack.reliable import (
    MAX_RETRIES,
    REL_ACKS_SENT,
    REL_CANCELLED,
    REL_DELIVERED,
    REL_FAILED,
    REL_PENDING,
    REL_RETX,
    REL_RX_DELIVERED,
    REL_RX_DUPS,
    REL_RX_VALUE,
    build_reliable_node,
)
from repro.network import NetworkSimulator


def make_pair(bit_error_rate=0.0, seed=0, corruption="flip"):
    # "flip" noise preserves word alignment (corrupted packets fail the
    # checksum and are dropped whole); word-drop noise would desync the
    # serial framing, which the MAC detects via its length sanity check
    # but which makes loss statistics messier to assert on.
    net = NetworkSimulator(bit_error_rate=bit_error_rate, seed=seed,
                           corruption=corruption)
    sender = net.add_node(1, program=build_reliable_node(1))
    receiver = net.add_node(2, program=build_reliable_node(2))
    net.run(until=0.01)
    return net, sender, receiver


def send_reliable(net, sender, seq, value, settle=0.5):
    packet = layout.make_packet(dst=2, src=1, pkt_type=layout.PKT_TYPE_DATA,
                                seq=seq, payload=[value])
    for index, word in enumerate(packet[:-1]):
        sender.processor.dmem.poke(layout.TX_BUF + index, word)
    sender.processor.raise_soft_event()
    net.run(until=net.kernel.now + settle)


class TestCleanChannel:
    def test_single_delivery_and_ack(self):
        net, sender, receiver = make_pair()
        send_reliable(net, sender, seq=1, value=0x1234)
        s, r = sender.processor.dmem, receiver.processor.dmem
        assert r.peek(REL_RX_DELIVERED) == 1
        assert r.peek(REL_RX_VALUE) == 0x1234
        assert r.peek(REL_ACKS_SENT) == 1
        assert s.peek(REL_DELIVERED) == 1
        assert s.peek(REL_FAILED) == 0
        assert s.peek(REL_RETX) == 0
        assert s.peek(REL_PENDING) == 0

    def test_cancel_token_consumed(self):
        """The ACK path cancels timer 1; the cancellation token must be
        discarded by the TIMER1 handler (Section 3.2's contract), leaving
        the flag clear and the node asleep."""
        net, sender, receiver = make_pair()
        send_reliable(net, sender, seq=1, value=7)
        assert sender.processor.dmem.peek(REL_CANCELLED) == 0
        assert sender.processor.asleep
        # The cancellation produced exactly one discarded TIMER1 token.
        assert sender.processor.timer.cancellations == 1

    def test_sequence_of_packets(self):
        net, sender, receiver = make_pair()
        for seq in range(1, 5):
            send_reliable(net, sender, seq=seq, value=seq * 10)
        s, r = sender.processor.dmem, receiver.processor.dmem
        assert s.peek(REL_DELIVERED) == 4
        assert r.peek(REL_RX_DELIVERED) == 4
        assert r.peek(REL_RX_DUPS) == 0


class TestLossyChannel:
    def test_retransmission_recovers_loss(self):
        """With heavy word loss the first attempts fail; retransmissions
        eventually deliver, and duplicates are suppressed."""
        delivered = 0
        for seed in range(6):
            net, sender, receiver = make_pair(bit_error_rate=0.05,
                                              seed=seed)
            send_reliable(net, sender, seq=1, value=0xABCD, settle=1.0)
            s, r = sender.processor.dmem, receiver.processor.dmem
            # Either confirmed delivered (possibly after retries) or
            # given up after MAX_RETRIES; never stuck pending.
            assert s.peek(REL_PENDING) == 0
            assert s.peek(REL_DELIVERED) + s.peek(REL_FAILED) == 1
            delivered += s.peek(REL_DELIVERED)
            if r.peek(REL_RX_DELIVERED):
                assert r.peek(REL_RX_VALUE) == 0xABCD
        assert delivered >= 4  # the protocol usually wins at 5% WER

    def test_lost_ack_causes_duplicate_suppression(self):
        """Drop only the ACK: the sender retransmits, and the receiver
        must acknowledge again without delivering twice."""
        net, sender, receiver = make_pair()
        # Intercept: drop the whole first ACK (6 words) at the sender's
        # radio, as a deep fade would.
        original_deliver = sender.radio.deliver
        state = {"remaining": 6}

        def lossy_deliver(word, corrupted=False):
            if state["remaining"] > 0:
                state["remaining"] -= 1
                return
            original_deliver(word, corrupted=corrupted)

        sender.radio.deliver = lossy_deliver
        send_reliable(net, sender, seq=3, value=5, settle=1.0)
        s, r = sender.processor.dmem, receiver.processor.dmem
        assert s.peek(REL_RETX) >= 1          # a retransmission happened
        assert r.peek(REL_RX_DELIVERED) == 1  # delivered exactly once
        assert r.peek(REL_RX_DUPS) >= 1       # the duplicate was caught
        assert r.peek(REL_ACKS_SENT) >= 2     # every copy acknowledged
        assert s.peek(REL_DELIVERED) == 1

    def test_gives_up_after_max_retries(self):
        """A deaf receiver: the sender retries MAX_RETRIES times, then
        records the failure and stops cleanly."""
        net, sender, receiver = make_pair()
        receiver.radio.set_receive(False)  # the receiver hears nothing
        send_reliable(net, sender, seq=9, value=1, settle=2.0)
        s = sender.processor.dmem
        assert s.peek(REL_FAILED) == 1
        assert s.peek(REL_DELIVERED) == 0
        assert s.peek(REL_RETX) == MAX_RETRIES
        assert s.peek(REL_PENDING) == 0
        assert sender.processor.asleep
