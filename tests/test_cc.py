"""C compiler tests: language features, code generation correctness
(checked by running on the simulated SNAP core), and property-based
expression evaluation against a Python oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cc import CompileError, build_c_node, compile_c
from repro.core import CoreConfig, SnapProcessor

MASK = 0xFFFF


def run_c(source, until=None, **node_kwargs):
    """Compile, link, run to sleep; returns (processor, program)."""
    program = build_c_node(source, **node_kwargs)
    processor = SnapProcessor(config=CoreConfig(voltage=1.8,
                                                max_instructions=2_000_000))
    processor.load(program)
    processor.run(until=until)
    return processor, program


def result_of(source, name="result"):
    processor, program = run_c(source)
    return processor.dmem.peek(program.symbols["g_" + name])


class TestBasics:
    def test_global_initializers(self):
        source = "int a = 5;\nint b;\nint t[3] = {1, 2};\nvoid init() {}\n"
        processor, program = run_c(source)
        assert processor.dmem.peek(program.symbols["g_a"]) == 5
        assert processor.dmem.peek(program.symbols["g_b"]) == 0
        base = program.symbols["g_t"]
        assert [processor.dmem.peek(base + i) for i in range(3)] == [1, 2, 0]

    def test_assignment_chains(self):
        assert result_of("""
            int result;
            int other;
            void init() { other = result = 7; result = result + other; }
        """) == 14

    def test_arithmetic(self):
        assert result_of("""
            int result;
            void init() { result = (3 + 4) * 5 - 60 / 4 + 77 % 10; }
        """) == (3 + 4) * 5 - 60 // 4 + 77 % 10

    def test_wraparound_is_16_bit(self):
        assert result_of("""
            int result;
            void init() { result = 65535 + 3; }
        """) == 2

    def test_unary_operators(self):
        assert result_of("""
            int result;
            void init() { result = (-5 & 0xFFFF) + ~0 + !0 + !7; }
        """) == (((-5) & MASK) + (~0 & MASK) + 1 + 0) & MASK

    def test_comparisons_unsigned(self):
        assert result_of("""
            int result;
            void init() {
                result = (1 < 2) + (2 <= 2) * 10 + (3 > 4) * 100
                       + (5 >= 5) * 1000 + (6 == 6) * 10000
                       + (7 != 7) * 7;
            }
        """) == 1 + 10 + 0 + 1000 + 10000

    def test_short_circuit_evaluation(self):
        assert result_of("""
            int result;
            int touched;
            int side(int v) { touched = touched + 1; return v; }
            void init() {
                touched = 0;
                result = (0 && side(1)) + (1 || side(1)) * 10;
                result = result + touched * 100;
            }
        """) == 10  # side() never ran

    def test_shifts(self):
        assert result_of("""
            int result;
            void init() { result = (1 << 10) + (0x8000 >> 15); }
        """) == 1024 + 1


class TestControlFlow:
    def test_if_else_chain(self):
        assert result_of("""
            int result;
            int classify(int x) {
                if (x < 10) return 1;
                else if (x < 100) return 2;
                else return 3;
            }
            void init() { result = classify(5) + classify(50) * 10
                                  + classify(500) * 100; }
        """) == 1 + 20 + 300

    def test_while_with_break_continue(self):
        assert result_of("""
            int result;
            void init() {
                int i; int total;
                total = 0;
                i = 0;
                while (1) {
                    i = i + 1;
                    if (i > 10) break;
                    if (i % 2) continue;
                    total = total + i;   /* 2+4+6+8+10 */
                }
                result = total;
            }
        """) == 30

    def test_for_loop(self):
        assert result_of("""
            int result;
            void init() {
                int i;
                result = 0;
                for (i = 1; i <= 10; i = i + 1) result = result + i;
            }
        """) == 55

    def test_nested_loops(self):
        assert result_of("""
            int result;
            void init() {
                int i; int j;
                result = 0;
                for (i = 0; i < 5; i = i + 1)
                    for (j = 0; j < 5; j = j + 1)
                        result = result + i * j;
            }
        """) == sum(i * j for i in range(5) for j in range(5))


class TestFunctions:
    def test_recursion(self):
        assert result_of("""
            int result;
            int fib(int n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
            }
            void init() { result = fib(12); }
        """) == 144

    def test_multiple_arguments(self):
        assert result_of("""
            int result;
            int weigh(int a, int b, int c) { return a * 100 + b * 10 + c; }
            void init() { result = weigh(1, 2, 3); }
        """) == 123

    def test_wrong_arity_rejected(self):
        with pytest.raises(CompileError, match="argument count"):
            run_c("int f(int a) { return a; }\nvoid init() { f(1, 2); }\n")


class TestArraysAndPointers:
    def test_global_array_read_write(self):
        assert result_of("""
            int result;
            int data[8];
            void init() {
                int i;
                for (i = 0; i < 8; i = i + 1) data[i] = i * 3;
                result = data[7] + data[1];
            }
        """) == 21 + 3

    def test_local_array(self):
        assert result_of("""
            int result;
            void init() {
                int buf[4];
                buf[0] = 9; buf[3] = 1;
                result = buf[0] * 10 + buf[3];
            }
        """) == 91

    def test_pointers(self):
        assert result_of("""
            int result;
            int cell;
            void bump(int *p) { *p = *p + 1; }
            void init() {
                cell = 41;
                bump(&cell);
                result = cell;
            }
        """) == 42

    def test_pointer_into_array(self):
        assert result_of("""
            int result;
            int data[4] = {10, 20, 30, 40};
            void init() {
                int *p;
                p = &data[1];
                result = *p + p[1];    /* 20 + 30 */
            }
        """) == 50


class TestIntrinsics:
    def test_rand_and_seed_match_isa_lfsr(self):
        processor, program = run_c("""
            int result;
            void init() { __seed(77); result = __rand(); }
        """)
        from repro.core import Lfsr16
        lfsr = Lfsr16(seed=77)
        assert processor.dmem.peek(program.symbols["g_result"]) == lfsr.next()

    def test_bfs_intrinsic(self):
        assert result_of("""
            int result;
            void init() { result = __bfs(0xAAAA, 0x5555, 0x00FF); }
        """) == (0xAAAA & ~0x00FF) | (0x5555 & 0x00FF)

    def test_bfs_requires_constant_mask(self):
        with pytest.raises(CompileError, match="constant"):
            run_c("int m;\nvoid init() { __bfs(1, 2, m); }\n")

    def test_c_timer_handler_runs_event_driven(self):
        """A complete event-driven C app: periodic timer handler."""
        source = """
            int ticks;
            void arm() { __schedlo(0, 100); }
            void init() { ticks = 0; arm(); }
            __handler void on_timer() {
                ticks = ticks + 1;
                arm();
            }
        """
        from repro.isa.events import Event
        processor, program = run_c(source,
                                   handlers={Event.TIMER0: "on_timer"},
                                   until=0.00105)
        assert processor.dmem.peek(program.symbols["g_ticks"]) == 10
        assert processor.asleep

    def test_handler_must_be_declared(self):
        from repro.isa.events import Event
        with pytest.raises(ValueError, match="__handler"):
            build_c_node("void f() {}\n", handlers={Event.TIMER0: "f"})


class TestDiagnostics:
    def test_undefined_identifier(self):
        with pytest.raises(CompileError, match="undefined"):
            compile_c("void init() { x = 1; }\n")

    def test_syntax_error_has_line(self):
        with pytest.raises(CompileError, match="line 2"):
            compile_c("int a;\nint b = ;\n")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break"):
            compile_c("void f() { break; }\n")

    def test_invalid_assignment_target(self):
        with pytest.raises(CompileError, match="assignment"):
            compile_c("void f() { 1 = 2; }\n")


class TestExpressionProperties:
    """Property-based check: random expressions evaluated by the compiled
    code on the simulator agree with Python's evaluation mod 2^16."""

    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, MASK), b=st.integers(1, MASK),
           c=st.integers(0, 15))
    def test_random_arithmetic(self, a, b, c):
        expression = ("(%d + %d) * 3 - (%d / %d) + (%d %% %d) "
                      "+ (%d << %d) + (%d > %d)"
                      % (a, b, a, b, a, b, b, c, a, b))
        expected = (((a + b) * 3 - (a // b) + (a % b)
                     + (b << c) + (1 if a > b else 0)) & MASK)
        got = result_of("int result;\nvoid init() { result = %s; }\n"
                        % expression)
        assert got == expected

    @settings(max_examples=15, deadline=None)
    @given(values=st.lists(st.integers(0, MASK), min_size=1, max_size=8))
    def test_array_sum(self, values):
        body = "".join("data[%d] = %d; " % (i, v)
                       for i, v in enumerate(values))
        source = """
            int result;
            int data[8];
            void init() {
                int i;
                %s
                result = 0;
                for (i = 0; i < %d; i = i + 1) result = result + data[i];
            }
        """ % (body, len(values))
        assert result_of(source) == sum(values) & MASK
