"""Golden-trace regression tests.

Two canonical workloads -- the blink handler and a one-word packet
receive -- are run under the trace bus, reduced to their *stable* fields
(event types, ordering, PCs, mnemonics, handler tags, queue depths,
radio words; no floats), and compared against checked-in goldens under
``tests/goldens/``.

A change to the decode/dispatch/radio pipeline that reorders or reshapes
the event stream fails these tests.  If the change is intentional,
regenerate with::

    PYTHONPATH=src python tests/test_obs_golden.py --regen
"""

import json
import os

from repro.asm import build
from repro.core import CoreConfig
from repro.netstack import layout
from repro.netstack.drivers import build_aodv_node, build_tx_node
from repro.network import NetworkSimulator
from repro.node import SensorNode
from repro.obs import KindFilter, MemorySink, Observability, project_trace
from repro.tools.snap_net_trace import stage_and_send

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

BLINK = """
boot:
    movi r1, 0
    movi r2, handler
    setaddr r1, r2
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
handler:
    ld r3, 0(r0)
    xori r3, 1
    st r3, 0(r0)
    movi r4, 0x4000
    or r4, r3
    mov r15, r4          ; write LED port
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    done
"""

SENDER = """
boot:
    movi r1, 4           ; RADIO_TX_DONE -> ignore handler
    movi r2, idle
    setaddr r1, r2
    movi r15, 0x2000     ; TX command
    movi r15, 0x1234     ; data word
    done
idle:
    done
"""

RECEIVER = """
boot:
    movi r1, 3           ; RADIO_RX event
    movi r2, on_word
    setaddr r1, r2
    movi r15, 0x1000     ; RX command
    done
on_word:
    mov r3, r15
    st r3, 0(r0)
    done
"""


def stable_trace(events):
    """Reduce trace events to their golden (float-free) projection.

    The projection itself lives in :mod:`repro.obs.project` (shared
    with the telemetry goldens and the snap-diff alignment engine).
    """
    return project_trace(events)


def blink_trace():
    """Boot plus two timer-handler invocations on a single node."""
    obs = Observability()
    sink = obs.bus.attach(MemorySink())
    node = SensorNode(config=CoreConfig(voltage=0.6))
    node.load(build(BLINK))
    node.attach_observability(obs)
    node.run(until=0.00025)
    return stable_trace(sink.events)


def packet_receive_trace():
    """One word sent over the air between two nodes."""
    obs = Observability()
    sink = obs.bus.attach(MemorySink())
    net = NetworkSimulator()
    net.attach_observability(obs)
    net.add_node(0, program=build(SENDER))
    net.add_node(1, program=build(RECEIVER))
    net.run(until=0.05)
    return stable_trace(sink.events)


def _journey_net(bit_error_rate=0.0, corruption="drop"):
    """A two-node net (TX driver + AODV node) traced for journeys only."""
    obs = Observability(journeys=True)
    sink = MemorySink()
    obs.bus.attach(KindFilter(("span",), sink))
    net = NetworkSimulator(comm_range=1.5, bit_error_rate=bit_error_rate,
                           corruption=corruption)
    net.attach_observability(obs)
    config = CoreConfig(voltage=0.6)
    net.add_node(1, program=build_tx_node(1), position=(0.0, 0.0),
                 config=config)
    net.add_node(2, program=build_aodv_node(2), position=(1.0, 0.0),
                 config=config)
    net.run(until=0.01)
    return net, obs, sink


def journey_bit_error_trace():
    """A DATA packet whose every word the channel corrupts: the journey
    tree must end in a ``bit_error`` drop at the receiver."""
    net, obs, sink = _journey_net(bit_error_rate=1.0, corruption="drop")
    packet = layout.make_packet(dst=2, src=1, pkt_type=layout.PKT_TYPE_DATA,
                                seq=0, payload=[2, 0x111, 0x222])
    stage_and_send(net.nodes[1], packet)
    net.run(until=net.kernel.now + 0.1)
    obs.journeys.flush()
    return stable_trace(sink.events)


def journey_no_route_trace():
    """A DATA packet for an unknown destination: the AODV relay's route
    lookup misses and the journey tree records a ``no_route`` drop."""
    net, obs, sink = _journey_net()
    packet = layout.make_packet(dst=2, src=1, pkt_type=layout.PKT_TYPE_DATA,
                                seq=0, payload=[0x7F, 0x111, 0x222])
    stage_and_send(net.nodes[1], packet)
    net.run(until=net.kernel.now + 0.1)
    obs.journeys.flush()
    return stable_trace(sink.events)


GOLDENS = {
    "blink_trace.json": blink_trace,
    "packet_receive_trace.json": packet_receive_trace,
    "journey_bit_error_trace.json": journey_bit_error_trace,
    "journey_no_route_trace.json": journey_no_route_trace,
}


def _load(name):
    with open(os.path.join(GOLDEN_DIR, name)) as handle:
        return json.load(handle)


def _diff_message(name, expected, actual):
    lines = ["golden %s: %d events expected, %d produced"
             % (name, len(expected), len(actual))]
    for index, (want, got) in enumerate(zip(expected, actual)):
        if want != got:
            lines.append("first mismatch at event %d:" % index)
            lines.append("  expected %r" % (want,))
            lines.append("  actual   %r" % (got,))
            break
    lines.append("if intentional: PYTHONPATH=src python %s --regen"
                 % os.path.relpath(__file__))
    return "\n".join(lines)


class TestGoldenTraces:
    def test_blink_trace_matches_golden(self):
        expected, actual = _load("blink_trace.json"), blink_trace()
        assert actual == expected, \
            _diff_message("blink_trace.json", expected, actual)

    def test_packet_receive_trace_matches_golden(self):
        expected = _load("packet_receive_trace.json")
        actual = packet_receive_trace()
        assert actual == expected, \
            _diff_message("packet_receive_trace.json", expected, actual)

    def test_goldens_have_expected_shape(self):
        blink = _load("blink_trace.json")
        kinds = [record["type"] for record in blink]
        assert kinds.count("dispatch") >= 2      # two timer-handler runs
        assert "sleep" in kinds and "wakeup" in kinds
        assert not any("time" in record or "energy" in record
                       for record in blink), "goldens must stay float-free"

        packet = _load("packet_receive_trace.json")
        kinds = [record["type"] for record in packet]
        assert "radio_tx" in kinds and "radio_rx" in kinds
        assert kinds.index("radio_tx") < kinds.index("radio_rx")

    def test_journey_bit_error_trace_matches_golden(self):
        expected = _load("journey_bit_error_trace.json")
        actual = journey_bit_error_trace()
        assert actual == expected, \
            _diff_message("journey_bit_error_trace.json", expected, actual)

    def test_journey_no_route_trace_matches_golden(self):
        expected = _load("journey_no_route_trace.json")
        actual = journey_no_route_trace()
        assert actual == expected, \
            _diff_message("journey_no_route_trace.json", expected, actual)

    def test_journey_goldens_record_drop_reasons(self):
        bit_error = _load("journey_bit_error_trace.json")
        assert all(record["type"] == "span" for record in bit_error)
        ops = [record["op"] for record in bit_error]
        assert "send" in ops and "air" in ops
        drops = [record for record in bit_error if record["op"] == "drop"]
        assert any(record["reason"] == "bit_error" for record in drops)
        # Drop spans hang off the air span of the same journey tree.
        spans = {record["span"]: record for record in bit_error}
        for record in drops:
            if record["reason"] != "bit_error":
                continue
            air = spans[record["parent"]]
            assert air["op"] == "air"
            assert air["journey"] == record["journey"]

        no_route = _load("journey_no_route_trace.json")
        ops = [record["op"] for record in no_route]
        assert "receive" in ops and "forward" in ops
        drops = [record for record in no_route if record["op"] == "drop"]
        assert any(record["reason"] == "no_route" for record in drops)


def regen():
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, produce in GOLDENS.items():
        path = os.path.join(GOLDEN_DIR, name)
        trace = produce()
        with open(path, "w") as handle:
            json.dump(trace, handle, indent=1)
            handle.write("\n")
        print("wrote %s (%d events)" % (path, len(trace)))


if __name__ == "__main__":
    import sys
    if "--regen" in sys.argv:
        regen()
    else:
        print(__doc__)
