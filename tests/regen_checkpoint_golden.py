"""Regenerate ``tests/goldens/checkpoint_v1.json``.

Run deliberately, only alongside a checkpoint schema version bump::

    PYTHONPATH=src python -m tests.regen_checkpoint_golden

The golden is the checkpoint of the ``sti`` differential scenario
(timer-driven self-modifying code -- it exercises predecode validity,
armed timers, and handler state) captured at t=0.02 s, exactly as
``tests/test_checkpoint.py::TestSchemaVersioning::test_golden_schema_v1``
rebuilds it.
"""

import os

from repro.sim.checkpoint import capture
from repro.sim.differential import SCENARIOS, _run

GOLDEN = os.path.join(os.path.dirname(__file__), "goldens",
                      "checkpoint_v1.json")


def main():
    node, _ = SCENARIOS["sti"](True)
    _run(node, 0.02)
    capture(node).save(GOLDEN)
    print("wrote %s" % GOLDEN)


if __name__ == "__main__":
    main()
