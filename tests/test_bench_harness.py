"""Tests for the benchmark harness itself: workload generators, scenario
runners, platform table, and reporting."""

import dataclasses
import itertools
import json
import os
import threading

import pytest

from repro.asm import build
from repro.bench import format_table, platform_table
from repro.bench.harness import (
    blink_comparison,
    energy_breakdown,
    handler_table,
    instruction_class_energy,
    results_summary,
    throughput_and_wakeup,
)
from repro.bench.platforms import LITERATURE_ROWS
from repro.bench.reporting import dump_results, ratio_note
from repro.bench.workloads import (
    FIGURE4_CLASSES,
    PROGRAM_STREAM,
    VALUES_STREAM,
    class_program,
    random_register_values,
    stream_rng,
)
from repro.core import CoreConfig, SnapProcessor
from repro.isa.opcodes import InstrClass


class TestWorkloads:
    @pytest.mark.parametrize("instr_class", FIGURE4_CLASSES,
                             ids=lambda c: c.value)
    def test_class_programs_run_to_halt(self, instr_class):
        source, expected = class_program(instr_class, seed=2,
                                         instances=40, loops=2)
        processor = SnapProcessor(config=CoreConfig(voltage=1.8))
        processor.load(build(source))
        for register, value in random_register_values(2).items():
            processor.regs.poke(register, value)
        meter = processor.run()
        assert processor.halted
        stats = meter.by_class[instr_class]
        # The loop harness itself contributes a couple of branch
        # instructions per iteration.
        assert expected <= stats.count <= expected + 2 * 2 + 2

    def test_programs_fit_imem(self):
        for instr_class in FIGURE4_CLASSES:
            source, _ = class_program(instr_class)
            program = build(source)
            assert program.text_size_words <= 2048

    def test_deterministic_for_seed(self):
        a, _ = class_program(InstrClass.ARITH_REG, seed=5)
        b, _ = class_program(InstrClass.ARITH_REG, seed=5)
        c, _ = class_program(InstrClass.ARITH_REG, seed=6)
        assert a == b
        assert a != c

    def test_replica_seed_streams_pairwise_distinct(self):
        # Regression: the old derivation (RandomState(seed) for program
        # text, RandomState(seed + 1) for values) aliased across
        # adjacent root seeds -- seed s's value stream WAS seed s+1's
        # program stream -- so a replica grid stepping seeds by one
        # reused its neighbours' randomness.  Every (seed, stream) pair
        # over a replica grid must now draw a distinct stream.
        streams = {}
        for seed in range(8):
            for stream in (PROGRAM_STREAM, VALUES_STREAM):
                draw = tuple(stream_rng(seed, stream).randint(
                    0, 1 << 16, size=16))
                streams[(seed, stream)] = draw
        for (key_a, draw_a), (key_b, draw_b) in itertools.combinations(
                streams.items(), 2):
            assert draw_a != draw_b, (key_a, key_b)

    def test_adjacent_seed_programs_share_nothing(self):
        # The concrete old collision: seed 0's register values came from
        # the same RandomState(1) as seed 1's program text.
        values_0 = stream_rng(0, VALUES_STREAM).randint(0, 1 << 16, 16)
        program_1 = stream_rng(1, PROGRAM_STREAM).randint(0, 1 << 16, 16)
        assert list(values_0) != list(program_1)


class TestScenarioRunners:
    def test_handler_table_rows(self):
        rows = handler_table(0.6)
        assert [row.name for row in rows] == [
            "Packet Transmission", "Packet Reception", "AODV Route Reply",
            "AODV Forward", "Temperature App", "Threshold App"]
        for row in rows:
            assert row.instructions > 0
            assert row.energy > 0
            assert row.busy_time > 0

    def test_handler_energy_scales_with_voltage(self):
        low = handler_table(0.6)
        high = handler_table(1.8)
        for row_low, row_high in zip(low, high):
            assert row_low.instructions == row_high.instructions
            assert row_high.energy / row_low.energy == pytest.approx(
                9.0, rel=0.02)

    def test_instruction_class_energy_shape(self):
        energies = instruction_class_energy(0.6)
        assert set(energies) == {c.value for c in FIGURE4_CLASSES}
        assert energies["Load"] > energies["Arith Reg"]

    def test_throughput_result(self):
        result = throughput_and_wakeup(0.9)
        assert result.mips == pytest.approx(61, rel=0.15)
        assert result.wakeup_latency_s == pytest.approx(9.8e-9, rel=0.01)

    def test_energy_breakdown_fractions(self):
        result = energy_breakdown(1.8)
        assert sum(result["core_fractions"].values()) == pytest.approx(1.0)
        assert 0.3 < result["memory_share"] < 0.7

    def test_results_summary(self):
        summary = results_summary(0.6)
        assert summary.min_handler_energy < summary.max_handler_energy
        assert summary.power_at_10hz_low == pytest.approx(
            summary.min_handler_energy * 10)

    def test_precomputed_rows_skip_the_suite(self, monkeypatch):
        # Regression: throughput_and_wakeup and results_summary used to
        # silently re-run all six handler scenarios even when the caller
        # had the rows in hand.  With rows= they must not touch
        # handler_table at all.
        import repro.bench.harness as harness

        rows = handler_table(0.6)
        expected_throughput = throughput_and_wakeup(0.6, rows=rows)
        expected_summary = results_summary(0.6, rows=rows)

        def forbidden(*args, **kwargs):
            raise AssertionError("handler_table re-run despite rows=")

        monkeypatch.setattr(harness, "handler_table", forbidden)
        throughput = harness.throughput_and_wakeup(0.6, rows=rows)
        summary = harness.results_summary(0.6, rows=rows)
        assert throughput == expected_throughput
        assert summary == expected_summary

    def test_blink_comparison_shape(self):
        result = blink_comparison(iterations=5)
        assert result.avr_cycles > 10 * result.snap_cycles
        assert result.avr_energy > 50 * result.snap_energy_18


class TestPlatformTable:
    def test_contains_paper_rows(self):
        names = [row.name for row in platform_table()]
        assert any("Atmel" in name for name in names)
        assert any("Lutonium" in name for name in names)
        assert sum("SNAP/LE" in name for name in names) == 2

    def test_measured_rows_flagged(self):
        table = platform_table(snap_measurements={0.6: (28e6, 24e-12)})
        snap_rows = [row for row in table if "SNAP/LE" in row.name]
        assert all(row.measured for row in snap_rows)

    def test_literature_rows_immutable_count(self):
        assert len(LITERATURE_ROWS) == 6


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long header"],
                            [["x", "1"], ["longer", "2"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_ratio_note(self):
        assert ratio_note(110, 100) == "1.10x of paper"
        assert ratio_note(1, 0) == "n/a"


class TestDumpResults:
    def test_skipped_without_results_dir(self, monkeypatch):
        monkeypatch.delenv("BENCH_RESULTS_DIR", raising=False)
        assert dump_results("nothing", {"a": 1}) is None

    def test_writes_results_and_metrics(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_RESULTS_DIR", str(tmp_path))
        path = dump_results("demo", {"values": [1, 2.5, "x"]},
                            metrics={"node0.cpu.instructions": 42})
        assert path == str(tmp_path / "BENCH_demo.json")
        payload = json.loads((tmp_path / "BENCH_demo.json").read_text())
        assert payload["benchmark"] == "demo"
        assert payload["results"]["values"] == [1, 2.5, "x"]
        assert payload["metrics"]["node0.cpu.instructions"] == 42

    def test_dataclasses_converted_field_by_field(self, tmp_path):
        @dataclasses.dataclass
        class Row:
            name: str
            energy: float

        path = dump_results("rows", {"rows": [Row("boot", 1e-9)],
                                     1.8: "non-string key"},
                            directory=str(tmp_path))
        payload = json.loads(open(path).read())
        assert payload["results"]["rows"] == [
            {"name": "boot", "energy": 1e-9}]
        assert payload["results"]["1.8"] == "non-string key"

    def test_numpy_scalars_become_json_numbers(self, tmp_path):
        # Regression: numpy scalars used to fall through to str(), which
        # made dumped energies unusable for arithmetic by the scorecard.
        numpy = pytest.importorskip("numpy")
        path = dump_results(
            "np",
            {"i": numpy.int64(7), "f": numpy.float64(2.5),
             "b": numpy.bool_(True), "a": numpy.arange(3),
             "nested": [numpy.float32(1.5)]},
            directory=str(tmp_path))
        payload = json.loads(open(path).read())["results"]
        assert payload["i"] == 7
        assert payload["f"] == 2.5
        assert payload["b"] is True
        assert payload["a"] == [0, 1, 2]
        assert payload["nested"] == [1.5]
        assert all(not isinstance(value, str)
                   for value in (payload["i"], payload["f"], payload["b"]))

    def test_wall_time_recorded_under_host(self, tmp_path):
        path = dump_results("timed", {"a": 1}, directory=str(tmp_path),
                            wall_time_s=1.25)
        payload = json.loads(open(path).read())
        assert payload["host"]["wall_time_s"] == 1.25
        assert payload["host"]["python"]
        assert payload["host"]["machine"]

    def test_concurrent_dumps_never_tear(self, tmp_path):
        # Regression: dump_results used to stream json straight into the
        # target file, so a concurrent reader (or a second writer) could
        # see a half-written dump.  Two writers hammering the same name
        # while a reader polls must always parse a complete payload from
        # one writer or the other.
        path = str(tmp_path / "BENCH_torn.json")
        rounds = 60
        errors = []

        def writer(tag):
            payload = {"tag": tag, "bulk": list(range(2000))}
            try:
                for _ in range(rounds):
                    dump_results("torn", payload, directory=str(tmp_path))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            seen = 0
            while seen < rounds:
                try:
                    with open(path) as handle:
                        payload = json.load(handle)
                except FileNotFoundError:
                    continue
                except ValueError as exc:  # torn JSON
                    errors.append(exc)
                    return
                assert payload["results"]["tag"] in ("a", "b")
                assert payload["results"]["bulk"][-1] == 1999
                seen += 1

        threads = [threading.Thread(target=writer, args=("a",)),
                   threading.Thread(target=writer, args=("b",)),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # No abandoned temp files either.
        leftovers = [name for name in os.listdir(str(tmp_path))
                     if name.endswith(".tmp")]
        assert leftovers == []
