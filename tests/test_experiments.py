"""Network-experiment tests: convergecast data gathering and lifetime
estimation."""

import pytest

from repro.netstack.sampling import SAMP_SENT, build_sampling_node
from repro.network.experiments import convergecast, lifetime_comparison


@pytest.fixture(scope="module")
def chain_result():
    """One shared convergecast run (moderately expensive)."""
    return convergecast(chain_length=4, period_s=0.1, duration_s=5.0)


class TestConvergecast:
    def test_all_samples_reach_the_sink(self, chain_result):
        expected = sum(report.packets_sent
                       for report in chain_result.nodes.values())
        assert expected > 100
        # Packets still in flight at the cutoff may be missing; nothing
        # else may be lost.
        assert expected - 6 <= chain_result.sink_deliveries <= expected

    def test_staggering_avoids_collisions(self, chain_result):
        assert chain_result.channel_collisions < 10

    def test_relays_funnel_traffic(self, chain_result):
        forwards = {nid: rep.packets_forwarded
                    for nid, rep in chain_result.nodes.items()}
        # Node 2 relays nodes 3 and 4; node 3 relays node 4 only.
        assert forwards[2] > forwards[3] > forwards[4] == 0

    def test_nanowatt_processor_power(self, chain_result):
        for report in chain_result.nodes.values():
            assert 0 < report.average_power_w < 1e-6

    def test_hottest_node_is_a_relay(self, chain_result):
        assert chain_result.hottest_node.node_id in (2, 3)


class TestLifetime:
    def test_lifetime_math(self, chain_result):
        lifetime = chain_result.lifetime_s(battery_j=100.0)
        worst = chain_result.hottest_node.average_power_w
        assert lifetime == pytest.approx(100.0 / worst)

    def test_extra_power_floor_shortens_lifetime(self, chain_result):
        base = chain_result.lifetime_s(battery_j=100.0)
        with_leakage = chain_result.lifetime_s(battery_j=100.0,
                                               extra_power_w=1e-6)
        assert with_leakage < base

    def test_mote_comparison_orders_of_magnitude(self, chain_result):
        comparison = lifetime_comparison(chain_result, battery_j=2000.0)
        assert comparison.snap_power_w < comparison.mote_power_w / 100
        assert comparison.ratio > 100

    def test_leakage_narrows_the_gap(self, chain_result):
        ideal = lifetime_comparison(chain_result)
        leaky = lifetime_comparison(chain_result, snap_leakage_w=1e-6)
        assert leaky.ratio < ideal.ratio


class TestSamplingNode:
    def test_standalone_sampling_node(self):
        """A single sampling node queries its sensor and transmits."""
        from repro.core import CoreConfig
        from repro.netstack.sampling import SAMP_NEXT_HOP, SAMP_SINK
        from repro.node import SensorNode
        from repro.sensors import ConstantSensor

        node = SensorNode(config=CoreConfig(voltage=0.6))
        node.attach_sensor(ConstantSensor(0x222), sensor_id=1)
        node.load(build_sampling_node(5, period_ticks=10_000))
        node.processor.dmem.poke(SAMP_NEXT_HOP, 1)
        node.processor.dmem.poke(SAMP_SINK, 1)
        node.run(until=0.13)  # slack for the last packet's serialization
        assert node.processor.dmem.peek(SAMP_SENT) >= 10
        # Each report is a 9-word packet (5 header + 3 payload + checksum).
        assert node.radio.words_sent >= 90
