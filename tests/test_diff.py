"""snap-diff tests: stream alignment, divergence localization,
checkpoint bisection (with its Hypothesis invariants), cross-run
comparison reports, the differential-harness wiring (deliberately
broken restore), and the CLI.

The localization golden pins the self-test's divergence record shape;
regenerate after an intentional change with::

    PYTHONPATH=src python tests/test_diff.py --regen
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.differential as differential
from repro.obs.diff import (
    SCHEMA,
    Bisector,
    DiffError,
    align,
    capture_from_checkpoint,
    capture_run,
    compare,
    deep_diff_paths,
    first_divergence,
    load_trace,
    render_markdown,
    self_test,
    selftest_builder,
)
from repro.sim.checkpoint import capture
from repro.tools.snap_diff import main as snap_diff_main

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")
GOLDEN = os.path.join(GOLDEN_DIR, "diff_selftest.json")

#: The localization fields the golden pins: everything structural, no
#: floats (times and energies move with the energy model).
GOLDEN_FIELDS = ("kind", "index", "node", "handler", "pc", "mnemonic",
                 "fields", "location")


def _instr(pc, mnemonic, energy=1.0, handler="H", node="n0.cpu", time=0.0):
    return {"type": "instruction", "node": node, "time": time, "pc": pc,
            "mnemonic": mnemonic, "instr_class": "ALU", "handler": handler,
            "energy": energy, "duration": 1e-9}


@pytest.fixture(scope="module")
def perturbed_pair():
    """Full captures of the self-test guest: calibrated vs perturbed."""
    sim_a, horizon = selftest_builder(perturb=False)()
    run_a = capture_run(sim_a, horizon, label="calibrated")
    sim_b, horizon = selftest_builder(perturb=True)()
    run_b = capture_run(sim_b, horizon, label="perturbed")
    return run_a, run_b


@pytest.fixture(scope="module")
def reference_divergence(perturbed_pair):
    return first_divergence(*perturbed_pair)


# -- alignment ----------------------------------------------------------------


class TestAlign:
    def test_identical_streams(self):
        events = [_instr(0, "nop"), _instr(1, "halt")]
        assert align(events, list(events)) is None

    def test_first_differing_record_and_fields(self):
        a = [_instr(0, "nop"), _instr(1, "add r1, r2", energy=1.0)]
        b = [_instr(0, "nop"), _instr(1, "add r1, r2", energy=2.0)]
        divergence = align(a, b)
        assert divergence.index == 1
        assert divergence.kind == "event"
        assert divergence.fields == ["energy"]

    def test_stable_mode_ignores_floats(self):
        a = [_instr(0, "nop", energy=1.0)]
        b = [_instr(0, "nop", energy=9.9)]
        assert align(a, b, mode="stable") is None
        b = [_instr(0, "halt", energy=9.9)]
        divergence = align(a, b, mode="stable")
        assert divergence.fields == ["mnemonic"]

    def test_length_mismatch(self):
        a = [_instr(0, "nop")]
        b = [_instr(0, "nop"), _instr(1, "halt")]
        divergence = align(a, b)
        assert divergence.kind == "length"
        assert divergence.index == 1
        assert divergence.record_a is None
        assert divergence.record_b["mnemonic"] == "halt"

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            align([], [], mode="fuzzy")


class TestDeepDiffPaths:
    def test_nested_paths(self):
        paths = deep_diff_paths({"a": {"b": 1, "c": 2}}, {"a": {"b": 1,
                                                                "c": 3}})
        assert paths == ["a.c: 2 != 3"]

    def test_matches_differential_digest_diff(self):
        left = {"x": {"y": 1}, "z": 2}
        right = {"x": {"y": 5}, "z": 2}
        assert differential.digest_diff(left, right) == \
            deep_diff_paths(left, right)


# -- localization on real runs ------------------------------------------------


class TestLocalization:
    def test_divergence_is_the_handlers_first_load(self,
                                                   reference_divergence):
        divergence = reference_divergence
        assert divergence.kind == "event"
        assert divergence.record_a["type"] == "instruction"
        assert divergence.handler == "TIMER0"
        assert divergence.mnemonic.startswith("ld")
        assert divergence.fields == ["energy"]

    def test_symbolicated_location(self, reference_divergence):
        location = reference_divergence.location
        assert location["function"] == "on_tick"
        assert location["file"] is not None
        assert location["line"] is not None

    def test_flight_recorder_tails(self, reference_divergence):
        divergence = reference_divergence
        assert 0 < len(divergence.tail_a) <= 16
        assert len(divergence.tail_a) == len(divergence.tail_b)
        # Both tails end at the divergent record.
        assert divergence.tail_a[-1] == divergence.record_a
        assert divergence.tail_b[-1] == divergence.record_b
        # Records before it are identical by construction.
        assert divergence.tail_a[:-1] == divergence.tail_b[:-1]

    def test_non_instruction_divergence_attributes_to_preceding_pc(self):
        a = [_instr(4, "schedlo r1, r2", handler="TIMER0"),
             {"type": "enqueue", "node": "n0.cpu.eq", "time": 1.0,
              "event": "TIMER0", "depth": 1}]
        b = [_instr(4, "schedlo r1, r2", handler="TIMER0"),
             {"type": "enqueue", "node": "n0.cpu.eq", "time": 1.0,
              "event": "TIMER0", "depth": 2}]
        from repro.obs.diff import RunCapture, localize

        divergence = localize(
            align(a, b),
            RunCapture(label="a", kind="trace", events=a),
            RunCapture(label="b", kind="trace", events=b))
        assert divergence.handler == "TIMER0"
        assert divergence.pc == 4
        assert divergence.mnemonic == "schedlo r1, r2"


# -- cross-run comparison -----------------------------------------------------


class TestCompare:
    def test_report_schema_and_verdict(self, perturbed_pair):
        report = compare(*perturbed_pair)
        assert report["schema"] == SCHEMA
        assert report["identical"] is False
        assert report["divergence"]["handler"] == "TIMER0"

    def test_handler_deltas_blame_the_perturbed_handler(self,
                                                        perturbed_pair):
        report = compare(*perturbed_pair)
        top = report["handlers"][0]
        assert top["handler"] == "TIMER0"
        assert top["d_energy"] > 0  # perturbation scales energy up
        # Same instruction stream on both sides: only energy moves.
        assert top["d_instructions"] == 0
        boot = [row for row in report["handlers"]
                if row["handler"] == "boot"]
        assert boot and boot[0]["d_energy"] == 0

    def test_pc_deltas_are_memory_ops_only(self, perturbed_pair):
        report = compare(*perturbed_pair)
        moved = [row for row in report["pcs"] if row["d_energy"]]
        assert moved
        assert all(row["mnemonic"].split()[0] in ("ld", "st")
                   for row in moved)
        assert all(row["location"]["function"] == "on_tick"
                   for row in moved)

    def test_identical_runs_compare_clean(self):
        sim_a, horizon = selftest_builder(perturb=False)()
        sim_b, _ = selftest_builder(perturb=False)()
        report = compare(capture_run(sim_a, horizon, label="a"),
                         capture_run(sim_b, horizon, label="b"))
        assert report["identical"] is True
        assert report["divergence"] is None
        assert all(row["d_energy"] == 0 for row in report["handlers"])

    def test_markdown_rendering(self, perturbed_pair):
        report = compare(*perturbed_pair)
        text = render_markdown(report)
        assert "# snap-diff: calibrated vs perturbed" in text
        assert "Verdict: diverged" in text
        assert "first divergence" in text
        assert "handler=TIMER0" in text
        assert "| node | handler |" in text

    def test_report_is_json_serializable(self, perturbed_pair):
        report = compare(*perturbed_pair)
        assert json.loads(json.dumps(report))["schema"] == SCHEMA


# -- checkpoint bisection -----------------------------------------------------


class TestBisector:
    def test_bisect_narrows_to_the_first_tick(self, reference_divergence):
        bisector = Bisector(selftest_builder(perturb=False),
                            selftest_builder(perturb=True))
        window = bisector.bisect()
        t_divergence = reference_divergence.time_a
        assert window["t_lo"] is not None
        assert window["t_lo"] < t_divergence <= window["t_hi"]
        assert window["probes"] > 0
        assert window["digest_paths"]

    def test_localize_matches_full_stream_alignment(self,
                                                    reference_divergence):
        bisector = Bisector(selftest_builder(perturb=False),
                            selftest_builder(perturb=True))
        divergence, run_a, run_b = bisector.localize()
        assert divergence.window is not None
        # The bisected tail re-run must find the very same record the
        # full-stream alignment found (full float precision).
        assert divergence.record_a == reference_divergence.record_a
        assert divergence.record_b == reference_divergence.record_b
        assert divergence.location == reference_divergence.location

    def test_identical_runs_yield_no_window(self):
        bisector = Bisector(selftest_builder(perturb=False),
                            selftest_builder(perturb=False))
        assert bisector.bisect() is None
        divergence, run_a, run_b = bisector.localize()
        assert divergence is None


class TestBisectionInvariant:
    """Satellite invariant: restoring a mid-bisect snapshot and
    re-running to the divergence time reproduces the *identical*
    first-divergence record, wherever the snapshot was taken."""

    @given(fraction=st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=8, deadline=None)
    def test_restored_snapshot_reproduces_divergence(
            self, fraction, reference_divergence):
        reference = reference_divergence
        sim_a, horizon = selftest_builder(perturb=False)()
        sim_b, _ = selftest_builder(perturb=True)()
        start = sim_a.kernel.now
        # Snapshot strictly before the known divergence time, anywhere.
        t = start + (reference.time_a - start) * fraction
        sim_a.kernel.run(until=t)
        sim_b.kernel.run(until=t)
        ckpt_a = capture(sim_a, unknown="skip")
        ckpt_b = capture(sim_b, unknown="skip")

        run_a = capture_run(ckpt_a.restore(), horizon, label="a")
        run_b = capture_run(ckpt_b.restore(), horizon, label="b")
        divergence = first_divergence(run_a, run_b)

        assert divergence is not None
        assert divergence.record_a == reference.record_a
        assert divergence.record_b == reference.record_b
        assert divergence.fields == reference.fields


# -- self-test and its golden -------------------------------------------------


def selftest_localization():
    """The golden projection: structural localization fields only."""
    ok, failures, report = self_test()
    assert ok, failures
    divergence = report["divergence"]
    return {name: divergence[name] for name in GOLDEN_FIELDS}


class TestSelfTest:
    def test_self_test_passes(self):
        ok, failures, report = self_test()
        assert ok, failures
        assert report["identical"] is False

    def test_bisect_self_test_passes(self):
        ok, failures, report = self_test(bisect=True)
        assert ok, failures
        assert report["divergence"]["window"] is not None

    def test_localization_matches_golden(self):
        with open(GOLDEN) as handle:
            expected = json.load(handle)
        assert selftest_localization() == expected


# -- differential-harness wiring ----------------------------------------------


def _corrupting_restore(real_restore):
    """A restore that flips the sti guest's STATE cell to an
    out-of-range value, making the handler patch garbage into its own
    code -- a genuinely divergent resume."""

    def broken(checkpoint):
        sim = real_restore(checkpoint)
        node = sim if not hasattr(sim, "nodes") \
            else next(iter(sim.nodes.values()))
        node.processor.dmem.poke(0x10, 2)
        return sim

    return broken


class TestDifferentialWiring:
    def test_healthy_differential_has_no_divergence_key(self):
        report = differential.differential("blink", True, fraction=0.5,
                                           localize=True)
        assert report["identical"] is True
        assert "divergence" not in report

    def test_broken_restore_yields_localized_divergence(self, monkeypatch):
        monkeypatch.setattr(differential, "restore",
                            _corrupting_restore(differential.restore))
        report = differential.differential("sti", True, fraction=0.5,
                                           localize=True)
        assert report["identical"] is False
        divergence = report["divergence"]
        assert divergence is not None
        assert divergence["node"] == "node1.cpu"
        assert divergence["handler"] == "TIMER0"
        # The corruption patches the self-modifying site: localization
        # lands on the patched instruction, symbolicated to its label.
        assert divergence["location"]["function"] == "patch"
        assert "first divergence" in divergence["text"]

    def test_cli_prints_localization_on_failure(self, monkeypatch, capsys):
        monkeypatch.setattr(differential, "restore",
                            _corrupting_restore(differential.restore))
        code = differential.main(["--scenarios", "sti",
                                  "--fractions", "0.5"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DIVERGED" in out
        assert "first divergence" in out
        assert "handler=TIMER0" in out


# -- the snap-diff CLI --------------------------------------------------------


def _write_trace(path, events):
    with open(path, "w") as handle:
        for record in events:
            handle.write(json.dumps(record) + "\n")


class TestSnapDiffCli:
    def test_self_test_exit_zero(self, capsys):
        assert snap_diff_main(["--self-test", "--quiet"]) == 0
        assert "self-test: PASS" in capsys.readouterr().out

    def test_scenario_pair_identical(self, capsys):
        code = snap_diff_main(["scenario:blink:fast", "scenario:blink:ref",
                               "--quiet"])
        assert code == 0

    def test_trace_pair_divergent(self, tmp_path, perturbed_pair,
                                  capsys):
        run_a, run_b = perturbed_pair
        trace_a = str(tmp_path / "a.jsonl")
        trace_b = str(tmp_path / "b.jsonl")
        _write_trace(trace_a, run_a.events)
        _write_trace(trace_b, run_b.events)
        report_path = str(tmp_path / "report.json")
        markdown_path = str(tmp_path / "report.md")
        code = snap_diff_main([trace_a, trace_b, "--json", report_path,
                               "--markdown", markdown_path, "--quiet"])
        assert code == 1
        with open(report_path) as handle:
            report = json.load(handle)
        assert report["schema"] == SCHEMA
        assert report["divergence"]["handler"] == "TIMER0"
        with open(markdown_path) as handle:
            assert "Verdict: diverged" in handle.read()

    def test_trace_pair_stable_mode_identical(self, tmp_path,
                                              perturbed_pair):
        run_a, run_b = perturbed_pair
        trace_a = str(tmp_path / "a.jsonl")
        trace_b = str(tmp_path / "b.jsonl")
        _write_trace(trace_a, run_a.events)
        _write_trace(trace_b, run_b.events)
        assert snap_diff_main([trace_a, trace_b, "--mode", "stable",
                               "--quiet"]) == 0

    def test_checkpoint_inputs(self, tmp_path):
        sim, horizon = selftest_builder(perturb=False)()
        t = sim.kernel.now + (horizon - sim.kernel.now) * 0.5
        sim.kernel.run(until=t)
        path = str(tmp_path / "mid.ckpt.json")
        capture(sim, unknown="skip").save(path)
        code = snap_diff_main([path, path, "--until", str(horizon),
                               "--quiet"])
        assert code == 0

    def test_checkpoint_without_until_is_an_error(self, tmp_path, capsys):
        sim, horizon = selftest_builder(perturb=False)()
        path = str(tmp_path / "t0.ckpt.json")
        capture(sim, unknown="skip").save(path)
        assert snap_diff_main([path, path]) == 2
        assert "--until" in capsys.readouterr().err

    def test_unknown_input_is_an_error(self, tmp_path, capsys):
        assert snap_diff_main([str(tmp_path / "nope.bin"),
                               str(tmp_path / "nope.bin")]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_scenario_is_an_error(self, capsys):
        assert snap_diff_main(["scenario:nope", "scenario:blink"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bisect_flag_on_scenarios(self, capsys):
        code = snap_diff_main(["scenario:straightline:fast",
                               "scenario:straightline:ref", "--bisect",
                               "--quiet"])
        assert code == 0


# -- loaders ------------------------------------------------------------------


class TestLoaders:
    def test_load_trace_round_trip(self, tmp_path, perturbed_pair):
        run_a, _ = perturbed_pair
        path = str(tmp_path / "trace.jsonl")
        _write_trace(path, run_a.events)
        loaded = load_trace(path)
        assert loaded.kind == "trace"
        assert loaded.events == run_a.events
        assert loaded.time_s == run_a.events[-1]["time"]

    def test_capture_from_checkpoint_replays_tail(self, tmp_path):
        sim, horizon = selftest_builder(perturb=False)()
        t = sim.kernel.now + (horizon - sim.kernel.now) * 0.5
        sim.kernel.run(until=t)
        checkpoint = capture(sim, unknown="skip")
        run = capture_from_checkpoint(checkpoint, horizon, label="tail")
        assert run.kind == "checkpoint"
        assert run.events
        assert run.time_s == pytest.approx(horizon)

    def test_capture_from_checkpoint_needs_later_horizon(self):
        sim, _ = selftest_builder(perturb=False)()
        checkpoint = capture(sim, unknown="skip")
        with pytest.raises(DiffError, match="--until"):
            capture_from_checkpoint(checkpoint, checkpoint.time_s)


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        payload = selftest_localization()
        with open(GOLDEN, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print("regenerated %s" % GOLDEN)
    else:
        print("usage: python tests/test_diff.py --regen")
