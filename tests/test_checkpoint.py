"""Checkpoint/restore differential harness and schema tests.

The headline proof for :mod:`repro.sim.checkpoint`: for every scenario
in the :mod:`repro.sim.differential` matrix and both execution engines,
a simulation checkpointed at a mid-flight time ``t`` and resumed runs
bit-identically to one that was never interrupted -- meter digests,
trace streams, and packet-journey trees all match exactly.  Plus
property tests (capture/restore round-trips arbitrary live state,
capture is idempotent and mutation-free) and the schema-versioning
contract (typed :class:`CheckpointVersionError`, committed golden).
"""

import json
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CoreConfig
from repro.core.kernel import Kernel
from repro.netstack import build_blink_app
from repro.network.simulator import NetworkSimulator
from repro.node import SensorNode
from repro.obs import MemorySink, Observability
from repro.sim import (
    SCHEMA,
    Checkpoint,
    CheckpointCaptureError,
    CheckpointError,
    CheckpointVersionError,
    capture,
    network_digest,
    restore,
)
from repro.sim.differential import (
    SCENARIOS,
    _run,
    checkpoint_time,
    differential,
    digest_diff,
)
from repro.tools.snap_flight import main as snap_flight_main
from repro.tools.snap_run import main as snap_run_main

ENGINES = [True, False]

#: Scenarios cheap enough for the tier-1 suite; the convergecast cases
#: carry ``@pytest.mark.slow`` and run in CI's full matrix.
TIER1_SCENARIOS = ["straightline", "blink", "sti", "chain_biterr",
                   "aodv_noroute"]

GOLDEN = os.path.join(os.path.dirname(__file__), "goldens",
                      "checkpoint_v1.json")


def _fraction(scenario, fast_path):
    """A pseudo-random mid-flight checkpoint fraction, stable per case.

    Seeded from the case identity so failures reproduce, while the
    matrix still spreads capture points across the autonomous tails.
    """
    return random.Random("%s/%s" % (scenario, fast_path)).uniform(0.15, 0.85)


# -- the differential matrix --------------------------------------------------


class TestDifferentialMatrix:
    @pytest.mark.parametrize("fast_path", ENGINES)
    @pytest.mark.parametrize("scenario", TIER1_SCENARIOS)
    def test_resume_is_bit_identical(self, scenario, fast_path):
        report = differential(scenario, fast_path,
                              fraction=_fraction(scenario, fast_path))
        assert report["identical"], "\n".join(
            digest_diff(report["baseline"], report["resumed"]))

    @pytest.mark.slow
    @pytest.mark.parametrize("fast_path", ENGINES)
    def test_convergecast_resume_is_bit_identical(self, fast_path):
        report = differential("convergecast", fast_path,
                              fraction=_fraction("convergecast", fast_path))
        assert report["identical"], "\n".join(
            digest_diff(report["baseline"], report["resumed"]))

    def test_differential_round_trips_via_json(self):
        """The persisted JSON text, not just the in-memory dict, is what
        must restore bit-identically (the default, pinned here)."""
        report = differential("sti", True, fraction=0.5, via_json=True)
        assert report["identical"]


class TestTraceStreamIdentity:
    """The resumed run's trace stream equals the uninterrupted run's
    stream filtered to events after the checkpoint time."""

    @pytest.mark.parametrize("fast_path", ENGINES)
    def test_blink_stream_tail_matches(self, fast_path):
        builder = SCENARIOS["blink"]

        baseline, horizon = builder(fast_path)
        obs = Observability()
        sink = obs.bus.attach(MemorySink())
        baseline.attach_observability(obs)
        t = checkpoint_time(baseline, horizon, 0.4)
        _run(baseline, horizon)

        subject, _ = builder(fast_path)
        subject_obs = Observability()
        subject.attach_observability(subject_obs)
        subject_obs.bus.attach(MemorySink())
        _run(subject, t)
        resumed = restore(Checkpoint.from_json(capture(subject).to_json()))
        resumed_obs = Observability()
        resumed_sink = resumed_obs.bus.attach(MemorySink())
        resumed.attach_observability(resumed_obs)
        _run(resumed, horizon)

        tail = [record for record in sink.records() if record["time"] > t]
        assert tail  # non-vacuous: the tail saw real activity
        assert resumed_sink.records() == tail

    def test_chain_stream_tail_matches(self):
        builder = SCENARIOS["chain_biterr"]

        baseline, horizon = builder(True)
        obs = Observability()
        sink = obs.bus.attach(MemorySink())
        baseline.attach_observability(obs)
        t = checkpoint_time(baseline, horizon, 0.25)
        _run(baseline, horizon)

        subject, _ = builder(True)
        subject.attach_observability(Observability())
        _run(subject, t)
        resumed = restore(capture(subject))
        resumed_obs = Observability()
        resumed_sink = resumed_obs.bus.attach(MemorySink())
        resumed.attach_observability(resumed_obs)
        _run(resumed, horizon)

        tail = [record for record in sink.records() if record["time"] > t]
        assert tail
        assert resumed_sink.records() == tail


class TestJourneyTreeIdentity:
    """Packet-journey trees reconstructed over the resumed tail equal
    those reconstructed over the same tail of an uninterrupted run.

    Journey trackers reassemble frames statefully from word streams, so
    the comparison window must contain whole frames: the chain scenarios
    start their last flight at the very head of the autonomous tail
    (checkpoint there), while convergecast traffic is periodic and
    supports a genuinely mid-flight capture point (the slow case).
    """

    @staticmethod
    def _journeys_after(sim, t, horizon):
        _run(sim, t)
        obs = Observability(journeys=True)
        sim.attach_observability(obs)
        _run(sim, horizon)
        obs.journeys.flush()
        return [journey.tree() for journey in obs.journeys.journeys]

    def _check(self, scenario, fraction):
        builder = SCENARIOS[scenario]

        baseline, horizon = builder(True)
        t = checkpoint_time(baseline, horizon, fraction)
        want = self._journeys_after(baseline, t, horizon)

        subject, _ = builder(True)
        _run(subject, t)
        resumed = restore(Checkpoint.from_json(capture(subject).to_json()))
        got = self._journeys_after(resumed, t, horizon)

        assert want  # non-vacuous: the tail carried packets
        assert got == want

    @pytest.mark.parametrize("scenario", ["chain_biterr", "aodv_noroute"])
    def test_tail_journey_trees_match(self, scenario):
        self._check(scenario, fraction=0.0)

    @pytest.mark.slow
    def test_convergecast_mid_flight_journey_trees_match(self):
        self._check("convergecast", fraction=0.35)


# -- property tests -----------------------------------------------------------


def _scrambled_node(regs, dmem_writes, meter_floats, fifo_words, lfsr,
                    timer_ticks, carry, pc):
    """A node with randomized architectural, meter, and kernel state."""
    node = SensorNode(node_id=3, config=CoreConfig(fast_path=False))
    processor = node.processor
    processor.regs._regs = list(regs)
    for address, word in dmem_writes:
        processor.dmem.poke(address, word)
    processor.lfsr.seed(lfsr)
    processor.carry = carry
    processor.pc = pc
    meter = processor.meter
    meter.total_energy, meter.busy_time, meter.idle_energy = meter_floats
    meter.instructions = int(meter_floats[0] * 1e9) & 0xFFFFFF
    for word in fifo_words:
        processor.mcp.outgoing.push(word)
    for index, ticks in enumerate(timer_ticks):
        processor.timer.schedlo(index, ticks)
    return node


@given(
    regs=st.lists(st.integers(0, 0xFFFF), min_size=15, max_size=15),
    dmem_writes=st.lists(
        st.tuples(st.integers(0, 2047), st.integers(0, 0xFFFF)),
        max_size=8),
    meter_floats=st.tuples(
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False),
        st.floats(0, 1, allow_nan=False)),
    fifo_words=st.lists(st.integers(0, 0xFFFF), max_size=8),
    lfsr=st.integers(1, 0xFFFF),
    timer_ticks=st.lists(st.integers(1, 0xFFFF), min_size=0, max_size=3),
    carry=st.integers(0, 1),
    pc=st.integers(0, 2047),
)
@settings(max_examples=30, deadline=None)
def test_restore_capture_round_trips(regs, dmem_writes, meter_floats,
                                     fifo_words, lfsr, timer_ticks, carry,
                                     pc):
    """``capture(restore(capture(s)))`` is a fixed point for arbitrary
    live state: registers, memories, meter floats at full precision,
    FIFO contents, armed timers and their pending kernel expirations."""
    node = _scrambled_node(regs, dmem_writes, meter_floats, fifo_words,
                           lfsr, timer_ticks, carry, pc)
    first = capture(node)
    clone = restore(Checkpoint.from_json(first.to_json()))
    second = capture(clone)
    assert second.data == first.data


@given(delays=st.lists(st.floats(1e-6, 1.0, allow_nan=False), max_size=4))
@settings(max_examples=20, deadline=None)
def test_capture_is_idempotent_and_pure(delays):
    """Capturing twice yields identical bytes, and capture itself never
    perturbs the simulation (digests before and after agree)."""
    node = SensorNode(node_id=1)
    for index, delay in enumerate(delays):
        ticks = max(1, int(delay * node.processor.timer.tick_hz)) & 0xFFFF
        node.processor.timer.schedlo(index % 3, max(1, ticks))
    before = network_digest(node)
    first = capture(node)
    second = capture(node)
    assert first.to_json() == second.to_json()
    assert network_digest(node) == before


# -- schema versioning --------------------------------------------------------


class TestSchemaVersioning:
    def test_unknown_schema_raises_typed_error_with_version(self):
        bogus = {"schema": "repro.sim.checkpoint/999", "kind": "node"}
        with pytest.raises(CheckpointVersionError) as excinfo:
            Checkpoint(bogus)
        message = str(excinfo.value)
        assert "repro.sim.checkpoint/999" in message
        assert SCHEMA in message
        assert excinfo.value.found == "repro.sim.checkpoint/999"

    def test_missing_schema_raises(self):
        with pytest.raises(CheckpointVersionError):
            Checkpoint({"kind": "node"})
        with pytest.raises(CheckpointVersionError):
            restore({"kind": "node"})

    def test_version_error_is_a_checkpoint_error(self):
        assert issubclass(CheckpointVersionError, CheckpointError)

    def test_golden_schema_v1(self):
        """The committed golden detects accidental schema drift.

        Regenerate deliberately (after a schema *version bump*) with::

            PYTHONPATH=src python -m tests.regen_checkpoint_golden
        """
        builder = SCENARIOS["sti"]
        node, _ = builder(True)
        _run(node, 0.02)
        data = json.loads(capture(node).to_json())
        with open(GOLDEN) as handle:
            golden = json.load(handle)
        assert data == golden


# -- capture policy and error paths -------------------------------------------


class TestCapturePolicy:
    def test_unknown_callback_raises_by_default(self):
        node = SensorNode(node_id=1)
        node.kernel.schedule(0.5, lambda: None)
        with pytest.raises(CheckpointCaptureError) as excinfo:
            capture(node)
        assert "lambda" in str(excinfo.value)

    def test_unknown_callback_skip_policy_records_the_skip(self):
        node = SensorNode(node_id=1)
        node.kernel.schedule(0.5, lambda: None)
        checkpoint = capture(node, unknown="skip")
        skipped = checkpoint.data["skipped_callbacks"]
        assert len(skipped) == 1 and skipped[0]["time"] == 0.5

    def test_unsupported_sensor_type_raises(self):
        class WeirdSensor:
            def read(self, now):
                return 0

        node = SensorNode(node_id=1)
        node.attach_sensor(WeirdSensor(), sensor_id=5)
        with pytest.raises(CheckpointCaptureError) as excinfo:
            capture(node)
        assert "WeirdSensor" in str(excinfo.value)

    def test_capture_rejects_bare_objects(self):
        with pytest.raises(CheckpointCaptureError):
            capture(Kernel())

    def test_restored_kernel_rejects_bad_handles(self):
        kernel = Kernel()
        with pytest.raises(ValueError):
            kernel.restore_state(0.0, 2, [(0.1, 5, print, ())])
        with pytest.raises(ValueError):
            kernel.restore_state(0.0, 4, [(0.1, 2, print, ()),
                                          (0.2, 2, print, ())])


class TestSimulatorSurface:
    def test_network_checkpoint_methods_round_trip(self, tmp_path):
        net = NetworkSimulator()
        program = build_blink_app(period_ticks=400)
        net.add_node(1, program=program)
        net.start()
        net.run(until=0.05)
        path = str(tmp_path / "net.ckpt.json")
        net.checkpoint().save(path)
        clone = NetworkSimulator.from_checkpoint(path)
        assert network_digest(clone) == network_digest(net)
        clone.run(until=0.1)
        net.run(until=0.1)
        assert network_digest(clone) == network_digest(net)


# -- CLI surfaces -------------------------------------------------------------


_CLI_PROGRAM = """
boot:
    movi r1, 0
    movi r2, 6
outer:
    movi r3, 2000
inner:
    addi r1, 1
    subi r3, 1
    bnez r3, inner
    subi r2, 1
    bnez r2, outer
    halt
"""


class TestSnapRunCheckpoint:
    def _write_program(self, tmp_path):
        path = tmp_path / "loop.s"
        path.write_text(_CLI_PROGRAM)
        return str(path)

    def test_checkpoint_resume_matches_uninterrupted(self, tmp_path,
                                                     capsys):
        source = self._write_program(tmp_path)
        ckpt = str(tmp_path / "loop.ckpt.json")

        assert snap_run_main([source, "--until", "0.01"]) == 0
        uninterrupted = capsys.readouterr().out

        assert snap_run_main([source, "--until", "0.004",
                              "--checkpoint-every", "0.002",
                              "--checkpoint-path", ckpt]) == 0
        assert "checkpoint   : t=0.004000 s" in capsys.readouterr().out

        assert snap_run_main(["--resume", ckpt, "--until", "0.01"]) == 0
        resumed = capsys.readouterr().out
        assert "resumed      : %s" % ckpt in resumed

        def stats(text):
            return [line for line in text.splitlines()
                    if not line.startswith(("checkpoint", "resumed"))]

        assert stats(resumed) == stats(uninterrupted)

    def test_checkpoint_every_requires_until(self, tmp_path, capsys):
        source = self._write_program(tmp_path)
        with pytest.raises(SystemExit):
            snap_run_main([source, "--checkpoint-every", "0.5"])

    def test_resume_and_inputs_are_exclusive(self, tmp_path):
        source = self._write_program(tmp_path)
        with pytest.raises(SystemExit):
            snap_run_main([source, "--resume", "x.json"])
        with pytest.raises(SystemExit):
            snap_run_main([])

    def test_resume_rejects_network_checkpoints(self, tmp_path, capsys):
        net = NetworkSimulator()
        net.add_node(1, program=build_blink_app(period_ticks=400))
        net.run(until=0.01)
        path = str(tmp_path / "net.ckpt.json")
        net.checkpoint().save(path)
        assert snap_run_main(["--resume", path, "--until", "0.02"]) == 1
        assert "single-node" in capsys.readouterr().err


class TestSnapFlightReplay:
    def test_replay_tail_reproduces_crash_from_checkpoint(self, tmp_path,
                                                          capsys):
        out = str(tmp_path / "bundle")
        assert snap_flight_main(["demo-crash", "--out", out]) == 0
        assert "checkpoint   : embedded" in capsys.readouterr().out
        bundle = os.path.join(out, "crash.json")
        assert snap_flight_main(["replay-tail", bundle, "--replay",
                                 "--tail", "1"]) == 0
        output = capsys.readouterr().out
        assert "reproduced   : MemoryFault" in output
        assert "state matches the bundle" in output

    def test_replay_without_embedded_checkpoint_fails_cleanly(
            self, tmp_path, capsys):
        bundle = tmp_path / "bare.json"
        bundle.write_text(json.dumps({"schema": "repro.obs.crash-bundle/1",
                                      "time_s": 0.1, "nodes": {}}))
        assert snap_flight_main(["replay-tail", str(bundle),
                                 "--replay"]) == 1
        assert "no embedded checkpoint" in capsys.readouterr().err
