"""Linker tests: multi-module layout, relocation, errors."""

import pytest

from repro.asm import LinkError, assemble, link
from repro.asm.objectfile import (
    UNKNOWN_LOC,
    UNMAPPED_FILE,
    ObjectModule,
    Program,
)
from repro.asm.linker import DMEM_WORDS, IMEM_WORDS
from repro.isa import Opcode, decode_stream


class TestLayout:
    def test_modules_concatenate_in_order(self):
        first = assemble("nop\nnop\n", name="boot")
        second = assemble("entry: halt\n", name="app")
        program = link([first, second])
        assert program.symbols["entry"] == 2
        assert len(program.imem) == 3

    def test_data_sections_concatenate(self):
        first = assemble(".data\na: .word 1\n", name="m1")
        second = assemble(".data\nb: .word 2\n", name="m2")
        program = link([first, second])
        assert program.dmem == [1, 2]
        assert program.symbols["b"] == 1

    def test_code_size_properties(self):
        program = link([assemble("movi r1, 1\nhalt\n")])
        assert program.text_size_words == 3
        assert program.text_size_bytes == 6


class TestRelocation:
    def test_cross_module_jump(self):
        caller = assemble("jmp target\n", name="caller")
        callee = assemble("target: halt\n", name="callee")
        program = link([caller, callee])
        entries = decode_stream(program.imem)
        assert entries[0][1].imm == program.symbols["target"]

    def test_cross_module_branch(self):
        caller = assemble("bnez r1, target\n", name="caller")
        callee = assemble("target: halt\n", name="callee")
        program = link([caller, callee])
        assert decode_stream(program.imem)[0][1].imm == 0  # next word

    def test_cross_module_branch_out_of_range(self):
        caller = assemble("bnez r1, target\n", name="caller")
        filler = assemble("\n".join(["nop"] * 40), name="filler")
        callee = assemble("target: halt\n", name="callee")
        with pytest.raises(LinkError, match="out of range"):
            link([caller, filler, callee])

    def test_data_symbol_used_as_address(self):
        code = assemble("ld r1, counter(r0)\nhalt\n", name="code")
        data = assemble(".data\npad: .word 0\ncounter: .word 42\n", name="data")
        program = link([code, data])
        assert decode_stream(program.imem)[0][1].imm == 1

    def test_local_symbols_resolve_within_module(self):
        module = assemble("jmp .here\n.here: halt\n", name="m")
        program = link([module])
        assert decode_stream(program.imem)[0][1].imm == 2

    def test_local_symbols_do_not_leak(self):
        uses = assemble("jmp .private\n", name="user")
        defines = assemble(".private: halt\n", name="owner")
        with pytest.raises(LinkError, match="undefined"):
            link([uses, defines])

    def test_addend(self):
        code = assemble("movi r1, table + 2\nhalt\n", name="c")
        data = assemble(".data\ntable: .word 0, 0, 7\n", name="d")
        program = link([code, data])
        assert program.imem[1] == 2


class TestErrors:
    def test_undefined_symbol(self):
        with pytest.raises(LinkError, match="undefined symbol 'nowhere'"):
            link([assemble("jmp nowhere\n")])

    def test_duplicate_exported_symbols(self):
        with pytest.raises(LinkError, match="duplicate"):
            link([assemble("x: nop\n", name="a"),
                  assemble("x: nop\n", name="b")])

    def test_imem_overflow(self):
        big = assemble(".space 1\n" * 0)  # placeholder module
        big.text.extend([0] * (IMEM_WORDS + 1))
        with pytest.raises(LinkError, match="exceeds IMEM"):
            link([big])

    def test_dmem_overflow(self):
        module = assemble(".data\n.space %d\n" % (DMEM_WORDS + 1))
        with pytest.raises(LinkError, match="exceeds DMEM"):
            link([module])

    def test_imem_capacity_is_4kb(self):
        """Section 3.1: two on-chip 4KB banks."""
        assert IMEM_WORDS * 2 == 4096
        assert DMEM_WORDS * 2 == 4096


class TestProgramApi:
    def test_address_of(self):
        program = link([assemble("main: halt\n")])
        assert program.address_of("main") == 0
        with pytest.raises(KeyError):
            program.address_of("missing")

    def test_qualified_local_symbols(self):
        program = link([assemble(".loop: halt\n", name="mod")])
        assert program.symbols["mod:.loop"] == 0


class TestSymbolication:
    """``Program.lookup`` edge cases: out-of-range PCs and linker
    padding must return the typed unknown location, never the nearest
    preceding table entry."""

    def test_in_range_lookup(self):
        program = link([assemble("main:\n    movi r1, 1\n    halt\n",
                                 name="app")])
        loc = program.lookup(0)
        assert loc.function == "main"
        assert loc.file == "app"
        assert not loc.is_unknown

    def test_out_of_range_pcs_are_unknown(self):
        program = link([assemble("main: halt\n", name="app")])
        for pc in (-1, len(program.imem), len(program.imem) + 100, 10**9):
            loc = program.lookup(pc)
            assert loc is UNKNOWN_LOC
            assert loc.is_unknown
            assert str(loc) == "?"

    def test_non_integer_pc_is_unknown(self):
        program = link([assemble("main: halt\n", name="app")])
        assert program.lookup(None) is UNKNOWN_LOC
        assert program.lookup(0.0) is UNKNOWN_LOC
        assert program.lookup(True) is UNKNOWN_LOC

    def test_unmapped_module_words_do_not_inherit_previous_lines(self):
        """A module with text but no line info sits between two mapped
        modules; its words must not symbolicate to the first module's
        last source line."""
        mapped = assemble("first:\n    nop\n    nop\n", name="first")
        padding = ObjectModule(name="pad", text=[0x0000, 0x0000])
        tail = assemble("second: halt\n", name="second")
        program = link([mapped, padding, tail])

        assert program.lookup(1).file == "first"
        for pc in (2, 3):  # the unmapped module's words
            assert program.lookup(pc).is_unknown
            assert program.lookup(pc).file is None
        loc = program.lookup(4)
        assert loc.function == "second"
        assert loc.file == "second"

    def test_sentinel_not_emitted_for_mapped_modules(self):
        """Modules whose line entries start at offset 0 need no
        sentinel; every word symbolicates normally."""
        program = link([assemble("a:\n    nop\n", name="a"),
                        assemble("b:\n    halt\n", name="b")])
        assert all(entry[1] != UNMAPPED_FILE
                   for entry in program.line_table)
        assert program.lookup(0).file == "a"
        assert program.lookup(1).file == "b"

    def test_hex_image_with_no_tables_is_unknown(self):
        program = Program(imem=[0, 0, 0], dmem=[], symbols={})
        assert program.lookup(1).is_unknown
        assert program.lookup(5).is_unknown
