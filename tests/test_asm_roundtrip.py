"""Property-based round trips across the tool-chain: random instruction
streams survive encode -> disassemble -> reassemble -> encode, and the
energy meter report renders for arbitrary runs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm import assemble, build
from repro.core import CoreConfig, SnapProcessor
from repro.isa import Instruction, Opcode, disassemble_words, encode
from repro.isa.instruction import BRANCH_OFFSET_MAX, BRANCH_OFFSET_MIN
from repro.isa.opcodes import Format, all_specs

registers = st.integers(0, 15)
immediates = st.integers(0, 0xFFFF)
offsets = st.integers(BRANCH_OFFSET_MIN, BRANCH_OFFSET_MAX)
shamts = st.integers(0, 15)

_SHIFT_IMMS = (Opcode.SLL, Opcode.SRL, Opcode.SRA)
#: Opcodes whose rs field is architecturally unused (the assembler
#: always emits rs=0 for them, so round-trip fuzzing must too).
_NO_RS = (Opcode.RAND, Opcode.SEED, Opcode.CANCEL, Opcode.JR, Opcode.JALR,
          Opcode.MOVI, Opcode.ADDI, Opcode.SUBI, Opcode.ANDI, Opcode.ORI,
          Opcode.XORI)


@st.composite
def instructions(draw):
    """Generate any valid instruction (in canonical rs-field form)."""
    spec = draw(st.sampled_from(all_specs()))
    fmt = spec.format
    if fmt == Format.N:
        return Instruction(spec.opcode)
    if fmt == Format.R:
        if spec.opcode in _SHIFT_IMMS:
            rs = draw(shamts)
        elif spec.opcode in _NO_RS:
            rs = 0
        else:
            rs = draw(registers)
        return Instruction(spec.opcode, rd=draw(registers), rs=rs)
    if fmt == Format.B:
        return Instruction(spec.opcode, rs=draw(registers),
                           imm=draw(offsets))
    if fmt == Format.RI:
        rs = 0 if spec.opcode in _NO_RS else draw(registers)
        return Instruction(spec.opcode, rd=draw(registers),
                           rs=rs, imm=draw(immediates))
    return Instruction(spec.opcode, imm=draw(immediates))


class TestToolchainRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(instruction=instructions())
    def test_single_instruction_full_round_trip(self, instruction):
        """encode -> disassemble -> assemble -> identical words."""
        words = encode(instruction)
        text = instruction.text()
        module = assemble(text)
        assert module.text == words

    @settings(max_examples=50, deadline=None)
    @given(stream=st.lists(instructions(), min_size=1, max_size=40))
    def test_stream_round_trip(self, stream):
        words = [word for ins in stream for word in encode(ins)]
        listing = disassemble_words(words)
        # Strip the "addr:" prefixes and reassemble the whole listing.
        source = "\n".join(line.split(":", 1)[1].strip()
                           for line in listing)
        module = assemble(source)
        assert module.text == words

    @settings(max_examples=30, deadline=None)
    @given(stream=st.lists(instructions(), min_size=1, max_size=10))
    def test_disassembly_never_crashes_on_valid_streams(self, stream):
        words = [word for ins in stream for word in encode(ins)]
        lines = disassemble_words(words)
        assert len(lines) == len(stream)


class TestMeterReport:
    def test_report_renders_for_a_real_run(self):
        source = """
        boot:
            movi r1, 0
            movi r2, handler
            setaddr r1, r2
            movi r2, 100
            schedlo r1, r2
            done
        handler:
            ld r3, 0(r0)
            addi r3, 1
            st r3, 0(r0)
            movi r1, 0
            movi r2, 100
            schedlo r1, r2
            done
        """
        processor = SnapProcessor(config=CoreConfig(voltage=0.6))
        processor.load(build(source))
        meter = processor.run(until=0.00052)
        text = meter.report()
        assert "instructions :" in text
        assert "pJ/instruction" in text
        assert "handler TIMER0" in text
        assert "wakeups" in text

    def test_report_renders_when_empty(self):
        from repro.energy import EnergyMeter
        text = EnergyMeter().report()
        assert "instructions : 0" in text
