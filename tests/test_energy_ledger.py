"""Causal energy provenance: the ledger's four reconciling views.

The load-bearing guarantees, in order:

1. **Bit-identical line counters** -- the per-(node, pc, handler)
   energy accumulation is exactly the same under ``fast_path=True`` and
   the reference engine, on fig5 blink and on the self-modifying STI
   scenario (the fast path's burst loop must not reorder or coalesce
   the per-instruction floats).
2. **Bit-identical meters** -- arming the ledger changes no simulation
   result: meter digests match a bare run exactly.
3. **Reconciliation** -- every view (lines, layers, packets) attributes
   the meters' total to within float-rounding residual, reported
   explicitly; the acceptance bar is 1%, the observed scale ~1e-7.
4. **Localization** -- perturbing one handler's instruction energy
   moves exactly the right symbolicated source line and layer
   (``snap-energy --self-test``), and the per-node energy budget
   invariant trips when -- and only when -- a budget is exceeded.
"""

import json
import math

import pytest

from repro.bench.simspeed import meter_digest
from repro.node import SensorNode
from repro.obs import Observability
from repro.obs.energy import layer_split_from_meter, project_lifetime
from repro.obs.watchdog import InvariantViolation
from repro.tools import snap_energy

#: The issue's acceptance bar on each view's residual fraction.
ACCEPTANCE_RESIDUAL = 0.01


def _run_bare(name, fast_path=True):
    """One scenario run without any observability attached."""
    sim, horizon = snap_energy.scenarios()[name](fast_path)
    if isinstance(sim, SensorNode):
        sim.kernel.run(until=horizon)
    else:
        sim.run(until=horizon)
    return sim


def _processors(sim):
    if isinstance(sim, SensorNode):
        return [sim.processor]
    return [node.processor for _, node in sorted(sim.nodes.items())]


# -- 1. bit-identical line counters across engines ------------------------------

@pytest.mark.parametrize("name", ["blink", "sti"])
def test_line_counters_bit_identical_across_engines(name):
    ledgers = {}
    for fast in (True, False):
        obs, _, _, _ = snap_energy.run_scenario(name, fast_path=fast)
        ledgers[fast] = obs.energy
    fast, ref = ledgers[True], ledgers[False]
    assert fast.instructions == ref.instructions
    assert fast.energy == ref.energy
    assert set(fast.by_line) == set(ref.by_line)
    for key, stat in fast.by_line.items():
        other = ref.by_line[key]
        assert stat.count == other.count, key
        assert stat.energy == other.energy, key   # exact float equality
        assert stat.time == other.time, key
        assert stat.mnemonic == other.mnemonic, key


# -- 2. arming the ledger is invisible to the simulation ------------------------

@pytest.mark.parametrize("name", ["blink", "sti"])
def test_meter_digest_identical_armed_vs_disarmed(name):
    bare = _run_bare(name)
    obs, armed, _, _ = snap_energy.run_scenario(name)
    assert obs.energy.instructions > 0   # the ledger actually observed
    digests_bare = [meter_digest(p) for p in _processors(bare)]
    digests_armed = [meter_digest(p) for p in _processors(armed)]
    assert digests_bare == digests_armed


# -- 3. every view reconciles ---------------------------------------------------

@pytest.mark.parametrize("name", ["blink", "convergecast"])
def test_views_reconcile_within_tolerance(name):
    obs, _, _, _ = snap_energy.run_scenario(name)
    report = snap_energy.build_report(obs.energy)
    assert report["total_j"] > 0
    for view in ("lines", "layers", "packets"):
        frac = report[view]["residual_frac"]
        assert frac < ACCEPTANCE_RESIDUAL, (view, frac)
        # The default CLI gate is far tighter than the acceptance bar.
        assert frac <= snap_energy.DEFAULT_TOLERANCE, (view, frac)
    assert snap_energy._check_reconciliation(
        report, snap_energy.DEFAULT_TOLERANCE) == []


def test_convergecast_packets_carry_forwarding_cost():
    obs, _, _, _ = snap_energy.run_scenario("convergecast")
    view = obs.energy.packet_view()
    delivered = [row for row in view["packets"] if row["delivered"]]
    assert delivered, "convergecast delivered no journeys"
    multi_hop = [row for row in delivered if row["hops"] >= 2]
    assert multi_hop, "no multi-hop journey to attribute forwarding to"
    for row in delivered:
        assert row["radio_j"] > 0
        assert row["total_j"] == row["radio_j"] + row["cpu_j"]
    # CPU attribution found the handler invocations behind the sends.
    assert sum(row["cpu_j"] for row in delivered) > 0
    # Idle listening dominates a duty-cycled radio; it must be surfaced
    # as an explicit bucket, never folded into per-packet cost.
    assert view["non_packet"]["radio_idle_j"] > 0


def test_layer_split_from_meter_reconciles_exactly():
    sim = _run_bare("blink")
    for _, node in sorted(sim.nodes.items()):
        radio = node.radio.radio_energy()
        split = layer_split_from_meter(node.meter, radio)
        assert sum(split.values()) == pytest.approx(
            node.meter.total_energy + radio, rel=1e-12)
        assert split["radio"] == radio
        assert split["idle-sleep"] > 0   # wakeup/token/idle always accrue


# -- 4. flame-graph exports -----------------------------------------------------

def test_collapsed_stack_and_speedscope_formats():
    obs, _, _, _ = snap_energy.run_scenario("c_blink")
    ledger = obs.energy

    collapsed = ledger.collapsed_stack()
    assert collapsed.endswith("\n")
    total_pj = 0
    saw_c_line = False
    for line in collapsed.strip().split("\n"):
        stack, weight = line.rsplit(" ", 1)
        assert stack.count(";") >= 3, line   # node;layer;handler;frame
        total_pj += int(weight)
        if "blink.c:" in stack:
            saw_c_line = True
    assert saw_c_line, "no frame symbolicated to blink.c"
    # Weights are the attributed energy, rounded per frame to whole pJ.
    attributed = ledger.line_view()["attributed_j"] * 1e12
    assert total_pj == pytest.approx(attributed, abs=len(collapsed))

    doc = ledger.speedscope(name="c_blink")
    json.dumps(doc)   # must be serializable as-is
    assert doc["$schema"].startswith("https://www.speedscope.app/")
    assert doc["shared"]["frames"]
    assert doc["profiles"]
    for profile in doc["profiles"]:
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        assert profile["endValue"] == pytest.approx(sum(profile["weights"]))
        for stack in profile["samples"]:
            assert all(0 <= i < len(doc["shared"]["frames"]) for i in stack)


# -- 5. localization: the calibration-perturbation self-test --------------------

def test_snap_energy_self_test_localizes_perturbation():
    ok, failures, details = snap_energy.self_test()
    assert ok, failures
    hot = details["hottest_delta"]
    assert hot["function"] == snap_energy.SELFTEST_FUNCTION
    assert hot["handler"] == snap_energy.SELFTEST_HANDLER
    assert hot["layer"] == snap_energy.SELFTEST_LAYER
    assert hot["delta_j"] > 0


# -- 6. the energy_budget watchdog invariant ------------------------------------

def test_energy_budget_trips_when_exceeded():
    with pytest.raises(InvariantViolation) as excinfo:
        snap_energy.run_scenario("c_blink", budgets={"node1": 1e-9})
    assert "energy_budget" in str(excinfo.value)
    assert "node1" in str(excinfo.value)


def test_energy_budget_silent_when_under():
    obs, _, _, watchdog = snap_energy.run_scenario(
        "c_blink", budgets={"node1": 1.0})
    assert watchdog is not None
    assert watchdog.checks_run > 0
    assert obs.energy.instructions > 0


# -- 7. battery-lifetime projection ---------------------------------------------

def _rows(node, points):
    return [{"node": node, "time_s": t, "energy_j": e} for t, e in points]


def test_project_lifetime_linear_and_partition():
    rows = (_rows("a", [(0.0, 0.0), (1.0, 1e-3), (2.0, 2e-3)])
            + _rows("b", [(0.0, 0.0), (1.0, 2e-3), (2.0, 4e-3)]))
    projection = project_lifetime(rows, capacity_j=1.0)
    a, b = projection["nodes"]["a"], projection["nodes"]["b"]
    assert a["linear_s"] == pytest.approx(1000.0)
    assert b["linear_s"] == pytest.approx(500.0)
    assert a["mean_power_w"] == pytest.approx(1e-3)
    assert projection["first_death"] == "b"
    assert projection["partition_s"] == pytest.approx(b["depletes_s"])


def test_project_lifetime_drain_curve_tracks_duty_change():
    # Constant 1 mW for 10 s, then the duty cycle jumps to 3 mW: the
    # drain-curve estimate must be pessimistic vs. the whole-run mean.
    points = [(float(t), 1e-3 * t) for t in range(11)]
    points += [(10.0 + t, 1e-2 + 3e-3 * t) for t in range(1, 11)]
    projection = project_lifetime(_rows("n", points), capacity_j=1.0)
    node = projection["nodes"]["n"]
    assert node["drain_s"] < node["linear_s"]
    assert node["depletes_s"] == node["drain_s"]


def test_project_lifetime_never_depletes_on_zero_power():
    projection = project_lifetime(
        _rows("idle", [(0.0, 0.0), (1.0, 0.0)]), capacity_j=1.0)
    node = projection["nodes"]["idle"]
    assert math.isinf(node["linear_s"])
    assert math.isinf(node["depletes_s"])
    assert math.isinf(projection["partition_s"])


def test_project_lifetime_per_node_capacity_map():
    rows = (_rows("a", [(0.0, 0.0), (1.0, 1e-3)])
            + _rows("b", [(0.0, 0.0), (1.0, 1e-3)]))
    projection = project_lifetime(rows, capacity_j={"a": 1.0, "b": 0.1})
    assert projection["first_death"] == "b"
    assert projection["nodes"]["b"]["capacity_j"] == 0.1


# -- 8. the telemetry energy record ---------------------------------------------

def test_telemetry_streams_energy_records():
    import io

    from repro.obs import StreamTransport, TelemetryExporter

    sim, horizon = snap_energy.scenarios()["blink"](True)
    obs = Observability(energy=True)
    sim.attach_observability(obs)
    stream = io.StringIO()
    exporter = TelemetryExporter(sim.kernel, sim.nodes, obs,
                                 StreamTransport(stream), interval=0.1)
    exporter.start()
    sim.run(until=horizon)
    exporter.close()
    records = [json.loads(line)
               for line in stream.getvalue().splitlines() if line]
    energy = [r for r in records if r["type"] == "energy"]
    assert energy, "no energy records in the stream"
    last = energy[-1]
    assert last["total_j"] > 0
    assert abs(last["residual_frac"]) < ACCEPTANCE_RESIDUAL
    assert set(last["layers"]) & {"app", "idle-sleep", "radio"}
    assert last["top_lines"]
