"""SNAP/LE's two coprocessors.

The *timer coprocessor* (Section 3.2) holds three self-decrementing 24-bit
timer registers and inserts event tokens on expiry and on cancellation.
The *message coprocessor* (Section 3.3) is the interface between the core
and the node's radio and sensors, reached through the two 16-bit FIFOs
that register ``r15`` maps onto.
"""

from repro.coprocessors.fifo import Fifo
from repro.coprocessors.commands import (
    CMD_IDLE,
    CMD_LED,
    CMD_QUERY,
    CMD_RX,
    CMD_TX,
    command_kind,
    command_payload,
    make_command,
)
from repro.coprocessors.timer import NUM_TIMERS, TIMER_MAX, TimerCoprocessor
from repro.coprocessors.message import MessageCoprocessor

__all__ = [
    "Fifo",
    "CMD_IDLE",
    "CMD_LED",
    "CMD_QUERY",
    "CMD_RX",
    "CMD_TX",
    "command_kind",
    "command_payload",
    "make_command",
    "NUM_TIMERS",
    "TIMER_MAX",
    "TimerCoprocessor",
    "MessageCoprocessor",
]
