"""The 16-bit message FIFOs (Section 3.3)."""

from collections import deque


class Fifo:
    """A bounded FIFO of 16-bit words with occupancy statistics."""

    def __init__(self, capacity=16, name="fifo"):
        if capacity <= 0:
            raise ValueError("fifo capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._words = deque()
        self.pushes = 0
        self.pops = 0
        self.max_occupancy = 0

    def __len__(self):
        return len(self._words)

    @property
    def empty(self):
        return not self._words

    @property
    def full(self):
        return len(self._words) >= self.capacity

    def push(self, word):
        """Append a word; raises ``OverflowError`` when full.

        An asynchronous FIFO exerts backpressure rather than dropping; the
        producer (core or coprocessor) is expected to check :attr:`full`
        and stall.  Overflow here therefore indicates a modeling bug.
        """
        if self.full:
            raise OverflowError("%s: push to full fifo (capacity %d)"
                                % (self.name, self.capacity))
        self._words.append(word & 0xFFFF)
        self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._words))

    def pop(self):
        """Remove and return the head word; raises ``IndexError`` if empty."""
        if not self._words:
            raise IndexError("%s: pop from empty fifo" % self.name)
        self.pops += 1
        return self._words.popleft()

    def peek(self):
        return self._words[0] if self._words else None

    def clear(self):
        self._words.clear()

    # -- checkpoint support ---------------------------------------------------

    def words(self):
        """The queued words, head first (inspection only)."""
        return list(self._words)

    def restore(self, words, pushes=0, pops=0, max_occupancy=0):
        """Replace contents and statistics with checkpointed state."""
        if len(words) > self.capacity:
            raise ValueError("%s: %d restored words exceed capacity %d"
                             % (self.name, len(words), self.capacity))
        self._words = deque(word & 0xFFFF for word in words)
        self.pushes = pushes
        self.pops = pops
        self.max_occupancy = max_occupancy
