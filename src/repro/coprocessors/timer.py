"""The timer coprocessor (Section 3.2).

Three self-decrementing 24-bit timer registers.  ``schedhi`` stages the
highest-order eight bits of a timer's start value; ``schedlo`` sets the
low sixteen bits and starts the countdown.  When a register reaches zero
the coprocessor inserts that timer's event token into the event queue.

Cancellation follows the paper's race-avoidance design: cancelling a
*running* timer stops it and still inserts the timer's token, so software
that cancelled a timer always observes exactly one token for it (either
the expiry that won the race, or the cancellation token) and must track
which timers it cancelled.  Cancelling an idle timer is a no-op -- its
token was already delivered.

Timers that are not decrementing have no switching activity (QDI), so an
idle coprocessor consumes nothing.
"""

from repro.isa.events import Event

NUM_TIMERS = 3
#: Timer registers are 24 bits wide.
TIMER_MAX = (1 << 24) - 1

#: Default decrement frequency.  The paper notes the frequency "can be
#: calibrated against a precise timing reference"; 1 MHz gives a 1 us
#: resolution and a maximum timeout of ~16.8 s.
DEFAULT_TICK_HZ = 1_000_000

_TIMER_EVENTS = (Event.TIMER0, Event.TIMER1, Event.TIMER2)


class _TimerRegister:
    """One self-decrementing 24-bit register."""

    def __init__(self):
        self.high_bits = 0       # staged by schedhi
        self.running = False
        self.expires_at = None   # kernel time of expiry
        self.handle = None       # kernel callback handle


class TimerCoprocessor:
    """Three timer registers feeding the event queue."""

    def __init__(self, kernel, event_queue, tick_hz=DEFAULT_TICK_HZ,
                 on_token=None):
        self._kernel = kernel
        self._event_queue = event_queue
        self.tick_hz = tick_hz
        self._registers = [_TimerRegister() for _ in range(NUM_TIMERS)]
        #: Optional hook called on every inserted token (energy metering).
        self._on_token = on_token
        self.expirations = 0
        self.cancellations = 0

    def _check_index(self, index):
        if not 0 <= index < NUM_TIMERS:
            raise ValueError("timer register index out of range: %r" % (index,))

    def schedhi(self, index, value):
        """Stage the highest-order eight bits of timer *index*."""
        self._check_index(index)
        self._registers[index].high_bits = value & 0xFF

    def schedlo(self, index, value):
        """Set the low sixteen bits and start timer *index*.

        Restarts the timer if it was already running (no token is raised
        for the superseded countdown).
        """
        self._check_index(index)
        register = self._registers[index]
        if register.running:
            self._kernel.cancel(register.handle)
        start_value = (register.high_bits << 16) | (value & 0xFFFF)
        duration = start_value / self.tick_hz
        register.running = True
        register.expires_at = self._kernel.now + duration
        register.handle = self._kernel.schedule(duration, self._expire, index)

    def cancel(self, index):
        """Cancel timer *index*; inserts its token if it was running."""
        self._check_index(index)
        register = self._registers[index]
        if not register.running:
            return
        self._kernel.cancel(register.handle)
        register.running = False
        register.expires_at = None
        register.handle = None
        self.cancellations += 1
        self._insert_token(index)

    def is_running(self, index):
        self._check_index(index)
        return self._registers[index].running

    def remaining(self, index):
        """Remaining time (seconds) on a running timer, else None."""
        self._check_index(index)
        register = self._registers[index]
        if not register.running:
            return None
        return max(0.0, register.expires_at - self._kernel.now)

    def _expire(self, index):
        register = self._registers[index]
        register.running = False
        register.expires_at = None
        register.handle = None
        self.expirations += 1
        self._insert_token(index)

    def _insert_token(self, index):
        inserted = self._event_queue.insert(_TIMER_EVENTS[index],
                                            raised_at=self._kernel.now)
        if inserted and self._on_token is not None:
            self._on_token()
