"""The message coprocessor (Section 3.3).

The interface between the processor core and the node's radio and
sensors.  All traffic flows through two 16-bit FIFOs mapped onto r15:

* the **incoming** FIFO carries words the core writes to r15 (commands,
  and TX data words following a TX command);
* the **outgoing** FIFO carries words the core reads from r15 (received
  radio words, sensor values).

The coprocessor translates device activity into event tokens (radio word
arrival, transmit completion, sensor interrupts, query completion), which
is how off-chip interrupts are eliminated from the core (Section 3.1).
Word-by-word radio delivery -- rather than the bit-by-bit interrupt scheme
of conventional microcontrollers -- is the paper's Section 3.3 argument;
the bit/word conversion happens here, off the core's critical path.
"""

from repro.coprocessors.commands import (
    CMD_CCA,
    CMD_IDLE,
    CMD_LED,
    CMD_QUERY,
    CMD_RX,
    CMD_TX,
    command_kind,
    command_payload,
)
from repro.coprocessors.fifo import Fifo
from repro.isa.events import Event
from repro.signals import WouldBlock

#: Trace names of the coprocessor commands (see ``repro.obs``).
COMMAND_NAMES = {
    CMD_TX: "tx",
    CMD_RX: "rx",
    CMD_IDLE: "idle",
    CMD_QUERY: "query",
    CMD_LED: "led",
    CMD_CCA: "cca",
}


class MessageCoprocessor:
    """Mediates between the core's r15 and the attached devices."""

    def __init__(self, kernel, event_queue, fifo_capacity=16, on_token=None,
                 name="mcp"):
        self._kernel = kernel
        self._event_queue = event_queue
        self.name = name
        #: Optional :class:`~repro.obs.Observability` context (set by
        #: ``SnapProcessor.attach_observability``).
        self.obs = None
        self.incoming = Fifo(capacity=fifo_capacity, name="r15-incoming")
        self.outgoing = Fifo(capacity=fifo_capacity, name="r15-outgoing")
        self._radio = None
        self._sensors = {}
        self._ports = {}
        self._awaiting_tx_data = False
        #: Observers notified when the outgoing FIFO gains a word (the
        #: processor uses this to retry a stalled r15 read).
        self.on_outgoing_data = []
        self._on_token = on_token
        self.commands_processed = 0
        self.tx_words = 0
        self.rx_words = 0

    # -- device attachment -------------------------------------------------

    def attach_radio(self, radio):
        """Attach a radio transceiver; wires up its RX/TX callbacks."""
        self._radio = radio
        radio.on_word_received = self.radio_word_received
        radio.on_tx_complete = self.radio_tx_complete

    def attach_sensor(self, sensor_id, sensor):
        """Attach a pollable sensor under a 12-bit Query identifier."""
        if not 0 <= sensor_id <= 0x0FFF:
            raise ValueError("sensor id out of range: %r" % (sensor_id,))
        self._sensors[sensor_id] = sensor
        if hasattr(sensor, "on_interrupt") and sensor.on_interrupt is None:
            sensor.on_interrupt = self.sensor_interrupt

    def attach_port(self, port_id, port):
        """Attach an output port (LEDs, GPIO) under a CMD_LED payload id.

        The 12-bit LED payload is split 4/8: the top four bits select the
        port, the low eight bits are the value written.
        """
        if not 0 <= port_id <= 0xF:
            raise ValueError("port id out of range: %r" % (port_id,))
        self._ports[port_id] = port

    # -- the core side (r15) ------------------------------------------------

    def push_from_core(self, word):
        """The core wrote *word* to r15."""
        self.incoming.push(word)
        # The coprocessor drains its incoming FIFO immediately at this
        # behavioral level; the FIFO exists for statistics and to model
        # occupancy limits.
        self.incoming.pop()
        self._process(word)

    def pop_to_core(self):
        """The core read r15; raises ``WouldBlock`` if no data is ready."""
        if self.outgoing.empty:
            raise WouldBlock()
        return self.outgoing.pop()

    def outgoing_available(self):
        return len(self.outgoing)

    # -- command processing --------------------------------------------------

    def _process(self, word):
        self.commands_processed += 1
        if self._awaiting_tx_data:
            self._awaiting_tx_data = False
            self.tx_words += 1
            if self.obs is not None:
                self.obs.coproc_command(self.name, self._kernel.now,
                                        "tx_data", word)
            self._require_radio().transmit(word)
            return
        kind = command_kind(word)
        payload = command_payload(word)
        if self.obs is not None:
            self.obs.coproc_command(
                self.name, self._kernel.now,
                COMMAND_NAMES.get(kind, "0x%04x" % word), word)
        if kind == CMD_TX:
            self._awaiting_tx_data = True
        elif kind == CMD_RX:
            self._require_radio().set_receive(True)
        elif kind == CMD_IDLE:
            if self._radio is not None:
                self._radio.set_receive(False)
        elif kind == CMD_QUERY:
            self._query(payload)
        elif kind == CMD_LED:
            self._write_port(payload)
        elif kind == CMD_CCA:
            # Clear-channel assessment: the answer is available at once
            # (a synchronous carrier-detect pin read), so the core's
            # next r15 read does not stall and no event is raised.
            busy = self._require_radio().carrier_sense()
            self._deliver(1 if busy else 0)
        else:
            raise ValueError("unknown message-coprocessor command 0x%04x"
                             % word)

    def _require_radio(self):
        if self._radio is None:
            raise ValueError("no radio attached to the message coprocessor")
        return self._radio

    def _query(self, sensor_id):
        sensor = self._sensors.get(sensor_id)
        if sensor is None:
            raise ValueError("Query for unattached sensor %d" % sensor_id)
        value = sensor.read(self._kernel.now) & 0xFFFF
        self._deliver(value)
        self._raise_event(Event.QUERY_DONE)

    def _write_port(self, payload):
        port_id = (payload >> 8) & 0xF
        value = payload & 0xFF
        port = self._ports.get(port_id)
        if port is None:
            raise ValueError("write to unattached port %d" % port_id)
        port.write(value, self._kernel.now)

    # -- the device side ------------------------------------------------------

    def radio_word_received(self, word):
        """A 16-bit word arrived from the radio."""
        self.rx_words += 1
        self._deliver(word)
        self._raise_event(Event.RADIO_RX)

    def radio_tx_complete(self):
        """The radio finished serializing the previous TX word."""
        self._raise_event(Event.RADIO_TX_DONE)

    def sensor_interrupt(self):
        """A sensor asserted the external-interrupt pin."""
        self._raise_event(Event.SENSOR_IRQ)

    def deliver_sensor_value(self, value):
        """Push a sensor value to the core and raise SENSOR_IRQ.

        Used by interrupt-driven sensors that deliver data with the
        interrupt rather than waiting to be polled.
        """
        self._deliver(value & 0xFFFF)
        self._raise_event(Event.SENSOR_IRQ)

    # -- internals -------------------------------------------------------------

    def _deliver(self, word):
        self.outgoing.push(word)
        for observer in list(self.on_outgoing_data):
            observer()

    def _raise_event(self, event):
        inserted = self._event_queue.insert(event, raised_at=self._kernel.now)
        if inserted and self._on_token is not None:
            self._on_token()
