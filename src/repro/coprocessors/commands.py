"""Command words understood by the message coprocessor.

Programs talk to the message coprocessor by writing 16-bit words to r15
(Section 3.3): an ``RX`` command configures the radio for reception, a
``TX`` command followed by a data word transmits, and a ``Query`` command
polls a sensor.  The paper does not publish the bit-level command layout;
this reproduction uses the top four bits as the command kind and the low
twelve bits as a payload (sensor/port selector, mode flags).
"""

#: Command kinds (the value of the top nibble).
CMD_IDLE = 0x0   # radio off / coprocessor idle
CMD_RX = 0x1     # configure radio for reception
CMD_TX = 0x2     # next word written to r15 is a data word to transmit
CMD_QUERY = 0x3  # poll sensor <payload>; value arrives via r15 + event
CMD_LED = 0x4    # write <payload> to the LED/GPIO sensor port
CMD_CCA = 0x5    # clear-channel assessment: 1/0 pushed to r15 at once


def make_command(kind, payload=0):
    """Build a command word from a kind and 12-bit payload."""
    if not 0 <= kind <= 0xF:
        raise ValueError("command kind out of range: %r" % (kind,))
    if not 0 <= payload <= 0x0FFF:
        raise ValueError("command payload out of range: %r" % (payload,))
    return (kind << 12) | payload


def command_kind(word):
    return (word >> 12) & 0xF


def command_payload(word):
    return word & 0x0FFF
