"""A complete sensor-network node (Figure 1 of the paper).

A :class:`SensorNode` wires together one SNAP/LE processor (with its
timer and message coprocessors), a radio transceiver, sensors, and LED /
GPIO ports, all on a shared simulation kernel.
"""

from repro.node.node import SensorNode

__all__ = ["SensorNode"]
