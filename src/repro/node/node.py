"""The sensor-node assembly."""

from repro.core.kernel import Kernel
from repro.core.processor import CoreConfig, SnapProcessor
from repro.radio.transceiver import Radio, RadioConfig
from repro.sensors.ports import LedPort

#: Default Query identifiers / port identifiers used by the library
#: software (the netstack's .equ constants match these).
TEMP_SENSOR_ID = 1
GENERIC_SENSOR_ID = 2
LED_PORT_ID = 0


class SensorNode:
    """One node: SNAP/LE core + radio + sensors + LEDs."""

    def __init__(self, kernel=None, node_id=0, config=None,
                 radio_config=None, position=(0.0, 0.0), name=None):
        self.node_id = node_id
        self.name = name or ("node%d" % node_id)
        self.kernel = kernel if kernel is not None else Kernel()
        self.processor = SnapProcessor(
            kernel=self.kernel, config=config or CoreConfig(),
            name="%s.cpu" % self.name)
        self.radio = Radio(self.kernel, config=radio_config or RadioConfig(),
                           name="%s.radio" % self.name)
        self.radio.position = position
        self.processor.mcp.attach_radio(self.radio)
        self.leds = LedPort()
        self.processor.mcp.attach_port(LED_PORT_ID, self.leds)
        self.sensors = {}
        #: True once a program image has been loaded; nodes without code
        #: (e.g. passive sniffers in tests) are never started.
        self.loaded = False

    @property
    def position(self):
        return self.radio.position

    @position.setter
    def position(self, value):
        self.radio.position = value

    def attach_sensor(self, sensor, sensor_id=GENERIC_SENSOR_ID):
        """Attach a pollable sensor under a Query identifier."""
        self.sensors[sensor_id] = sensor
        self.processor.mcp.attach_sensor(sensor_id, sensor)
        return sensor

    def load(self, program):
        """Load a linked program into the node's processor."""
        self.processor.load(program)
        self.loaded = True
        return self

    def run(self, until=None, max_events=None):
        """Run this node's kernel (single-node convenience)."""
        return self.processor.run(until=until, max_events=max_events)

    @property
    def meter(self):
        return self.processor.meter

    def total_energy(self, include_radio=False):
        """Node energy so far: processor, optionally plus the radio."""
        energy = self.meter.total_energy
        if include_radio:
            energy += self.radio.radio_energy()
        return energy
