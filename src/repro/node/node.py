"""The sensor-node assembly."""

from repro.core.kernel import Kernel
from repro.core.processor import CoreConfig, SnapProcessor
from repro.netstack.aodv import read_aodv_counters
from repro.netstack.mac import read_mac_counters
from repro.radio.transceiver import Radio, RadioConfig
from repro.sensors.ports import LedPort

#: Default Query identifiers / port identifiers used by the library
#: software (the netstack's .equ constants match these).
TEMP_SENSOR_ID = 1
GENERIC_SENSOR_ID = 2
LED_PORT_ID = 0


class SensorNode:
    """One node: SNAP/LE core + radio + sensors + LEDs."""

    def __init__(self, kernel=None, node_id=0, config=None,
                 radio_config=None, position=(0.0, 0.0), name=None):
        self.node_id = node_id
        self.name = name or ("node%d" % node_id)
        self.kernel = kernel if kernel is not None else Kernel()
        self.processor = SnapProcessor(
            kernel=self.kernel, config=config or CoreConfig(),
            name="%s.cpu" % self.name)
        self.radio = Radio(self.kernel, config=radio_config or RadioConfig(),
                           name="%s.radio" % self.name)
        self.radio.position = position
        self.processor.mcp.attach_radio(self.radio)
        self.leds = LedPort()
        self.processor.mcp.attach_port(LED_PORT_ID, self.leds)
        self.sensors = {}
        #: True once a program image has been loaded; nodes without code
        #: (e.g. passive sniffers in tests) are never started.
        self.loaded = False

    @property
    def position(self):
        return self.radio.position

    @position.setter
    def position(self, value):
        self.radio.position = value

    def attach_sensor(self, sensor, sensor_id=GENERIC_SENSOR_ID):
        """Attach a pollable sensor under a Query identifier."""
        self.sensors[sensor_id] = sensor
        self.processor.mcp.attach_sensor(sensor_id, sensor)
        return sensor

    def load(self, program):
        """Load a linked program into the node's processor."""
        self.processor.load(program)
        self.loaded = True
        return self

    def run(self, until=None, max_events=None):
        """Run this node's kernel (single-node convenience)."""
        return self.processor.run(until=until, max_events=max_events)

    @property
    def meter(self):
        return self.processor.meter

    def total_energy(self, include_radio=False):
        """Node energy so far: processor, optionally plus the radio."""
        energy = self.meter.total_energy
        if include_radio:
            energy += self.radio.radio_energy()
        return energy

    # -- observability ---------------------------------------------------

    def attach_observability(self, obs):
        """Instrument the whole node (core, queue, coprocessor, radio)."""
        self.processor.attach_observability(obs)
        self.radio.obs = obs
        obs.register_node(self)
        return self

    def metrics_snapshot(self, include_netstack=None):
        """A plain-dict snapshot of every counter this node exposes.

        Includes processor/meter statistics, event-queue and coprocessor
        counters, radio activity, and -- for nodes running the netstack
        (*include_netstack* defaults to ``self.loaded``) -- the MAC and
        AODV packet counters harvested from their DMEM cells.
        """
        meter = self.meter
        processor = self.processor
        snapshot = {
            "cpu": {
                "instructions": meter.instructions,
                "cycles": meter.cycles,
                "energy_j": meter.total_energy,
                "busy_s": meter.busy_time,
                "idle_s": meter.idle_time,
                "wakeups": meter.wakeups,
                "dispatches": meter.dispatch_count,
                "mode": processor.mode.value,
                "imem_reads": processor.imem.reads,
                "dmem_reads": processor.dmem.reads,
                "dmem_writes": processor.dmem.writes,
                # Host-side fast-path statistics: how much work the burst
                # engine batched per kernel event (zero on the reference
                # interpreter).
                "bursts": processor.bursts,
                "burst_instructions": processor.burst_instructions,
            },
            "event_queue": {
                "inserted": processor.event_queue.inserted,
                "dropped": processor.event_queue.dropped,
                "depth": len(processor.event_queue),
            },
            "mcp": {
                "commands": processor.mcp.commands_processed,
                "tx_words": processor.mcp.tx_words,
                "rx_words": processor.mcp.rx_words,
            },
            "radio": {
                "words_sent": self.radio.words_sent,
                "words_received": self.radio.words_received,
                "words_dropped": self.radio.words_dropped,
                "tx_s": self.radio.tx_time,
                "rx_s": self.radio.rx_time,
                "energy_j": self.radio.radio_energy(),
            },
        }
        if include_netstack is None:
            include_netstack = self.loaded
        if include_netstack:
            snapshot["mac"] = read_mac_counters(self.processor.dmem)
            snapshot["aodv"] = read_aodv_counters(self.processor.dmem)
        return snapshot
