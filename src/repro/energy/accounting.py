"""Energy and activity accounting during simulation.

An :class:`EnergyMeter` is attached to a :class:`~repro.core.SnapProcessor`
and accumulates, per run: total energy, dynamic instruction and cycle
counts, per-instruction-class statistics (Figure 4), per-component
breakdown (Section 4.4), and per-handler statistics (Table 1).  Handler
attribution uses a *tag* that the processor sets when it starts executing
an event handler.
"""

from collections import defaultdict
from dataclasses import dataclass, field

from repro.energy.model import CORE_BUCKETS


@dataclass
class ClassStats:
    """Per-instruction-class accumulators."""

    count: int = 0
    energy: float = 0.0

    @property
    def energy_per_instruction(self):
        return self.energy / self.count if self.count else 0.0


@dataclass
class HandlerStats:
    """Per-handler (or per-tag) accumulators."""

    instructions: int = 0
    cycles: int = 0
    energy: float = 0.0
    invocations: int = 0

    @property
    def energy_per_instruction(self):
        return self.energy / self.instructions if self.instructions else 0.0


@dataclass
class EnergyMeter:
    """Accumulates energy and activity statistics."""

    instructions: int = 0
    #: SNAP cycles: instruction words processed (a two-word instruction
    #: takes two cycles -- Section 3.1).
    cycles: int = 0
    total_energy: float = 0.0
    wakeups: int = 0
    wakeup_energy: float = 0.0
    event_tokens: int = 0
    event_token_energy: float = 0.0
    idle_time: float = 0.0
    idle_energy: float = 0.0
    busy_time: float = 0.0
    #: Event-dispatch latency: time from token insertion to the handler
    #: starting (includes queueing behind earlier handlers).
    dispatch_count: int = 0
    dispatch_latency_total: float = 0.0
    dispatch_latency_max: float = 0.0
    by_class: dict = field(default_factory=lambda: defaultdict(ClassStats))
    by_bucket: dict = field(default_factory=lambda: {
        bucket: 0.0 for bucket in CORE_BUCKETS})
    imem_energy: float = 0.0
    dmem_energy: float = 0.0
    by_handler: dict = field(default_factory=lambda: defaultdict(HandlerStats))

    def record_instruction(self, spec, breakdown, delay, handler_tag=None):
        """Account one executed instruction."""
        words = 2 if spec.two_word else 1
        total = breakdown.total
        self.instructions += 1
        self.cycles += words
        self.total_energy += total
        self.busy_time += delay

        stats = self.by_class[spec.instr_class]
        stats.count += 1
        stats.energy += total

        bucket = self.by_bucket
        bucket["datapath"] += breakdown.datapath
        bucket["fetch"] += breakdown.fetch
        bucket["decode"] += breakdown.decode
        bucket["mem_if"] += breakdown.mem_if
        bucket["misc"] += breakdown.misc
        self.imem_energy += breakdown.imem
        self.dmem_energy += breakdown.dmem

        if handler_tag is not None:
            handler = self.by_handler[handler_tag]
            handler.instructions += 1
            handler.cycles += words
            handler.energy += total

    # -- bulk accumulation (the processor's instruction-burst loop) -----------
    #
    # A burst loop hoists the hot accumulators into locals, performs the
    # same sequence of ``+=`` per instruction on those locals, and stores
    # the results back.  Because each accumulator sees the identical
    # additions in the identical order, the written-back floats are
    # bit-identical to per-instruction :meth:`record_instruction` calls.
    # The burst must write back (and re-hoist) around any operation that
    # touches the meter through another path -- e.g. an event-token
    # insertion adding to ``total_energy``.

    def hoist_hot(self):
        """Snapshot the hot accumulators for a burst loop, in the order
        expected by :meth:`absorb_hot`."""
        bucket = self.by_bucket
        return (self.instructions, self.cycles, self.total_energy,
                self.busy_time, self.imem_energy, self.dmem_energy,
                bucket["datapath"], bucket["fetch"], bucket["decode"],
                bucket["mem_if"], bucket["misc"])

    def absorb_hot(self, instructions, cycles, total_energy, busy_time,
                   imem_energy, dmem_energy, datapath, fetch, decode,
                   mem_if, misc):
        """Store back accumulators previously taken by :meth:`hoist_hot`."""
        self.instructions = instructions
        self.cycles = cycles
        self.total_energy = total_energy
        self.busy_time = busy_time
        self.imem_energy = imem_energy
        self.dmem_energy = dmem_energy
        bucket = self.by_bucket
        bucket["datapath"] = datapath
        bucket["fetch"] = fetch
        bucket["decode"] = decode
        bucket["mem_if"] = mem_if
        bucket["misc"] = misc

    def record_wakeup(self, energy):
        self.wakeups += 1
        self.wakeup_energy += energy
        self.total_energy += energy

    def record_event_token(self, energy):
        self.event_tokens += 1
        self.event_token_energy += energy
        self.total_energy += energy

    def record_idle(self, duration, energy):
        self.idle_time += duration
        self.idle_energy += energy
        self.total_energy += energy

    def record_handler_start(self, handler_tag):
        self.by_handler[handler_tag].invocations += 1

    def record_dispatch_latency(self, latency):
        self.dispatch_count += 1
        self.dispatch_latency_total += latency
        self.dispatch_latency_max = max(self.dispatch_latency_max, latency)

    @property
    def dispatch_latency_mean(self):
        if not self.dispatch_count:
            return 0.0
        return self.dispatch_latency_total / self.dispatch_count

    @property
    def energy_per_instruction(self):
        return self.total_energy / self.instructions if self.instructions else 0.0

    @property
    def core_energy(self):
        """Core-side energy (everything except the memory arrays)."""
        return sum(self.by_bucket.values())

    @property
    def memory_energy(self):
        return self.imem_energy + self.dmem_energy

    def core_fractions(self):
        """Section 4.4 distribution: fraction of core energy per bucket."""
        core = self.core_energy
        if core == 0:
            return {bucket: 0.0 for bucket in CORE_BUCKETS}
        return {bucket: value / core for bucket, value in self.by_bucket.items()}

    def average_mips(self):
        """Average throughput over busy time, in MIPS."""
        if self.busy_time == 0:
            return 0.0
        return self.instructions / self.busy_time / 1e6

    def reset(self):
        """Zero every accumulator (e.g. after boot, before measurement)."""
        fresh = EnergyMeter()
        self.__dict__.update(fresh.__dict__)

    def report(self):
        """A human-readable multi-line summary of the run."""
        lines = [
            "instructions : %d (%d cycles)" % (self.instructions, self.cycles),
            "energy       : %.3f nJ total, %.1f pJ/instruction"
            % (self.total_energy * 1e9, self.energy_per_instruction * 1e12),
            "time         : busy %.6f s, idle %.6f s (%d wakeups)"
            % (self.busy_time, self.idle_time, self.wakeups),
        ]
        if self.instructions:
            lines.append("throughput   : %.1f MIPS while busy"
                         % self.average_mips())
            core = self.core_energy
            if core > 0:
                fractions = self.core_fractions()
                lines.append("core split   : " + ", ".join(
                    "%s %.0f%%" % (bucket, 100 * fraction)
                    for bucket, fraction in fractions.items()))
                lines.append("memory share : %.0f%% of total energy"
                             % (100 * self.memory_energy
                                / self.total_energy))
        top = sorted(self.by_class.items(), key=lambda kv: -kv[1].energy)[:5]
        if top:
            lines.append("top classes  : " + ", ".join(
                "%s x%d" % (cls.value, stats.count) for cls, stats in top))
        handlers = [(tag, stats) for tag, stats in self.by_handler.items()
                    if stats.invocations]
        for tag, stats in sorted(handlers):
            lines.append(
                "handler %-12s: %d runs, %.1f ins/run, %.2f nJ/run"
                % (tag, stats.invocations,
                   stats.instructions / stats.invocations,
                   stats.energy / stats.invocations * 1e9))
        return "\n".join(lines)
