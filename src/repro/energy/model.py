"""Per-instruction energy computation."""

from dataclasses import dataclass

from repro.energy.calibration import DEFAULT_CALIBRATION, NOMINAL_VOLTAGE
from repro.isa.opcodes import InstrClass, Unit

#: Buckets used by the Section 4.4 core-energy-distribution analysis.
CORE_BUCKETS = ("datapath", "fetch", "decode", "mem_if", "misc")

_MEMORY_CLASSES = (InstrClass.LOAD, InstrClass.STORE,
                   InstrClass.IMEM_LOAD, InstrClass.IMEM_STORE)


def voltage_scale(voltage, nominal=NOMINAL_VOLTAGE):
    """Dynamic-energy scale factor at *voltage*: (V/Vnom)**2.

    The paper's own measurements follow CV^2 closely: Table 1 reports
    ~218 pJ/ins at 1.8 V, ~55 at 0.9 V (x0.25 = (0.9/1.8)^2) and ~24 at
    0.6 V (x0.110 vs (0.6/1.8)^2 = 0.111).
    """
    if voltage <= 0:
        raise ValueError("voltage must be positive")
    return (voltage / nominal) ** 2


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one dynamic instruction, split by component (joules)."""

    imem: float
    dmem: float
    fetch: float
    decode: float
    datapath: float
    mem_if: float
    misc: float

    @property
    def memory(self):
        """Energy in the memory arrays (the paper's 'other half')."""
        return self.imem + self.dmem

    @property
    def core(self):
        """Energy in the processor core, excluding the memory arrays."""
        return self.fetch + self.decode + self.datapath + self.mem_if + self.misc

    @property
    def total(self):
        return self.memory + self.core

    def bucket(self, name):
        return getattr(self, name)


class EnergyModel:
    """Computes per-instruction energy at a given supply voltage."""

    def __init__(self, voltage=0.6, calibration=DEFAULT_CALIBRATION,
                 leakage_power=0.0):
        self.voltage = voltage
        self.calibration = calibration
        #: Static (leakage) power in watts; 0 models the ideal QDI sleep
        #: state, nonzero supports the paper's future-work leakage study.
        self.leakage_power = leakage_power
        self._scale = voltage_scale(voltage) * 1e-12  # pJ -> J at voltage
        #: opcode -> interned :class:`EnergyBreakdown`.  The breakdown of
        #: a spec is a pure function of (voltage, calibration), both fixed
        #: per model instance, and the dataclass is frozen -- so one
        #: instance per opcode can be shared by every dynamic instruction.
        self._breakdown_table = {}

    def instruction_energy(self, spec):
        """The :class:`EnergyBreakdown` for one instance of *spec*.

        Returns an interned (shared, frozen) breakdown; use
        :meth:`compute_instruction_energy` to force a fresh computation.
        """
        breakdown = self._breakdown_table.get(spec.opcode)
        if breakdown is None:
            breakdown = self.compute_instruction_energy(spec)
            self._breakdown_table[spec.opcode] = breakdown
        return breakdown

    def compute_instruction_energy(self, spec):
        """Compute the :class:`EnergyBreakdown` for *spec* from scratch."""
        cal = self.calibration
        words = 2 if spec.two_word else 1
        extra_words = words - 1

        imem = cal.imem_read_pj * words
        if spec.instr_class in (InstrClass.IMEM_LOAD, InstrClass.IMEM_STORE):
            imem += cal.imem_read_pj  # the data access also hits the IMEM array

        dmem = cal.dmem_access_pj if spec.instr_class in (
            InstrClass.LOAD, InstrClass.STORE) else 0.0

        fetch = cal.fetch_base_pj + cal.fetch_extra_word_pj * extra_words
        decode = cal.decode_pj

        datapath = cal.unit_pj[spec.unit]
        if not spec.on_fast_bus:
            datapath += cal.slow_bus_pj

        is_mem_op = spec.instr_class in _MEMORY_CLASSES
        mem_if = cal.mem_if_mem_op_pj if is_mem_op else cal.mem_if_other_pj

        misc = cal.misc_base_pj + cal.misc_extra_word_pj * extra_words

        return EnergyBreakdown(
            imem=imem * self._scale,
            dmem=dmem * self._scale,
            fetch=fetch * self._scale,
            decode=decode * self._scale,
            datapath=datapath * self._scale,
            mem_if=mem_if * self._scale,
            misc=misc * self._scale,
        )

    @property
    def wakeup_energy(self):
        """Energy of one idle->active transition (joules)."""
        return self.calibration.wakeup_pj * self._scale

    @property
    def event_token_energy(self):
        """Energy of inserting+removing one event token (joules)."""
        return self.calibration.event_token_pj * self._scale

    def idle_energy(self, duration):
        """Static energy burned while asleep for *duration* seconds."""
        return self.leakage_power * duration
