"""Energy modeling and accounting for SNAP/LE.

The paper derives per-instruction energy from SPICE simulation of
extracted layout, back-annotated into a switch-level simulator
(Section 4.1).  This package substitutes a *component-level* model: each
dynamic instruction pays for the IMEM words it fetches, its decode, its
execution unit and bus transfers, its DMEM access if any, and distributed
control/buffering overhead.  The component costs are calibrated against
the paper's published aggregates (Figure 4 class energies, the Table 1
handler average of about 218 pJ/instruction at 1.8 V, the Section 4.4
finding that memories consume about half the energy, and the
33/20/16/9/22 core-side breakdown).

Because the circuits are QDI, idle energy is zero by construction -- only
executed instructions consume dynamic energy.  Optional leakage modeling
(the paper's Section 6 future work) is exposed via ``leakage_power``.
"""

from repro.energy.calibration import Calibration, DEFAULT_CALIBRATION
from repro.energy.model import EnergyBreakdown, EnergyModel, voltage_scale
from repro.energy.accounting import EnergyMeter

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "EnergyBreakdown",
    "EnergyModel",
    "voltage_scale",
    "EnergyMeter",
]
