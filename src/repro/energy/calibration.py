"""Calibrated component energies.

All values are picojoules at the nominal 1.8 V supply in TSMC 180 nm, the
process and voltage of the paper's SPICE reference simulations.  The
numbers are fitted so that the model reproduces the paper's published
aggregates (see package docstring); they are not per-transistor physics.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.opcodes import Unit

#: Nominal voltage the calibration is expressed at.
NOMINAL_VOLTAGE = 1.8


@dataclass(frozen=True)
class Calibration:
    """Component energy costs (pJ at 1.8 V)."""

    #: IMEM array read, per instruction word fetched.
    imem_read_pj: float = 62.0
    #: DMEM array access, per load or store.
    dmem_access_pj: float = 57.0
    #: Fetch-logic energy: base per instruction + extra per second word.
    fetch_base_pj: float = 14.0
    fetch_extra_word_pj: float = 10.0
    #: Decode energy per instruction.
    decode_pj: float = 15.0
    #: Execution-unit (datapath) energy by unit, including register-file
    #: traffic and the fast-bus transfer.
    unit_pj: Dict[Unit, float] = field(default_factory=lambda: {
        Unit.ADDER: 31.0,
        Unit.LOGIC: 29.0,
        Unit.SHIFTER: 31.0,
        Unit.JUMP: 33.0,
        Unit.DMEM: 27.0,
        Unit.IMEM: 27.0,
        Unit.LFSR: 27.0,
        Unit.TIMER: 23.0,
        Unit.EVENT: 10.0,
        Unit.NONE: 4.0,
    })
    #: Extra bus energy for units on the slow busses, which reach the
    #: register file through the fast busses (Section 3.1).
    slow_bus_pj: float = 12.0
    #: Memory-interface logic: per memory operation vs. everything else.
    mem_if_mem_op_pj: float = 26.0
    mem_if_other_pj: float = 2.0
    #: Distributed control, decoupling buffers, completion trees:
    #: base per instruction + extra per second word.
    misc_base_pj: float = 19.0
    misc_extra_word_pj: float = 7.0
    #: Energy of one idle->active wakeup (18 gate transitions through the
    #: event queue; small by construction).
    wakeup_pj: float = 4.0
    #: Event-queue insert/remove energy per token.
    event_token_pj: float = 3.0


DEFAULT_CALIBRATION = Calibration()
