"""Benchmark harness: scenario runners and reporting for every table and
figure in the paper's evaluation (Section 4).

Each experiment has a function here that builds the workload, runs it on
the simulator(s), and returns a structured result; the ``benchmarks/``
directory wraps these in pytest-benchmark entry points and prints the
paper-versus-measured tables.
"""

from repro.bench.harness import (
    BlinkComparison,
    HandlerRow,
    blink_comparison,
    energy_breakdown,
    handler_table,
    instruction_class_energy,
    radiostack_comparison,
    sense_comparison,
    throughput_and_wakeup,
)
from repro.bench.platforms import platform_table
from repro.bench.reporting import format_table
from repro.bench.sweep import (
    SCENARIOS,
    Sweep,
    SweepResult,
    diverging_cells,
    run_sweep,
    sweep_scenario,
)

__all__ = [
    "BlinkComparison",
    "HandlerRow",
    "blink_comparison",
    "energy_breakdown",
    "handler_table",
    "instruction_class_energy",
    "radiostack_comparison",
    "sense_comparison",
    "throughput_and_wakeup",
    "platform_table",
    "format_table",
    "SCENARIOS",
    "Sweep",
    "SweepResult",
    "diverging_cells",
    "run_sweep",
    "sweep_scenario",
]
