"""Table 2: the related-microcontroller comparison.

Literature rows are the paper's own Table 2 values; the SNAP/LE rows are
*measured* on this repository's simulator by running the Table 1 handler
suite and averaging energy per instruction.
"""

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class PlatformRow:
    name: str
    clocked: bool
    speed_mips: str
    datapath_bits: int
    memory: str
    voltage: str
    energy_per_ins_pj: str
    measured: bool = False


#: The literature rows, verbatim from the paper's Table 2.
LITERATURE_ROWS = (
    PlatformRow("Atmel Mega128L (MICA2 Mote, MEDUSA-II)", True, "4", 8,
                "4-8K", "3V", "1500"),
    PlatformRow("Intel XScale (Rockwell, Intel Mote)", True, "200-400", 32,
                "16-32MB", "1.3-1.65V", "890-1028"),
    PlatformRow("Dynamic Voltage Scaled uP (custom ARM8)", True, "7-84", 32,
                "16KB", "1.8-3.8V", "540-5600"),
    PlatformRow("CoolRISC XE88", True, "1", 8, "22KB", "2.4V", "720"),
    PlatformRow("Lutonium (async 8051)", False, "200", 8, "8KB", "1.8V",
                "500"),
    PlatformRow("ASPRO-216 (async 16b RISC)", False, "25-140", 16, "64KB",
                "1.0-2.5V", "1000-3000"),
)


def platform_table(snap_measurements=None):
    """Assemble Table 2.

    *snap_measurements* maps voltage -> (mips, energy_per_ins_joules);
    when omitted the SNAP rows are filled from the paper's numbers.
    """
    rows = list(LITERATURE_ROWS)
    snap_points = snap_measurements or {
        0.6: (28e6, 24e-12),
        1.8: (240e6, 218e-12),
    }
    for voltage in sorted(snap_points):
        mips, epi = snap_points[voltage]
        rows.append(PlatformRow(
            name="SNAP/LE - 0.18um TSMC (this reproduction)",
            clocked=False,
            speed_mips="%.0f" % (mips / 1e6),
            datapath_bits=16,
            memory="8KB",
            voltage="%.1fV" % voltage,
            energy_per_ins_pj="%.0f" % (epi * 1e12),
            measured=snap_measurements is not None))
    return rows
