"""Ablation and sweep scenarios shared by the benchmark suite and the
fidelity scorecard collector.

Each function reproduces one of the paper's architectural arguments by
running the same workload with and without the mechanism under study:

* :func:`eventqueue_ablation` -- hardware event dispatch vs a
  TinyOS-style software task queue on the same SNAP/LE core
  (Sections 3.1, 4.6);
* :func:`bus_ablation` -- the two-level bus hierarchy vs a flat bus
  where every unit pays the long-bus capacitance (Section 3.1);
* :func:`radio_interface_ablation` -- word-level message-coprocessor
  delivery vs bit-by-bit servicing on the core (Section 3.3);
* :func:`voltage_sweep` -- the energy/performance curve from 0.45 V to
  1.8 V (the Section 6 "SNAP/LE-slow" future-work direction).

These used to live inline in ``benchmarks/bench_ablation_*.py``; they
moved here so ``snap-report`` can regenerate the same measurements
without importing the pytest benchmark modules.
"""

import dataclasses

from repro.asm import build
from repro.core import CoreConfig, SnapProcessor
from repro.energy import DEFAULT_CALIBRATION
from repro.netstack import layout
from repro.netstack.drivers import build_rx_node

#: Voltages for :func:`voltage_sweep`, bracketing the published points.
SWEEP_VOLTAGES = (0.45, 0.6, 0.75, 0.9, 1.2, 1.5, 1.8)

SWEEP_LOOP = """
    movi r2, 500
.loop:
    ld r3, 8(r0)
    addi r3, 3
    st r3, 8(r0)
    subi r2, 1
    bnez r2, .loop
    halt
"""

HW_BLINK = """
boot:
    movi r1, 0
    movi r2, on_timer
    setaddr r1, r2
    jal arm
    done
arm:
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    ret
on_timer:
    jal blink
    jal arm
    done
blink:
    ld r3, 1(r0)
    xori r3, 1
    st r3, 1(r0)
    movi r4, 0x4000
    or r4, r3
    mov r15, r4
    ld r5, 2(r0)
    addi r5, 1
    st r5, 2(r0)
    ret
"""

SW_BLINK = """
    .equ TQ_BASE, 8
boot:
    movi r1, 0
    movi r2, on_timer
    setaddr r1, r2
    st r0, 4(r0)        ; tq head
    st r0, 5(r0)        ; tq tail
    st r0, 6(r0)        ; tq count
    jal arm
    done
arm:
    movi r1, 0
    movi r2, 100
    schedlo r1, r2
    ret

; The timer handler only posts a task, then runs the scheduler loop --
; the software-dispatch structure TinyOS imposes.
on_timer:
    ; post task id 1 (blink) into the queue
    ld r3, 5(r0)        ; tail
    movi r4, TQ_BASE
    add r4, r3
    movi r5, 1
    st r5, 0(r4)
    addi r3, 1
    andi r3, 3
    st r3, 5(r0)
    ld r3, 6(r0)
    addi r3, 1
    st r3, 6(r0)
    jal arm
    ; scheduler loop: drain the task queue
.sched:
    ld r3, 6(r0)        ; count
    beqz r3, .idle
    ld r4, 4(r0)        ; head
    movi r5, TQ_BASE
    add r5, r4
    ld r6, 0(r5)        ; task id
    addi r4, 1
    andi r4, 3
    st r4, 4(r0)
    subi r3, 1
    st r3, 6(r0)
    ; dispatch through a jump table
    movi r7, task_table
    add r7, r6
    ldi r7, 0(r7)       ; read the handler address from IMEM
    jalr r7
    jmp .sched
.idle:
    done

task_table:
    .word 0
    .word blink

blink:
    ld r3, 1(r0)
    xori r3, 1
    st r3, 1(r0)
    movi r4, 0x4000
    or r4, r3
    mov r15, r4
    ld r5, 2(r0)
    addi r5, 1
    st r5, 2(r0)
    ret
"""

BIT_RX = """
boot:
    movi sp, 0x7C0
    movi r1, 3
    movi r2, bit_handler
    setaddr r1, r2
    movi r10, 0          ; bit count within the word
    movi r11, 0          ; word accumulator
    movi r12, 0x20       ; RX_BUF write pointer
    done

; One event per received bit: shift it in; every 16th bit, store the word.
bit_handler:
    mov r1, r15          ; the bit (0/1)
    sll r11, 1
    or r11, r1
    addi r10, 1
    movi r2, 16
    sub r2, r10
    beqz r2, .word_done
    done
.word_done:
    st r11, 0(r12)
    addi r12, 1
    movi r10, 0
    movi r11, 0
    ld r3, 0(r0)         ; words received
    addi r3, 1
    st r3, 0(r0)
    done
"""

#: The packet both radio-interface variants receive.
RADIO_ABLATION_PACKET = layout.make_packet(
    2, 0, layout.PKT_TYPE_DATA, 1, [9, 0x123, 0x456])


# -- hardware event queue vs software task scheduler ---------------------------


def _measure_blink(source, iterations=20, obs=None):
    from repro.sensors import LedPort
    processor = SnapProcessor(config=CoreConfig(voltage=0.6))
    if obs is not None:
        processor.attach_observability(obs)
    processor.mcp.attach_port(0, LedPort())
    processor.load(build(source))
    processor.run(until=50e-6)
    processor.meter.reset()
    processor.run(until=50e-6 + iterations * 100e-6 + 20e-6)
    blinks = processor.dmem.peek(2)
    meter = processor.meter
    return (meter.instructions / blinks, meter.total_energy / blinks)


def eventqueue_ablation(iterations=20, obs=None):
    """Per-blink (instructions, energy) for hardware event dispatch vs a
    software task scheduler on the same core."""
    return {"hardware": _measure_blink(HW_BLINK, iterations, obs=obs),
            "software": _measure_blink(SW_BLINK, iterations, obs=obs)}


# -- two-level bus hierarchy vs a flat bus -------------------------------------


def flat_bus_calibration():
    """Every execution unit pays the long-bus energy: model a single
    set of busses loaded by all ten units."""
    extra = DEFAULT_CALIBRATION.slow_bus_pj
    units = {unit: cost + extra
             for unit, cost in DEFAULT_CALIBRATION.unit_pj.items()}
    return dataclasses.replace(DEFAULT_CALIBRATION, unit_pj=units,
                               slow_bus_pj=0.0)


def bus_ablation(obs=None):
    """Average handler-suite energy per instruction with the
    hierarchical calibration and with a flat single bus; returns
    ``{"hierarchical_epi": joules, "flat_epi": joules}``."""
    from repro.bench.harness import handler_table
    hierarchical = handler_table(0.6, obs=obs)
    flat_rows = handler_table(0.6, calibration=flat_bus_calibration(),
                              obs=obs)
    h_epi = (sum(row.energy for row in hierarchical)
             / sum(row.instructions for row in hierarchical))
    f_epi = (sum(row.energy for row in flat_rows)
             / sum(row.instructions for row in flat_rows))
    return {"hierarchical_epi": h_epi, "flat_epi": f_epi}


# -- word-level vs bit-level radio interface -----------------------------------


def _run_word_interface(obs=None):
    from repro.radio import Radio
    processor = SnapProcessor(config=CoreConfig(voltage=0.6))
    if obs is not None:
        processor.attach_observability(obs)
    processor.mcp.attach_radio(Radio(processor.kernel))
    processor.load(build_rx_node(2))
    processor.run(until=1e-4)
    processor.meter.reset()
    for word in RADIO_ABLATION_PACKET:
        processor.mcp.radio_word_received(word)
        processor.run(until=processor.kernel.now + 1e-4)
    return processor.meter


def _run_bit_interface(obs=None):
    processor = SnapProcessor(config=CoreConfig(voltage=0.6,
                                                event_queue_capacity=32))
    if obs is not None:
        processor.attach_observability(obs)
    processor.load(build(BIT_RX))
    processor.run(until=1e-4)
    processor.meter.reset()
    for word in RADIO_ABLATION_PACKET:
        for bit_index in range(15, -1, -1):
            processor.mcp.radio_word_received((word >> bit_index) & 1)
            processor.run(until=processor.kernel.now + 2e-5)
    return processor.meter


def radio_interface_ablation(obs=None):
    """Word-interface vs bit-interface meters for the same packet,
    summarised per received word."""
    word_meter = _run_word_interface(obs=obs)
    bit_meter = _run_bit_interface(obs=obs)

    def summary(meter):
        return {"instructions": meter.instructions,
                "energy_j": meter.total_energy,
                "wakeups": meter.wakeups}

    return {"words": len(RADIO_ABLATION_PACKET),
            "word": summary(word_meter), "bit": summary(bit_meter)}


# -- the voltage/energy/performance sweep --------------------------------------


def voltage_sweep(obs=None):
    """(voltage, MIPS, energy/ins, energy-delay) at each sweep point."""
    results = []
    program = build(SWEEP_LOOP)
    for voltage in SWEEP_VOLTAGES:
        processor = SnapProcessor(config=CoreConfig(voltage=voltage))
        if obs is not None:
            processor.attach_observability(obs)
        processor.load(program)
        meter = processor.run()
        epi = meter.energy_per_instruction
        mips = meter.average_mips()
        results.append((voltage, mips, epi, epi / (mips * 1e6)))
    return results
