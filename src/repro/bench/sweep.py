"""Fleet sweep engine: declarative parameter grids with pooled replicas
and shared predecode.

Every Section-4 parameter study (voltage sweeps, bit-error-rate grids,
timer-cadence and topology studies) is embarrassingly parallel: a
cartesian grid of independent cells, each running one scenario at one
operating point, possibly several times with different seeds.  Declare
the grid once::

    sweep = Sweep(scenario="chain_ber",
                  grid={"voltage": [1.8, 0.6],
                        "bit_error_rate": [0.0, 0.02]},
                  replicas=2)
    result = run_sweep(sweep, workers=4)

and the engine

* expands the grid into cells (one per parameter combination),
* derives collision-free per-replica seeds with
  ``numpy.random.SeedSequence.spawn`` (cell ``i`` replica ``j`` never
  aliases cell ``i+1`` replica ``j-1`` the way ``seed + offset``
  derivations do),
* fans cells across a ``concurrent.futures`` process pool -- or runs
  them inline for ``workers=1`` -- with every worker sharing interned
  predecoded-slot/energy tables across replicas of the same
  (program, voltage, calibration) via
  :func:`repro.core.shared_predecode`,
* and aggregates per-cell results: full-precision meter digests, the
  numeric summary fields (mean/min/max across replicas), and wall time.

The correctness bar is the PR 4/6 differential pattern: a pooled sweep
is **bit-identical** (per-cell digests) to the same grid run serially.
:func:`diverging_cells` compares two runs; the ``snap-sweep
--serial-check`` CLI asserts it in CI and, on failure, the offending
cell can be re-run under ``snap-diff`` for localization.

A scenario is a registered callable ``fn(params, seed) -> dict``; the
returned dict must be JSON-serializable, deterministic for its inputs,
and should carry a ``digest`` entry with full-precision simulation state
(e.g. :func:`repro.bench.simspeed.meter_digest`).  Register new ones
with :func:`sweep_scenario`; pooled workers resolve scenarios by name,
so the defining module must be importable (or already imported, under
the default ``fork`` start method) in the worker.
"""

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional

import numpy as np

from repro.bench.reporting import _jsonable, dump_results
from repro.core import CoreConfig, PredecodeCache, SnapProcessor, \
    shared_predecode

SCHEMA = "repro.bench.sweep/1"

#: Registered sweep scenarios: name -> ``fn(params, seed) -> dict``.
SCENARIOS = {}


def sweep_scenario(name):
    """Decorator registering a sweep scenario under *name*."""

    def register(fn):
        SCENARIOS[name] = fn
        return fn

    return register


@dataclass
class Sweep:
    """A declarative parameter study.

    *scenario* names a :data:`SCENARIOS` entry; *grid* maps parameter
    names to the values to sweep (cells are the cartesian product, in
    the grid's key/value order); *fixed* parameters reach every cell
    unchanged; *replicas* runs each cell that many times with distinct
    :func:`replica seeds <seeds_for>` derived from *base_seed*.
    """

    scenario: str
    grid: Dict[str, list] = field(default_factory=dict)
    replicas: int = 1
    base_seed: int = 0
    fixed: Dict[str, object] = field(default_factory=dict)

    def cells(self):
        """The parameter dict of every cell, in deterministic order."""
        names = list(self.grid)
        combos = product(*(self.grid[name] for name in names)) \
            if names else [()]
        cells = []
        for values in combos:
            params = dict(self.fixed)
            params.update(zip(names, values))
            cells.append(params)
        return cells

    def seeds(self):
        """Per-cell replica seeds, collision-free by construction.

        ``SeedSequence(base_seed)`` spawns one child per cell and each
        cell child spawns one grandchild per replica, so the (cell,
        replica) -> stream mapping is injective -- unlike ``seed + k``
        arithmetic, where cell ``s+1`` replica 0 aliases cell ``s``
        replica 1.
        """
        cell_sequences = np.random.SeedSequence(self.base_seed).spawn(
            len(self.cells()))
        return [[int(child.generate_state(1)[0])
                 for child in cell_seq.spawn(self.replicas)]
                for cell_seq in cell_sequences]

    def tasks(self):
        return [{"scenario": self.scenario, "index": index,
                 "params": params, "seeds": seeds}
                for index, (params, seeds)
                in enumerate(zip(self.cells(), self.seeds()))]


def cell_label(params):
    """Stable human/metric label for a cell: ``voltage=0.6,ber=0.02``."""
    return ",".join("%s=%s" % (name, params[name]) for name in params)


def _digest(replicas):
    """sha256 over the canonical JSON of the replica payloads."""
    canonical = json.dumps(_jsonable(replicas), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _aggregate(replicas):
    """mean/min/max of every numeric top-level field across replicas."""
    aggregates = {}
    for name in replicas[0]:
        values = [replica.get(name) for replica in replicas]
        if all(isinstance(value, (int, float))
               and not isinstance(value, bool) for value in values):
            aggregates[name] = {"mean": sum(values) / len(values),
                                "min": min(values), "max": max(values)}
    return aggregates


def run_cell(task):
    """Run one cell's replicas; returns the cell result dict.

    Scenario exceptions are folded into an ``ok: False`` cell (the
    sweep reports failures per-cell instead of losing the grid);
    ``KeyboardInterrupt`` propagates so the caller can stop the sweep.
    A shared-predecode cache should already be ambient -- the pooled
    and serial paths both install one, which is what lets replicas of
    the same (program, voltage, calibration) skip re-decoding.
    """
    scenario = SCENARIOS[task["scenario"]]
    started = time.perf_counter()
    cell = {"index": task["index"], "params": dict(task["params"]),
            "seeds": list(task["seeds"])}
    try:
        replicas = [_jsonable(scenario(dict(task["params"]), seed))
                    for seed in task["seeds"]]
    except KeyboardInterrupt:
        raise
    except Exception as exc:
        cell.update(ok=False, error="%s: %s" % (type(exc).__name__, exc),
                    wall_time_s=time.perf_counter() - started)
        return cell
    cell.update(ok=True, replicas=replicas, digest=_digest(replicas),
                aggregates=_aggregate(replicas),
                wall_time_s=time.perf_counter() - started)
    return cell


#: One predecode cache per worker process, shared by every cell the
#: worker runs -- replicas AND same-program cells reuse decode work.
_WORKER_CACHE = None


def _pooled_cell(task):
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = PredecodeCache()
    with shared_predecode(_WORKER_CACHE):
        return run_cell(task)


def _interrupted_cell(task):
    return {"index": task["index"], "params": dict(task["params"]),
            "seeds": list(task["seeds"]), "ok": False,
            "error": "interrupted"}


@dataclass
class SweepResult:
    sweep: Sweep
    workers: int
    cells: List[dict]
    wall_time_s: float
    interrupted: bool = False
    #: Predecode-cache statistics of the serial path (per-worker caches
    #: cannot be harvested across the pool; ``None`` for pooled runs).
    predecode: Optional[dict] = None

    @property
    def ok_cells(self):
        return [cell for cell in self.cells if cell.get("ok")]

    @property
    def failed_cells(self):
        return [cell for cell in self.cells if not cell.get("ok")]

    def digests(self):
        """``{cell_index: digest}`` for every completed cell."""
        return {cell["index"]: cell["digest"] for cell in self.ok_cells}

    def payload(self, compact=False):
        """The aggregated, JSON-ready sweep payload (``BENCH_*`` shape).

        With *compact*, each cell keeps its digest and aggregates but
        drops the per-replica payload bodies -- the shape to archive or
        commit (a network digest per replica per cell adds up fast).
        """
        cells = self.cells
        if compact:
            cells = [{key: value for key, value in cell.items()
                      if key != "replicas"} for cell in cells]
        return {
            "schema": SCHEMA,
            "scenario": self.sweep.scenario,
            "grid": _jsonable(self.sweep.grid),
            "fixed": _jsonable(self.sweep.fixed),
            "replicas": self.sweep.replicas,
            "base_seed": self.sweep.base_seed,
            "workers": self.workers,
            "interrupted": self.interrupted,
            "cells_total": len(self.cells),
            "cells_ok": len(self.ok_cells),
            "cells_failed": len(self.failed_cells),
            "wall_time_s": self.wall_time_s,
            "predecode": self.predecode,
            "cells": cells,
        }

    def dump(self, name, directory=None):
        """Write ``BENCH_<name>.json`` via :func:`dump_results`."""
        return dump_results(name, self.payload(), directory=directory,
                            wall_time_s=self.wall_time_s)


def run_sweep(sweep, workers=None, progress=None):
    """Run every cell of *sweep*; returns a :class:`SweepResult`.

    ``workers=None``/``0``/``1`` runs serially in-process (one shared
    predecode cache across all cells); ``workers > 1`` fans cells over a
    process pool, one task per cell, with a per-worker shared cache.
    Results are bit-identical either way.

    A ``KeyboardInterrupt`` stops the sweep but keeps every completed
    cell: the remaining cells are marked ``error: "interrupted"`` and
    the result carries ``interrupted=True``.  A scenario exception or a
    crashed worker is reported on its own cell; the rest of the grid
    still runs.
    """
    if sweep.scenario not in SCENARIOS:
        raise ValueError("unknown sweep scenario %r (have: %s)"
                         % (sweep.scenario, ", ".join(sorted(SCENARIOS))))
    tasks = sweep.tasks()
    started = time.perf_counter()
    if not workers or workers <= 1:
        result = _run_serial(tasks, progress)
        result.sweep = sweep
        result.wall_time_s = time.perf_counter() - started
        return result

    cells, interrupted = [None] * len(tasks), False
    with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers) as pool:
        futures = [pool.submit(_pooled_cell, task) for task in tasks]
        for task, future in zip(tasks, futures):
            if interrupted:
                future.cancel()
                cells[task["index"]] = _interrupted_cell(task)
                continue
            try:
                cell = future.result()
            except KeyboardInterrupt:
                # Stop the sweep, keep what finished: cancel the rest
                # and mark this and every later cell interrupted.
                interrupted = True
                cell = _interrupted_cell(task)
            except concurrent.futures.CancelledError:
                cell = _interrupted_cell(task)
            except Exception as exc:
                # Worker crash (BrokenProcessPool, pickling failure):
                # the loss is confined to this cell's row.
                cell = dict(_interrupted_cell(task),
                            error="%s: %s" % (type(exc).__name__, exc))
            cells[task["index"]] = cell
            if progress is not None:
                progress(cell)
    return SweepResult(sweep=sweep, workers=workers, cells=cells,
                       wall_time_s=time.perf_counter() - started,
                       interrupted=interrupted)


def _run_serial(tasks, progress):
    cells, interrupted = [], False
    with shared_predecode() as cache:
        for task in tasks:
            if interrupted:
                cells.append(_interrupted_cell(task))
                continue
            try:
                cell = run_cell(task)
            except KeyboardInterrupt:
                interrupted = True
                cell = _interrupted_cell(task)
            cells.append(cell)
            if progress is not None and not interrupted:
                progress(cell)
    return SweepResult(sweep=None, workers=1, cells=cells, wall_time_s=0.0,
                       interrupted=interrupted,
                       predecode={"tables": len(cache), "hits": cache.hits,
                                  "misses": cache.misses})


def diverging_cells(a, b):
    """Cells whose digests differ between two runs of the same grid.

    Returns ``[(index, digest_a, digest_b), ...]`` -- empty means the
    runs are bit-identical cell for cell (the pooled-vs-serial
    contract).  Cells missing from either side (failed / interrupted)
    are reported with ``None`` digests.
    """
    digests_a, digests_b = a.digests(), b.digests()
    divergences = []
    for index in sorted(set(digests_a) | set(digests_b)):
        if digests_a.get(index) != digests_b.get(index):
            divergences.append((index, digests_a.get(index),
                                digests_b.get(index)))
    return divergences


#: Keys whose values are host-dependent, stripped before comparing two
#: aggregated payloads for equality (``modulo host wall-time fields``).
VOLATILE_KEYS = ("wall_time_s", "workers", "predecode", "host")


def strip_volatile(payload):
    """A deep copy of *payload* with host-dependent fields removed."""
    if isinstance(payload, dict):
        return {key: strip_volatile(value) for key, value in payload.items()
                if key not in VOLATILE_KEYS}
    if isinstance(payload, list):
        return [strip_volatile(item) for item in payload]
    return payload


# -- built-in scenarios -------------------------------------------------------


_PROGRAM_CACHE = {}


def _cached_program(name, source):
    """Assemble *source* once per process (programs are immutable)."""
    program = _PROGRAM_CACHE.get(name)
    if program is None:
        from repro.asm import build
        program = _PROGRAM_CACHE[name] = build(source)
    return program


def _energy_fields(meters_and_radios):
    """Flat per-layer energy summary fields for one cell result.

    *meters_and_radios* is an iterable of ``(meter, radio_energy_j)``
    pairs.  Returns picojoule-valued numeric fields (``energy_total_pj``
    plus ``energy_<layer>_pj``) so ``_aggregate`` folds them into the
    cell aggregates and the trajectory flattener picks them up.
    """
    from repro.obs.energy import layer_split_from_meter

    totals = {}
    grand = 0.0
    for meter, radio_energy in meters_and_radios:
        split = layer_split_from_meter(meter, radio_energy=radio_energy)
        for layer, energy in split.items():
            totals[layer] = totals.get(layer, 0.0) + energy
            grand += energy
    fields = {"energy_total_pj": grand * 1e12}
    for layer, energy in totals.items():
        fields["energy_%s_pj" % layer.replace("-", "_")] = energy * 1e12
    return fields


@sweep_scenario("voltage_point")
def voltage_point(params, seed):
    """One operating point of the Section 6 voltage/energy curve.

    Grid parameters: ``voltage``.  Replicas are bit-identical (the
    workload is a fixed counted loop); the per-replica digest is the
    full-precision meter digest.
    """
    from repro.bench.ablations import SWEEP_LOOP
    from repro.bench.simspeed import meter_digest

    voltage = params["voltage"]
    processor = SnapProcessor(config=CoreConfig(voltage=voltage))
    processor.load(_cached_program("sweep_loop", SWEEP_LOOP))
    meter = processor.run()
    epi = meter.energy_per_instruction
    mips = meter.average_mips()
    result = {"voltage": voltage, "mips": mips,
              "energy_per_instruction": epi,
              "energy_delay": epi / (mips * 1e6),
              "digest": meter_digest(processor)}
    result.update(_energy_fields([(meter, 0.0)]))
    return result


@sweep_scenario("handler_suite")
def handler_suite(params, seed):
    """The six-scenario handler suite at one voltage -- run exactly once
    per cell, with throughput and the results summary reduced from the
    same rows (the satellite fix to ``throughput_and_wakeup``).

    Grid parameters: ``voltage``.
    """
    from repro.bench.harness import (
        handler_table,
        results_summary,
        throughput_and_wakeup,
    )

    voltage = params["voltage"]
    rows = handler_table(voltage)
    throughput = throughput_and_wakeup(voltage, rows=rows)
    summary = results_summary(voltage, rows=rows)
    return {
        "voltage": voltage,
        "mips": throughput.mips,
        "wakeup_latency_s": throughput.wakeup_latency_s,
        "min_handler_energy": summary.min_handler_energy,
        "max_handler_energy": summary.max_handler_energy,
        "power_at_10hz_low": summary.power_at_10hz_low,
        "power_at_10hz_high": summary.power_at_10hz_high,
        "rows": [dataclasses.asdict(row) for row in rows],
        # The rows carry every full-precision meter-derived value, so
        # they are the digest payload as well.
        "digest": {"rows": [[row.name, row.instructions, row.cycles,
                             row.energy, row.busy_time] for row in rows]},
    }


@sweep_scenario("chain_ber")
def chain_ber(params, seed):
    """Multi-hop DATA delivery over a noisy channel: the BER grid.

    Grid parameters: ``voltage``, ``bit_error_rate``; fixed parameters
    ``packets`` (default 3) and ``hops`` (default 2 relays).  The
    channel noise RNG is seeded per replica, so replicas sample
    independent noise while staying exactly reproducible.
    """
    from repro.netstack import layout
    from repro.netstack.drivers import build_aodv_node, build_tx_node
    from repro.network.simulator import NetworkSimulator
    from repro.sim.checkpoint import network_digest
    from repro.tools.snap_net_trace import seed_chain_routes, stage_and_send

    voltage = params.get("voltage", 0.6)
    bit_error_rate = params.get("bit_error_rate", 0.0)
    packets = int(params.get("packets", 3))
    relays = int(params.get("hops", 2))

    config = CoreConfig(voltage=voltage)
    net = NetworkSimulator(comm_range=1.5, bit_error_rate=bit_error_rate,
                           seed=seed, corruption="flip")
    net.add_node(1, program=build_tx_node(1), position=(0.0, 0.0),
                 config=config)
    sink_id = relays + 1
    for node_id in range(2, sink_id + 1):
        net.add_node(node_id, program=build_aodv_node(node_id),
                     position=(float(node_id - 1), 0.0), config=config)
    net.start()
    net.run(until=0.01)
    seed_chain_routes(net, first_relay=2, sink_id=sink_id)

    source = net.nodes[1]
    for sequence in range(packets):
        packet = layout.make_packet(
            dst=2, src=1, pkt_type=layout.PKT_TYPE_DATA, seq=sequence,
            payload=[sink_id, 0x100 + 0x40 * sequence,
                     0x120 + 0x55 * sequence])
        stage_and_send(source, packet)
        net.run(until=net.kernel.now + 0.05)

    digest = network_digest(net)
    result = {
        "voltage": voltage,
        "bit_error_rate": bit_error_rate,
        "packets": packets,
        "words_carried": net.channel.words_carried,
        "collisions": net.channel.collisions,
        "noise_corruptions": net.channel.noise_corruptions,
        "instructions": sum(node.meter.instructions
                            for node in net.nodes.values()),
        "total_energy": sum(node.meter.total_energy
                            for node in net.nodes.values()),
        "digest": digest,
    }
    result.update(_energy_fields([(node.meter, node.radio.radio_energy())
                                  for node in net.nodes.values()]))
    return result
