"""Simulator-throughput benchmark: fast path vs reference interpreter.

Measures instructions per host-second on three scenarios -- a
straight-line ALU loop (peak batching), the Figure 5 blink application
(timer/sleep/wake cycles), and the convergecast network experiment
(multi-node, radio traffic) -- running each on both execution engines:
the batched fast path (``CoreConfig(fast_path=True)``, the default) and
the per-event reference interpreter that keeps the pre-burst cost
profile.  Every scenario asserts that the two engines produce
bit-identical meters before any throughput number is reported.

The committed baseline (``tests/goldens/sim_speed_baseline.json``)
stores the *speedup* -- fast-path throughput over reference throughput
-- per scenario rather than absolute instructions/second, which makes
the gate machine-independent to first order.  ``--check`` fails when a
speedup regresses below ``baseline * (1 - tolerance)``, the same
committed-baseline-diff discipline the ``snap-report`` fidelity gate
uses.

CLI::

    python -m repro.bench.simspeed                   # print the table
    python -m repro.bench.simspeed --check \\
        --baseline tests/goldens/sim_speed_baseline.json
    python -m repro.bench.simspeed --write-baseline PATH
"""

import argparse
import json
import sys
import time

from repro.asm import build
from repro.bench.reporting import dump_results, format_table
from repro.core import CoreConfig, SnapProcessor
from repro.netstack import build_blink_app
from repro.network.experiments import convergecast
from repro.node import SensorNode

#: Speedup may regress by at most this fraction against the baseline.
DEFAULT_TOLERANCE = 0.30

STRAIGHTLINE = """
boot:
    movi r1, 0
    movi r2, %(outer)d
outer:
    movi r3, 2000
inner:
    addi r1, 1
    subi r3, 1
    bnez r3, inner
    subi r2, 1
    bnez r2, outer
    halt
"""


def meter_digest(processor):
    """Every meter accumulator at full precision, for exact comparison."""
    meter = processor.meter
    return {
        "instructions": meter.instructions,
        "cycles": meter.cycles,
        "total_energy": meter.total_energy,
        "busy_time": meter.busy_time,
        "idle_time": meter.idle_time,
        "idle_energy": meter.idle_energy,
        "wakeups": meter.wakeups,
        "wakeup_energy": meter.wakeup_energy,
        "event_tokens": meter.event_tokens,
        "event_token_energy": meter.event_token_energy,
        "dispatch_count": meter.dispatch_count,
        "dispatch_latency_total": meter.dispatch_latency_total,
        "dispatch_latency_max": meter.dispatch_latency_max,
        "imem_energy": meter.imem_energy,
        "dmem_energy": meter.dmem_energy,
        "by_bucket": dict(meter.by_bucket),
        "by_class": {cls.value: (stats.count, stats.energy)
                     for cls, stats in sorted(meter.by_class.items(),
                                              key=lambda kv: kv[0].value)},
        "by_handler": {tag: (stats.instructions, stats.cycles, stats.energy,
                             stats.invocations)
                       for tag, stats in sorted(meter.by_handler.items())},
        "imem_reads": processor.imem.reads,
        "imem_writes": processor.imem.writes,
        "dmem_reads": processor.dmem.reads,
        "dmem_writes": processor.dmem.writes,
        "now": processor.kernel.now,
        "pc": processor.pc,
        "mode": processor.mode.value,
    }


def _scenario_straightline(fast_path, quick=False):
    """A counted ALU loop with no events: peak instruction batching."""
    outer = 8 if quick else 24
    program = build(STRAIGHTLINE % {"outer": outer})
    processor = SnapProcessor(config=CoreConfig(voltage=0.6,
                                                fast_path=fast_path))
    processor.load(program)
    started = time.perf_counter()
    meter = processor.run()
    wall = time.perf_counter() - started
    return {"instructions": meter.instructions, "wall_s": wall,
            "digest": meter_digest(processor)}


def _scenario_blink(fast_path, quick=False):
    """The Figure 5 periodic blink app: timer, sleep/wake, LED writes."""
    until = 0.25 if quick else 1.0
    node = SensorNode(config=CoreConfig(voltage=0.6, fast_path=fast_path))
    node.load(build_blink_app(period_ticks=1000))
    started = time.perf_counter()
    meter = node.run(until=until)
    wall = time.perf_counter() - started
    return {"instructions": meter.instructions, "wall_s": wall,
            "digest": meter_digest(node.processor)}


def _scenario_convergecast(fast_path, quick=False):
    """The multi-node convergecast experiment: cores + radios + channel.

    Wall time covers the whole experiment (setup, channel and radio
    events included), so this speedup reflects what network studies
    actually gain, not just core-loop throughput.
    """
    duration = 1.0 if quick else 2.0
    started = time.perf_counter()
    result = convergecast(chain_length=4, period_s=0.1, duration_s=duration,
                          fast_path=fast_path)
    wall = time.perf_counter() - started
    instructions = sum(node.instructions for node in result.nodes.values())
    digest = {
        "sink_deliveries": result.sink_deliveries,
        "channel_collisions": result.channel_collisions,
        "nodes": {node_id: (node.instructions, node.energy_j,
                            node.packets_sent, node.packets_forwarded)
                  for node_id, node in sorted(result.nodes.items())},
    }
    return {"instructions": instructions, "wall_s": wall, "digest": digest}


SCENARIOS = {
    "straightline": _scenario_straightline,
    "blink": _scenario_blink,
    "convergecast": _scenario_convergecast,
}


def _best_of(scenario, fast_path, repeats, quick):
    best = None
    for _ in range(repeats):
        result = scenario(fast_path, quick=quick)
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    return best


def run_all(repeats=2, quick=False):
    """Run every scenario on both engines; returns the results dict.

    Raises AssertionError if the engines' meters are not bit-identical
    -- a throughput number for a diverging simulation is meaningless.
    """
    results = {}
    for name, scenario in SCENARIOS.items():
        fast = _best_of(scenario, True, repeats, quick)
        reference = _best_of(scenario, False, repeats, quick)
        if fast["digest"] != reference["digest"]:
            raise AssertionError(
                "fast path and reference interpreter diverged on %r:\n"
                "fast: %r\nreference: %r"
                % (name, fast["digest"], reference["digest"]))
        results[name] = {
            "instructions": fast["instructions"],
            "fast_wall_s": fast["wall_s"],
            "ref_wall_s": reference["wall_s"],
            "fast_ips": fast["instructions"] / fast["wall_s"],
            "ref_ips": reference["instructions"] / reference["wall_s"],
            "speedup": ((fast["instructions"] / fast["wall_s"])
                        / (reference["instructions"] / reference["wall_s"])),
        }
    return results


def results_table(results):
    rows = [[name,
             "%d" % entry["instructions"],
             "%.0f" % entry["ref_ips"],
             "%.0f" % entry["fast_ips"],
             "%.2fx" % entry["speedup"]]
            for name, entry in results.items()]
    return format_table(
        ["scenario", "instructions", "ref ins/s", "fast ins/s", "speedup"],
        rows, title="Simulator throughput: fast path vs reference")


def compare_to_baseline(results, baseline):
    """Return a list of failure strings (empty = the gate passes)."""
    tolerance = baseline.get("tolerance", DEFAULT_TOLERANCE)
    failures = []
    for name, entry in sorted(baseline.get("scenarios", {}).items()):
        current = results.get(name)
        if current is None:
            failures.append("%s: scenario missing from current results" % name)
            continue
        floor = entry["speedup"] * (1.0 - tolerance)
        if current["speedup"] < floor:
            failures.append(
                "%s: speedup %.2fx fell below %.2fx "
                "(baseline %.2fx minus %d%% tolerance)"
                % (name, current["speedup"], floor, entry["speedup"],
                   round(tolerance * 100)))
    return failures


def baseline_payload(results, tolerance=DEFAULT_TOLERANCE):
    return {
        "tolerance": tolerance,
        "scenarios": {name: {"speedup": round(entry["speedup"], 2)}
                      for name, entry in sorted(results.items())},
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.simspeed",
        description="Measure simulator throughput (fast path vs the "
                    "reference interpreter) and optionally gate against "
                    "a committed speedup baseline.")
    parser.add_argument("--repeats", type=int, default=2,
                        help="best-of-N per engine (default: 2)")
    parser.add_argument("--quick", action="store_true",
                        help="shorter simulated durations (smoke runs)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline JSON to gate against")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero when a speedup regresses past "
                             "the baseline tolerance")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write the measured speedups as a new baseline")
    parser.add_argument("--json", metavar="PATH",
                        help="also dump the raw results to PATH")
    parser.add_argument("--results-dir", metavar="DIR",
                        help="write BENCH_SIM_SPEED.json under DIR "
                             "(default: $BENCH_RESULTS_DIR)")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    results = run_all(repeats=args.repeats, quick=args.quick)
    wall = time.perf_counter() - started
    print(results_table(results))

    dumped = dump_results("SIM_SPEED", results, directory=args.results_dir,
                          wall_time_s=wall)
    if dumped:
        print("results dumped : %s" % dumped)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
        print("raw results    : %s" % args.json)
    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            json.dump(baseline_payload(results), handle, indent=2)
            handle.write("\n")
        print("baseline saved : %s" % args.write_baseline)

    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        failures = compare_to_baseline(results, baseline)
        for failure in failures:
            print("REGRESSION: %s" % failure)
        if failures and args.check:
            return 1
        if not failures:
            print("baseline check : ok (tolerance %d%%)"
                  % round(baseline.get("tolerance", DEFAULT_TOLERANCE) * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
