"""Experiment scenario runners for every table and figure in Section 4."""

from dataclasses import dataclass
from typing import Dict, List

from repro.baseline import (
    AtmelEnergyModel,
    AvrConfig,
    AvrCore,
    build_avr_blink,
    build_avr_radiostack,
    build_avr_sense,
)
from repro.baseline.avr_core import IRQ_ADC, IRQ_SPI, IRQ_TIMER
from repro.bench.workloads import (
    FIGURE4_CLASSES,
    class_program,
    random_register_values,
)
from repro.asm import build
from repro.core import CoreConfig, SnapProcessor, TimingModel
from repro.netstack import (
    build_blink_app,
    build_radiostack_app,
    build_sense_app,
    build_temperature_app,
    layout,
)
from repro.netstack.drivers import build_aodv_node, build_rx_node, build_tx_node
from repro.network import NetworkSimulator
from repro.node import SensorNode
from repro.obs.energy import layer_split_from_meter
from repro.sensors import ConstantSensor, TemperatureSensor

#: The paper's three published operating points.
VOLTAGES = (1.8, 0.9, 0.6)


# -- Figure 4: energy per instruction type ------------------------------------------


def instruction_class_energy(voltage, seed=0, obs=None):
    """Run the per-class microbenchmarks; returns
    ``{class_name: energy_per_instruction_joules}``."""
    results = {}
    for instr_class in FIGURE4_CLASSES:
        source, _ = class_program(instr_class, seed=seed)
        processor = SnapProcessor(config=CoreConfig(voltage=voltage))
        if obs is not None:
            processor.attach_observability(obs)
        processor.load(build(source))
        for register, value in random_register_values(seed).items():
            processor.regs.poke(register, value)
        meter = processor.run()
        stats = meter.by_class[instr_class]
        results[instr_class.value] = stats.energy_per_instruction
    return results


# -- Section 4.3: throughput and wakeup latency ----------------------------------------


@dataclass
class ThroughputResult:
    voltage: float
    mips: float
    wakeup_latency_s: float


def throughput_and_wakeup(voltage, obs=None, rows=None):
    """Average throughput over the handler benchmark suite, plus the
    idle-to-active latency, at one voltage.

    *rows* optionally supplies precomputed :func:`handler_table` rows
    (the PR 3 collector pattern), so callers that already ran the
    six-scenario suite at this voltage -- the fidelity collectors, a
    sweep cell -- reduce those rows instead of silently re-running the
    whole suite here."""
    if rows is None:
        rows = handler_table(voltage, obs=obs)
    instructions = sum(row.instructions for row in rows)
    busy = sum(row.busy_time for row in rows)
    return ThroughputResult(
        voltage=voltage,
        mips=instructions / busy / 1e6,
        wakeup_latency_s=TimingModel(voltage).wakeup_latency)


# -- Table 1: handler statistics ----------------------------------------------------------


@dataclass
class HandlerRow:
    name: str
    paper_instructions: int
    instructions: int
    cycles: int
    energy: float
    busy_time: float

    @property
    def energy_per_instruction(self):
        return self.energy / self.instructions if self.instructions else 0.0


def _stage_packet(node, words):
    for index, word in enumerate(words):
        node.processor.dmem.poke(layout.TX_BUF + index, word)


def _packet_scenario(receiver_builder, packet, setup=None, voltage=0.6,
                     measure_sender=False, calibration=None, obs=None):
    """Boot a sender/receiver pair, deliver *packet*, return the meter of
    the measured node (receiver, or sender when *measure_sender*)."""
    config = _core_config(voltage, calibration)
    net = NetworkSimulator()
    if obs is not None:
        net.attach_observability(obs)
    sender = net.add_node(0, program=build_tx_node(0), config=config)
    receiver = net.add_node(2, program=receiver_builder(2), config=config)
    net.run(until=0.001)
    if setup is not None:
        setup(receiver)
    _stage_packet(sender, packet[:-1])
    sender.meter.reset()
    receiver.meter.reset()
    sender.processor.raise_soft_event()
    net.run(until=net.kernel.now + 0.5)
    return sender.meter if measure_sender else receiver.meter


def _core_config(voltage, calibration=None):
    if calibration is None:
        return CoreConfig(voltage=voltage)
    return CoreConfig(voltage=voltage, calibration=calibration)


def _temperature_scenario(voltage, iterations=10, calibration=None,
                          obs=None):
    node = SensorNode(config=_core_config(voltage, calibration))
    if obs is not None:
        node.attach_observability(obs)
    node.attach_sensor(TemperatureSensor(seed=1), sensor_id=1)
    node.load(build_temperature_app(period_ticks=500))
    node.run(until=0.0004)
    node.meter.reset()
    node.run(until=0.0004 + iterations * 0.0005 + 0.0001)
    return node.meter, iterations


def handler_table(voltage=0.6, calibration=None, obs=None):
    """Reproduce Table 1: the six software tasks with dynamic instruction
    counts and energy.

    *calibration* optionally overrides the energy calibration (used by
    the bus-hierarchy ablation).  *obs* optionally attaches an
    :class:`~repro.obs.Observability` context to every scenario so the
    benchmark itself is observable (metrics snapshots in bench dumps).
    """
    rows = []

    def add_row(name, paper, meter, scale=1):
        rows.append(HandlerRow(
            name=name,
            paper_instructions=paper,
            instructions=round(meter.instructions / scale),
            cycles=round(meter.cycles / scale),
            energy=meter.total_energy / scale,
            busy_time=meter.busy_time / scale))

    data_payload = [9, 0x0123, 0x0456]

    meter = _packet_scenario(
        build_rx_node,
        layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 1, data_payload),
        voltage=voltage, measure_sender=True, calibration=calibration,
        obs=obs)
    add_row("Packet Transmission", 70, meter)

    meter = _packet_scenario(
        build_rx_node,
        layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 1, data_payload),
        voltage=voltage, calibration=calibration, obs=obs)
    add_row("Packet Reception", 103, meter)

    meter = _packet_scenario(
        build_aodv_node,
        layout.make_packet(2, 0, layout.PKT_TYPE_RREQ, 7, [2]),
        voltage=voltage, calibration=calibration, obs=obs)
    add_row("AODV Route Reply", 224, meter)

    def install_route(node):
        node.processor.dmem.poke(layout.ROUTE_TABLE + 0, 5)
        node.processor.dmem.poke(layout.ROUTE_TABLE + 1, 9)
        node.processor.dmem.poke(layout.ROUTE_TABLE + 2, 1)

    meter = _packet_scenario(
        build_aodv_node,
        layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 3, [5, 0x111, 0x222]),
        setup=install_route, voltage=voltage, calibration=calibration,
        obs=obs)
    add_row("AODV Forward", 245, meter)

    meter, iterations = _temperature_scenario(voltage,
                                               calibration=calibration,
                                               obs=obs)
    add_row("Temperature App", 140, meter, scale=iterations)

    meter = _packet_scenario(
        build_aodv_node,
        layout.make_packet(2, 0, layout.PKT_TYPE_DATA, 4, [2, 0x150, 0x250]),
        voltage=voltage, calibration=calibration, obs=obs)
    add_row("Threshold App", 155, meter)

    return rows


# -- Section 4.4: core energy distribution ---------------------------------------------------


def energy_breakdown(voltage=1.8, obs=None):
    """Run the full microbenchmark mix and return the Section 4.4 core
    energy distribution plus the memory share."""
    processor = SnapProcessor(config=CoreConfig(voltage=voltage))
    meter = processor.meter
    run_meters = []
    for instr_class in FIGURE4_CLASSES:
        source, _ = class_program(instr_class, seed=1)
        runner = SnapProcessor(config=CoreConfig(voltage=voltage))
        if obs is not None:
            runner.attach_observability(obs)
        runner.load(build(source))
        for register, value in random_register_values(1).items():
            runner.regs.poke(register, value)
        run_meter = runner.run()
        run_meters.append(run_meter)
        for bucket, value in run_meter.by_bucket.items():
            meter.by_bucket[bucket] += value
        meter.imem_energy += run_meter.imem_energy
        meter.dmem_energy += run_meter.dmem_energy
        meter.total_energy += run_meter.total_energy
        meter.instructions += run_meter.instructions
    fractions = meter.core_fractions()
    memory_share = meter.memory_energy / meter.total_energy
    layers = {}
    for run_meter in run_meters:
        for layer, joules in layer_split_from_meter(run_meter).items():
            layers[layer] = layers.get(layer, 0.0) + joules
    return {"core_fractions": fractions, "memory_share": memory_share,
            "layer_energy_j": layers}


# -- Figure 5 and Section 4.6: the TinyOS comparisons --------------------------------------------


@dataclass
class BlinkComparison:
    snap_cycles: float
    snap_instructions: float
    snap_energy_18: float   # joules per iteration at 1.8 V
    snap_energy_06: float   # joules per iteration at 0.6 V
    avr_cycles: float
    avr_useful_cycles: float
    avr_overhead_cycles: float
    avr_energy: float       # joules per iteration


def _snap_periodic_app(builder, voltage, iterations, period_s, attach=None,
                       obs=None):
    node = SensorNode(config=CoreConfig(voltage=voltage))
    if obs is not None:
        node.attach_observability(obs)
    if attach is not None:
        attach(node)
    node.load(builder())
    node.run(until=period_s / 2)
    node.meter.reset()
    node.run(until=period_s / 2 + iterations * period_s + period_s / 4)
    return node


def _avr_marginal(build, vectors, iterations, ticks_per_iter,
                  counter_var, period_cycles=2000, configure=None):
    """Run the baseline app twice and return marginal per-iteration
    (cycles, useful_cycles, iterations) -- excluding boot cost."""

    def run(n):
        core = AvrCore(build(), AvrConfig(timer_period_cycles=period_cycles),
                       vectors=vectors)
        if configure is not None:
            configure(core)
        core.run(max_wall_cycles=period_cycles * ticks_per_iter * n + 8000)
        return core

    first = run(iterations)
    second = run(2 * iterations)
    d_iters = second.variable(counter_var) - first.variable(counter_var)
    d_cycles = second.stats.cycles - first.stats.cycles
    d_useful = second.stats.useful_cycles - first.stats.useful_cycles
    return (d_cycles / d_iters, d_useful / d_iters, d_iters, second)


def blink_comparison(iterations=10, obs=None):
    """Figure 5: periodic LED blink on SNAP vs the TinyOS baseline."""
    period_ticks = 1000
    results = {}
    for voltage in (1.8, 0.6):
        node = _snap_periodic_app(
            lambda: build_blink_app(period_ticks=period_ticks),
            voltage, iterations, period_ticks * 1e-6, obs=obs)
        handler = node.meter.by_handler["TIMER0"]
        per_iter_energy = ((handler.energy
                            + node.meter.wakeup_energy
                            + node.meter.event_token_energy)
                           / handler.invocations)
        results[voltage] = (handler, per_iter_energy)
    handler_18, energy_18 = results[1.8]
    _, energy_06 = results[0.6]

    avr_cycles, avr_useful, _, _ = _avr_marginal(
        lambda: build_avr_blink(period_ticks=2),
        {IRQ_TIMER: "timer_isr"}, iterations, 2, "blink_count")
    return BlinkComparison(
        snap_cycles=handler_18.cycles / handler_18.invocations,
        snap_instructions=handler_18.instructions / handler_18.invocations,
        snap_energy_18=energy_18,
        snap_energy_06=energy_06,
        avr_cycles=avr_cycles,
        avr_useful_cycles=avr_useful,
        avr_overhead_cycles=avr_cycles - avr_useful,
        avr_energy=AtmelEnergyModel().active_energy(avr_cycles))


@dataclass
class CyclesComparison:
    name: str
    snap_cycles: float
    avr_cycles: float
    avr_overhead_fraction: float

    @property
    def reduction(self):
        return 1.0 - self.snap_cycles / self.avr_cycles


def sense_comparison(iterations=10, obs=None):
    """Section 4.6: the Sense application, SNAP vs the baseline."""
    node = _snap_periodic_app(
        lambda: build_sense_app(period_ticks=1000), 0.6, iterations, 1e-3,
        attach=lambda n: n.attach_sensor(ConstantSensor(0x3A5), sensor_id=2),
        obs=obs)
    snap_cycles = node.meter.cycles / iterations

    avr_cycles, avr_useful, _, _ = _avr_marginal(
        lambda: build_avr_sense(period_ticks=2),
        {IRQ_TIMER: "timer_isr", IRQ_ADC: "adc_isr"},
        iterations, 2, "sense_iters",
        configure=lambda core: setattr(core.adc, "sample_source",
                                       lambda: 0x3A5))
    return CyclesComparison(
        name="Sense",
        snap_cycles=snap_cycles,
        avr_cycles=avr_cycles,
        avr_overhead_fraction=(avr_cycles - avr_useful) / avr_cycles)


def radiostack_comparison(bytes_count=10, obs=None):
    """Section 4.6: the MICA high-speed radio stack, cycles per byte."""
    net = NetworkSimulator()
    if obs is not None:
        net.attach_observability(obs)
    node = net.add_node(0, program=build_radiostack_app(),
                        config=CoreConfig(voltage=0.6))
    net.run(until=0.001)
    node.meter.reset()
    # Space the driver events out so the 8-deep hardware event queue
    # never overflows.
    for index in range(bytes_count):
        node.kernel.schedule(0.02 * (index + 1),
                             node.processor.raise_soft_event)
    net.run(until=5.0)
    handler = node.meter.by_handler["SOFT"]
    snap_cycles = handler.cycles / handler.invocations

    avr_cycles, avr_useful, _, _ = _avr_marginal(
        lambda: build_avr_radiostack(period_ticks=1),
        {IRQ_TIMER: "timer_isr", IRQ_SPI: "spi_isr"},
        bytes_count, 1, "bytes_sent", period_cycles=4000)
    return CyclesComparison(
        name="RadioStack",
        snap_cycles=snap_cycles,
        avr_cycles=avr_cycles,
        avr_overhead_fraction=(avr_cycles - avr_useful) / avr_cycles)


# -- Section 4.7: results summary ----------------------------------------------------------------


@dataclass
class SummaryResult:
    voltage: float
    min_handler_energy: float
    max_handler_energy: float
    power_at_10hz_low: float
    power_at_10hz_high: float


def results_summary(voltage, obs=None, rows=None):
    """Handler energy range and the active power at ten events/second.

    *rows* optionally supplies precomputed :func:`handler_table` rows so
    shared-run callers do not re-run the six-scenario suite."""
    if rows is None:
        rows = handler_table(voltage, obs=obs)
    energies = [row.energy for row in rows]
    return SummaryResult(
        voltage=voltage,
        min_handler_energy=min(energies),
        max_handler_energy=max(energies),
        power_at_10hz_low=min(energies) * 10,
        power_at_10hz_high=max(energies) * 10)
