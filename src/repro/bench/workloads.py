"""Workload generators.

``class_program`` builds the Figure 4 microbenchmarks: a block of one
instruction class with uniformly distributed random operands, wrapped in
a counted loop so the dynamic instance count reaches the paper's one
thousand per class (Section 4.4) within the 4KB IMEM.
"""

import numpy as np

from repro.isa.opcodes import InstrClass

#: Registers the generators may use as random operands (r8-r12 are kept
#: for the loop counter and addressing; r13-r15 are special).
_OPERAND_REGS = (1, 2, 3, 4, 5, 6, 7)

#: Instances per loop body; bodies are mostly two-word instructions, so
#: this stays well inside the 2048-word IMEM.
BLOCK_INSTANCES = 250
LOOP_COUNT = 4

#: Stream indices under one root seed: program text and operand values
#: draw from independent ``SeedSequence`` children of the same root.
PROGRAM_STREAM = 0
VALUES_STREAM = 1


def stream_rng(seed, stream):
    """A ``RandomState`` on an independent, collision-free stream.

    The old derivation -- ``RandomState(seed)`` for program text,
    ``RandomState(seed + 1)`` for operand values -- made adjacent root
    seeds alias: seed 1's program stream was bit-identical to seed 0's
    value stream, so a replica grid stepping seeds by one reused its
    neighbours' randomness.  ``SeedSequence`` spawn keys hash (entropy,
    spawn_key) together, so every (seed, stream) pair gets a distinct
    stream by construction.
    """
    child = np.random.SeedSequence(entropy=seed, spawn_key=(stream,))
    return np.random.RandomState(child.generate_state(8))


def _rng_reg(rng):
    return "r%d" % rng.choice(_OPERAND_REGS)


def _gen_arith_reg(rng):
    op = rng.choice(["add", "sub", "addc", "subc"])
    return "%s %s, %s" % (op, _rng_reg(rng), _rng_reg(rng))


def _gen_arith_imm(rng):
    op = rng.choice(["addi", "subi"])
    return "%s %s, %d" % (op, _rng_reg(rng), rng.randint(0, 1 << 16))


def _gen_logical_reg(rng):
    op = rng.choice(["and", "or", "xor", "mov", "not"])
    if op in ("mov", "not"):
        return "%s %s, %s" % (op, _rng_reg(rng), _rng_reg(rng))
    return "%s %s, %s" % (op, _rng_reg(rng), _rng_reg(rng))


def _gen_logical_imm(rng):
    op = rng.choice(["andi", "ori", "xori", "movi"])
    return "%s %s, %d" % (op, _rng_reg(rng), rng.randint(0, 1 << 16))


def _gen_shift(rng):
    op = rng.choice(["sll", "srl", "sra"])
    return "%s %s, %d" % (op, _rng_reg(rng), rng.randint(0, 16))


def _gen_load(rng):
    return "ld %s, %d(r0)" % (_rng_reg(rng), rng.randint(0, 1024))


def _gen_store(rng):
    return "st %s, %d(r0)" % (_rng_reg(rng), rng.randint(1024, 1800))


def _gen_imem_load(rng):
    return "ldi %s, %d(r0)" % (_rng_reg(rng), rng.randint(0, 512))


def _gen_branch(rng):
    # Alternate taken and not-taken branches: r8 holds zero.
    if rng.randint(0, 2):
        return "beqz %s, 0" % _rng_reg(rng)  # operands random, mostly != 0
    return "beqz r8, 0"                      # always taken, to next word


def _gen_bitfield(rng):
    return "bfs %s, %s, 0x%04x" % (_rng_reg(rng), _rng_reg(rng),
                                   rng.randint(0, 1 << 16))


def _gen_rand(rng):
    return "rand %s" % _rng_reg(rng)


def _gen_timer(rng):
    # schedhi only stages bits -- no timer actually starts, so the
    # microbenchmark exercises the coprocessor interface without
    # flooding the event queue.
    return "schedhi r8, %s" % _rng_reg(rng)


_GENERATORS = {
    InstrClass.ARITH_REG: _gen_arith_reg,
    InstrClass.ARITH_IMM: _gen_arith_imm,
    InstrClass.LOGICAL_REG: _gen_logical_reg,
    InstrClass.LOGICAL_IMM: _gen_logical_imm,
    InstrClass.SHIFT: _gen_shift,
    InstrClass.LOAD: _gen_load,
    InstrClass.STORE: _gen_store,
    InstrClass.IMEM_LOAD: _gen_imem_load,
    InstrClass.BRANCH: _gen_branch,
    InstrClass.BITFIELD: _gen_bitfield,
    InstrClass.RAND: _gen_rand,
    InstrClass.TIMER: _gen_timer,
}

#: Classes covered by the Figure 4 microbenchmarks ("the more commonly
#: executed instructions").
FIGURE4_CLASSES = tuple(_GENERATORS)


def class_program(instr_class, seed=0, instances=BLOCK_INSTANCES,
                  loops=LOOP_COUNT):
    """Build the microbenchmark source for one instruction class.

    Returns ``(source, expected_dynamic_instances)``.
    """
    generator = _GENERATORS[instr_class]
    rng = stream_rng(seed, PROGRAM_STREAM)
    lines = ["    movi r9, %d" % loops, "    movi r8, 0", ".outer:"]
    for _ in range(instances):
        lines.append("    " + generator(rng))
    lines.append("    subi r9, 1")
    lines.append("    beqz r9, .done")
    lines.append("    jmp .outer")
    lines.append(".done:")
    lines.append("    halt")
    return "\n".join(lines) + "\n", instances * loops


def random_register_values(seed=0):
    """Uniformly distributed random operand values for r1..r7."""
    rng = stream_rng(seed, VALUES_STREAM)
    return {reg: int(rng.randint(0, 1 << 16)) for reg in _OPERAND_REGS}
