"""Plain-text table formatting for benchmark reports."""


def format_table(headers, rows, title=None):
    """Render an aligned text table; *rows* is a list of sequences."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(header.ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def ratio_note(measured, paper):
    """A compact 'measured vs paper' annotation."""
    if paper == 0:
        return "n/a"
    return "%.2fx of paper" % (measured / paper)
