"""Plain-text table formatting and JSON result dumps for benchmarks."""

import dataclasses
import json
import os
import platform
import tempfile

try:
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy is a hard dependency
    _numpy = None


def format_table(headers, rows, title=None):
    """Render an aligned text table; *rows* is a list of sequences."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(header.ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append(separator)
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def ratio_note(measured, paper):
    """A compact 'measured vs paper' annotation."""
    if paper == 0:
        return "n/a"
    return "%.2fx of paper" % (measured / paper)


def _jsonable(value):
    """Best-effort conversion of bench results to JSON-friendly values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if _numpy is not None:
        # Numpy scalars must land as JSON numbers, not their ``str()``:
        # the fidelity scorecard compares dumped values arithmetically.
        if isinstance(value, _numpy.bool_):
            return bool(value)
        if isinstance(value, _numpy.integer):
            return int(value)
        if isinstance(value, _numpy.floating):
            return float(value)
        if isinstance(value, _numpy.ndarray):
            return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def dump_results(name, results, metrics=None, directory=None,
                 wall_time_s=None):
    """Write ``BENCH_<name>.json`` with *results* and an optional metrics
    snapshot for counter context.

    *directory* defaults to the ``BENCH_RESULTS_DIR`` environment
    variable; when neither is set the dump is skipped and ``None`` is
    returned, so benchmarks can call this unconditionally.  *results*
    may contain dataclasses (``HandlerRow``, ``ConvergecastResult``,
    ...); they are converted field-by-field.  *metrics* is typically a
    :meth:`NetworkSimulator.snapshot` or
    :meth:`MetricsRegistry.snapshot` dict.  *wall_time_s* is the host
    wall-clock cost of producing the results; it lands under a ``host``
    key so the scorecard can report how long each benchmark took on the
    machine that ran it.
    """
    directory = directory or os.environ.get("BENCH_RESULTS_DIR")
    if not directory:
        return None
    payload = {"benchmark": name, "results": _jsonable(results)}
    if metrics is not None:
        payload["metrics"] = _jsonable(metrics)
    if wall_time_s is not None:
        payload["host"] = {"wall_time_s": float(wall_time_s),
                           "python": platform.python_version(),
                           "machine": platform.machine()}
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "BENCH_%s.json" % name)
    return atomic_write_json(path, payload)


def atomic_write_json(path, payload):
    """Write *payload* as JSON to *path* atomically.

    Concurrent writers (parameter-sweep workers dumping into one
    ``BENCH_RESULTS_DIR``) must never interleave inside one file or
    leave a half-written dump for a concurrent reader: the payload goes
    to a uniquely named temp file in the same directory, then lands in
    one ``os.replace``, so every open() of *path* parses.
    """
    directory = os.path.dirname(path) or "."
    fd, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return path
