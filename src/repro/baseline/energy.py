"""Energy model of the baseline Atmel-class microcontroller.

Two published calibration points from the paper:

* Table 2: the ATmega128L consumes about **1500 pJ per instruction** at
  3 V and 4 MIPS.
* Figure 5: one TinyOS Blink iteration (523 cycles) costs **1960 nJ**,
  which implies ~3.75 nJ per cycle -- consistent with the ATmega128L
  datasheet's active current (≈5 mA at 3 V, 4 MHz gives 15 mW, i.e.
  3.75 nJ per 4 MHz cycle).

The two differ because the AVR averages more than one cycle per
instruction and because the Figure 5 measurement reflects datasheet
active power.  Both constants are kept, each used where the paper uses
it.  Sleep current and the millisecond-scale wakeup penalties of the
deeper sleep modes (Section 4.3: 4-65 ms) are also modeled.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class AtmelEnergyModel:
    """Published/datasheet energy figures for the baseline MCU."""

    #: Table 2 figure: energy per instruction at 3 V / 4 MIPS.
    energy_per_instruction: float = 1500e-12
    #: Active energy per CPU cycle (datasheet current at 3 V, 4 MHz).
    energy_per_cycle: float = 3.75e-9
    #: Idle-sleep power (timer running): ~1.2 mA at 3 V.
    idle_sleep_power: float = 3.6e-3
    #: Power-save sleep power: ~20 uA at 3 V.
    deep_sleep_power: float = 60e-6
    clock_hz: float = 4e6

    def active_energy(self, cycles):
        """Energy of *cycles* active CPU cycles (Figure 5 accounting)."""
        return cycles * self.energy_per_cycle

    def instruction_energy(self, instructions):
        """Energy of *instructions* executed (Table 2 accounting)."""
        return instructions * self.energy_per_instruction

    def sleep_energy(self, cycles, deep=False):
        """Energy burned while asleep for *cycles* wall-clock cycles."""
        power = self.deep_sleep_power if deep else self.idle_sleep_power
        return power * (cycles / self.clock_hz)

    def run_energy(self, stats, deep_sleep=False):
        """Total energy of an :class:`~repro.baseline.avr_core.AvrStats`
        run: active cycles plus sleep floor."""
        return (self.active_energy(stats.cycles)
                + self.sleep_energy(stats.sleep_cycles, deep=deep_sleep))


#: Wakeup latencies of the Atmel sleep modes (Section 4.3 cites 4-65 ms
#: for the deep modes; idle mode wakes in a handful of cycles).
WAKEUP_LATENCY_IDLE_S = 6 / 4e6
WAKEUP_LATENCY_POWER_SAVE_S = 4e-3
WAKEUP_LATENCY_POWER_DOWN_S = 65e-3
