"""The reduced AVR-like baseline core with interrupts and devices.

Models what the comparison needs from an ATmega128L-class part: an 8-bit
register file, SRAM, a cycle counter, hardware interrupts with the AVR's
entry/exit costs, a sleep instruction, and three devices -- a periodic
timer, an ADC with conversion-complete interrupts, and a byte-wide SPI
port (the mote's radio interface).  Device control and profiling use
memory-mapped I/O ports.

Profiling: writes to the ``MARKER`` port split active cycles into
"useful" and "overhead" buckets -- the same trick as toggling a GPIO
around the payload code on a real board -- which is how the Figure 5
overhead split is measured instead of assumed.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.baseline.avr_asm import AvrProgram

# -- I/O port map ----------------------------------------------------------------

PORT_LEDS = 0x00
PORT_TIMER_CTRL = 0x02   # out 1: enable periodic timer; out 0: disable
PORT_ADC_START = 0x03    # out anything: start a conversion
PORT_ADC_LO = 0x04       # in: conversion result, low byte
PORT_ADC_HI = 0x05       # in: result, high bits
PORT_SPI_DATA = 0x06     # out: transmit one byte over SPI
PORT_MARKER = 0x07       # profiling: 1 = useful work, 0 = overhead

#: Interrupt identifiers.
IRQ_TIMER = "timer"
IRQ_ADC = "adc"
IRQ_SPI = "spi"

#: Cycle costs of the baseline instructions (AVR-manual values for the
#: ones we model).
_CYCLES = {
    "mov": 1, "add": 1, "adc": 1, "sub": 1, "sbc": 1, "and": 1, "or": 1,
    "eor": 1, "cp": 1, "ldi": 1, "subi": 1, "andi": 1, "ori": 1, "cpi": 1,
    "inc": 1, "dec": 1, "lsl": 1, "lsr": 1, "rol": 1, "swap": 1,
    "push": 2, "pop": 2, "lds": 2, "sts": 2, "ld": 2, "st": 2,
    "in": 1, "out": 1, "sei": 1, "cli": 1, "sleep": 1, "nop": 1,
    "rjmp": 2, "rcall": 3, "ret": 4, "reti": 4,
    # conditional branches cost 1, +1 when taken (handled inline)
    "brne": 1, "breq": 1, "brlo": 1, "brge": 1,
}

#: AVR interrupt response: 4 cycles to push the PC and vector.
IRQ_ENTRY_CYCLES = 4


class AvrFault(Exception):
    """Baseline-simulator fault (bad address, runaway program, ...)."""


@dataclass
class AvrConfig:
    """Configuration of the baseline core."""

    clock_hz: float = 4_000_000.0
    sram_bytes: int = 4096
    #: Timer period in cycles between compare-match interrupts.
    timer_period_cycles: int = 4000
    #: ADC conversion time (ATmega: ~13 ADC clocks; ~120 CPU cycles).
    adc_cycles: int = 120
    #: SPI byte time in cycles (radio-rate SPI is slow; value only
    #: matters for wall-clock, not cycle counts attributed to the CPU).
    spi_cycles: int = 256
    #: Cycles to wake from the sleep mode in use.  TinyOS idles in a
    #: light sleep where the timer keeps running (fast wake); the deep
    #: power-down modes cost milliseconds (Section 4.3: 4-65 ms).
    wakeup_cycles: int = 6
    max_instructions: Optional[int] = 10_000_000


@dataclass
class AvrStats:
    """Activity counters."""

    instructions: int = 0
    cycles: int = 0            # active cycles (sleep time excluded)
    useful_cycles: int = 0     # active cycles with the MARKER port set
    irqs: int = 0
    sleeps: int = 0
    wakeups: int = 0
    sleep_cycles: int = 0      # wall-clock cycles spent asleep

    @property
    def overhead_cycles(self):
        return self.cycles - self.useful_cycles


class _Device:
    """A device that fires an interrupt at an absolute cycle count."""

    def __init__(self, irq):
        self.irq = irq
        self.fire_at = None

    def maybe_fire(self, core):
        if self.fire_at is not None and core.wall_cycles >= self.fire_at:
            self.fire_at = None
            self.on_fire(core)
            core.raise_irq(self.irq)
            return True
        return False

    def on_fire(self, core):
        pass


class _TimerDevice(_Device):
    def __init__(self, period):
        super().__init__(IRQ_TIMER)
        self.period = period
        self.enabled = False

    def control(self, core, value):
        self.enabled = bool(value)
        self.fire_at = core.wall_cycles + self.period if self.enabled else None

    def on_fire(self, core):
        if self.enabled:
            self.fire_at = core.wall_cycles + self.period


class _AdcDevice(_Device):
    def __init__(self, conversion_cycles):
        super().__init__(IRQ_ADC)
        self.conversion_cycles = conversion_cycles
        self.result = 0
        #: Supplied by the harness: callable returning the next sample.
        self.sample_source = lambda: 0

    def start(self, core):
        self.fire_at = core.wall_cycles + self.conversion_cycles

    def on_fire(self, core):
        self.result = int(self.sample_source()) & 0x3FF


class _SpiDevice(_Device):
    def __init__(self, byte_cycles):
        super().__init__(IRQ_SPI)
        self.byte_cycles = byte_cycles
        self.sent = []

    def write(self, core, value):
        self.sent.append(value & 0xFF)
        self.fire_at = core.wall_cycles + self.byte_cycles


class AvrCore:
    """The baseline microcontroller."""

    def __init__(self, program: AvrProgram, config: AvrConfig = None,
                 vectors: Dict[str, str] = None):
        self.program = program
        self.config = config or AvrConfig()
        self.regs = [0] * 32
        self.sram = bytearray(self.config.sram_bytes)
        self.sp = self.config.sram_bytes - 1
        self.pc = 0
        self.flag_z = False
        self.flag_c = False
        self.flag_n = False
        self.flag_i = False
        self.sleeping = False
        self.halted = False
        self.stats = AvrStats()
        #: Wall-clock cycles including sleep (device timing base).
        self.wall_cycles = 0
        self._marker = 0
        self._pending = []
        self.leds_history = []

        self.timer = _TimerDevice(self.config.timer_period_cycles)
        self.adc = _AdcDevice(self.config.adc_cycles)
        self.spi = _SpiDevice(self.config.spi_cycles)
        self._devices = [self.timer, self.adc, self.spi]

        self._vectors = {}
        for irq, label in (vectors or {}).items():
            self._vectors[irq] = program.address_of(label)

    # -- interrupts ---------------------------------------------------------

    def raise_irq(self, irq):
        if irq in self._vectors:
            self._pending.append(irq)

    def _service_irq(self):
        if not self.flag_i or not self._pending:
            return False
        irq = self._pending.pop(0)
        self.stats.irqs += 1
        self._push16(self.pc)
        self.flag_i = False
        self.pc = self._vectors[irq]
        self._account(IRQ_ENTRY_CYCLES)
        return True

    # -- stack -----------------------------------------------------------------

    def _push8(self, value):
        self.sram[self.sp] = value & 0xFF
        self.sp -= 1

    def _pop8(self):
        self.sp += 1
        return self.sram[self.sp]

    def _push16(self, value):
        self._push8(value & 0xFF)
        self._push8((value >> 8) & 0xFF)

    def _pop16(self):
        high = self._pop8()
        low = self._pop8()
        return (high << 8) | low

    # -- accounting ---------------------------------------------------------------

    def _account(self, cycles):
        self.stats.cycles += cycles
        self.wall_cycles += cycles
        if self._marker:
            self.stats.useful_cycles += cycles

    # -- I/O ports ------------------------------------------------------------------

    def _port_read(self, port):
        if port == PORT_ADC_LO:
            return self.adc.result & 0xFF
        if port == PORT_ADC_HI:
            return (self.adc.result >> 8) & 0xFF
        if port == PORT_LEDS:
            return self.leds_history[-1][1] if self.leds_history else 0
        if port == PORT_MARKER:
            return self._marker
        raise AvrFault("read from unmapped port 0x%02x" % port)

    def _port_write(self, port, value):
        if port == PORT_LEDS:
            self.leds_history.append((self.wall_cycles, value & 0xFF))
        elif port == PORT_TIMER_CTRL:
            self.timer.control(self, value)
        elif port == PORT_ADC_START:
            self.adc.start(self)
        elif port == PORT_SPI_DATA:
            self.spi.write(self, value)
        elif port == PORT_MARKER:
            self._marker = value & 1
        else:
            raise AvrFault("write to unmapped port 0x%02x" % port)

    # -- execution ----------------------------------------------------------------------

    def run(self, max_wall_cycles=None):
        """Run until halt (sleep with no future device event) or until
        the wall-clock cycle budget is spent."""
        while not self.halted:
            if max_wall_cycles is not None and self.wall_cycles >= max_wall_cycles:
                return self.stats
            if self.sleeping:
                if not self._advance_sleep(max_wall_cycles):
                    return self.stats
                continue
            for device in self._devices:
                device.maybe_fire(self)
            if self._service_irq():
                continue
            self._step()
        return self.stats

    def _advance_sleep(self, max_wall_cycles):
        """Jump the wall clock to the next device event; wake on IRQ."""
        next_fire = min((d.fire_at for d in self._devices
                         if d.fire_at is not None), default=None)
        if next_fire is None:
            self.halted = True
            return False
        if max_wall_cycles is not None and next_fire > max_wall_cycles:
            self.stats.sleep_cycles += max_wall_cycles - self.wall_cycles
            self.wall_cycles = max_wall_cycles
            return False
        self.stats.sleep_cycles += next_fire - self.wall_cycles
        self.wall_cycles = next_fire
        for device in self._devices:
            device.maybe_fire(self)
        if self._pending and self.flag_i:
            self.sleeping = False
            self.stats.wakeups += 1
            self._account(self.config.wakeup_cycles)
        return True

    def _step(self):
        if not 0 <= self.pc < len(self.program.instructions):
            raise AvrFault("pc 0x%04x outside program" % self.pc)
        ins = self.program.instructions[self.pc]
        self.stats.instructions += 1
        limit = self.config.max_instructions
        if limit is not None and self.stats.instructions > limit:
            raise AvrFault("instruction budget exceeded -- runaway program?")
        cycles = _CYCLES[ins.mnemonic]
        next_pc = self.pc + 1
        m = ins.mnemonic

        if m == "ldi":
            self.regs[ins.rd] = ins.imm
        elif m == "mov":
            self.regs[ins.rd] = self.regs[ins.rr]
        elif m in ("add", "adc"):
            carry = self.flag_c if m == "adc" else 0
            total = self.regs[ins.rd] + self.regs[ins.rr] + carry
            self.flag_c = total > 0xFF
            self._set_result(ins.rd, total)
        elif m in ("sub", "sbc"):
            carry = self.flag_c if m == "sbc" else 0
            total = self.regs[ins.rd] - self.regs[ins.rr] - carry
            self.flag_c = total < 0
            self._set_result(ins.rd, total)
        elif m == "subi":
            total = self.regs[ins.rd] - ins.imm
            self.flag_c = total < 0
            self._set_result(ins.rd, total)
        elif m == "and":
            self._set_result(ins.rd, self.regs[ins.rd] & self.regs[ins.rr])
        elif m == "or":
            self._set_result(ins.rd, self.regs[ins.rd] | self.regs[ins.rr])
        elif m == "eor":
            self._set_result(ins.rd, self.regs[ins.rd] ^ self.regs[ins.rr])
        elif m == "andi":
            self._set_result(ins.rd, self.regs[ins.rd] & ins.imm)
        elif m == "ori":
            self._set_result(ins.rd, self.regs[ins.rd] | ins.imm)
        elif m in ("cp", "cpi"):
            other = self.regs[ins.rr] if m == "cp" else ins.imm
            total = self.regs[ins.rd] - other
            self.flag_c = total < 0
            self.flag_z = (total & 0xFF) == 0
            self.flag_n = bool(total & 0x80)
        elif m == "inc":
            self._set_result(ins.rd, self.regs[ins.rd] + 1)
        elif m == "dec":
            self._set_result(ins.rd, self.regs[ins.rd] - 1)
        elif m == "lsl":
            value = self.regs[ins.rd] << 1
            self.flag_c = value > 0xFF
            self._set_result(ins.rd, value)
        elif m == "lsr":
            self.flag_c = bool(self.regs[ins.rd] & 1)
            self._set_result(ins.rd, self.regs[ins.rd] >> 1)
        elif m == "rol":
            value = (self.regs[ins.rd] << 1) | (1 if self.flag_c else 0)
            self.flag_c = value > 0xFF
            self._set_result(ins.rd, value)
        elif m == "swap":
            value = self.regs[ins.rd]
            self.regs[ins.rd] = ((value << 4) | (value >> 4)) & 0xFF
        elif m == "push":
            self._push8(self.regs[ins.rd])
        elif m == "pop":
            self.regs[ins.rd] = self._pop8()
        elif m == "lds":
            self.regs[ins.rd] = self.sram[ins.imm]
        elif m == "sts":
            self.sram[ins.imm] = self.regs[ins.rd]
        elif m in ("ld", "st"):
            address = self.regs[26] | (self.regs[27] << 8)
            if not 0 <= address < len(self.sram):
                raise AvrFault("X pointer 0x%04x outside SRAM" % address)
            if m == "ld":
                self.regs[ins.rd] = self.sram[address]
            else:
                self.sram[address] = self.regs[ins.rd]
            if ins.post_increment:
                address += 1
                self.regs[26] = address & 0xFF
                self.regs[27] = (address >> 8) & 0xFF
        elif m == "in":
            self.regs[ins.rd] = self._port_read(ins.imm)
        elif m == "out":
            self._port_write(ins.imm, self.regs[ins.rd])
        elif m in ("brne", "breq", "brlo", "brge"):
            take = {"brne": not self.flag_z, "breq": self.flag_z,
                    "brlo": self.flag_c, "brge": not self.flag_n}[m]
            if take:
                next_pc = ins.target
                cycles += 1
        elif m == "rjmp":
            next_pc = ins.target
        elif m == "rcall":
            self._push16(self.pc + 1)
            next_pc = ins.target
        elif m == "ret":
            next_pc = self._pop16()
        elif m == "reti":
            next_pc = self._pop16()
            self.flag_i = True
        elif m == "sei":
            self.flag_i = True
        elif m == "cli":
            self.flag_i = False
        elif m == "sleep":
            self.sleeping = True
            self.stats.sleeps += 1
        elif m == "nop":
            pass
        else:
            raise AvrFault("unimplemented mnemonic %r" % m)

        self.pc = next_pc
        self._account(cycles)

    def _set_result(self, rd, value):
        value &= 0xFF
        self.regs[rd] = value
        self.flag_z = value == 0
        self.flag_n = bool(value & 0x80)

    # -- conveniences -------------------------------------------------------------

    def sram_read16(self, address):
        return self.sram[address] | (self.sram[address + 1] << 8)

    def variable(self, name):
        """Read a one-byte .var by name."""
        return self.sram[self.program.variables[name]]

    def variable16(self, name):
        return self.sram_read16(self.program.variables[name])
