"""The baseline platform: an ATmega128L-class microcontroller running a
TinyOS-style runtime.

The paper compares SNAP/LE against Berkeley MICA motes: an 8-bit Atmel
AVR core at 4 MIPS running TinyOS, measured with Atmel's cycle-accurate
AVR Studio simulator (Section 4.2).  This package substitutes a reduced
AVR-like core simulator (:mod:`repro.baseline.avr_core`) with hardware
interrupts, a timer, an ADC, and an SPI port, plus a TinyOS-style
runtime written in its assembly (:mod:`repro.baseline.tinyos`): interrupt
service routines with full register save/restore, a virtualized timer
layer, a FIFO task queue, and a scheduler loop that sleeps the core when
the queue drains.

The point of the comparison is the *software overhead structure* -- how
many cycles go to interrupt servicing and scheduling versus useful work
(Figure 5 finds 507 of 523 cycles are overhead) -- which this model
reproduces mechanically rather than by quoting the paper's numbers.
"""

from repro.baseline.avr_asm import AvrAsmError, assemble_avr
from repro.baseline.avr_core import AvrConfig, AvrCore, AvrFault
from repro.baseline.energy import AtmelEnergyModel
from repro.baseline.tinyos import (
    build_avr_blink,
    build_avr_radiostack,
    build_avr_sense,
)

__all__ = [
    "AvrAsmError",
    "assemble_avr",
    "AvrConfig",
    "AvrCore",
    "AvrFault",
    "AtmelEnergyModel",
    "build_avr_blink",
    "build_avr_radiostack",
    "build_avr_sense",
]
