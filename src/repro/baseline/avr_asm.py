"""A small assembler for the reduced AVR-like baseline ISA.

The baseline core executes a structured instruction stream (mnemonic +
operands), not binary machine code -- cycle counts, not encodings, are
what the comparison needs.  This assembler turns readable assembly text
into that stream and resolves labels.

Supported syntax::

    ; comments
    .equ NAME, value
    label:
        ldi r16, 0x12
        lds r17, counter      ; SRAM by symbol or address
        sts counter, r17
        brne loop
        rcall subroutine
        reti
    .var counter, 2           ; reserve 2 SRAM bytes, define symbol

Registers are ``r0`` .. ``r31``.  ``X`` (``r27:r26``) is the only pointer
register, used by ``ld``/``st`` with optional post-increment (``X+``).
"""

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_MNEMONICS_REG_REG = {"mov", "add", "adc", "sub", "sbc", "and", "or",
                      "eor", "cp"}
_MNEMONICS_REG_IMM = {"ldi", "subi", "andi", "ori", "cpi"}
_MNEMONICS_REG = {"inc", "dec", "lsl", "lsr", "rol", "push", "pop", "swap"}
_MNEMONICS_BRANCH = {"brne", "breq", "brlo", "brge", "rjmp", "rcall"}
_MNEMONICS_NONE = {"ret", "reti", "sei", "cli", "sleep", "nop"}

#: SRAM reserved below this address for memory-mapped I/O ports.
SRAM_DATA_BASE = 0x60


class AvrAsmError(Exception):
    """Assembly-time error in baseline AVR source."""


@dataclass(frozen=True)
class AvrInstruction:
    """One decoded baseline instruction."""

    mnemonic: str
    rd: Optional[int] = None
    rr: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[int] = None  # resolved label address (word index)
    post_increment: bool = False


@dataclass
class AvrProgram:
    """An assembled baseline program."""

    instructions: List[AvrInstruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    #: SRAM symbol -> byte address (from .var directives).
    variables: Dict[str, int] = field(default_factory=dict)
    sram_used: int = SRAM_DATA_BASE

    def address_of(self, label):
        return self.labels[label]

    @property
    def size_words(self):
        """Flash footprint: one word per instruction except the two-word
        lds/sts forms (matching real AVR encodings closely enough for
        the paper's code-size comparison)."""
        return sum(2 if ins.mnemonic in ("lds", "sts") else 1
                   for ins in self.instructions)

    @property
    def size_bytes(self):
        return 2 * self.size_words


_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.$]*)\s*:")


def _parse_register(text, line):
    text = text.strip().lower()
    if text.startswith("r") and text[1:].isdigit():
        number = int(text[1:])
        if 0 <= number <= 31:
            return number
    raise AvrAsmError("line %d: bad register %r" % (line, text))


def assemble_avr(source, name="avr"):
    """Assemble baseline AVR source text into an :class:`AvrProgram`."""
    program = AvrProgram()
    equs = {}
    pending: List[Tuple[int, str, str]] = []  # (instr index, label, mnemonic)

    def parse_value(text, line):
        text = text.strip()
        if text in equs:
            return equs[text]
        if text in program.variables:
            return program.variables[text]
        try:
            return int(text, 0)
        except ValueError:
            raise AvrAsmError("line %d: bad value %r" % (line, text)) from None

    for line_number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split(";", 1)[0].strip()
        while text:
            match = _LABEL_RE.match(text)
            if not match:
                break
            label = match.group(1)
            if label in program.labels:
                raise AvrAsmError("line %d: duplicate label %r"
                                  % (line_number, label))
            program.labels[label] = len(program.instructions)
            text = text[match.end():].strip()
        if not text:
            continue
        if text.startswith(".equ"):
            body = text[4:].strip()
            name_part, _, value_part = body.partition(",")
            equs[name_part.strip()] = parse_value(value_part, line_number)
            continue
        if text.startswith(".var"):
            body = text[4:].strip()
            name_part, _, size_part = body.partition(",")
            size = parse_value(size_part, line_number) if size_part.strip() else 1
            program.variables[name_part.strip()] = program.sram_used
            program.sram_used += size
            continue
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operands = [op.strip() for op in parts[1].split(",")] if len(parts) > 1 else []

        if mnemonic in _MNEMONICS_NONE:
            program.instructions.append(AvrInstruction(mnemonic))
        elif mnemonic in _MNEMONICS_REG:
            program.instructions.append(AvrInstruction(
                mnemonic, rd=_parse_register(operands[0], line_number)))
        elif mnemonic in _MNEMONICS_REG_REG:
            program.instructions.append(AvrInstruction(
                mnemonic,
                rd=_parse_register(operands[0], line_number),
                rr=_parse_register(operands[1], line_number)))
        elif mnemonic in _MNEMONICS_REG_IMM:
            program.instructions.append(AvrInstruction(
                mnemonic,
                rd=_parse_register(operands[0], line_number),
                imm=parse_value(operands[1], line_number) & 0xFF))
        elif mnemonic in _MNEMONICS_BRANCH:
            pending.append((len(program.instructions), operands[0],
                            mnemonic))
            program.instructions.append(AvrInstruction(mnemonic))
        elif mnemonic == "lds":
            program.instructions.append(AvrInstruction(
                "lds", rd=_parse_register(operands[0], line_number),
                imm=parse_value(operands[1], line_number)))
        elif mnemonic == "sts":
            program.instructions.append(AvrInstruction(
                "sts", rd=_parse_register(operands[1], line_number),
                imm=parse_value(operands[0], line_number)))
        elif mnemonic == "ld":
            pointer = operands[1].upper()
            if pointer not in ("X", "X+"):
                raise AvrAsmError("line %d: only the X pointer is supported"
                                  % line_number)
            program.instructions.append(AvrInstruction(
                "ld", rd=_parse_register(operands[0], line_number),
                post_increment=pointer.endswith("+")))
        elif mnemonic == "st":
            pointer = operands[0].upper()
            if pointer not in ("X", "X+"):
                raise AvrAsmError("line %d: only the X pointer is supported"
                                  % line_number)
            program.instructions.append(AvrInstruction(
                "st", rd=_parse_register(operands[1], line_number),
                post_increment=pointer.endswith("+")))
        elif mnemonic == "in":
            program.instructions.append(AvrInstruction(
                "in", rd=_parse_register(operands[0], line_number),
                imm=parse_value(operands[1], line_number)))
        elif mnemonic == "out":
            program.instructions.append(AvrInstruction(
                "out", rd=_parse_register(operands[1], line_number),
                imm=parse_value(operands[0], line_number)))
        else:
            raise AvrAsmError("line %d: unknown mnemonic %r"
                              % (line_number, mnemonic))

    resolved = []
    for index, label, mnemonic in pending:
        target = program.labels.get(label)
        if target is None:
            raise AvrAsmError("undefined label %r" % label)
        old = program.instructions[index]
        program.instructions[index] = AvrInstruction(
            mnemonic=old.mnemonic, target=target)
        resolved.append(index)
    return program
