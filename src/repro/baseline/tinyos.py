"""A TinyOS-style runtime for the baseline AVR core, plus the three
comparison applications (Blink, Sense, radio stack).

The runtime reproduces the software structure TinyOS imposes on a
commodity microcontroller (the structure SNAP/LE's hardware event queue
eliminates -- Sections 3.1 and 4.6):

* **Interrupt service routines** save and restore the full avr-gcc
  call-clobbered register set (15 registers) around their bodies.
* **A virtualized timer layer**: one hardware timer tick scans an array
  of 32-bit virtual timers, decrementing and reloading each active one
  -- the TinyOS ``Clock``/``Timer`` component stack.
* **A FIFO task queue**: ISRs post task identifiers; a scheduler loop
  pops and dispatches them, sleeping the core when the queue drains.

Application code brackets its *useful* work with writes to the MARKER
port, so the overhead/useful cycle split of Figure 5 is measured by the
simulator rather than assumed.
"""

from repro.baseline.avr_asm import assemble_avr
from repro.baseline.avr_core import (
    PORT_ADC_HI,
    PORT_ADC_LO,
    PORT_ADC_START,
    PORT_LEDS,
    PORT_MARKER,
    PORT_SPI_DATA,
    PORT_TIMER_CTRL,
)

#: Number of virtual timers the TinyOS timer layer multiplexes onto the
#: one hardware timer (each entry: active flag + 32-bit count + 32-bit
#: reload = 9 bytes).
NUM_VTIMERS = 8
VTIMER_ENTRY_BYTES = 9

#: Task identifiers.
TASK_BLINK = 1
TASK_SENSE_START = 2
TASK_SENSE_PROC = 3
TASK_RS_SEND = 4

_PORTS_EQU = """
    .equ LEDS, %d
    .equ TIMER_CTRL, %d
    .equ ADC_START, %d
    .equ ADC_LO, %d
    .equ ADC_HI, %d
    .equ SPI_DATA, %d
    .equ MARKER, %d
""" % (PORT_LEDS, PORT_TIMER_CTRL, PORT_ADC_START, PORT_ADC_LO,
       PORT_ADC_HI, PORT_SPI_DATA, PORT_MARKER)

_RUNTIME_VARS = """
    .var task_queue, 8
    .var tq_head, 1
    .var tq_tail, 1
    .var tq_count, 1
    .var vtimers, %d
""" % (NUM_VTIMERS * VTIMER_ENTRY_BYTES)

#: ISR context save/restore: the avr-gcc call-clobbered set (plus r23,
#: which the virtual-timer scan uses as its entry pointer).
_ISR_SAVE_REGS = ["r0", "r1", "r16", "r17", "r18", "r19", "r20", "r21",
                  "r22", "r23", "r24", "r25", "r26", "r27", "r30", "r31"]
_ISR_SAVE = "\n".join("    push %s" % reg for reg in _ISR_SAVE_REGS)
_ISR_RESTORE = "\n".join("    pop %s" % reg for reg in reversed(_ISR_SAVE_REGS))


def _runtime_init():
    """Reset code: clear the task queue and the virtual-timer array."""
    return """
reset:
    ldi r16, 0
    sts tq_head, r16
    sts tq_tail, r16
    sts tq_count, r16
    ldi r26, vtimers
    ldi r27, 0
    ldi r17, %d
clr_vt:
    st X+, r16
    dec r17
    brne clr_vt
""" % (NUM_VTIMERS * VTIMER_ENTRY_BYTES)


def _arm_vtimer(index, ticks, comment=""):
    """Code to activate virtual timer *index* with a 32-bit tick count."""
    base_offset = index * VTIMER_ENTRY_BYTES
    bytes_ = [(ticks >> (8 * i)) & 0xFF for i in range(4)]
    lines = ["    ; arm virtual timer %d (%d ticks) %s" % (index, ticks, comment),
             "    ldi r26, vtimers",
             "    ldi r27, 0"]
    if base_offset:
        lines.append("    subi r26, %d" % ((-base_offset) & 0xFF))
    lines.append("    ldi r16, 1")
    lines.append("    st X+, r16       ; active")
    for value in bytes_:
        lines.append("    ldi r16, %d" % value)
        lines.append("    st X+, r16       ; count byte")
    for value in bytes_:
        lines.append("    ldi r16, %d" % value)
        lines.append("    st X+, r16       ; reload byte")
    return "\n".join(lines)


def _scheduler(dispatch_cases):
    """The TinyOS scheduler loop: pop a task id, dispatch, sleep when
    the queue is empty.  *dispatch_cases* maps task id -> label."""
    cases = "\n".join(
        "    cpi r18, %d\n    breq %s" % (task_id, label)
        for task_id, label in sorted(dispatch_cases.items()))
    return """
main_loop:
    cli
    lds r16, tq_count
    cpi r16, 0
    brne have_task
    sei
    sleep
    rjmp main_loop
have_task:
    lds r17, tq_head
    ldi r26, task_queue
    ldi r27, 0
    add r26, r17
    ld r18, X
    inc r17
    andi r17, 7
    sts tq_head, r17
    dec r16
    sts tq_count, r16
    sei
%s
    rjmp main_loop

; post_task: r20 = task id; interrupts must be disabled.
; Clobbers r16, r22, X.
post_task:
    lds r16, tq_count
    cpi r16, 8
    breq post_drop
    lds r22, tq_tail
    ldi r26, task_queue
    ldi r27, 0
    add r26, r22
    st X, r20
    inc r22
    andi r22, 7
    sts tq_tail, r22
    inc r16
    sts tq_count, r16
post_drop:
    ret
""" % cases


def _timer_isr(fired_task_id):
    """The hardware-timer ISR: full context save, then the virtualized
    timer scan (32-bit counters), posting *fired_task_id* on expiry."""
    return """
timer_isr:
%s
    ldi r21, 0              ; zero register for the 32-bit borrows
    ldi r23, vtimers        ; r23 = current entry base (low byte)
    ldi r19, %d             ; entry loop counter
vt_loop:
    mov r26, r23
    ldi r27, 0
    ld r16, X+              ; active flag
    cpi r16, 0
    breq vt_next
    ld r17, X+              ; count, little-endian
    ld r18, X+
    ld r24, X+
    ld r25, X+
    subi r17, 1             ; 32-bit decrement
    sbc r18, r21
    sbc r24, r21
    sbc r25, r21
    mov r22, r17            ; zero test
    or r22, r18
    or r22, r24
    or r22, r25
    brne vt_store
    ld r17, X+              ; expired: reload
    ld r18, X+
    ld r24, X+
    ld r25, X+
    ldi r20, %d
    rcall post_task
vt_store:
    mov r26, r23
    inc r26
    ldi r27, 0
    st X+, r17              ; write the count back
    st X+, r18
    st X+, r24
    st X, r25
vt_next:
    subi r23, %d            ; advance to the next 9-byte entry
    dec r19
    brne vt_loop
%s
    reti
""" % (_ISR_SAVE, NUM_VTIMERS, fired_task_id,
       (-VTIMER_ENTRY_BYTES) & 0xFF, _ISR_RESTORE)


# -- Blink ----------------------------------------------------------------------

def build_avr_blink(period_ticks=2):
    """The TinyOS Blink application for the baseline core.

    *period_ticks* is the virtual-timer period in hardware-timer ticks;
    each expiry posts the blink task, whose useful work is bracketed by
    MARKER writes (Figure 5 finds only 16 of 523 cycles are useful).
    """
    source = _PORTS_EQU + _RUNTIME_VARS + """
    .var led_state, 1
    .var blink_count, 1
""" + _runtime_init() + """
    ldi r16, 0
    sts led_state, r16
    sts blink_count, r16
""" + _arm_vtimer(0, period_ticks, "blink period") + """
    sei
    ldi r16, 1
    out TIMER_CTRL, r16
""" + _scheduler({TASK_BLINK: "task_blink"}) + _timer_isr(TASK_BLINK) + """
task_blink:
    ldi r16, 1
    out MARKER, r16
    lds r17, led_state
    ldi r18, 1
    eor r17, r18
    sts led_state, r17
    out LEDS, r17
    lds r19, blink_count
    inc r19
    sts blink_count, r19
    ldi r16, 0
    out MARKER, r16
    rjmp main_loop
"""
    return assemble_avr(source, name="avr-blink")


# -- Sense -----------------------------------------------------------------------

SENSE_AVR_WINDOW = 8


def build_avr_sense(period_ticks=4):
    """The TinyOS Sense application: periodic ADC sample, running
    average over an 8-sample window, high bits to the LEDs.

    Two interrupts per iteration (timer and ADC completion) plus two
    task dispatches -- the structure behind the paper's finding that
    over 70% of the mote's 1118 cycles are overhead.
    """
    source = _PORTS_EQU + _RUNTIME_VARS + """
    .var sample_lo, 1
    .var sample_hi, 1
    .var window, %d          ; 8 samples x 2 bytes, little-endian
    .var win_idx, 1
    .var sense_iters, 1
""" % (2 * SENSE_AVR_WINDOW) + _runtime_init() + """
    ldi r16, 0
    sts win_idx, r16
    sts sense_iters, r16
    ldi r26, window
    ldi r27, 0
    ldi r17, %d
clr_win:
    st X+, r16
    dec r17
    brne clr_win
""" % (2 * SENSE_AVR_WINDOW) + _arm_vtimer(0, period_ticks, "sample period") + """
    sei
    ldi r16, 1
    out TIMER_CTRL, r16
""" + _scheduler({TASK_SENSE_START: "task_sense_start",
                  TASK_SENSE_PROC: "task_sense_proc"}) \
        + _timer_isr(TASK_SENSE_START) + """
; ADC conversion-complete ISR: latch the sample, post the processing task.
adc_isr:
%s
    in r16, ADC_LO
    sts sample_lo, r16
    in r16, ADC_HI
    sts sample_hi, r16
    ldi r20, %d
    rcall post_task
%s
    reti

; Task: start an ADC conversion.
task_sense_start:
    ldi r16, 1
    out MARKER, r16
    out ADC_START, r16
    ldi r16, 0
    out MARKER, r16
    rjmp main_loop

; Task: fold the sample into the window, average, display.
task_sense_proc:
    ldi r16, 1
    out MARKER, r16
    ; window[idx] = sample
    lds r17, win_idx
    mov r18, r17
    lsl r18                  ; byte offset = idx * 2
    ldi r26, window
    ldi r27, 0
    add r26, r18
    lds r19, sample_lo
    st X+, r19
    lds r19, sample_hi
    st X, r19
    inc r17
    andi r17, %d
    sts win_idx, r17
    ; sum the window into r24:r25
    ldi r24, 0
    ldi r25, 0
    ldi r26, window
    ldi r27, 0
    ldi r19, %d
sum_loop:
    ld r16, X+
    ld r17, X+
    add r24, r16
    adc r25, r17
    dec r19
    brne sum_loop
    ; average = sum >> 3
    lsr r25
    mov r16, r24
    lsr r24
    ; (three 16-bit right shifts, unrolled)
    lsr r25
    lsr r24
    lsr r25
    lsr r24
    ; display the top bits: avg is 10-bit; show bits 9..7
    mov r16, r24
    swap r16
    lsr r16
    lsr r16
    andi r16, 0x07
    out LEDS, r16
    lds r16, sense_iters
    inc r16
    sts sense_iters, r16
    ldi r16, 0
    out MARKER, r16
    rjmp main_loop
""" % (_ISR_SAVE, TASK_SENSE_PROC, _ISR_RESTORE,
       SENSE_AVR_WINDOW - 1, SENSE_AVR_WINDOW)
    return assemble_avr(source, name="avr-sense")


# -- Radio stack -------------------------------------------------------------------

def build_avr_radiostack(period_ticks=8, bytes_to_send=None):
    """The MICA high-speed radio stack on the baseline core: SEC-DED
    encode each byte, update the packet CRC, and push the codeword over
    SPI byte by byte (each SPI byte costs a full ISR round trip -- the
    byte-level interface overhead Section 4.6 calls out)."""
    source = _PORTS_EQU + _RUNTIME_VARS + """
    .var crc_lo, 1
    .var crc_hi, 1
    .var next_byte, 1
    .var bytes_sent, 1
    .var spi_pending, 1      ; second codeword byte awaiting the SPI ISR
""" + _runtime_init() + """
    ldi r16, 0xFF
    sts crc_lo, r16
    sts crc_hi, r16
    ldi r16, 0
    sts next_byte, r16
    sts bytes_sent, r16
    sts spi_pending, r16
""" + _arm_vtimer(0, period_ticks, "byte pacing") + """
    sei
    ldi r16, 1
    out TIMER_CTRL, r16
""" + _scheduler({TASK_RS_SEND: "task_rs_send"}) + _timer_isr(TASK_RS_SEND) + """
; SPI transfer-complete ISR: send the second codeword byte if pending.
spi_isr:
%s
    lds r16, spi_pending
    cpi r16, 0
    breq spi_done
    lds r17, spi_pending
    andi r17, 0x7F
    out SPI_DATA, r17
    ldi r16, 0
    sts spi_pending, r16
spi_done:
%s
    reti

; Task: CRC + SEC-DED encode + transmit one byte.
task_rs_send:
    ldi r16, 1
    out MARKER, r16
    lds r20, next_byte       ; the data byte
    ; ---- CRC-16-CCITT update (bitwise, crc in crc_hi:crc_lo) ----
    lds r24, crc_lo
    lds r25, crc_hi
    eor r25, r20             ; crc ^= byte << 8
    ldi r19, 8
crc_loop:
    lsl r24                  ; 16-bit shift left: C = low-byte carry...
    rol r25                  ; ...rolled into the high byte; C = old msb
    brlo crc_xor             ; brlo == brcs: msb was set -> xor the poly
    rjmp crc_next
crc_xor:
    ldi r16, 0x21
    eor r24, r16
    ldi r16, 0x10
    eor r25, r16
crc_next:
    dec r19
    brne crc_loop
    sts crc_lo, r24
    sts crc_hi, r25
    ; ---- SEC-DED encode r20 -> r24 (lo), r25 (hi) ----
    rcall rs_encode
    ; ---- transmit: first byte now, second via the SPI ISR ----
    ori r25, 0x80            ; mark pending (codeword hi is 5 bits)
    sts spi_pending, r25
    out SPI_DATA, r24
    lds r16, bytes_sent
    inc r16
    sts bytes_sent, r16
    lds r16, next_byte
    inc r16
    sts next_byte, r16
    ldi r16, 0
    out MARKER, r16
    rjmp main_loop
""" % (_ISR_SAVE, _ISR_RESTORE) + _rs_encode_source()
    return assemble_avr(source, name="avr-radiostack")


def _rs_encode_source():
    """SEC-DED Hamming(13,8) encoder on 8-bit registers.

    Input: r20 = data byte.  Output: r24 = codeword bits 7..0,
    r25 = codeword bits 12..8.  The layout matches
    :func:`repro.radio.secded.secded_encode`.  Clobbers r16-r19, r22.
    """
    # Parity masks split into (lo, hi) byte pairs; see repro.radio.secded.
    masks = [
        (0x54, 0x05, 0),    # p1 -> codeword bit 0
        (0x64, 0x06, 1),    # p2 -> bit 1
        (0x70, 0x08, 3),    # p4 -> bit 3
        (0x00, 0x0F, 7),    # p8 -> bit 7
    ]
    lines = ["""
rs_encode:
    ; scatter the data bits: lo gets d0 at bit2, d1-d3 at bits 4-6;
    ; hi gets d4-d7 at bits 0-3 (codeword bits 8-11)
    mov r16, r20
    andi r16, 0x01
    lsl r16
    lsl r16
    mov r24, r16
    mov r16, r20
    andi r16, 0x0E
    lsl r16
    lsl r16
    lsl r16
    or r24, r16
    mov r25, r20
    swap r25
    andi r25, 0x0F
"""]
    for mask_lo, mask_hi, bit in masks:
        lines.append("""
    ; parity over masked codeword bits -> codeword bit %d
    mov r16, r24
    andi r16, 0x%02X
    mov r17, r25
    andi r17, 0x%02X
    eor r16, r17
    rcall rs_parity8
    %s
""" % (bit, mask_lo, mask_hi,
            "\n    ".join(["lsl r16"] * bit
                          + ["or r2%d, r16" % (5 if bit >= 8 else 4)])))
    lines.append("""
    ; overall parity over codeword bits 11..0 -> bit 12 (hi bit 4)
    mov r16, r24
    mov r17, r25
    andi r17, 0x0F
    eor r16, r17
    rcall rs_parity8
    swap r16                 ; bit0 -> bit4
    or r25, r16
    ret

; rs_parity8: r16 -> r16 = XOR of all bits (0 or 1).  Clobbers r17.
rs_parity8:
    mov r17, r16
    swap r17
    eor r16, r17
    mov r17, r16
    lsr r17
    lsr r17
    eor r16, r17
    mov r17, r16
    lsr r17
    eor r16, r17
    andi r16, 0x01
    ret
""")
    return "".join(lines)
