"""``snap-energy``: causal energy provenance for a simulated run.

Runs a built-in scenario under an armed
:class:`~repro.obs.energy.EnergyLedger` and reports where every
picojoule went, four ways: per guest source line (with collapsed-stack
and speedscope flame-graph export), per protocol layer, per packet
journey (end-to-end cost including forwarding CPU and overhearing), and
per node battery lifetime (linear + drain-curve projection).  Every
view reconciles against the energy meters; the residual is always
reported and gates the exit code.

Exit codes: 0 on success (all views reconcile), 1 when a view's
residual exceeds the tolerance or the budget demo fails to trip, 2 on
usage errors or a failed ``--self-test``.

Examples::

    # flame graphs for the C-compiled fig5 blink guest
    snap-energy c_blink --collapsed blink.folded --speedscope blink.json

    # per-packet joule accounting on the 3-node convergecast
    snap-energy convergecast --packets

    # battery projection: 2 mJ capacity per node
    snap-energy convergecast --lifetime --capacity 2e-3

    # trip the watchdog's energy_budget invariant on purpose
    snap-energy --demo-budget

    # prove line/layer localization end to end (CI gate)
    snap-energy --self-test
"""

import argparse
import json
import math
import sys

from repro.obs.context import Observability
from repro.obs.energy import project_lifetime
from repro.obs.timeline import TimelineSampler

#: Default reconciliation gate: views must attribute the meter total to
#: within this relative residual.  Observed residuals are float-
#: association noise (1e-12 .. 1e-7 relative); the acceptance bar in
#: the docs is 1e-2.
DEFAULT_TOLERANCE = 1e-4

#: The fig. 5 blink written in the C dialect, so every hot frame
#: symbolicates to a real ``file:line`` in ``blink.c`` (the assembly
#: scenarios carry assembler line tables instead).
C_BLINK = """\
int state;

void arm() { __schedlo(0, 400); }

void init() { state = 0; arm(); }

__handler void on_timer() {
    state = 1 - state;
    __r15_write(16384 + state);
    arm();
}
"""


def build_c_blink(fast_path=True):
    """A single fig5-blink node compiled from :data:`C_BLINK`."""
    from repro.cc.compiler import build_c_node
    from repro.core import CoreConfig
    from repro.isa.events import Event
    from repro.node.node import SensorNode

    program = build_c_node(C_BLINK, handlers={Event.TIMER0: "on_timer"},
                           source_name="blink.c")
    node = SensorNode(node_id=1, config=CoreConfig(fast_path=fast_path))
    node.load(program)
    node.processor.start()
    return node, 1.0


def scenarios():
    """Name -> ``builder(fast_path) -> (sim, horizon)``."""
    from repro.sim.differential import SCENARIOS

    table = dict(SCENARIOS)
    table["c_blink"] = build_c_blink
    return table


def run_scenario(name, fast_path=True, until=None, capacity=None,
                 budgets=None, timeline_interval=None):
    """Build and run one scenario under an armed ledger.

    Returns ``(obs, sim, sampler, watchdog)``; *sampler* is ``None``
    unless a lifetime projection was requested via *capacity*, and
    *watchdog* is ``None`` unless *budgets* were configured.
    """
    from repro.node.node import SensorNode

    builder = scenarios()[name]
    sim, horizon = builder(fast_path)
    if until is not None:
        horizon = until
    obs = Observability(energy=True, journeys=True)
    sim.attach_observability(obs)

    sampler = None
    if capacity is not None:
        if timeline_interval is None:
            timeline_interval = max((horizon - sim.kernel.now) / 50.0, 1e-6)
        nodes = {sim.name: sim} if isinstance(sim, SensorNode) \
            else sim.nodes
        sampler = TimelineSampler(sim.kernel, nodes, timeline_interval,
                                  obs=obs).start()
    watchdog = None
    if budgets:
        from repro.obs.watchdog import Watchdog

        watchdog = Watchdog(interval=max((horizon - sim.kernel.now) / 100.0,
                                         1e-6),
                            invariants=("energy_budget",), budgets=budgets)
        watchdog.watch(sim)
        watchdog.start()

    if isinstance(sim, SensorNode):
        sim.kernel.run(until=horizon)
    else:
        sim.run(until=horizon)
    if obs.journeys is not None:
        obs.journeys.flush()
    return obs, sim, sampler, watchdog


def build_report(ledger, sampler=None, capacity=None, top=20):
    """The full ``repro.obs.energy/1`` report payload."""
    line_view = ledger.line_view()
    layer_view = ledger.layer_view()
    packet_view = ledger.packet_view()
    report = {
        "schema": "repro.obs.energy/1",
        "total_j": line_view["total_j"],
        "lines": {
            "frames": line_view["frames"][:top] if top else
            line_view["frames"],
            "frames_total": len(line_view["frames"]),
            "attributed_j": line_view["attributed_j"],
            "residual_j": line_view["residual_j"],
            "residual_frac": line_view["residual_frac"],
        },
        "layers": {
            "by_layer": layer_view["layers"],
            "attributed_j": layer_view["attributed_j"],
            "residual_j": layer_view["residual_j"],
            "residual_frac": layer_view["residual_frac"],
        },
        "packets": {
            "rows": packet_view["packets"],
            "non_packet": packet_view["non_packet"],
            "attributed_j": packet_view["attributed_j"],
            "residual_j": packet_view["residual_j"],
            "residual_frac": packet_view["residual_frac"],
        },
    }
    if sampler is not None and capacity is not None:
        report["lifetime"] = project_lifetime(sampler.rows, capacity)
    return report


def _check_reconciliation(report, tolerance):
    """Every view's residual fraction against the gate; returns the
    list of failures (empty on success)."""
    failures = []
    for view in ("lines", "layers", "packets"):
        frac = report[view]["residual_frac"]
        if not (frac <= tolerance):
            failures.append("%s view residual %.3e exceeds tolerance %.0e"
                            % (view, frac, tolerance))
    return failures


# -- the calibration-perturbation self-test -----------------------------------

#: The self-test guest: the timer handler contains exactly ONE
#: data-memory access (the ``st``), so scaling the DMEM-access
#: calibration must move exactly one source line -- an unambiguous
#: argmax for the localization check.
SELFTEST_APP = """
boot:
    movi r1, 0           ; TIMER0 -> on_tick
    movi r2, on_tick
    setaddr r1, r2
    movi r1, 0
    movi r2, 400
    schedlo r1, r2
    done
on_tick:
    addi r3, 1
    st r3, 0(r0)
    movi r1, 0
    movi r2, 400
    schedlo r1, r2
    done
"""

SELFTEST_HORIZON = 0.02
SELFTEST_HANDLER = "TIMER0"
SELFTEST_FUNCTION = "on_tick"
SELFTEST_LAYER = "app"


def _selftest_ledger(factor=1.0):
    """Run the self-test guest (DMEM calibration scaled by *factor*)
    under a fresh ledger."""
    from dataclasses import replace

    from repro.asm import build
    from repro.core import CoreConfig
    from repro.energy.calibration import DEFAULT_CALIBRATION
    from repro.node.node import SensorNode

    calibration = DEFAULT_CALIBRATION
    if factor != 1.0:
        calibration = replace(
            DEFAULT_CALIBRATION,
            dmem_access_pj=DEFAULT_CALIBRATION.dmem_access_pj * factor)
    node = SensorNode(node_id=0,
                      config=CoreConfig(calibration=calibration))
    node.load(build(SELFTEST_APP))
    obs = Observability(energy=True)
    node.attach_observability(obs)
    node.processor.start()
    node.kernel.run(until=SELFTEST_HORIZON)
    return obs.energy


def self_test(factor=1.5):
    """Perturb one handler's instruction energy; verify the per-line
    delta localizes to the correct symbolicated line AND layer.

    Returns ``(ok, failures, details)``.
    """
    baseline = _selftest_ledger()
    perturbed = _selftest_ledger(factor=factor)

    # The expected line: the single st in the perturbed run's ledger.
    expected = None
    for stat in perturbed.by_line.values():
        if stat.mnemonic.startswith("st ") and stat.handler == \
                SELFTEST_HANDLER:
            record = perturbed._records.get(stat.node)
            function, file, line = perturbed._symbolicate(record, stat.pc)
            expected = {"function": function, "file": file, "line": line}
    failures = []
    if expected is None:
        return False, ["no st instruction observed in the timer handler"], \
            None

    def frame_map(ledger):
        return {(f["function"], f["file"], f["line"], f["handler"]): f
                for f in ledger.line_view()["frames"]}

    frames_a, frames_b = frame_map(baseline), frame_map(perturbed)
    deltas = []
    for key in set(frames_a) | set(frames_b):
        energy_a = frames_a.get(key, {}).get("energy_j", 0.0)
        entry_b = frames_b.get(key, {})
        deltas.append((abs(entry_b.get("energy_j", 0.0) - energy_a),
                       key, entry_b.get("layer")))
    deltas.sort(reverse=True)
    top_delta, (function, file, line, handler), layer = deltas[0]
    details = {"expected": expected,
               "hottest_delta": {"function": function, "file": file,
                                 "line": line, "handler": handler,
                                 "layer": layer, "delta_j": top_delta}}
    if top_delta <= 0.0:
        failures.append("perturbation produced no per-line energy delta")
    if function != expected["function"] or line != expected["line"]:
        failures.append(
            "hottest delta landed on %s:%s in %r, expected %s:%s in %r"
            % (file, line, function, expected["file"], expected["line"],
               expected["function"]))
    if function != SELFTEST_FUNCTION:
        failures.append("expected the delta inside %r, got %r"
                        % (SELFTEST_FUNCTION, function))
    if handler != SELFTEST_HANDLER:
        failures.append("expected handler %r, got %r"
                        % (SELFTEST_HANDLER, handler))
    if layer != SELFTEST_LAYER:
        failures.append("expected layer %r, got %r"
                        % (SELFTEST_LAYER, layer))
    return not failures, failures, details


# -- the budget-watchdog demo --------------------------------------------------

def demo_budget(out=None):
    """Arm an absurdly small per-node energy budget on the C blink and
    verify the watchdog trips it mid-run.  Returns 0 when the invariant
    fires as designed."""
    from repro.obs.watchdog import InvariantViolation

    write = out.write if out is not None else sys.stdout.write
    try:
        run_scenario("c_blink", budgets={"node1": 1e-9})
    except InvariantViolation as violation:
        write("budget demo: watchdog tripped as designed\n  %s\n"
              % violation)
        return 0
    write("budget demo: FAILED -- the 1 nJ budget was never tripped\n")
    return 1


# -- CLI ----------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="snap-energy",
        description="causal energy provenance: source-line flame graphs, "
                    "layer budgets, per-packet joule accounting, and "
                    "battery-lifetime projection")
    parser.add_argument("scenario", nargs="?",
                        help="scenario name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available scenarios and exit")
    parser.add_argument("--engine", choices=("fast", "ref"), default="fast",
                        help="interpreter engine (default fast)")
    parser.add_argument("--until", type=float,
                        help="horizon override in simulated seconds")
    parser.add_argument("--top", type=int, default=20,
                        help="rows per table (default 20)")
    parser.add_argument("--collapsed", metavar="PATH",
                        help="write a Brendan Gregg collapsed-stack file "
                             "(weights in pJ)")
    parser.add_argument("--speedscope", metavar="PATH",
                        help="write a speedscope JSON profile")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full repro.obs.energy/1 report")
    parser.add_argument("--lines", action="store_true",
                        help="print the per-source-line table")
    parser.add_argument("--layers", action="store_true",
                        help="print the per-layer table")
    parser.add_argument("--packets", action="store_true",
                        help="print the per-packet cost table")
    parser.add_argument("--lifetime", action="store_true",
                        help="project battery lifetime (needs --capacity)")
    parser.add_argument("--capacity", type=float,
                        help="battery capacity in joules per node")
    parser.add_argument("--budget", action="append", metavar="NODE=J",
                        default=[],
                        help="arm the watchdog energy_budget invariant "
                             "(repeatable)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="reconciliation gate on each view's residual "
                             "fraction (default %g)" % DEFAULT_TOLERANCE)
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the stdout report")
    parser.add_argument("--self-test", action="store_true",
                        help="perturb one handler's instruction energy and "
                             "verify the delta localizes to the right "
                             "source line and layer")
    parser.add_argument("--demo-budget", action="store_true",
                        help="run the budget-watchdog demo (trips the "
                             "energy_budget invariant on purpose)")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(scenarios()):
            print(name)
        return 0
    if args.self_test:
        return _run_self_test(args)
    if args.demo_budget:
        return demo_budget()
    if not args.scenario:
        parser.error("a scenario is required "
                     "(or --list / --self-test / --demo-budget)")
    if args.scenario not in scenarios():
        print("snap-energy: error: unknown scenario %r (have: %s)"
              % (args.scenario, ", ".join(sorted(scenarios()))),
              file=sys.stderr)
        return 2
    if args.lifetime and args.capacity is None:
        parser.error("--lifetime needs --capacity (joules per node)")

    budgets = {}
    for spec in args.budget:
        name, _, joules = spec.partition("=")
        try:
            budgets[name] = float(joules)
        except ValueError:
            parser.error("bad --budget %r (want NODE=JOULES)" % spec)

    from repro.obs.watchdog import InvariantViolation

    try:
        obs, sim, sampler, watchdog = run_scenario(
            args.scenario, fast_path=args.engine == "fast",
            until=args.until,
            capacity=args.capacity if args.lifetime else None,
            budgets=budgets)
    except InvariantViolation as violation:
        print("snap-energy: %s" % violation, file=sys.stderr)
        return 1

    ledger = obs.energy
    report = build_report(ledger, sampler=sampler,
                          capacity=args.capacity if args.lifetime else None,
                          top=args.top)
    if args.collapsed:
        with open(args.collapsed, "w") as handle:
            handle.write(ledger.collapsed_stack())
    if args.speedscope:
        with open(args.speedscope, "w") as handle:
            json.dump(ledger.speedscope(name=args.scenario), handle,
                      indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True, default=str)
    if not args.quiet:
        _print_report(args, ledger, report)

    failures = _check_reconciliation(report, args.tolerance)
    if failures:
        for failure in failures:
            print("snap-energy: RECONCILIATION FAILED: %s" % failure,
                  file=sys.stderr)
        return 1
    return 0


def _run_self_test(args):
    ok, failures, details = self_test()
    if ok:
        hot = details["hottest_delta"]
        print("self-test: PASS -- perturbation localized to %s %s:%s "
              "(handler %s, layer %s, +%.3f nJ)"
              % (hot["function"], hot["file"], hot["line"], hot["handler"],
                 hot["layer"], hot["delta_j"] * 1e9))
        return 0
    print("self-test: FAIL", file=sys.stderr)
    for failure in failures:
        print("  - " + failure, file=sys.stderr)
    return 2


def _print_report(args, ledger, report):
    print("snap-energy: %s · %.3f nJ total · residuals "
          "lines %.3g%% / layers %.3g%% / packets %.3g%%"
          % (args.scenario, report["total_j"] * 1e9,
             report["lines"]["residual_frac"] * 100,
             report["layers"]["residual_frac"] * 100,
             report["packets"]["residual_frac"] * 100))
    wants_any = args.lines or args.layers or args.packets or args.lifetime
    if args.lines or not wants_any:
        print()
        print("-- hottest source lines --")
        for frame in report["lines"]["frames"][:args.top]:
            where = frame["function"]
            if frame["file"]:
                where = "%s %s:%s" % (frame["function"], frame["file"],
                                      frame["line"])
            print("  %-10s %-12s %-34s %10.3f nJ %8d hits"
                  % (frame["node"], frame["layer"], where,
                     frame["energy_j"] * 1e9, frame["count"]))
    if args.layers or not wants_any:
        print()
        print("-- energy by layer --")
        total = report["total_j"] or 1.0
        for layer, energy in sorted(report["layers"]["by_layer"].items(),
                                    key=lambda kv: -kv[1]):
            if energy:
                print("  %-12s %12.3f nJ  %6.2f%%"
                      % (layer, energy * 1e9, 100.0 * energy / total))
    if args.packets or not wants_any:
        rows = report["packets"]["rows"]
        if rows or args.packets:
            print()
            print("-- per-packet cost --")
            for row in rows[:args.top]:
                print("  #%-3s %-10s %s->%s %s %d hops %10.3f nJ "
                      "(radio %.3f + cpu %.3f)"
                      % (row["journey"], row["kind"], row["origin"],
                         row["destination"],
                         "ok" if row["delivered"] else "lost",
                         row["hops"], row["total_j"] * 1e9,
                         row["radio_j"] * 1e9, row["cpu_j"] * 1e9))
            non_packet = report["packets"]["non_packet"]
            print("  (non-packet) cpu %.3f nJ · idle-sleep %.3f nJ · "
                  "radio idle %.3f nJ"
                  % (non_packet["cpu_j"] * 1e9,
                     non_packet["idle_sleep_j"] * 1e9,
                     non_packet["radio_idle_j"] * 1e9))
    lifetime = report.get("lifetime")
    if lifetime:
        print()
        print("-- battery lifetime (capacity %g J) --" % args.capacity)
        for node, row in sorted(lifetime["nodes"].items()):
            print("  %-10s %.3e W mean · linear %s · drain-curve %s"
                  % (node, row["mean_power_w"],
                     _fmt_eta(row["linear_s"]), _fmt_eta(row["drain_s"])))
        print("  network partition (first death: %s) at %s"
              % (lifetime["first_death"],
                 _fmt_eta(lifetime["partition_s"])))


def _fmt_eta(seconds):
    if seconds is None or not math.isfinite(seconds):
        return "never"
    if seconds >= 86400:
        return "%.1f days" % (seconds / 86400.0)
    if seconds >= 3600:
        return "%.1f hours" % (seconds / 3600.0)
    return "%.1f s" % seconds


if __name__ == "__main__":
    sys.exit(main())
