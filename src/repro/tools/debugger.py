"""An execution debugger for the simulated SNAP/LE core.

Supports breakpoints on IMEM addresses (or linked symbols), watchpoints
on DMEM words, single-stepping by instruction, and state inspection.
The debugger hooks the processor's trace callback and drives the
simulation kernel one event at a time, so coprocessors and devices keep
running between stops exactly as they would in a plain run.
"""

from dataclasses import dataclass
from typing import Optional


@dataclass
class StopInfo:
    """Why and where the debugger stopped."""

    reason: str          # 'breakpoint', 'watchpoint', 'step', 'done'
    pc: int
    time: float
    detail: Optional[str] = None


class Debugger:
    """Wraps a :class:`~repro.core.SnapProcessor` with debug control."""

    def __init__(self, processor, program=None):
        self.processor = processor
        #: The linked program, for symbol breakpoints and :meth:`where`;
        #: defaults to whatever the processor last loaded.
        self.program = program if program is not None \
            else getattr(processor, "program", None)
        self._breakpoints = set()
        self._watchpoints = {}
        self._instructions_seen = 0
        self._step_target = None
        self._stop = None
        self._installed_trace = processor.config.trace_fn
        self._attached = True
        processor.config.trace_fn = self._trace
        self.last_pc = None
        self.last_instruction = None

    def detach(self):
        """Stop debugging: restore the trace callback that was installed
        before this debugger hooked the processor.

        Idempotent.  Without this, a discarded debugger would keep
        intercepting (and paying for) every retired instruction and the
        original ``config.trace_fn`` would be lost for good.
        """
        if self._attached:
            self.processor.config.trace_fn = self._installed_trace
            self._attached = False

    # -- breakpoints and watchpoints ------------------------------------------

    def _resolve(self, location):
        if isinstance(location, str):
            if self.program is None:
                raise ValueError("symbol breakpoints need the linked program")
            return self.program.address_of(location)
        return int(location)

    def add_breakpoint(self, location):
        """Break before executing the instruction at an address/symbol."""
        self._breakpoints.add(self._resolve(location))

    def remove_breakpoint(self, location):
        self._breakpoints.discard(self._resolve(location))

    def add_watchpoint(self, address):
        """Break after any instruction that changes ``DMEM[address]``."""
        self._watchpoints[address] = self.processor.dmem.peek(address)

    def remove_watchpoint(self, address):
        self._watchpoints.pop(address, None)

    # -- execution control ---------------------------------------------------------

    def step(self, count=1, max_kernel_events=100000):
        """Execute *count* instructions (running through sleeps)."""
        self._step_target = self._instructions_seen + count
        return self._drive(max_kernel_events)

    def cont(self, max_kernel_events=1000000):
        """Run until a breakpoint/watchpoint or the simulation drains."""
        self._step_target = None
        return self._drive(max_kernel_events)

    def _drive(self, max_kernel_events):
        if self.processor.mode.value == "reset":
            self.processor.start()
        self._stop = None
        for _ in range(max_kernel_events):
            if not self.processor.kernel.step():
                return StopInfo(reason="done", pc=self.processor.pc,
                                time=self.processor.kernel.now)
            hit = self._check_watchpoints()
            if hit is not None:
                return hit
            if self._stop is not None:
                return self._stop
        raise RuntimeError("debugger exceeded its kernel-event budget")

    def _trace(self, processor, time, pc, instruction):
        self.last_pc = pc
        self.last_instruction = instruction
        self._instructions_seen += 1
        if self._installed_trace is not None:
            self._installed_trace(processor, time, pc, instruction)
        if pc in self._breakpoints:
            self._stop = StopInfo(reason="breakpoint", pc=pc, time=time,
                                  detail=instruction.text())
        elif (self._step_target is not None
              and self._instructions_seen >= self._step_target):
            self._stop = StopInfo(reason="step", pc=pc, time=time,
                                  detail=instruction.text())

    def _check_watchpoints(self):
        for address, old_value in list(self._watchpoints.items()):
            new_value = self.processor.dmem.peek(address)
            if new_value != old_value:
                self._watchpoints[address] = new_value
                return StopInfo(
                    reason="watchpoint", pc=self.processor.pc,
                    time=self.processor.kernel.now,
                    detail="dmem[0x%04x]: 0x%04x -> 0x%04x"
                           % (address, old_value, new_value))
        return None

    # -- inspection -------------------------------------------------------------------

    def registers(self):
        """Current register file contents (r0..r14) plus pc and carry."""
        state = {("r%d" % index): self.processor.regs.peek(index)
                 for index in range(15)}
        state["pc"] = self.processor.pc
        state["carry"] = self.processor.carry
        return state

    def where(self, pc=None):
        """Symbolicate *pc* (default: current) through the program's
        line table; ``None`` without a program."""
        if self.program is None:
            return None
        return self.program.lookup(self.processor.pc if pc is None else pc)

    def disassemble_at(self, address, count=8):
        """Disassemble *count* instructions starting at an IMEM address."""
        from repro.isa import disassemble_words
        words = self.processor.imem.dump(address,
                                         min(2 * count,
                                             self.processor.imem.size_words
                                             - address))
        return disassemble_words(words, base=address)[:count]
