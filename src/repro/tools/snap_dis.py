"""``snap-dis``: disassemble a program image.

Usage::

    python -m repro.tools.snap_dis image.hex
"""

import argparse
import sys

from repro.isa import disassemble_words
from repro.tools.hexfile import load_words


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="snap-dis", description="Disassemble a SNAP program image.")
    parser.add_argument("image", help="hex image file")
    parser.add_argument("--data", action="store_true",
                        help="also dump the data section")
    args = parser.parse_args(argv)
    try:
        with open(args.image) as handle:
            imem, dmem = load_words(handle.read())
    except OSError as error:
        print("snap-dis: %s" % error, file=sys.stderr)
        return 1
    for line in disassemble_words(imem):
        print(line)
    if args.data and dmem:
        print("\n; data section")
        for address, word in enumerate(dmem):
            print("%04x:  .word 0x%04x" % (address, word))
    return 0


if __name__ == "__main__":
    sys.exit(main())
