"""``snap-flight``: inspect and replay flight-recorder crash bundles.

A crash bundle is the JSON post-mortem the
:class:`~repro.obs.Blackbox` facade writes when a simulation faults
(see :mod:`repro.obs.postmortem` for the schema).  This CLI renders a
bundle for humans, replays its disassembly tail, and can generate a
bundle on demand by running a deliberately faulting guest program --
the end-to-end smoke the CI job runs.

Usage::

    snap-flight inspect crash-bundles/crash.json
    snap-flight replay-tail crash-bundles/crash.json --node node0.cpu
    snap-flight replay-tail crash-bundles/crash.json --replay
    snap-flight demo-crash --out /tmp/demo --mode fault
"""

import argparse
import json
import sys

DEMO_MODES = ("fault", "invariant", "leak")

#: The deliberately buggy guest the demo crash runs: on its third timer
#: tick it stores through a pointer far outside the 2048-word DMEM.
DEMO_CRASH_C = """\
int ticks;

void arm() { __schedlo(0, 200); }

void init() { ticks = 0; arm(); }

__handler void on_timer() {
    ticks = ticks + 1;
    if (ticks == 3) {
        int *p;
        p = 6000;
        *p = 1;
    }
    arm();
}
"""


def _load_bundle(path):
    with open(path) as handle:
        return json.load(handle)


def cmd_inspect(args):
    """Render a bundle's Markdown report to stdout."""
    from repro.obs.postmortem import render_markdown
    print(render_markdown(_load_bundle(args.bundle)))
    return 0


def cmd_replay_tail(args):
    """Print the recorded instruction tail, one line per instruction.

    With ``--replay``, also restore the bundle's embedded checkpoint and
    re-run the simulation tail up to the crash time, verifying that the
    restored run reproduces the bundle's final per-node state exactly
    (mode, pc, registers, meter) -- deterministic replay without
    rerunning from t=0.
    """
    bundle = _load_bundle(args.bundle)
    if args.replay:
        status = _replay_from_checkpoint(bundle)
        if status:
            return status
        print()
    disassembly = bundle.get("disassembly") or {}
    if not disassembly:
        print("snap-flight: bundle has no recorded instructions",
              file=sys.stderr)
        return 1
    nodes = [args.node] if args.node else sorted(disassembly)
    for name in nodes:
        tail = disassembly.get(name)
        if tail is None:
            print("snap-flight: no tail for node %r (have: %s)"
                  % (name, ", ".join(sorted(disassembly))), file=sys.stderr)
            return 1
        print("== %s: last %d instructions ==" % (name, len(tail)))
        for record in tail[-args.tail:] if args.tail else tail:
            source = record.get("source") or {}
            where = ""
            if source.get("file") is not None:
                where = "  ; %s:%s" % (source["file"], source["line"])
                if source.get("function"):
                    where += " (%s)" % source["function"]
            rd = ""
            if "rd" in record:
                rd = "  r%d=0x%04x" % (record["rd"],
                                       record["rd_value"] or 0)
            print("%12.9f  %04x  %-20s %-10s%s%s"
                  % (record["time"], record["pc"], record["mnemonic"],
                     record["handler"], rd, where))
    return 0


def _replay_from_checkpoint(bundle):
    """Restore a bundle's embedded checkpoint and re-run to the crash.

    Compares the replayed per-node state (mode, pc, registers, carry,
    meter, event queue, low DMEM) against the bundle's recorded state;
    any divergence is a determinism bug.  Returns 0 on an exact match.
    """
    from repro.core.exceptions import SimulationError
    from repro.node.node import SensorNode
    from repro.obs.postmortem import _processor_state
    from repro.sim.checkpoint import Checkpoint, restore

    data = bundle.get("checkpoint")
    if not data:
        print("snap-flight: bundle has no embedded checkpoint "
              "(Blackbox(checkpoint_every=...) was not enabled)",
              file=sys.stderr)
        return 1
    crash_time = bundle["time_s"]
    sim = restore(Checkpoint(data))
    print("replay       : checkpoint t=%.6f s -> crash t=%.6f s"
          % (data["time_s"], crash_time))
    reproduced = None
    try:
        sim.kernel.run(until=crash_time)
    except SimulationError as error:
        reproduced = error
    if reproduced is not None:
        print("reproduced   : %s: %s"
              % (type(reproduced).__name__, reproduced))
    elif bundle.get("reason") == "guest_fault":
        print("snap-flight: replay reached t=%.6f s without the "
              "recorded guest fault" % crash_time, file=sys.stderr)
        return 1

    nodes = [sim] if isinstance(sim, SensorNode) \
        else list(sim.nodes.values())
    divergent = 0
    for node in nodes:
        name = node.processor.name
        recorded = dict(bundle.get("nodes", {}).get(name) or {})
        if not recorded:
            continue
        # Symbolication is not part of a checkpoint (raw memory images
        # carry no line table), so source locations are not compared.
        recorded.pop("pc_source", None)
        replayed = _processor_state(node.processor, None)
        if replayed == recorded:
            print("replayed     : %s state matches the bundle" % name)
        else:
            divergent += 1
            keys = [key for key in set(recorded) | set(replayed)
                    if recorded.get(key) != replayed.get(key)]
            print("snap-flight: %s diverged from the bundle in: %s"
                  % (name, ", ".join(sorted(keys))), file=sys.stderr)
    if divergent:
        return 1
    return 0


def cmd_demo_crash(args):
    """Build a faulting guest, run it under the blackbox, dump the bundle.

    ``--mode fault`` crashes the guest itself (out-of-DMEM store);
    ``--mode invariant`` perturbs the energy meter so the watchdog's
    conservation check trips; ``--mode leak`` corrupts a kernel heap
    entry so the heap-liveness check trips.
    """
    from repro.cc.compiler import build_c_node
    from repro.isa.events import Event
    from repro.node.node import SensorNode
    from repro.obs import Blackbox, InvariantViolation
    from repro.core.exceptions import SimulationError

    program = build_c_node(DEMO_CRASH_C,
                           handlers={Event.TIMER0: "on_timer"},
                           source_name="crash.c")
    node = SensorNode(node_id=0)
    node.load(program)
    # Checkpoints at 250/500 us; the guest faults on its third 200 us
    # tick, so the bundle embeds a 500 us snapshot 100 us before the
    # crash -- the tail that ``replay-tail --replay`` re-runs.
    box = Blackbox(bundle_dir=args.out, watchdog_interval=1e-4,
                   checkpoint_every=2.5e-4)
    box.observe(node)

    if args.mode == "invariant":
        # Let the guest run a little, then corrupt the meter total: the
        # watchdog's next energy-conservation check must catch it.
        node.kernel.schedule(
            3e-4, lambda: setattr(node.meter, "total_energy",
                                  node.meter.total_energy + 1e-9))
    elif args.mode == "leak":
        # Null a live heap entry without dropping its index -- the
        # "leaked cancel" bug class the heap-liveness invariant exists
        # for.  (Skip the watchdog's own pending check, which would
        # disarm the very detector this mode demonstrates.)
        def leak():
            for handle, entry in node.kernel._live.items():
                if handle != box.watchdog._handle:
                    entry[2] = None
                    return
        node.kernel.schedule(3e-4, leak)

    try:
        box.run(node, until=1.0)
    except (SimulationError, InvariantViolation) as error:
        json_path, md_path = error.crash_bundle_paths
        print("crash        : %s: %s" % (type(error).__name__, error))
        print("bundle       : %s" % json_path)
        print("report       : %s" % md_path)
        checkpoint = error.crash_bundle.get("checkpoint")
        if checkpoint:
            print("checkpoint   : embedded, t=%.6f s"
                  % checkpoint["time_s"])
        tail = (error.crash_bundle.get("disassembly") or {}).get(
            node.processor.name) or []
        symbolicated = [record for record in tail
                        if (record.get("source") or {}).get("file")]
        if symbolicated:
            last = symbolicated[-1]
            print("last C line  : %s:%s (%s) at pc=0x%04x"
                  % (last["source"]["file"], last["source"]["line"],
                     last["source"]["function"], last["pc"]))
        return 0
    print("snap-flight: demo guest did not crash", file=sys.stderr)
    return 1


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="snap-flight",
        description="Inspect, replay, and demo flight-recorder crash "
                    "bundles.")
    # Top-level --demo-crash is a convenience spelling of the
    # ``demo-crash`` subcommand (handy in CI one-liners).
    parser.add_argument("--demo-crash", action="store_true",
                        help="run the demo faulting guest and write a "
                             "bundle (same as the demo-crash subcommand)")
    parser.add_argument("--out", default="crash-bundles",
                        help="bundle output directory (default "
                             "crash-bundles)")
    parser.add_argument("--mode", choices=DEMO_MODES, default="fault",
                        help="demo failure: guest fault, meter invariant, "
                             "or leaked kernel handle (default fault)")
    sub = parser.add_subparsers(dest="command")

    inspect = sub.add_parser("inspect",
                             help="render a bundle as Markdown")
    inspect.add_argument("bundle", help="path to crash.json")

    replay = sub.add_parser("replay-tail",
                            help="print the recorded instruction tail")
    replay.add_argument("bundle", help="path to crash.json")
    replay.add_argument("--node", default=None,
                        help="only this node's tail")
    replay.add_argument("--tail", type=int, default=None, metavar="N",
                        help="only the last N instructions")
    replay.add_argument("--replay", action="store_true",
                        help="restore the bundle's embedded checkpoint "
                             "and re-run the tail up to the crash, "
                             "verifying the final state matches")

    demo = sub.add_parser("demo-crash",
                          help="run a deliberately faulting guest and "
                               "write its bundle")
    demo.add_argument("--out", default="crash-bundles")
    demo.add_argument("--mode", choices=DEMO_MODES, default="fault")

    args = parser.parse_args(argv)
    if args.command == "inspect":
        return cmd_inspect(args)
    if args.command == "replay-tail":
        return cmd_replay_tail(args)
    if args.command == "demo-crash" or args.demo_crash:
        return cmd_demo_crash(args)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
