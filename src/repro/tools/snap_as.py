"""``snap-as``: assemble and link SNAP assembly sources.

Usage::

    python -m repro.tools.snap_as boot.s mac.s app.s -o image.hex
"""

import argparse
import sys

from repro.asm import AsmError, LinkError, assemble, link
from repro.tools.hexfile import dump_program


def build_parser():
    parser = argparse.ArgumentParser(
        prog="snap-as",
        description="Assemble and link SNAP assembly into a program image.")
    parser.add_argument("sources", nargs="+", help="assembly source files")
    parser.add_argument("-o", "--output", default=None,
                        help="output image (default: stdout)")
    parser.add_argument("--listing", action="store_true",
                        help="print a disassembly listing instead")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    modules = []
    try:
        for path in args.sources:
            with open(path) as handle:
                modules.append(assemble(handle.read(), name=path))
        program = link(modules)
    except (AsmError, LinkError, OSError) as error:
        print("snap-as: %s" % error, file=sys.stderr)
        return 1
    if args.listing:
        from repro.isa import disassemble_words
        output = "\n".join(disassemble_words(program.imem)) + "\n"
    else:
        output = dump_program(program)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
        print("snap-as: wrote %s (%d text words, %d data words)"
              % (args.output, len(program.imem), len(program.dmem)))
    else:
        sys.stdout.write(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
