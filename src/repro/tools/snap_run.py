"""``snap-run``: execute a program on the simulated SNAP/LE core.

Accepts either assembly sources (assembled on the fly) or a ``.hex``
image.  Prints the run's statistics; optionally an instruction trace.

The run executes on a full :class:`~repro.node.SensorNode` (core plus
radio, LED port, and coprocessors), so it can be frozen mid-flight:
``--checkpoint-every`` writes a :mod:`repro.sim.checkpoint` snapshot on
a fixed simulated period, and ``--resume`` picks a saved checkpoint
back up and continues bit-identically -- the resumed run's meters match
an uninterrupted run exactly.

Long runs can be watched live: ``--progress`` prints a heartbeat line
(simulated time, wall time, events/s, ETA) to stderr, ``--telemetry
PATH`` records the full ``repro.obs.telemetry/1`` NDJSON stream (``-``
for stdout), and ``--telemetry-port N`` serves the stream on a
localhost socket that any number of ``snap-top`` dashboards can attach
to and detach from mid-run without perturbing the simulation.

Usage::

    python -m repro.tools.snap_run program.s --voltage 0.6 --until 1e-3
    python -m repro.tools.snap_run image.hex --trace --max-trace 50
    python -m repro.tools.snap_run app.s --until 2.0 \
        --checkpoint-every 0.5 --checkpoint-path app.ckpt.json
    python -m repro.tools.snap_run --resume app.ckpt.json --until 2.0
    python -m repro.tools.snap_run app.s --until 60 --progress \
        --telemetry-port 9317        # then: snap-top --connect :9317
"""

import argparse
import sys

from repro.asm import AsmError, LinkError, assemble, link
from repro.core import CoreConfig, SimulationError
from repro.core.trace import Tracer
from repro.node import SensorNode
from repro.sim.checkpoint import Checkpoint, CheckpointError, capture
from repro.tools.hexfile import load_words

DEFAULT_CHECKPOINT_PATH = "snap-run.ckpt.json"

DEFAULT_TELEMETRY_INTERVAL = 0.05


def _progress_printer(stream=None):
    """A heartbeat-line callback for the telemetry exporter's
    ``progress`` records: one updating line on a tty, one line per
    heartbeat otherwise."""
    stream = stream if stream is not None else sys.stderr
    tty = stream.isatty() if hasattr(stream, "isatty") else False

    def emit(record):
        parts = []
        done = record.get("done")
        if done is not None:
            parts.append("%3d%%" % round(done * 100))
        parts.append("sim %.3fs" % record["sim_s"])
        parts.append("wall %.1fs" % record["wall_s"])
        rate = record.get("events_s") or 0.0
        parts.append("%.0f ev/s" % rate if rate < 1e4
                     else "%.0fk ev/s" % (rate / 1e3))
        eta = record.get("eta_s")
        if eta is not None:
            parts.append("eta %.1fs" % eta)
        line = "snap-run: " + " | ".join(parts)
        if tty:
            stream.write("\r" + line + "\x1b[K")
        else:
            stream.write(line + "\n")
        stream.flush()

    emit.finish = lambda: (stream.write("\n"), stream.flush()) if tty \
        else None
    return emit


def _build_exporter(node, args):
    """Arm a telemetry exporter per the --telemetry*/--progress flags;
    returns ``None`` when none were given."""
    if not (args.telemetry or args.telemetry_port is not None
            or args.progress):
        return None
    from repro.obs.telemetry import TelemetryExporter
    from repro.obs.transports import (
        NullTransport,
        SocketServerTransport,
        StreamTransport,
    )

    if args.telemetry == "-":
        transport = StreamTransport()
    elif args.telemetry:
        transport = args.telemetry        # path: exporter opens the file
    elif args.telemetry_port is not None:
        transport = SocketServerTransport(port=args.telemetry_port)
        print("telemetry    : serving %s on %s"
              % ("repro.obs.telemetry/1", transport.address),
              file=sys.stderr)
    else:
        transport = NullTransport()
    on_progress = _progress_printer() if args.progress else None
    exporter = TelemetryExporter.for_node(
        node, transport, interval=args.telemetry_interval,
        on_progress=on_progress)
    exporter.start(horizon=args.until)
    return exporter


def load_program(paths):
    """Link assembled ``.s`` inputs into a :class:`~repro.asm.Program`.

    Returns ``None`` for a ``.hex`` image -- raw word dumps carry no
    symbols or line table, so there is nothing to symbolicate.
    """
    if len(paths) == 1 and paths[0].endswith(".hex"):
        return None
    modules = []
    for path in paths:
        with open(path) as handle:
            modules.append(assemble(handle.read(), name=path))
    return link(modules)


def load_program_words(paths):
    """Return (imem, dmem) from .hex or assembled .s inputs."""
    program = load_program(paths)
    if program is None:
        with open(paths[0]) as handle:
            return load_words(handle.read())
    return program.imem, program.dmem


def _build_node(args):
    imem, dmem = load_program_words(args.inputs)
    node = SensorNode(config=CoreConfig(
        voltage=args.voltage,
        max_instructions=args.max_instructions))
    node.processor.imem.load_image(imem)
    node.processor.dmem.load_image(dmem)
    node.loaded = True
    return node


def _resume_node(args):
    checkpoint = Checkpoint.load(args.resume)
    if checkpoint.kind != "node":
        raise CheckpointError(
            "%s is a %r checkpoint; snap-run resumes single-node "
            "checkpoints (use NetworkSimulator.from_checkpoint for "
            "networks)" % (args.resume, checkpoint.kind))
    return checkpoint.restore()


def _run(node, args, checkpoint_path):
    """Drive the node to ``--until``, checkpointing on the period."""
    processor = node.processor
    if args.checkpoint_every:
        horizon = args.until
        while True:
            boundary = min(processor.kernel.now + args.checkpoint_every,
                           horizon)
            meter = processor.run(until=boundary)
            capture(node).save(checkpoint_path)
            print("checkpoint   : t=%.6f s -> %s"
                  % (processor.kernel.now, checkpoint_path))
            if processor.kernel.now >= horizon:
                return meter
    meter = processor.run(until=args.until)
    if checkpoint_path:
        capture(node).save(checkpoint_path)
        print("checkpoint   : t=%.6f s -> %s"
              % (processor.kernel.now, checkpoint_path))
    return meter


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="snap-run",
        description="Run a SNAP program on the simulated SNAP/LE core.")
    parser.add_argument("inputs", nargs="*",
                        help="assembly sources or one .hex image")
    parser.add_argument("--voltage", type=float, default=0.6,
                        help="supply voltage (default 0.6)")
    parser.add_argument("--until", type=float, default=None,
                        help="simulated seconds to run (default: to sleep)")
    parser.add_argument("--max-instructions", type=int, default=1_000_000)
    parser.add_argument("--trace", action="store_true",
                        help="print an instruction trace")
    parser.add_argument("--max-trace", type=int, default=100,
                        help="trace lines to keep (default 100)")
    parser.add_argument("--dump-dmem", type=int, default=8, metavar="N",
                        help="print the first N data words after the run")
    parser.add_argument("--checkpoint-every", type=float, metavar="SECONDS",
                        help="write a checkpoint every SECONDS of simulated "
                        "time (requires --until)")
    parser.add_argument("--checkpoint-path", metavar="PATH",
                        help="where to write checkpoints (default %s); "
                        "without --checkpoint-every, one checkpoint is "
                        "written at the end of the run"
                        % DEFAULT_CHECKPOINT_PATH)
    parser.add_argument("--resume", metavar="CHECKPOINT",
                        help="resume from a saved checkpoint instead of "
                        "loading a program")
    telemetry = parser.add_mutually_exclusive_group()
    telemetry.add_argument("--telemetry", metavar="PATH",
                           help="stream repro.obs.telemetry/1 NDJSON to "
                           "PATH ('-' for stdout)")
    telemetry.add_argument("--telemetry-port", type=int, metavar="N",
                           help="serve the telemetry stream on localhost "
                           "TCP port N (0 picks a free port) for snap-top")
    parser.add_argument("--telemetry-interval", type=float,
                        default=DEFAULT_TELEMETRY_INTERVAL, metavar="S",
                        help="telemetry flush cadence in simulated seconds "
                        "(default %(default)s)")
    parser.add_argument("--progress", action="store_true",
                        help="print a heartbeat line (sim time, wall time, "
                        "events/s, ETA) to stderr while running")
    args = parser.parse_args(argv)

    if bool(args.inputs) == bool(args.resume):
        parser.error("give either program inputs or --resume, not both")
    if args.checkpoint_every and args.until is None:
        parser.error("--checkpoint-every needs --until (a run horizon)")

    try:
        node = _resume_node(args) if args.resume else _build_node(args)
    except (AsmError, LinkError, CheckpointError, OSError,
            ValueError) as error:
        print("snap-run: %s" % error, file=sys.stderr)
        return 1

    tracer = None
    if args.trace:
        tracer = Tracer(limit=args.max_trace)
        node.processor.config.trace_fn = tracer

    checkpoint_path = args.checkpoint_path
    if args.checkpoint_every and not checkpoint_path:
        checkpoint_path = DEFAULT_CHECKPOINT_PATH

    exporter = _build_exporter(node, args)

    processor = node.processor
    resumed_at = processor.kernel.now
    try:
        meter = _run(node, args, checkpoint_path)
    except SimulationError as error:
        print("snap-run: %s" % error, file=sys.stderr)
        return 1
    finally:
        if exporter is not None:
            exporter.close()
            if args.progress and exporter.on_progress is not None:
                exporter.on_progress.finish()

    if tracer is not None:
        print(tracer.format())
        print()
    if args.resume:
        print("resumed      : %s (from t=%.6f s)" % (args.resume, resumed_at))
    print("state        : %s" % processor.mode.value)
    print("instructions : %d (%d cycles)" % (meter.instructions, meter.cycles))
    print("sim time     : %.6f s (busy %.6f s, idle %.6f s)"
          % (processor.kernel.now, meter.busy_time, meter.idle_time))
    print("energy       : %.3f nJ (%.1f pJ/ins)"
          % (meter.total_energy * 1e9, meter.energy_per_instruction * 1e12))
    print("wakeups      : %d" % meter.wakeups)
    if args.dump_dmem:
        words = processor.dmem.dump(0, args.dump_dmem)
        print("dmem[0:%d]   : %s"
              % (args.dump_dmem, " ".join("%04x" % word for word in words)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
