"""``snap-run``: execute a program on the simulated SNAP/LE core.

Accepts either assembly sources (assembled on the fly) or a ``.hex``
image.  Prints the run's statistics; optionally an instruction trace.

Usage::

    python -m repro.tools.snap_run program.s --voltage 0.6 --until 1e-3
    python -m repro.tools.snap_run image.hex --trace --max-trace 50
"""

import argparse
import sys

from repro.asm import AsmError, LinkError, assemble, link
from repro.core import CoreConfig, SimulationError, SnapProcessor
from repro.core.trace import Tracer
from repro.tools.hexfile import load_words


def load_program(paths):
    """Link assembled ``.s`` inputs into a :class:`~repro.asm.Program`.

    Returns ``None`` for a ``.hex`` image -- raw word dumps carry no
    symbols or line table, so there is nothing to symbolicate.
    """
    if len(paths) == 1 and paths[0].endswith(".hex"):
        return None
    modules = []
    for path in paths:
        with open(path) as handle:
            modules.append(assemble(handle.read(), name=path))
    return link(modules)


def load_program_words(paths):
    """Return (imem, dmem) from .hex or assembled .s inputs."""
    program = load_program(paths)
    if program is None:
        with open(paths[0]) as handle:
            return load_words(handle.read())
    return program.imem, program.dmem


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="snap-run",
        description="Run a SNAP program on the simulated SNAP/LE core.")
    parser.add_argument("inputs", nargs="+",
                        help="assembly sources or one .hex image")
    parser.add_argument("--voltage", type=float, default=0.6,
                        help="supply voltage (default 0.6)")
    parser.add_argument("--until", type=float, default=None,
                        help="simulated seconds to run (default: to sleep)")
    parser.add_argument("--max-instructions", type=int, default=1_000_000)
    parser.add_argument("--trace", action="store_true",
                        help="print an instruction trace")
    parser.add_argument("--max-trace", type=int, default=100,
                        help="trace lines to keep (default 100)")
    parser.add_argument("--dump-dmem", type=int, default=8, metavar="N",
                        help="print the first N data words after the run")
    args = parser.parse_args(argv)

    try:
        imem, dmem = load_program_words(args.inputs)
    except (AsmError, LinkError, OSError) as error:
        print("snap-run: %s" % error, file=sys.stderr)
        return 1

    tracer = Tracer(limit=args.max_trace) if args.trace else None
    processor = SnapProcessor(config=CoreConfig(
        voltage=args.voltage,
        max_instructions=args.max_instructions,
        trace_fn=tracer))
    processor.imem.load_image(imem)
    processor.dmem.load_image(dmem)

    try:
        meter = processor.run(until=args.until)
    except SimulationError as error:
        print("snap-run: %s" % error, file=sys.stderr)
        return 1

    if tracer is not None:
        print(tracer.format())
        print()
    print("state        : %s" % processor.mode.value)
    print("instructions : %d (%d cycles)" % (meter.instructions, meter.cycles))
    print("sim time     : %.6f s (busy %.6f s, idle %.6f s)"
          % (processor.kernel.now, meter.busy_time, meter.idle_time))
    print("energy       : %.3f nJ (%.1f pJ/ins)"
          % (meter.total_energy * 1e9, meter.energy_per_instruction * 1e12))
    print("wakeups      : %d" % meter.wakeups)
    if args.dump_dmem:
        words = processor.dmem.dump(0, args.dump_dmem)
        print("dmem[0:%d]   : %s"
              % (args.dump_dmem, " ".join("%04x" % word for word in words)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
