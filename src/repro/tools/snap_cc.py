"""``snap-cc``: compile C to SNAP assembly.

Usage::

    python -m repro.tools.snap_cc app.c -o app.s
"""

import argparse
import os
import sys

from repro.cc import CompileError, compile_c
from repro.cc.runtime import runtime_source


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="snap-cc",
        description="Compile a C source file to SNAP assembly "
                    "(unoptimized, like the paper's lcc port).")
    parser.add_argument("source", help="C source file")
    parser.add_argument("-o", "--output", default=None,
                        help="output assembly file (default: stdout)")
    parser.add_argument("--with-runtime", action="store_true",
                        help="append the mul/div runtime library")
    args = parser.parse_args(argv)
    try:
        with open(args.source) as handle:
            assembly = compile_c(handle.read(),
                                 filename=os.path.basename(args.source))
    except (CompileError, OSError) as error:
        print("snap-cc: %s" % error, file=sys.stderr)
        return 1
    if args.with_runtime:
        assembly += "\n" + runtime_source()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(assembly)
        print("snap-cc: wrote %s" % args.output)
    else:
        sys.stdout.write(assembly)
    return 0


if __name__ == "__main__":
    sys.exit(main())
