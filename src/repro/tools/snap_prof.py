"""``snap-prof``: run a program under full observability and print a
per-handler / per-PC energy and time profile.

Accepts the same inputs as ``snap-run`` (assembly sources or a ``.hex``
image).  On top of the run statistics it can stream the structured trace
to JSONL, export a Chrome ``chrome://tracing`` timeline, and dump the
metrics registry.

Usage::

    python -m repro.tools.snap_prof program.s --until 1e-3
    python -m repro.tools.snap_prof program.s --jsonl trace.jsonl \\
        --chrome trace.json --metrics --top 20
"""

import argparse
import json
import sys

from repro.asm import AsmError, LinkError
from repro.core import CoreConfig, SimulationError, SnapProcessor
from repro.obs import JsonlSink, MemorySink, Observability, write_chrome_trace
from repro.sensors.ports import LedPort
from repro.tools.hexfile import load_words
from repro.tools.snap_run import load_program

#: Port identifier the library software writes LEDs to (matches
#: :data:`repro.node.node.LED_PORT_ID`).
LED_PORT_ID = 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="snap-prof",
        description="Profile a SNAP program: per-handler and per-PC time "
                    "and energy attribution, structured trace export, "
                    "metrics snapshot.")
    parser.add_argument("inputs", nargs="+",
                        help="assembly sources or one .hex image")
    parser.add_argument("--voltage", type=float, default=0.6,
                        help="supply voltage (default 0.6)")
    parser.add_argument("--until", type=float, default=None,
                        help="simulated seconds to run (default: to sleep)")
    parser.add_argument("--max-instructions", type=int, default=1_000_000)
    parser.add_argument("--top", type=int, default=10,
                        help="hot PCs to show (default 10)")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="stream the typed event trace to PATH (JSONL)")
    parser.add_argument("--chrome", metavar="PATH",
                        help="write a chrome://tracing timeline to PATH")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics registry snapshot as JSON")
    parser.add_argument("--sample-every", type=float, default=None,
                        metavar="SECONDS",
                        help="emit a cumulative energy sample every "
                             "SECONDS of simulated time")
    parser.add_argument("--buffer-limit", type=int, default=1_000_000,
                        help="in-memory trace ring size for the Chrome "
                             "export (default 1000000 events)")
    args = parser.parse_args(argv)

    try:
        program = load_program(args.inputs)
        if program is None:
            with open(args.inputs[0]) as handle:
                imem, dmem = load_words(handle.read())
    except (AsmError, LinkError, OSError) as error:
        print("snap-prof: %s" % error, file=sys.stderr)
        return 1

    obs = Observability(profile=True)
    memory = obs.bus.attach(MemorySink(limit=args.buffer_limit))
    jsonl = None
    if args.jsonl:
        jsonl = obs.bus.attach(JsonlSink(args.jsonl))

    processor = SnapProcessor(config=CoreConfig(
        voltage=args.voltage, max_instructions=args.max_instructions))
    if program is not None:
        processor.load(program)
    else:
        processor.imem.load_image(imem)
        processor.dmem.load_image(dmem)
    # Handler workloads (blink and friends) write the LED port; attach
    # the standard one so they profile without a full SensorNode.
    processor.mcp.attach_port(LED_PORT_ID, LedPort())
    processor.attach_observability(obs)

    if args.sample_every:
        def sample():
            obs.energy_sample(processor.name, processor.kernel.now,
                              processor.meter.total_energy,
                              processor.meter.instructions)
            if not processor.halted:
                processor.kernel.schedule(args.sample_every, sample)
        processor.kernel.schedule(args.sample_every, sample)

    try:
        meter = processor.run(until=args.until)
        # Final cumulative sample so the trace always ends with totals.
        obs.energy_sample(processor.name, processor.kernel.now,
                          meter.total_energy, meter.instructions)
    except SimulationError as error:
        print("snap-prof: %s" % error, file=sys.stderr)
        return 1
    finally:
        if jsonl is not None:
            jsonl.close()

    print("state        : %s" % processor.mode.value)
    print("sim time     : %.6f s (busy %.6f s, idle %.6f s)"
          % (processor.kernel.now, meter.busy_time, meter.idle_time))
    print("energy       : %.3f nJ total (%.1f pJ/ins), %d wakeups"
          % (meter.total_energy * 1e9,
             meter.energy_per_instruction * 1e12, meter.wakeups))
    profiled, metered = obs.profiler.reconcile(meter)
    print("attribution  : profiled %.3f nJ vs metered %.3f nJ "
          "(non-instruction: %.3f nJ wakeup+token+idle)"
          % (profiled * 1e9, metered * 1e9,
             (meter.total_energy - metered) * 1e9))
    print()
    print(obs.profiler.report(top=args.top, program=program))

    if args.metrics:
        print()
        print(json.dumps(obs.metrics.snapshot(), indent=2))

    if args.jsonl:
        print()
        print("jsonl trace  : %s (%d events)" % (args.jsonl, jsonl.count))
    if args.chrome:
        write_chrome_trace(memory.events, args.chrome)
        print("chrome trace : %s (%d events; open in chrome://tracing)"
              % (args.chrome, len(memory)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
