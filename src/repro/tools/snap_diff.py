"""``snap-diff``: localize and explain the difference between two runs.

Point it at any two of: a recorded JSONL trace stream, a saved
checkpoint file (``repro.sim.checkpoint/1``, replayed to ``--until``),
or a built-in differential scenario (``scenario:NAME[:fast|ref]``).
The tool aligns the two typed trace streams, localizes the first
divergent record (node, handler, symbolicated PC, flight-recorder tails
from both sides), and renders the structured cross-run comparison --
per-handler/per-PC energy and time deltas, packet-flow changes,
metrics-registry diffs -- as Markdown and/or a ``repro.obs.diff/1``
JSON report.

Exit codes follow ``diff(1)``: 0 when the runs are identical, 1 when
they diverge, 2 on trouble.

Examples::

    # the two engines must be bit-identical
    snap-diff scenario:convergecast:fast scenario:convergecast:ref

    # two recorded voltage runs: align structure, report energy deltas
    snap-diff run_1v8.jsonl run_0v6.jsonl --mode stable --markdown d.md

    # bisect a checkpointable pair down to the divergent time window
    snap-diff scenario:sti:fast scenario:sti:ref --bisect

    # prove the localization machinery end to end (CI gate)
    snap-diff --self-test
"""

import argparse
import json
import sys

from repro.obs.diff import (
    ALIGN_MODES,
    Bisector,
    DiffError,
    Divergence,
    capture_from_checkpoint,
    capture_run,
    compare,
    load_trace,
    render_markdown,
    self_test,
)

TRACE_SUFFIXES = (".jsonl", ".ndjson")


def _scenario_spec(spec):
    """Parse ``scenario:NAME[:fast|ref]``; returns ``(name, fast_path)``."""
    from repro.sim.differential import SCENARIOS

    fields = spec.split(":")
    if len(fields) not in (2, 3):
        raise DiffError("bad scenario spec %r (want scenario:NAME[:fast|ref])"
                        % spec)
    name = fields[1]
    if name not in SCENARIOS:
        raise DiffError("unknown scenario %r (have: %s)"
                        % (name, ", ".join(SCENARIOS)))
    engine = fields[2] if len(fields) == 3 else "fast"
    if engine not in ("fast", "ref"):
        raise DiffError("bad engine %r in %r (want fast or ref)"
                        % (engine, spec))
    return name, engine == "fast"


def _sniff_checkpoint(path):
    from repro.sim.checkpoint import SCHEMA

    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as error:
        raise DiffError(str(error))
    except ValueError:
        return False
    return isinstance(payload, dict) and payload.get("schema") == SCHEMA


class RunSpec:
    """One resolved CLI run argument.

    ``builder`` is set for checkpointable inputs (scenarios and saved
    checkpoints) and returns a fresh ``(sim, horizon)`` -- the handle
    :class:`~repro.obs.diff.Bisector` needs; trace streams only
    ``load``.
    """

    def __init__(self, spec, until=None):
        self.spec = spec
        self.until = until
        self.builder = None
        if spec.startswith("scenario:"):
            from repro.sim.differential import SCENARIOS

            name, fast_path = _scenario_spec(spec)
            builder = SCENARIOS[name]

            def make():
                sim, horizon = builder(fast_path)
                return sim, until if until is not None else horizon

            self.builder = make
        elif spec.endswith(TRACE_SUFFIXES):
            self.kind = "trace"
        elif _sniff_checkpoint(spec):
            from repro.sim.checkpoint import Checkpoint, restore

            if until is None:
                raise DiffError("checkpoint input %r needs --until to know "
                                "how far to replay" % spec)

            def make():
                return restore(Checkpoint.load(spec)), until

            self.builder = make
        else:
            raise DiffError("cannot identify %r: not a scenario spec, a "
                            "%s trace, or a checkpoint file"
                            % (spec, "/".join(TRACE_SUFFIXES)))

    def load(self):
        """Capture this run fully (from time zero / the file)."""
        if self.builder is None:
            return load_trace(self.spec)
        sim, horizon = self.builder()
        return capture_run(sim, horizon, label=self.spec)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="snap-diff",
        description="divergence localization and cross-run comparison "
                    "for two simulation runs",
        epilog="runs: a .jsonl/.ndjson trace stream, a checkpoint file "
               "(with --until), or scenario:NAME[:fast|ref]")
    parser.add_argument("run_a", nargs="?", help="first run (baseline)")
    parser.add_argument("run_b", nargs="?", help="second run (subject)")
    parser.add_argument("--mode", choices=ALIGN_MODES, default="full",
                        help="alignment: 'full' compares every field "
                             "(bit-identity), 'stable' only the float-free "
                             "projection (intentionally different runs)")
    parser.add_argument("--until", type=float,
                        help="horizon override; required for checkpoint "
                             "inputs (replay target time)")
    parser.add_argument("--bisect", action="store_true",
                        help="bisect checkpoint snapshots to pin the "
                             "divergence window first (both runs must be "
                             "scenarios or checkpoints)")
    parser.add_argument("--max-probes", type=int, default=20,
                        help="bisection probe budget (default 20)")
    parser.add_argument("--tail", type=int, default=16,
                        help="flight-recorder tail length per side")
    parser.add_argument("--top", type=int, default=20,
                        help="rows per delta table")
    parser.add_argument("--json", metavar="PATH",
                        help="write the repro.obs.diff/1 report here")
    parser.add_argument("--markdown", metavar="PATH",
                        help="write the rendered Markdown report here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the stdout report (exit code only)")
    parser.add_argument("--self-test", action="store_true",
                        help="perturb the energy calibration and verify the "
                             "divergence localizes to the perturbed handler "
                             "and symbolicated PC")
    args = parser.parse_args(argv)

    try:
        if args.self_test:
            return _run_self_test(args)
        if not (args.run_a and args.run_b):
            parser.error("two runs required (or --self-test)")
        return _run_diff(args)
    except DiffError as error:
        print("snap-diff: error: %s" % error, file=sys.stderr)
        return 2


def _emit(args, report):
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    rendered = render_markdown(report, top=args.top)
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(rendered)
    if not args.quiet:
        print(rendered, end="")


def _run_self_test(args):
    ok, failures, report = self_test(bisect=args.bisect)
    if report is not None:
        _emit(args, report)
    if ok:
        print("self-test: PASS -- calibration perturbation localized to "
              "handler %r at the expected ld"
              % report["divergence"]["handler"])
        return 0
    print("self-test: FAIL", file=sys.stderr)
    for failure in failures:
        print("  - " + failure, file=sys.stderr)
    return 2


def _run_diff(args):
    spec_a = RunSpec(args.run_a, until=args.until)
    spec_b = RunSpec(args.run_b, until=args.until)

    if args.bisect:
        if spec_a.builder is None or spec_b.builder is None:
            raise DiffError("--bisect needs checkpointable runs on both "
                            "sides (scenarios or checkpoint files)")
        bisector = Bisector(spec_a.builder, spec_b.builder,
                            max_probes=args.max_probes)
        divergence, run_a, run_b = bisector.localize(
            mode=args.mode, tail=args.tail,
            label_a=args.run_a, label_b=args.run_b)
        if divergence is None:
            # No digest divergence: fall through to a plain full-run
            # comparison so the report still carries the aggregates.
            run_a, run_b = spec_a.load(), spec_b.load()
            report = compare(run_a, run_b, mode=args.mode,
                             tail=args.tail, top=args.top)
        else:
            report = compare(run_a, run_b, mode=args.mode,
                             tail=args.tail, top=args.top)
            report["divergence"] = divergence.to_dict()
            report["identical"] = False
    else:
        run_a, run_b = spec_a.load(), spec_b.load()
        report = compare(run_a, run_b, mode=args.mode,
                         tail=args.tail, top=args.top)

    _emit(args, report)
    if report["identical"]:
        return 0
    if not args.quiet:
        divergence = report["divergence"]
        print()
        print(Divergence(**divergence).describe())
    return 1


if __name__ == "__main__":
    sys.exit(main())
