"""The tool-chain's simple image file format.

A ``.hex`` image is line-oriented text: a header line per section
(``@text`` / ``@data``), then one 4-digit hex word per line.  Comments
start with ``#``.  Human-diffable, trivially parseable.
"""


def dump_program(program):
    """Serialize a linked :class:`~repro.asm.Program` to hex text."""
    lines = ["# SNAP program image",
             "# text %d words, data %d words"
             % (len(program.imem), len(program.dmem))]
    lines.append("@text")
    lines.extend("%04x" % word for word in program.imem)
    if program.dmem:
        lines.append("@data")
        lines.extend("%04x" % word for word in program.dmem)
    for name in sorted(program.symbols):
        if not name.startswith(("module", ".")) and ":" not in name:
            lines.append("# sym %s = 0x%04x" % (name, program.symbols[name]))
    return "\n".join(lines) + "\n"


def load_words(text):
    """Parse hex text back to ``(imem_words, dmem_words)``."""
    imem, dmem = [], []
    target = imem
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line == "@text":
            target = imem
        elif line == "@data":
            target = dmem
        else:
            target.append(int(line, 16) & 0xFFFF)
    return imem, dmem
