"""Developer tools: command-line front ends for the tool-chain and an
interactive debugger for programs running on the simulated core.

Command-line usage (module form)::

    python -m repro.tools.snap_as   program.s -o program.hex
    python -m repro.tools.snap_dis  program.hex
    python -m repro.tools.snap_cc   app.c -o app.s
    python -m repro.tools.snap_run  program.s --voltage 0.6 --until 1e-3
    python -m repro.tools.snap_prof program.s --jsonl t.jsonl --chrome t.json
"""

from repro.tools.debugger import Debugger

__all__ = ["Debugger"]
