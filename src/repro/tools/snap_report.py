"""``snap-report``: grade the reproduction against the paper's claims.

Runs the benchmark harness (``--run``, the default) or ingests existing
``BENCH_*.json`` dumps (``--results-dir``), grades every claim in the
registry (:mod:`repro.report.claims`), and emits:

* a Markdown scorecard (stdout, or ``--scorecard PATH``);
* the machine-readable ``BENCH_FIDELITY.json`` (``--json PATH``);
* the regenerated measured-column block for ``EXPERIMENTS.md``
  (``--experiments-block [PATH]``).

A separate mode, ``--trajectory DIR [DIR ...]``, aggregates the
``BENCH_*.json`` dumps of several results directories (the current run
plus archived ones, oldest first) into a cross-run trajectory table --
one row per metric, one column per run, with first-to-last movement --
and optionally the machine-readable ``repro.report.trajectory/1``
payload (``--trajectory-json PATH``).

With ``--baseline tests/goldens/fidelity_baseline.json`` the exit code
gates on *regressions* against the committed grades instead of absolute
failures, so a claim that has always been ``within_band`` does not fail
the build -- only movement does.

``--selftest-perturb FACTOR`` scales every energy-dimensioned
measurement by FACTOR before grading (simulating a mis-scaled
calibration) and *requires* the gate to fail -- the CI self-test that
proves the gate actually trips.

Usage::

    python -m repro.tools.snap_report --run --scorecard scorecard.md \\
        --json BENCH_FIDELITY.json --baseline tests/goldens/fidelity_baseline.json
    python -m repro.tools.snap_report --results-dir bench-results/
    python -m repro.tools.snap_report --run --selftest-perturb 1.4
    python -m repro.tools.snap_report --trajectory archive/run-01 \\
        archive/run-02 bench-results/ --trajectory-json trajectory.json

Exit codes: 0 gate passed, 1 gate failed (or self-test did not trip),
2 usage error.
"""

import argparse
import json
import sys

from repro.report.collect import (
    COLLECTORS,
    collect,
    load_results_dir,
    measurements_view,
    perturb_measurements,
)
from repro.report.evaluate import compare_to_baseline, evaluate
from repro.report.render import (
    experiments_block,
    markdown_scorecard,
    write_fidelity_json,
)


def _log(message):
    print("snap-report: %s" % message, file=sys.stderr)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="snap-report",
        description="Grade the reproduction's benchmark results against "
                    "the paper-claims registry and emit a fidelity "
                    "scorecard.")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--run", action="store_true",
                        help="run the benchmark harness (default when no "
                             "--results-dir is given)")
    source.add_argument("--results-dir", metavar="DIR",
                        help="ingest BENCH_*.json dumps from DIR instead "
                             "of running the harness")
    parser.add_argument("--only", metavar="NAME", action="append",
                        help="restrict --run to the named benchmark "
                             "payloads (repeatable; see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list the benchmark payload names and exit")
    parser.add_argument("--scorecard", metavar="PATH",
                        help="write the Markdown scorecard to PATH "
                             "(default: stdout)")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="write the machine-readable fidelity report "
                             "(BENCH_FIDELITY.json) to PATH")
    parser.add_argument("--experiments-block", metavar="PATH", nargs="?",
                        const="-", default=None,
                        help="emit the regenerated EXPERIMENTS.md "
                             "measured-column block (to PATH, or stdout "
                             "when no PATH is given)")
    parser.add_argument("--baseline", metavar="PATH",
                        help="gate on regressions against a committed "
                             "baseline grades file instead of absolute "
                             "drift")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write the current grades as a new baseline "
                             "file and exit 0")
    parser.add_argument("--selftest-perturb", type=float, metavar="FACTOR",
                        default=None,
                        help="scale energy-dimensioned measurements by "
                             "FACTOR before grading and require the gate "
                             "to FAIL (CI gate self-test)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail the gate on claims whose "
                             "benchmark payloads were not measured (for "
                             "partial --results-dir ingests)")
    parser.add_argument("--trajectory", metavar="DIR", nargs="+",
                        default=None,
                        help="aggregate BENCH_*.json dumps from several "
                             "results directories (oldest first) into a "
                             "cross-run trajectory table and exit")
    parser.add_argument("--trajectory-json", metavar="PATH",
                        help="with --trajectory, also write the "
                             "repro.report.trajectory/1 JSON payload")
    args = parser.parse_args(argv)

    if args.trajectory:
        if args.run or args.results_dir:
            parser.error("--trajectory is a separate mode; drop "
                         "--run/--results-dir")
        from repro.report.trajectory import (
            format_trajectory,
            trajectory,
            write_trajectory_json,
        )
        payload = trajectory(args.trajectory)
        for directory in payload["skipped"]:
            _log("no BENCH_*.json files in %s (skipped)" % directory)
        if not payload["runs"]:
            # An empty feed is a normal state (fresh checkout, results
            # not generated yet), not a usage error: say so clearly and
            # exit 0 so callers can probe without special-casing.
            _log("no BENCH_*.json runs found in %s -- nothing to "
                 "aggregate yet" % ", ".join(args.trajectory))
        print(format_trajectory(payload))
        if args.trajectory_json:
            write_trajectory_json(args.trajectory_json, payload)
            _log("trajectory written to %s" % args.trajectory_json)
        return 0

    if args.list:
        for name in COLLECTORS:
            print(name)
        return 0

    if args.only and args.results_dir:
        parser.error("--only requires --run")
        return 2

    if args.results_dir:
        entries = load_results_dir(args.results_dir)
        if not entries:
            _log("no BENCH_*.json files in %s" % args.results_dir)
            return 2
        _log("ingested %d benchmark dumps from %s"
             % (len(entries), args.results_dir))
    else:
        names = set(args.only) if args.only else None
        if names:
            unknown = names - set(COLLECTORS)
            if unknown:
                parser.error("unknown benchmark(s): %s"
                             % ", ".join(sorted(unknown)))
                return 2
        entries = collect(names=names, log=_log)

    measurements = measurements_view(entries)
    if args.selftest_perturb is not None:
        _log("self-test: perturbing energy measurements by %.3fx"
             % args.selftest_perturb)
        measurements = perturb_measurements(measurements,
                                            args.selftest_perturb)

    scorecard = evaluate(measurements)

    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            json.dump({"schema": 1, "grades": scorecard.grades()},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
        _log("baseline written to %s" % args.write_baseline)
        return 0

    baseline_diff = None
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        baseline_diff = compare_to_baseline(scorecard,
                                            baseline["grades"])

    strict_missing = not (args.allow_missing or args.only)
    ok, failures = scorecard.gate(strict_missing=strict_missing)
    if baseline_diff is not None:
        # Gate on movement, not absolute grades: a claim the committed
        # baseline already records as within_band is not a failure --
        # but severity increasing past the baseline is.  Partial runs
        # (--only / --allow-missing) excuse claims that merely went
        # unmeasured.
        gate_regressions = baseline_diff["regressions"]
        if not strict_missing:
            gate_regressions = [entry for entry in gate_regressions
                                if entry["after"] != "missing"]
        ok = not gate_regressions
    else:
        gate_regressions = None

    report = markdown_scorecard(scorecard, entries=entries,
                                baseline_diff=baseline_diff)
    if args.scorecard:
        with open(args.scorecard, "w") as handle:
            handle.write(report)
        _log("scorecard written to %s" % args.scorecard)
    else:
        print(report)

    if args.json_path:
        write_fidelity_json(args.json_path, scorecard, entries=entries,
                            baseline_diff=baseline_diff)
        _log("fidelity report written to %s" % args.json_path)

    if args.experiments_block is not None:
        block = experiments_block(measurements)
        if args.experiments_block == "-":
            print(block)
        else:
            with open(args.experiments_block, "w") as handle:
                handle.write(block)
                handle.write("\n")
            _log("EXPERIMENTS.md measured block written to %s"
                 % args.experiments_block)

    counts = scorecard.counts()
    _log("graded %d claims: %d match, %d within band, %d drift, "
         "%d shape violations, %d missing" % (
             len(scorecard.results), counts["match"],
             counts["within_band"], counts["drift"],
             counts["shape_violation"], counts["missing"]))

    if args.selftest_perturb is not None:
        if ok:
            _log("SELF-TEST FAILED: perturbation %.3fx did not trip the "
                 "gate" % args.selftest_perturb)
            return 1
        _log("self-test passed: gate tripped on %d claims"
             % len(gate_regressions if gate_regressions else failures))
        return 0

    if not ok:
        if gate_regressions:
            _log("GATE FAILED: %d claims regressed past the committed "
                 "baseline" % len(gate_regressions))
        else:
            _log("GATE FAILED: %d claims drifted, violated shape, or "
                 "went missing" % len(failures))
        return 1
    _log("gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
