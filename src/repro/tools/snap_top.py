"""``snap-top``: a live terminal dashboard for a running simulation.

Attaches to the ``repro.obs.telemetry/1`` NDJSON stream that a
``snap-run --telemetry-port`` (or any :class:`SocketServerTransport`)
is serving, or replays a recorded stream from a file or stdin, and
renders per-node energy drain, duty cycles, queue depths, packet
delivery and drop rates, the hottest handlers, and watchdog status --
refreshed from the delta stream alone, with no access to the simulator
process.

Usage::

    snap-top --connect 127.0.0.1:9317      # attach to a live run
    snap-top --file run.ndjson --once      # render a recorded stream
    snap-run ... --telemetry - | snap-top  # pipe through stdin

``--once`` waits for the first complete batch (or end of input), prints
a single frame without cursor control, and exits -- the headless/CI
mode.  Live mode redraws every ``--interval`` seconds and exits when
the stream says ``bye`` or the producer goes away.  A mid-run attach
works because the exporter re-sends its preamble (hello plus a full
metrics snapshot) to every new consumer.
"""

import argparse
import select
import socket
import sys
import time

from repro.obs.telemetry import TelemetryView

#: How long --connect keeps retrying before giving up (seconds).
DEFAULT_RETRY_S = 5.0

#: Live-mode redraw cadence (wall seconds).
DEFAULT_INTERVAL_S = 0.5

#: ANSI: home the cursor and clear to end of screen (full-frame redraw
#: without the flash a whole-screen erase causes).
CLEAR = "\x1b[H\x1b[J"


class LineSource:
    """Interface: incremental NDJSON line supply for the dashboard."""

    eof = False

    def poll(self, timeout):
        """Up to *timeout* seconds of waiting; returns a list of
        complete lines that arrived (possibly empty)."""
        raise NotImplementedError

    def close(self):
        pass


class SocketSource(LineSource):
    """Lines from a telemetry socket server, with connect retries."""

    def __init__(self, host, port, retry_s=DEFAULT_RETRY_S):
        self.eof = False
        self._buffer = b""
        self._sock = self._connect(host, port, retry_s)

    @staticmethod
    def _connect(host, port, retry_s):
        deadline = time.monotonic() + retry_s
        while True:
            try:
                return socket.create_connection((host, port), timeout=1.0)
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)

    def poll(self, timeout):
        if self.eof:
            return []
        try:
            readable, _, _ = select.select([self._sock], [], [], timeout)
        except (OSError, ValueError):
            self.eof = True
            return []
        if not readable:
            return []
        try:
            data = self._sock.recv(65536)
        except OSError:
            self.eof = True
            return []
        if not data:
            self.eof = True
            return self._take_lines(flush=True)
        self._buffer += data
        return self._take_lines()

    def _take_lines(self, flush=False):
        lines = self._buffer.split(b"\n")
        if flush:
            self._buffer = b""
        else:
            self._buffer = lines.pop()
        return [line.decode("utf-8", "replace") for line in lines if line]

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass


class FileSource(LineSource):
    """Lines from a recorded (possibly still-growing) NDJSON file."""

    def __init__(self, path, follow=False):
        self._handle = open(path)
        self._follow = follow
        self.eof = False

    def poll(self, timeout):
        lines = []
        while True:
            position = self._handle.tell()
            line = self._handle.readline()
            if line.endswith("\n"):
                lines.append(line)
            else:
                # Partial trailing line: rewind so the rest is read once
                # the producer finishes it.
                self._handle.seek(position)
                break
        if not lines:
            if not self._follow:
                self.eof = True
            elif timeout:
                time.sleep(timeout)
        return lines

    def close(self):
        self._handle.close()


class StreamSource(LineSource):
    """Lines from an already-open text stream (stdin pipe)."""

    def __init__(self, stream):
        self._stream = stream
        self.eof = False

    def poll(self, timeout):
        try:
            readable, _, _ = select.select([self._stream], [], [], timeout)
        except (OSError, ValueError):
            # Not selectable (e.g. a StringIO in tests): drain everything.
            lines = self._stream.readlines()
            self.eof = True
            return lines
        if not readable:
            return []
        line = self._stream.readline()
        if not line:
            self.eof = True
            return []
        return [line]


def _parse_endpoint(text):
    host, _, port = text.rpartition(":")
    if not host:
        host = "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected HOST:PORT, got %r" % text)


def _open_source(args, stdin):
    if args.connect:
        host, port = _parse_endpoint(args.connect)
        return SocketSource(host, port, retry_s=args.retry)
    if args.file:
        return FileSource(args.file, follow=not args.once)
    return StreamSource(stdin if stdin is not None else sys.stdin)


def _frame_width(args, stdout):
    if args.width:
        return args.width
    if stdout.isatty() if hasattr(stdout, "isatty") else False:
        import shutil
        return shutil.get_terminal_size().columns
    return 120


def main(argv=None, stdout=None, stdin=None):
    parser = argparse.ArgumentParser(
        prog="snap-top",
        description="Live dashboard over a repro.obs.telemetry/1 stream.")
    source_group = parser.add_mutually_exclusive_group()
    source_group.add_argument(
        "--connect", metavar="HOST:PORT",
        help="attach to a running snap-run --telemetry-port socket")
    source_group.add_argument(
        "--file", metavar="PATH",
        help="read a recorded NDJSON stream (followed unless --once)")
    parser.add_argument(
        "--once", action="store_true",
        help="print one frame after the first complete batch and exit")
    parser.add_argument(
        "--interval", type=float, default=DEFAULT_INTERVAL_S,
        metavar="S", help="redraw cadence in seconds (default %(default)s)")
    parser.add_argument(
        "--retry", type=float, default=DEFAULT_RETRY_S, metavar="S",
        help="keep retrying --connect for this long (default %(default)s)")
    parser.add_argument(
        "--width", type=int, default=None,
        help="frame width in columns (default: terminal width)")
    args = parser.parse_args(argv)
    out = stdout if stdout is not None else sys.stdout

    try:
        source = _open_source(args, stdin)
    except OSError as error:
        print("snap-top: cannot attach to %s: %s" % (args.connect, error),
              file=sys.stderr)
        return 1

    view = TelemetryView()
    width = _frame_width(args, out)
    use_ansi = (not args.once
                and (out.isatty() if hasattr(out, "isatty") else False))
    try:
        if args.once:
            _drain_until_ready(source, view, args.retry)
            out.write(view.render(width=width) + "\n")
            return 0
        last_draw = 0.0
        while True:
            for line in source.poll(min(args.interval, 0.25)):
                view.apply_line(line)
            now = time.monotonic()
            if now - last_draw >= args.interval or source.eof \
                    or view.bye is not None:
                last_draw = now
                frame = view.render(width=width)
                if use_ansi:
                    out.write(CLEAR + frame + "\n")
                else:
                    out.write(frame + "\n\n")
                out.flush()
            if view.bye is not None or source.eof:
                return 0
    except KeyboardInterrupt:
        return 0
    finally:
        source.close()


def _drain_until_ready(source, view, timeout):
    """Consume input until one full batch has been applied (the view has
    its first progress heartbeat), end of input, or *timeout*."""
    deadline = time.monotonic() + timeout
    while not source.eof and time.monotonic() < deadline:
        lines = source.poll(0.1)
        for line in lines:
            view.apply_line(line)
        if view.ready and not lines:
            break
        if view.bye is not None:
            break


if __name__ == "__main__":
    sys.exit(main())
