"""``snap-net-trace``: run a multi-hop network scenario under full
observability and print reconstructed packet-journey trees, a per-hop
table, and the network's energy drain curve.

The scenario is a line of nodes one radio hop apart::

    [1] ---- [2] ---- ... ---- [N]
    source    relay             sink

Node 1 runs the TX driver and injects DATA packets addressed (at the
application layer) to the sink; the intermediate AODV nodes relay them
hop by hop.  The journey tracker reconstructs every packet's life --
send, air, per-receiver receive/overhear/drop-with-reason, forward,
deliver -- from the word-level radio and channel events, and the
timeline sampler snapshots each node's cumulative energy, duty cycle,
and queue depth on a fixed period.

Usage::

    python -m repro.tools.snap_net_trace --nodes 5 --packets 3
    python -m repro.tools.snap_net_trace --bit-error-rate 0.02 \\
        --chrome net.json --drain-csv drain.csv
    python -m repro.tools.snap_net_trace --nodes 2 --no-route
"""

import argparse
import json
import sys

from repro.core import CoreConfig
from repro.netstack import layout
from repro.netstack.drivers import build_aodv_node, build_tx_node
from repro.network import NetworkSimulator
from repro.obs import JsonlSink, MemorySink, Observability, write_chrome_trace

#: Application destination used by ``--no-route``: no such node exists,
#: so every route lookup misses and the relay drops with ``no_route``.
UNROUTABLE_DEST = 0x7F


def stage_and_send(node, packet):
    """Stage a packet body in a node's TX buffer and trigger its MAC."""
    for index, word in enumerate(packet[:-1]):
        node.processor.dmem.poke(layout.TX_BUF + index, word)
    node.processor.raise_soft_event()


def seed_chain_routes(net, first_relay, sink_id):
    """Give every relay a route to the sink via its right-hand neighbour."""
    for node_id in range(first_relay, sink_id):
        dmem = net.nodes[node_id].processor.dmem
        dmem.poke(layout.ROUTE_TABLE + 0, sink_id)
        dmem.poke(layout.ROUTE_TABLE + 1, node_id + 1)
        dmem.poke(layout.ROUTE_TABLE + 2, sink_id - node_id)


def run_chain_scenario(nodes=5, packets=3, bit_error_rate=0.0,
                       corruption="drop", seed=0, comm_range=1.5,
                       voltage=0.6, window=0.2, sample_every=0.02,
                       no_route=False, buffer_limit=1_000_000,
                       jsonl_path=None, observe=True):
    """Build and run the chain scenario; returns ``(net, obs, extras)``.

    *extras* is a dict with the memory sink, the timeline sampler, and
    the (closed) JSONL sink if one was requested.  With
    ``observe=False`` the scenario runs completely uninstrumented
    (``obs`` comes back ``None``) -- the bit-identity tests compare
    such a run against an instrumented one.
    """
    if nodes < 2:
        raise ValueError("the chain needs at least 2 nodes")
    obs = memory = jsonl = None
    if observe:
        obs = Observability(journeys=True)
        memory = obs.bus.attach(MemorySink(limit=buffer_limit))
        if jsonl_path:
            jsonl = obs.bus.attach(JsonlSink(jsonl_path))

    config = CoreConfig(voltage=voltage)
    net = NetworkSimulator(comm_range=comm_range,
                           bit_error_rate=bit_error_rate, seed=seed,
                           corruption=corruption)
    if obs is not None:
        net.attach_observability(obs)
    net.add_node(1, program=build_tx_node(1), position=(0.0, 0.0),
                 config=config)
    for node_id in range(2, nodes + 1):
        net.add_node(node_id, program=build_aodv_node(node_id),
                     position=(float(node_id - 1), 0.0), config=config)
    sampler = None
    if sample_every:
        sampler = net.timeline_sampler(sample_every)

    net.run(until=0.01)  # everyone boots and sleeps

    sink_id = nodes
    app_dest = UNROUTABLE_DEST if no_route else sink_id
    if not no_route:
        seed_chain_routes(net, first_relay=2, sink_id=sink_id)

    source = net.nodes[1]
    for sequence in range(packets):
        field_a = 0x100 + 0x40 * sequence
        field_b = 0x120 + 0x55 * sequence
        packet = layout.make_packet(
            dst=2,  # MAC next hop: the first relay
            src=1, pkt_type=layout.PKT_TYPE_DATA, seq=sequence,
            payload=[app_dest, field_a, field_b])
        stage_and_send(source, packet)
        net.run(until=net.kernel.now + window)

    if obs is not None:
        obs.journeys.flush()
    if sampler is not None:
        sampler.sample()  # final aligned snapshot at end of run
    if jsonl is not None:
        jsonl.close()
    return net, obs, {"memory": memory, "sampler": sampler, "jsonl": jsonl}


def _print_hop_table(rows):
    header = ("journey", "kind", "hop", "from", "to", "outcome",
              "latency_ms", "words", "energy_nJ")
    table = [header]
    for row in rows:
        table.append((str(row["journey"]), row["kind"], str(row["hop"]),
                      row["from"], row["to"], row["outcome"],
                      "%.3f" % (row["latency_s"] * 1e3), str(row["words"]),
                      "%.1f" % (row["energy_j"] * 1e9)))
    widths = [max(len(line[i]) for line in table) for i in range(len(header))]
    for line in table:
        print("  " + "  ".join(cell.ljust(width)
                               for cell, width in zip(line, widths)).rstrip())


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="snap-net-trace",
        description="Trace packet journeys and the energy timeline of a "
                    "multi-hop AODV chain scenario.")
    parser.add_argument("--nodes", type=int, default=5,
                        help="chain length incl. source and sink (default 5)")
    parser.add_argument("--packets", type=int, default=3,
                        help="DATA packets to inject (default 3)")
    parser.add_argument("--bit-error-rate", type=float, default=0.0,
                        help="per-word channel corruption probability")
    parser.add_argument("--corruption", choices=("drop", "flip"),
                        default="drop", help="channel noise mode")
    parser.add_argument("--seed", type=int, default=0,
                        help="channel noise RNG seed (default 0)")
    parser.add_argument("--range", type=float, default=1.5, dest="comm_range",
                        help="radio range; nodes are 1.0 apart (default 1.5)")
    parser.add_argument("--voltage", type=float, default=0.6,
                        help="core supply voltage (default 0.6)")
    parser.add_argument("--window", type=float, default=0.2,
                        help="simulated seconds per injected packet")
    parser.add_argument("--sample-every", type=float, default=0.02,
                        metavar="SECONDS",
                        help="energy-timeline sampling period (0 disables)")
    parser.add_argument("--no-route", action="store_true",
                        help="address packets to a nonexistent node so the "
                             "first relay's route lookup fails")
    parser.add_argument("--chrome", metavar="PATH",
                        help="write a chrome://tracing timeline (with "
                             "journey flow events) to PATH")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="stream the typed event trace to PATH (JSONL)")
    parser.add_argument("--drain-csv", metavar="PATH",
                        help="write the per-node energy drain time-series "
                             "to PATH as CSV")
    parser.add_argument("--json", action="store_true",
                        help="print journey summaries and hop rows as JSON "
                             "instead of text")
    parser.add_argument("--buffer-limit", type=int, default=1_000_000,
                        help="in-memory trace ring size (default 1000000)")
    args = parser.parse_args(argv)

    try:
        net, obs, extras = run_chain_scenario(
            nodes=args.nodes, packets=args.packets,
            bit_error_rate=args.bit_error_rate, corruption=args.corruption,
            seed=args.seed, comm_range=args.comm_range, voltage=args.voltage,
            window=args.window, sample_every=args.sample_every,
            no_route=args.no_route, buffer_limit=args.buffer_limit,
            jsonl_path=args.jsonl)
    except ValueError as error:
        print("snap-net-trace: %s" % error, file=sys.stderr)
        return 1

    tracker = obs.journeys
    summaries = tracker.summaries()
    delivered = [s for s in summaries if s["delivered"]]

    if args.json:
        print(json.dumps({
            "time_s": net.kernel.now,
            "journeys": summaries,
            "hops": tracker.hop_rows(),
        }, indent=2))
    else:
        print("Packet journeys")
        print("===============")
        print(tracker.report() or "(no journeys reconstructed)")
        print()
        print("Per-hop table")
        print("=============")
        _print_hop_table(tracker.hop_rows())
        print()
        print("Summary")
        print("=======")
        print("  sim time          : %.3f s" % net.kernel.now)
        print("  journeys          : %d (%d delivered)"
              % (len(summaries), len(delivered)))
        latency = obs.metrics.histogram("net.journey_latency_s")
        if latency.count:
            print("  journey latency   : p50 %.3f ms  p90 %.3f ms  "
                  "max %.3f ms"
                  % (latency.percentile(50) * 1e3,
                     latency.percentile(90) * 1e3, latency.max * 1e3))
        hop = obs.metrics.histogram("net.hop_latency_s")
        if hop.count:
            print("  hop latency       : p50 %.3f ms over %d hops"
                  % (hop.percentile(50) * 1e3, hop.count))
        if delivered:
            energy = sum(s["energy_j"] for s in delivered) / len(delivered)
            print("  radio energy      : %.1f nJ per delivered journey"
                  % (energy * 1e9))
        print("  network energy    : %.2f uJ (with radios)"
              % (net.total_energy(include_radio=True) * 1e6))

    sampler = extras["sampler"]
    if args.drain_csv:
        if sampler is None:
            print("snap-net-trace: --drain-csv needs --sample-every > 0",
                  file=sys.stderr)
            return 1
        sampler.to_csv(args.drain_csv)
        print("drain csv    : %s (%d rows)" % (args.drain_csv,
                                               len(sampler.rows)))
    if args.jsonl:
        print("jsonl trace  : %s (%d events)" % (args.jsonl,
                                                 extras["jsonl"].count))
    if args.chrome:
        write_chrome_trace(extras["memory"].events, args.chrome)
        print("chrome trace : %s (%d events; open in chrome://tracing)"
              % (args.chrome, len(extras["memory"])))
    return 0


if __name__ == "__main__":
    sys.exit(main())
