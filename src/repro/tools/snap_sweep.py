"""``snap-sweep``: run a declarative parameter-grid sweep from the shell.

Declare the grid on the command line -- one ``--grid name=v1,v2,...``
per swept parameter -- and the :mod:`repro.bench.sweep` engine expands
the cartesian product, fans the cells over a process pool (``--workers``)
with shared predecode tables, and prints the per-cell table.  With
``--serial-check`` the same grid is re-run serially and the per-cell
meter digests are asserted bit-identical to the pooled run -- the
PR 4/6 differential pattern, wired into CI.

Examples::

    # list the registered scenarios
    snap-sweep --list

    # the Section 6 voltage curve, 3 replicas per point, 4 workers
    snap-sweep voltage_point --grid voltage=0.45,0.6,0.9,1.8 \
        --replicas 3 --workers 4

    # a voltage x BER grid with the pooled-vs-serial identity check,
    # dumping BENCH_SWEEP.json and the full report
    snap-sweep chain_ber --grid voltage=0.6,1.8 \
        --grid bit_error_rate=0.0,0.02 --replicas 2 --workers 4 \
        --serial-check --results-dir bench-results --json sweep.json

Exit codes: 0 on a clean sweep, 1 when any cell failed or the
``--serial-check`` digests diverge, 2 on usage trouble.
"""

import argparse
import json
import os
import sys

from repro.bench.reporting import atomic_write_json, dump_results, format_table
from repro.bench.sweep import (
    SCENARIOS,
    Sweep,
    cell_label,
    diverging_cells,
    run_sweep,
)


def _grid_value(text):
    """``0.6`` -> float, ``3`` -> int, anything else stays a string."""
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text


def parse_grid(specs):
    """``["voltage=0.6,1.8", ...]`` -> ``{"voltage": [0.6, 1.8], ...}``."""
    grid = {}
    for spec in specs or ():
        name, _, values = spec.partition("=")
        if not name or not values:
            raise ValueError("bad grid spec %r (want name=v1,v2,...)" % spec)
        grid[name] = [_grid_value(field) for field in values.split(",")]
    return grid


def _print_cells(result):
    rows = []
    for cell in result.cells:
        if cell.get("ok"):
            aggregates = cell.get("aggregates", {})
            summary = " ".join(
                "%s=%.6g" % (name, stats["mean"])
                for name, stats in aggregates.items()
                if name not in cell["params"])
            rows.append((cell["index"], cell_label(cell["params"]), "ok",
                         cell["digest"][:12], "%.3f" % cell["wall_time_s"],
                         summary))
        else:
            rows.append((cell["index"], cell_label(cell["params"]), "FAILED",
                         "-", "-", cell.get("error", "")))
    print(format_table(
        ("cell", "params", "status", "digest", "wall_s", "summary"), rows,
        title="sweep: %s  (%d cells x %d replicas, workers=%d)"
              % (result.sweep.scenario, len(result.cells),
                 result.sweep.replicas, result.workers)))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="snap-sweep",
        description="declarative parameter-grid sweeps with pooled "
                    "replicas and shared predecode")
    parser.add_argument("scenario", nargs="?",
                        help="registered sweep scenario (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list registered scenarios and exit")
    parser.add_argument("--grid", action="append", metavar="NAME=V1,V2,...",
                        help="one swept parameter (repeatable)")
    parser.add_argument("--fixed", action="append", metavar="NAME=VALUE",
                        help="one fixed parameter for every cell "
                             "(repeatable)")
    parser.add_argument("--replicas", type=int, default=1,
                        help="runs per cell with distinct seeds (default 1)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="root seed for replica-seed derivation")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool width; 1 runs serially")
    parser.add_argument("--serial-check", action="store_true",
                        help="re-run the grid serially and assert per-cell "
                             "digest equality with the pooled run")
    parser.add_argument("--json", metavar="PATH",
                        help="write the aggregated sweep payload here")
    parser.add_argument("--results-dir", metavar="DIR",
                        help="dump BENCH_SWEEP.json into DIR "
                             "(dump_results shape)")
    parser.add_argument("--compact", action="store_true",
                        help="drop per-replica payload bodies from the "
                             "dumped cells (digests and aggregates stay)")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SCENARIOS):
            doc = (SCENARIOS[name].__doc__ or "").strip().splitlines()
            print("%-16s %s" % (name, doc[0] if doc else ""))
        return 0
    if not args.scenario:
        parser.error("scenario required (or --list)")
    if args.scenario not in SCENARIOS:
        parser.error("unknown scenario %r (have: %s)"
                     % (args.scenario, ", ".join(sorted(SCENARIOS))))

    try:
        grid = parse_grid(args.grid)
        fixed_grid = parse_grid(args.fixed)
    except ValueError as error:
        parser.error(str(error))
    fixed = {name: values[0] for name, values in fixed_grid.items()}

    sweep = Sweep(scenario=args.scenario, grid=grid,
                  replicas=args.replicas, base_seed=args.base_seed,
                  fixed=fixed)
    result = run_sweep(sweep, workers=args.workers,
                       progress=lambda cell: print(
                           "  cell %d %s: %s" % (
                               cell["index"], cell_label(cell["params"]),
                               "ok" if cell.get("ok")
                               else cell.get("error", "failed")),
                           file=sys.stderr))
    _print_cells(result)

    failed = len(result.failed_cells)
    payload = result.payload(compact=args.compact)
    # Pool speedup is bounded by the host's core count; record it so
    # wall-time comparisons in archived payloads are interpretable.
    payload["host_cpus"] = os.cpu_count()

    if args.serial_check:
        print("serial check: re-running %d cells with workers=1 ..."
              % len(result.cells), file=sys.stderr)
        serial = run_sweep(sweep, workers=1)
        divergences = diverging_cells(serial, result)
        payload["serial_check"] = {
            "wall_time_s": serial.wall_time_s,
            "pooled_wall_time_s": result.wall_time_s,
            "diverging_cells": [list(item) for item in divergences],
            "identical": not divergences,
        }
        if divergences:
            print("SERIAL CHECK FAILED: %d diverging cells"
                  % len(divergences))
            for index, serial_digest, pooled_digest in divergences:
                print("  cell %d: serial %s != pooled %s"
                      % (index, serial_digest, pooled_digest))
            failed += len(divergences)
        else:
            print("serial check: %d cells bit-identical "
                  "(serial %.2fs, pooled %.2fs)"
                  % (len(serial.cells), serial.wall_time_s,
                     result.wall_time_s))

    if args.json:
        atomic_write_json(args.json, payload)
        print("report: %s" % args.json)
    if args.results_dir:
        # The enriched payload (including any serial_check verdict), in
        # the standard dump_results BENCH_*.json shape.
        path = dump_results("SWEEP", payload, directory=args.results_dir,
                            wall_time_s=result.wall_time_s)
        print("dump: %s" % path)

    if result.interrupted:
        print("interrupted: %d cells completed, %d skipped"
              % (len(result.ok_cells), failed))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
