"""Render a graded scorecard: Markdown for humans, ``BENCH_FIDELITY.json``
for machines, and the regenerated measured-column block for
``EXPERIMENTS.md``."""

import json

from repro.report.claims import (
    GRADE_DRIFT,
    GRADE_MATCH,
    GRADE_MISSING,
    GRADE_SHAPE_VIOLATION,
    GRADE_WITHIN_BAND,
)

#: Scorecard glyph per grade.
GRADE_SYMBOL = {
    GRADE_MATCH: "OK",
    GRADE_WITHIN_BAND: "~",
    GRADE_DRIFT: "DRIFT",
    GRADE_SHAPE_VIOLATION: "SHAPE",
    GRADE_MISSING: "?",
}

SCHEMA_VERSION = 1


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.4g" % value
    return str(value)


def _fmt_delta(result):
    if result.delta_rel is None:
        return "-"
    return "%+.1f%%" % (100 * result.delta_rel)


def markdown_table(headers, rows):
    """A GitHub-flavored Markdown table from header names and row
    tuples; cells are stringified with the scorecard's ``-`` for
    ``None`` and ``%.4g`` floats.  Shared by the scorecard and the
    snap-diff divergence report."""
    lines = ["| %s |" % " | ".join(str(name) for name in headers),
             "|%s|" % "|".join("---" for _ in headers)]
    for row in rows:
        lines.append("| %s |" % " | ".join(_fmt(cell) for cell in row))
    return "\n".join(lines)


def format_signed(value, unit=""):
    """A delta cell: explicit sign, ``%.4g`` magnitude, optional unit;
    exact zero renders as ``0`` so unchanged rows read as such."""
    if not value:
        return "0"
    text = "%+.4g" % value
    return "%s %s" % (text, unit) if unit else text


def markdown_scorecard(scorecard, entries=None, baseline_diff=None,
                       title="Paper-fidelity scorecard"):
    """The human-readable scorecard, one table per paper section.

    *entries* optionally supplies the collection entries (for per-bench
    host wall times); *baseline_diff* the output of
    :func:`repro.report.evaluate.compare_to_baseline`.
    """
    counts = scorecard.counts()
    total = len(scorecard.results)
    lines = ["# %s" % title, ""]
    lines.append("%d claims: %d match, %d within band, %d drift, "
                 "%d shape violations, %d missing." % (
                     total, counts[GRADE_MATCH], counts[GRADE_WITHIN_BAND],
                     counts[GRADE_DRIFT], counts[GRADE_SHAPE_VIOLATION],
                     counts[GRADE_MISSING]))
    ok, failures = scorecard.gate()
    lines.append("")
    lines.append("**Gate: %s**" % ("PASS" if ok else
                                   "FAIL (%d claims)" % len(failures)))
    if baseline_diff is not None:
        lines.append("")
        regressions = baseline_diff["regressions"]
        improvements = baseline_diff["improvements"]
        if regressions:
            lines.append("Regressions vs committed baseline:")
            for entry in regressions:
                lines.append("* `%s`: %s -> %s (%s)" % (
                    entry["id"], entry["before"], entry["after"],
                    entry["detail"]))
        else:
            lines.append("No regressions vs the committed baseline.")
        if improvements:
            lines.append("Improvements vs baseline: %s." % ", ".join(
                "`%s` (%s -> %s)" % (e["id"], e["before"], e["after"])
                for e in improvements))
        if baseline_diff["new"]:
            lines.append("New claims not in the baseline: %s."
                         % ", ".join("`%s`" % c
                                     for c in baseline_diff["new"]))
        if baseline_diff["removed"]:
            lines.append("Baseline claims no longer in the registry: %s."
                         % ", ".join("`%s`" % c
                                     for c in baseline_diff["removed"]))
    for section, results in scorecard.by_section().items():
        lines.append("")
        lines.append("## %s" % section)
        lines.append("")
        lines.append("| claim | metric | expected | measured | delta "
                     "| grade |")
        lines.append("|---|---|---|---|---|---|")
        for result in results:
            expected = _fmt(result.expected)
            if result.expected is not None and result.unit:
                expected += " %s" % result.unit
            measured = _fmt(result.measured)
            if result.measured is not None and result.unit:
                measured += " %s" % result.unit
            grade = GRADE_SYMBOL[result.grade]
            metric = result.metric
            if result.grade in (GRADE_SHAPE_VIOLATION, GRADE_MISSING):
                metric += " -- %s" % result.detail
            elif result.expected is None and result.detail:
                # Shape claims carry their evidence in the detail.
                measured = result.detail
            lines.append("| `%s` | %s | %s | %s | %s | %s |" % (
                result.id, metric, expected, measured,
                _fmt_delta(result), grade))
    if entries:
        lines.append("")
        lines.append("## Benchmark runs")
        lines.append("")
        lines.append("| benchmark | host wall time | metrics |")
        lines.append("|---|---|---|")
        for name, entry in entries.items():
            host = entry.get("host") or {}
            wall = host.get("wall_time_s")
            metrics = entry.get("metrics")
            metric_note = ("%d series" % len(metrics)
                           if isinstance(metrics, dict) else "-")
            lines.append("| %s | %s | %s |" % (
                name, "%.2f s" % wall if wall is not None else "-",
                metric_note))
    lines.append("")
    return "\n".join(lines)


def fidelity_payload(scorecard, entries=None, baseline_diff=None):
    """The machine-readable ``BENCH_FIDELITY.json`` payload: per-claim
    grades and deltas plus the gate verdict."""
    ok, failures = scorecard.gate()
    payload = {
        "schema": SCHEMA_VERSION,
        "gate": {"ok": ok,
                 "failures": [result.id for result in failures]},
        "summary": scorecard.counts(),
        "claims": [result.to_dict() for result in scorecard.results],
    }
    if baseline_diff is not None:
        payload["baseline"] = baseline_diff
    if entries is not None:
        payload["benchmarks"] = {
            name: {"host": entry.get("host"),
                   "has_metrics": entry.get("metrics") is not None}
            for name, entry in entries.items()}
    return payload


def write_fidelity_json(path, scorecard, entries=None, baseline_diff=None):
    payload = fidelity_payload(scorecard, entries=entries,
                               baseline_diff=baseline_diff)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


# -- the regenerated EXPERIMENTS.md measured block ----------------------------


def _pj(joules):
    return "%.1f" % (joules * 1e12)


def _nj(joules):
    return "%.1f" % (joules * 1e9)


def experiments_block(measurements):
    """Regenerate the *measured* columns of ``EXPERIMENTS.md`` from the
    current measurements -- the block a maintainer pastes back into the
    document after an intentional recalibration.

    Only sections whose benchmark payloads are present are rendered.
    """
    lines = ["<!-- measured columns regenerated by: "
             "python -m repro.tools.snap_report --experiments-block -->",
             ""]

    tw = measurements.get("throughput_wakeup")
    if tw:
        lines += ["## Section 4.3 -- throughput and wake-up latency", "",
                  "| Metric | Measured |", "|---|---|"]
        for vk in ("1.8", "0.9", "0.6"):
            lines.append("| Throughput @%sV | %.0f MIPS |"
                         % (vk, tw[vk]["mips"]))
        for vk in ("1.8", "0.9", "0.6"):
            lines.append("| Wakeup @%sV | %.1f ns |"
                         % (vk, tw[vk]["wakeup_latency_s"] * 1e9))
        lines.append("")

    fig4 = measurements.get("fig4_energy_per_class")
    if fig4:
        lines += ["## Figure 4 -- energy per instruction type (pJ/ins)",
                  "", "| Class | @1.8V | @0.9V | @0.6V |", "|---|---|---|---|"]
        for name in sorted(fig4["1.8"]):
            lines.append("| %s | %s | %s | %s |" % (
                name, _pj(fig4["1.8"][name]), _pj(fig4["0.9"][name]),
                _pj(fig4["0.6"][name])))
        lines.append("")

    breakdown = measurements.get("energy_breakdown")
    if breakdown:
        lines += ["## Section 4.4 -- core energy distribution", "",
                  "| Component | Measured |", "|---|---|"]
        for bucket, value in breakdown["core_fractions"].items():
            lines.append("| %s | %.1f%% |" % (bucket, 100 * value))
        lines.append("| memory arrays' share of total | %.1f%% |"
                     % (100 * breakdown["memory_share"]))
        lines.append("")

    table1 = measurements.get("table1_handlers")
    if table1:
        lines += ["## Table 1 -- handler code statistics", "",
                  "| Software task | Measured ins | E@1.8V | E@0.6V |",
                  "|---|---|---|---|"]
        by_name_18 = {row["name"]: row for row in table1["1.8"]}
        for row in table1["0.6"]:
            row18 = by_name_18[row["name"]]
            lines.append("| %s | %d | %s nJ | %s nJ |" % (
                row["name"], row["instructions"], _nj(row18["energy"]),
                _nj(row["energy"])))
        lines.append("")

    fig5 = measurements.get("fig5_blink")
    if fig5:
        lines += ["## Figure 5 -- the Blink comparison", "",
                  "| Metric | Measured |", "|---|---|"]
        lines.append("| Mote cycles/blink | %.0f |" % fig5["avr_cycles"])
        lines.append("| Mote useful cycles | %.0f |"
                     % fig5["avr_useful_cycles"])
        lines.append("| Mote overhead cycles | %.0f (%.0f%% of cycles) |"
                     % (fig5["avr_overhead_cycles"],
                        100 * fig5["avr_overhead_cycles"]
                        / fig5["avr_cycles"]))
        lines.append("| Mote energy/blink | %.0f nJ |"
                     % (fig5["avr_energy"] * 1e9))
        lines.append("| SNAP cycles/blink | %.0f |" % fig5["snap_cycles"])
        lines.append("| SNAP energy @1.8V | %.1f nJ |"
                     % (fig5["snap_energy_18"] * 1e9))
        lines.append("| SNAP energy @0.6V | %.2f nJ |"
                     % (fig5["snap_energy_06"] * 1e9))
        sizes = measurements.get("fig5_code_size")
        if sizes:
            lines.append("| SNAP code size | %d B |" % sizes["snap_bytes"])
        lines.append("")

    sense = measurements.get("sense")
    if sense:
        lines += ["## Section 4.6 -- Sense", "",
                  "| Metric | Measured |", "|---|---|"]
        lines.append("| Mote cycles/iteration | %.0f |"
                     % sense["avr_cycles"])
        lines.append("| Mote overhead | %.0f%% |"
                     % (100 * sense["avr_overhead_fraction"]))
        lines.append("| SNAP cycles/iteration | %.0f |"
                     % sense["snap_cycles"])
        lines.append("| Mote/SNAP ratio | %.1fx |"
                     % (sense["avr_cycles"] / sense["snap_cycles"]))
        lines.append("")

    radio = measurements.get("radiostack")
    if radio:
        lines += ["## Section 4.6 -- high-speed radio stack", "",
                  "| Metric | Measured |", "|---|---|"]
        lines.append("| Mote cycles/byte | %.0f |" % radio["avr_cycles"])
        lines.append("| SNAP cycles/byte | %.0f |" % radio["snap_cycles"])
        lines.append("| Cycle reduction | %.0f%% |"
                     % (100 * (1 - radio["snap_cycles"]
                               / radio["avr_cycles"])))
        lines.append("")

    table2 = measurements.get("table2_platforms")
    if table2:
        lines += ["## Table 2 -- related microcontrollers", ""]
        lines.append("SNAP/LE measured: %.0f pJ/ins at %.0f MIPS (0.6V), "
                     "%.0f pJ/ins at %.0f MIPS (1.8V); the Atmel's "
                     "1500 pJ/ins is %.0fx the measured SNAP/LE @0.6V." % (
                         table2["0.6"][1] * 1e12, table2["0.6"][0] / 1e6,
                         table2["1.8"][1] * 1e12, table2["1.8"][0] / 1e6,
                         1500e-12 / table2["0.6"][1]))
        lines.append("")

    summary = measurements.get("results_summary")
    if summary:
        lines += ["## Section 4.7 -- results summary", "",
                  "| Metric | Measured |", "|---|---|"]
        for vk in ("1.8", "0.6"):
            row = summary[vk]
            lines.append("| Handler energy @%sV | %s-%s nJ |" % (
                vk, _nj(row["min_handler_energy"]),
                _nj(row["max_handler_energy"])))
        for vk in ("1.8", "0.6"):
            row = summary[vk]
            lines.append(
                "| Power at <=10 events/s @%sV | %.0f-%.0f nW |" % (
                    vk, row["power_at_10hz_low"] * 1e9,
                    row["power_at_10hz_high"] * 1e9))
        lines.append("")

    return "\n".join(lines)
