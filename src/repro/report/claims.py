"""The paper-claims registry.

Every row of every table and figure in ``EXPERIMENTS.md`` -- the paper's
Section 4 evaluation plus this repository's extension benchmarks -- is
encoded here as a typed claim:

* a :class:`ValueClaim` pins one number: the expected value (the paper's
  published figure, or -- where the paper publishes no exact number, as
  for the Figure 4 bars -- the reproduction's recorded baseline from
  ``EXPERIMENTS.md``), a multiplicative or absolute tolerance band, and
  an extractor that pulls the measured value out of the benchmark
  measurements;
* a :class:`ShapeClaim` pins a structural property the paper argues for:
  an ordering (TX < RX < routing handlers), a scaling ratio (x0.25 at
  0.9 V), or a bound ("under 300 pJ at 1.8 V").

Claims are graded by :mod:`repro.report.evaluate` against a
measurements dict ``{benchmark_name: payload}`` where each payload has
the shape of the corresponding ``BENCH_<name>.json`` ``results`` block
(see :mod:`repro.report.collect`).  Extractors therefore index with
string keys exactly as the JSON dumps do (voltages are ``"1.8"``,
``"0.9"``, ``"0.6"``).
"""

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.baseline.energy import (
    WAKEUP_LATENCY_POWER_DOWN_S,
    WAKEUP_LATENCY_POWER_SAVE_S,
)

# -- grades -------------------------------------------------------------------

GRADE_MATCH = "match"
GRADE_WITHIN_BAND = "within_band"
GRADE_DRIFT = "drift"
GRADE_SHAPE_VIOLATION = "shape_violation"
GRADE_MISSING = "missing"

#: Ordering used for gating and baseline regression checks: a claim
#: whose severity *increases* has regressed.
GRADE_SEVERITY = {
    GRADE_MATCH: 0,
    GRADE_WITHIN_BAND: 1,
    GRADE_DRIFT: 2,
    GRADE_SHAPE_VIOLATION: 2,
    GRADE_MISSING: 3,
}

#: Where an expected value comes from.
SOURCE_PAPER = "paper"          # a number the paper publishes
SOURCE_REPRO = "repro-baseline"  # EXPERIMENTS.md's recorded measurement


class MissingMeasurement(KeyError):
    """Raised by extractors when a benchmark payload (or a field within
    it) is absent from the measurements dict."""


def _need(measurements, benchmark):
    try:
        return measurements[benchmark]
    except KeyError:
        raise MissingMeasurement(benchmark)


def _field(payload, *path):
    value = payload
    for key in path:
        try:
            value = value[key]
        except (KeyError, IndexError, TypeError):
            raise MissingMeasurement("/".join(str(p) for p in path))
    return value


def _t1_row(measurements, voltage_key, name):
    rows = _field(_need(measurements, "table1_handlers"), voltage_key)
    for row in rows:
        if row.get("name") == name:
            return row
    raise MissingMeasurement("table1_handlers/%s/%s" % (voltage_key, name))


# -- claim types --------------------------------------------------------------


@dataclass(frozen=True)
class PaperClaim:
    """Common identity of one checkable claim."""

    id: str          #: stable dotted id, e.g. ``table1.packet_reception.ins``
    section: str     #: the paper section/table/figure it belongs to
    metric: str      #: human-readable metric description
    benchmark: str   #: measurements key the claim reads from
    source: str = SOURCE_PAPER


@dataclass(frozen=True)
class ValueClaim(PaperClaim):
    """One number with a tolerance band.

    Either *band* (multiplicative ``(low, high)`` bounds on
    ``measured / expected``) or *band_abs* (``|measured - expected|``
    bound) must be given.  ``match_rel`` / ``match_abs`` define the
    tight inner band that earns a ``match`` grade; anything else inside
    the tolerance band grades ``within_band``; outside it, ``drift``.
    """

    unit: str = ""
    expected: float = 0.0
    extract: Callable = None
    band: Optional[Tuple[float, float]] = None
    band_abs: Optional[float] = None
    match_rel: float = 0.02
    match_abs: Optional[float] = None


@dataclass(frozen=True)
class ShapeClaim(PaperClaim):
    """A structural constraint: *check* returns ``(ok, detail)``."""

    check: Callable = None


# -- the registry -------------------------------------------------------------


def _vc(claims, **kwargs):
    claims.append(ValueClaim(**kwargs))


def _sc(claims, **kwargs):
    claims.append(ShapeClaim(**kwargs))


#: Figure 4 recorded baseline, pJ/ins at (1.8 V, 0.9 V, 0.6 V) -- the
#: paper publishes the figure as bars without exact numbers, so these
#: anchor to EXPERIMENTS.md's measured values (drift guard).
FIG4_BASELINE_PJ = {
    "Arith Reg":   (143.0, 35.8, 15.9),
    "Logical Reg": (141.0, 35.3, 15.7),
    "Shift":       (143.0, 35.8, 15.9),
    "Branch":      (145.0, 36.3, 16.1),
    "Timer":       (147.0, 36.7, 16.3),
    "Rand":        (151.0, 37.8, 16.8),
    "Logical Imm": (220.0, 55.0, 24.4),
    "Bitfield":    (220.0, 55.0, 24.4),
    "Arith Imm":   (222.0, 55.5, 24.7),
    "Load":        (299.0, 74.7, 33.2),
    "Store":       (299.0, 74.7, 33.2),
    "IMem Load":   (316.0, 79.0, 35.1),
}

FIG4_TIER_ONE_WORD = ("Arith Reg", "Logical Reg", "Shift", "Branch")
FIG4_TIER_TWO_WORD = ("Arith Imm", "Logical Imm", "Bitfield")
FIG4_TIER_MEMORY = ("Load", "Store")

#: Table 1: paper's (dynamic instructions, nJ at 1.8 V, nJ at 0.6 V).
TABLE1_PAPER = {
    "Packet Transmission": (70, 15.1, 1.6),
    "Packet Reception":    (103, 22.5, 2.5),
    "AODV Route Reply":    (224, 48.1, 5.2),
    "AODV Forward":        (245, 53.7, 5.9),
    "Temperature App":     (140, 30.5, 3.4),
    "Threshold App":       (155, 33.7, 3.8),
}

#: Table 1's average energy/instruction per voltage (pJ).
TABLE1_PAPER_EPI_PJ = {"1.8": 217.0, "0.9": 54.8, "0.6": 23.8}

VOLTAGE_KEYS = ("1.8", "0.9", "0.6")

#: The paper's Atmel comparison point (Table 2).
ATMEL_EPI_J = 1500e-12
XSCALE_EPI_J = 1e-9


def _slug(name):
    return name.lower().replace(" ", "_").replace("/", "_")


def build_claims():
    """Construct the full claims registry, in EXPERIMENTS.md order."""
    claims = []

    # -- Section 4.3: throughput and wake-up latency --------------------------
    paper_mips = {"1.8": 240.0, "0.9": 61.0, "0.6": 28.0}
    paper_wakeup_ns = {"1.8": 2.5, "0.9": 9.8, "0.6": 21.4}
    for vk in VOLTAGE_KEYS:
        _vc(claims, id="s43.mips.%sv" % vk, section="Section 4.3",
            metric="Throughput @%sV" % vk, benchmark="throughput_wakeup",
            unit="MIPS", expected=paper_mips[vk], band=(0.85, 1.15),
            match_rel=0.03,
            extract=lambda m, vk=vk: _field(
                _need(m, "throughput_wakeup"), vk, "mips"))
        _vc(claims, id="s43.wakeup_ns.%sv" % vk, section="Section 4.3",
            metric="Wakeup latency @%sV" % vk, benchmark="throughput_wakeup",
            unit="ns", expected=paper_wakeup_ns[vk], band=(0.99, 1.01),
            match_rel=0.01,
            extract=lambda m, vk=vk: 1e9 * _field(
                _need(m, "throughput_wakeup"), vk, "wakeup_latency_s"))

    def mips_scaling(m):
        tw = _need(m, "throughput_wakeup")
        r09 = _field(tw, "1.8", "mips") / _field(tw, "0.9", "mips")
        r06 = _field(tw, "1.8", "mips") / _field(tw, "0.6", "mips")
        ok = (abs(r09 / (240.0 / 61.0) - 1) <= 0.05
              and abs(r06 / (240.0 / 28.0) - 1) <= 0.05)
        return ok, ("1.8V/0.9V = %.2f (paper %.2f), 1.8V/0.6V = %.2f "
                    "(paper %.2f)" % (r09, 240 / 61, r06, 240 / 28))

    _sc(claims, id="s43.mips_scaling", section="Section 4.3",
        metric="Voltage-scaling ratios of throughput are the paper's own",
        benchmark="throughput_wakeup", check=mips_scaling)

    def atmel_wakeup_gap(m):
        slowest = _field(_need(m, "throughput_wakeup"),
                         "0.6", "wakeup_latency_s")
        save = WAKEUP_LATENCY_POWER_SAVE_S / slowest
        down = WAKEUP_LATENCY_POWER_DOWN_S / slowest
        return (save > 1e5 and down > 1e6,
                "power-save %.1e x, power-down %.1e x slower" % (save, down))

    _sc(claims, id="s43.atmel_wakeup_gap", section="Section 4.3",
        metric="Atmel deep-sleep wakeup is 5-7 orders of magnitude slower",
        benchmark="throughput_wakeup", check=atmel_wakeup_gap)

    # -- Figure 4: energy per instruction type --------------------------------
    for name, baselines in FIG4_BASELINE_PJ.items():
        for vk, expected in zip(VOLTAGE_KEYS, baselines):
            _vc(claims, id="fig4.%s.%sv" % (_slug(name), vk),
                section="Figure 4", metric="%s energy @%sV" % (name, vk),
                benchmark="fig4_energy_per_class", unit="pJ/ins",
                source=SOURCE_REPRO, expected=expected, band=(0.92, 1.08),
                extract=lambda m, vk=vk, name=name: 1e12 * _field(
                    _need(m, "fig4_energy_per_class"), vk, name))

    def fig4_tiers(m, vk):
        table = _field(_need(m, "fig4_energy_per_class"), vk)
        one = max(table[c] for c in FIG4_TIER_ONE_WORD)
        two_lo = min(table[c] for c in FIG4_TIER_TWO_WORD)
        two_hi = max(table[c] for c in FIG4_TIER_TWO_WORD)
        mem = min(table[c] for c in FIG4_TIER_MEMORY)
        return (one < two_lo and two_hi < mem,
                "one-word <= %.1f pJ < two-word %.1f-%.1f pJ < memory "
                ">= %.1f pJ" % (one * 1e12, two_lo * 1e12, two_hi * 1e12,
                                mem * 1e12))

    for vk in VOLTAGE_KEYS:
        _sc(claims, id="fig4.tiers.%sv" % vk, section="Figure 4",
            metric="Three energy tiers (register < immediate < memory) "
                   "@%sV" % vk,
            benchmark="fig4_energy_per_class",
            check=lambda m, vk=vk: fig4_tiers(m, vk))

    def fig4_under_300(m):
        table = _field(_need(m, "fig4_energy_per_class"), "1.8")
        common = {n: e for n, e in table.items() if n != "IMem Load"}
        worst = max(common.values())
        return (worst < 300e-12 and table["IMem Load"] < 320e-12,
                "worst common class %.1f pJ; IMem Load %.1f pJ"
                % (worst * 1e12, table["IMem Load"] * 1e12))

    _sc(claims, id="fig4.under_300pj.1.8v", section="Figure 4",
        metric="Under 300 pJ/ins at 1.8V for the common classes",
        benchmark="fig4_energy_per_class", check=fig4_under_300)

    def fig4_under_75(m):
        table = _field(_need(m, "fig4_energy_per_class"), "0.6")
        worst = max(table.values())
        cheap = sum(1 for e in table.values() if e < 25e-12)
        return (worst < 75e-12 and cheap >= len(table) // 2,
                "worst %.1f pJ; %d/%d classes under 25 pJ"
                % (worst * 1e12, cheap, len(table)))

    _sc(claims, id="fig4.under_75pj.0.6v", section="Figure 4",
        metric="Less than 75 pJ/ins at 0.6V, many types under 25 pJ/ins",
        benchmark="fig4_energy_per_class", check=fig4_under_75)

    def fig4_vscale(m, vk, ratio):
        table18 = _field(_need(m, "fig4_energy_per_class"), "1.8")
        table = _field(_need(m, "fig4_energy_per_class"), vk)
        worst_name = max(table, key=lambda n: abs(table[n] / table18[n]
                                                  - ratio))
        worst = table[worst_name] / table18[worst_name]
        return (all(abs(table[n] / table18[n] - ratio) <= 0.02
                    for n in table),
                "worst class %s scales x%.3f (target x%.3f)"
                % (worst_name, worst, ratio))

    _sc(claims, id="fig4.vscale.0.9v", section="Figure 4",
        metric="Per-class voltage scaling x0.25 at 0.9V",
        benchmark="fig4_energy_per_class",
        check=lambda m: fig4_vscale(m, "0.9", 0.25))
    _sc(claims, id="fig4.vscale.0.6v", section="Figure 4",
        metric="Per-class voltage scaling x0.111 at 0.6V",
        benchmark="fig4_energy_per_class",
        check=lambda m: fig4_vscale(m, "0.6", 1.0 / 9.0))

    # -- Section 4.4: core energy distribution --------------------------------
    paper_fractions = {"datapath": 0.33, "fetch": 0.20, "decode": 0.16,
                       "mem_if": 0.09, "misc": 0.22}
    for bucket, expected in paper_fractions.items():
        _vc(claims, id="s44.fraction.%s" % bucket, section="Section 4.4",
            metric="Core energy share: %s" % bucket,
            benchmark="energy_breakdown", unit="fraction",
            expected=expected, band_abs=0.05, match_abs=0.01,
            extract=lambda m, bucket=bucket: _field(
                _need(m, "energy_breakdown"), "core_fractions", bucket))
    _vc(claims, id="s44.memory_share", section="Section 4.4",
        metric="Memory arrays' share of total energy",
        benchmark="energy_breakdown", unit="fraction",
        expected=0.50, band_abs=0.08, match_abs=0.04,
        extract=lambda m: _field(_need(m, "energy_breakdown"),
                                 "memory_share"))

    def breakdown_ordering(m):
        fractions = _field(_need(m, "energy_breakdown"), "core_fractions")
        biggest = max(fractions, key=fractions.get)
        smallest = min(fractions, key=fractions.get)
        return (biggest == "datapath" and smallest == "mem_if",
                "largest %s, smallest %s" % (biggest, smallest))

    _sc(claims, id="s44.ordering", section="Section 4.4",
        metric="Datapath is the largest core consumer, memory interface "
               "the smallest", benchmark="energy_breakdown",
        check=breakdown_ordering)

    # -- Table 1: handler code statistics -------------------------------------
    for name, (ins, e18_nj, e06_nj) in TABLE1_PAPER.items():
        slug = _slug(name)
        _vc(claims, id="table1.%s.ins" % slug, section="Table 1",
            metric="%s dynamic instructions" % name,
            benchmark="table1_handlers", unit="ins",
            expected=float(ins), band=(0.6, 1.6), match_rel=0.05,
            extract=lambda m, name=name: float(
                _field(_t1_row(m, "0.6", name), "instructions")))
        _vc(claims, id="table1.%s.energy.1.8v" % slug, section="Table 1",
            metric="%s energy @1.8V" % name,
            benchmark="table1_handlers", unit="nJ",
            expected=e18_nj, band=(0.55, 1.45), match_rel=0.05,
            extract=lambda m, name=name: 1e9 * _field(
                _t1_row(m, "1.8", name), "energy"))
        _vc(claims, id="table1.%s.energy.0.6v" % slug, section="Table 1",
            metric="%s energy @0.6V" % name,
            benchmark="table1_handlers", unit="nJ",
            expected=e06_nj, band=(0.55, 1.45), match_rel=0.05,
            extract=lambda m, name=name: 1e9 * _field(
                _t1_row(m, "0.6", name), "energy"))

    def suite_epi(m, vk):
        rows = _field(_need(m, "table1_handlers"), vk)
        return (1e12 * sum(r["energy"] for r in rows)
                / sum(r["instructions"] for r in rows))

    for vk in VOLTAGE_KEYS:
        _vc(claims, id="table1.epi.%sv" % vk, section="Table 1",
            metric="Average energy/instruction @%sV" % vk,
            benchmark="table1_handlers", unit="pJ/ins",
            expected=TABLE1_PAPER_EPI_PJ[vk], band=(0.85, 1.15),
            match_rel=0.03,
            extract=lambda m, vk=vk: suite_epi(m, vk))

    def table1_ordering(m):
        costs = {r["name"]: r["instructions"]
                 for r in _field(_need(m, "table1_handlers"), "0.6")}
        tx, rx = costs["Packet Transmission"], costs["Packet Reception"]
        rrep, fwd = costs["AODV Route Reply"], costs["AODV Forward"]
        ok = (tx < rx < rrep and rx < fwd
              and abs(rrep - fwd) < 0.4 * fwd)
        return ok, ("TX %d < RX %d < RREP %d ~ FWD %d"
                    % (tx, rx, rrep, fwd))

    _sc(claims, id="table1.ordering", section="Table 1",
        metric="Handler cost ordering TX < RX < routing preserved",
        benchmark="table1_handlers", check=table1_ordering)

    def table1_energy_regime(m):
        rows18 = _field(_need(m, "table1_handlers"), "1.8")
        rows06 = _field(_need(m, "table1_handlers"), "0.6")
        ok = (all(5e-9 < r["energy"] < 100e-9 for r in rows18)
              and all(0.5e-9 < r["energy"] < 10e-9 for r in rows06))
        return ok, ("1.8V: %.1f-%.1f nJ; 0.6V: %.1f-%.1f nJ" % (
            min(r["energy"] for r in rows18) * 1e9,
            max(r["energy"] for r in rows18) * 1e9,
            min(r["energy"] for r in rows06) * 1e9,
            max(r["energy"] for r in rows06) * 1e9))

    _sc(claims, id="table1.energy_regime", section="Table 1",
        metric="Handlers cost tens of nJ at 1.8V, single-digit nJ at 0.6V",
        benchmark="table1_handlers", check=table1_energy_regime)

    def table1_code_size(m):
        payload = _need(m, "table1_code_size")
        total = (_field(payload, "network_bytes")
                 + _field(payload, "temperature_bytes"))
        return (1000 < total < 3600 and total < 4096,
                "%d B total (paper ~2.8 KB; 4 KB IMEM)" % total)

    _sc(claims, id="table1.code_size", section="Table 1",
        metric="Application suite fits the 4 KB IMEM with room to spare",
        benchmark="table1_code_size", check=table1_code_size)

    # -- Figure 5: the Blink comparison ---------------------------------------
    fig5 = [
        ("fig5.snap_cycles", "SNAP cycles/blink", "cycles", 41.0,
         (0.6, 1.4), lambda m: _field(_need(m, "fig5_blink"),
                                      "snap_cycles")),
        ("fig5.snap_energy.1.8v", "SNAP energy/blink @1.8V", "nJ", 6.8,
         (0.5, 1.5), lambda m: 1e9 * _field(_need(m, "fig5_blink"),
                                            "snap_energy_18")),
        ("fig5.snap_energy.0.6v", "SNAP energy/blink @0.6V", "nJ", 0.5,
         (0.5, 1.5), lambda m: 1e9 * _field(_need(m, "fig5_blink"),
                                            "snap_energy_06")),
        ("fig5.mote_cycles", "Mote cycles/blink", "cycles", 523.0,
         (0.75, 1.25), lambda m: _field(_need(m, "fig5_blink"),
                                        "avr_cycles")),
        ("fig5.mote_energy", "Mote energy/blink", "nJ", 1960.0,
         (0.7, 1.3), lambda m: 1e9 * _field(_need(m, "fig5_blink"),
                                            "avr_energy")),
    ]
    for cid, metric, unit, expected, band, extract in fig5:
        _vc(claims, id=cid, section="Figure 5", metric=metric,
            benchmark="fig5_blink", unit=unit, expected=expected,
            band=band, match_rel=0.05, extract=extract)
    _vc(claims, id="fig5.mote_useful_cycles", section="Figure 5",
        metric="Mote useful cycles/blink", benchmark="fig5_blink",
        unit="cycles", expected=16.0, band_abs=6.0, match_abs=2.0,
        extract=lambda m: _field(_need(m, "fig5_blink"),
                                 "avr_useful_cycles"))
    _vc(claims, id="fig5.snap_code_size", section="Figure 5",
        metric="SNAP Blink code size", benchmark="fig5_code_size",
        unit="B", expected=184.0, band=(0.5, 2.7), match_rel=0.10,
        extract=lambda m: float(_field(_need(m, "fig5_code_size"),
                                       "snap_bytes")))

    def fig5_overhead(m):
        payload = _need(m, "fig5_blink")
        fraction = (_field(payload, "avr_overhead_cycles")
                    / _field(payload, "avr_cycles"))
        return fraction > 0.9, "%.0f%% of mote cycles are overhead" % (
            100 * fraction)

    _sc(claims, id="fig5.mote_overhead", section="Figure 5",
        metric="Mote spends >90% of cycles on scheduling overhead",
        benchmark="fig5_blink", check=fig5_overhead)

    def fig5_ratios(m):
        payload = _need(m, "fig5_blink")
        cyc = _field(payload, "avr_cycles") / _field(payload, "snap_cycles")
        e18 = (_field(payload, "avr_energy")
               / _field(payload, "snap_energy_18"))
        e06 = (_field(payload, "avr_energy")
               / _field(payload, "snap_energy_06"))
        return (cyc > 10 and e18 > 100 and e06 > 1000,
                "cycles %.0fx, energy %.0fx @1.8V / %.0fx @0.6V"
                % (cyc, e18, e06))

    _sc(claims, id="fig5.ratios", section="Figure 5",
        metric="SNAP: >10x fewer cycles, >100x (1.8V) / >1000x (0.6V) "
               "less energy", benchmark="fig5_blink", check=fig5_ratios)

    def fig5_code_ratio(m):
        payload = _need(m, "fig5_code_size")
        snap = _field(payload, "snap_bytes")
        avr = _field(payload, "avr_bytes")
        return (snap < 500 and avr > snap,
                "SNAP %d B vs mote %d B" % (snap, avr))

    _sc(claims, id="fig5.code_ratio", section="Figure 5",
        metric="SNAP Blink under 500 B and smaller than the mote build",
        benchmark="fig5_code_size", check=fig5_code_ratio)

    # -- Section 4.6: Sense ---------------------------------------------------
    _vc(claims, id="sense.snap_cycles", section="Section 4.6 (Sense)",
        metric="SNAP cycles/iteration", benchmark="sense", unit="cycles",
        expected=261.0, band=(0.7, 1.3), match_rel=0.05,
        extract=lambda m: _field(_need(m, "sense"), "snap_cycles"))
    _vc(claims, id="sense.mote_cycles", section="Section 4.6 (Sense)",
        metric="Mote cycles/iteration", benchmark="sense", unit="cycles",
        expected=1118.0, band=(0.55, 1.45), match_rel=0.05,
        extract=lambda m: _field(_need(m, "sense"), "avr_cycles"))

    def sense_shape(m):
        payload = _need(m, "sense")
        overhead = _field(payload, "avr_overhead_fraction")
        ratio = (_field(payload, "avr_cycles")
                 / _field(payload, "snap_cycles"))
        return (overhead > 0.70 and ratio > 2.0,
                "mote overhead %.0f%%, mote/SNAP %.1fx"
                % (100 * overhead, ratio))

    _sc(claims, id="sense.shape", section="Section 4.6 (Sense)",
        metric="Most mote cycles are overhead; SNAP several times cheaper",
        benchmark="sense", check=sense_shape)

    # -- Section 4.6: high-speed radio stack ----------------------------------
    _vc(claims, id="radiostack.snap_cycles",
        section="Section 4.6 (RadioStack)", metric="SNAP cycles/byte",
        benchmark="radiostack", unit="cycles", expected=331.0,
        band=(0.65, 1.35), match_rel=0.05,
        extract=lambda m: _field(_need(m, "radiostack"), "snap_cycles"))
    _vc(claims, id="radiostack.mote_cycles",
        section="Section 4.6 (RadioStack)", metric="Mote cycles/byte",
        benchmark="radiostack", unit="cycles", expected=780.0,
        band=(0.75, 1.25), match_rel=0.05,
        extract=lambda m: _field(_need(m, "radiostack"), "avr_cycles"))

    def radiostack_shape(m):
        payload = _need(m, "radiostack")
        reduction = 1.0 - (_field(payload, "snap_cycles")
                           / _field(payload, "avr_cycles"))
        isr = _field(payload, "avr_overhead_fraction")
        return (reduction > 0.5 and isr > 0.25,
                "%.0f%% cycle reduction; %.0f%% mote ISR overhead"
                % (100 * reduction, 100 * isr))

    _sc(claims, id="radiostack.shape", section="Section 4.6 (RadioStack)",
        metric="SNAP more than halves cycles/byte; mote ISR share "
               "substantial", benchmark="radiostack",
        check=radiostack_shape)

    # -- Table 2: related microcontrollers ------------------------------------
    _vc(claims, id="table2.epi.0.6v", section="Table 2",
        metric="SNAP/LE energy/instruction @0.6V (handler suite)",
        benchmark="table2_platforms", unit="pJ/ins", expected=24.0,
        band=(0.85, 1.15), match_rel=0.05,
        extract=lambda m: 1e12 * _field(_need(m, "table2_platforms"),
                                        "0.6", 1))
    _vc(claims, id="table2.epi.1.8v", section="Table 2",
        metric="SNAP/LE energy/instruction @1.8V (handler suite)",
        benchmark="table2_platforms", unit="pJ/ins", expected=218.0,
        band=(0.85, 1.15), match_rel=0.05,
        extract=lambda m: 1e12 * _field(_need(m, "table2_platforms"),
                                        "1.8", 1))
    _vc(claims, id="table2.atmel_ratio", section="Table 2",
        metric="Atmel energy/ins over SNAP/LE @0.6V ('almost 68x')",
        benchmark="table2_platforms", unit="x", expected=68.0,
        band=(0.8, 1.2), match_rel=0.05,
        extract=lambda m: ATMEL_EPI_J / _field(
            _need(m, "table2_platforms"), "0.6", 1))

    def xscale_ratio(m):
        ratio = XSCALE_EPI_J / _field(_need(m, "table2_platforms"),
                                      "1.8", 1)
        return 2.5 <= ratio <= 6.5, ("XScale-class 1 nJ/ins is %.1fx "
                                     "SNAP/LE @1.8V" % ratio)

    _sc(claims, id="table2.xscale_ratio", section="Table 2",
        metric="XScale-class parts cost three to five times SNAP/LE @1.8V",
        benchmark="table2_platforms", check=xscale_ratio)

    # -- Section 4.7: results summary -----------------------------------------
    summary_rows = {
        "1.8": {"min_nj": 15.0, "max_nj": 55.0,
                "low_nw": 150.0, "high_nw": 550.0},
        "0.6": {"min_nj": 1.6, "max_nj": 5.8,
                "low_nw": 16.0, "high_nw": 58.0},
    }
    for vk, row in summary_rows.items():
        _vc(claims, id="s47.handler_min.%sv" % vk, section="Section 4.7",
            metric="Cheapest handler energy @%sV" % vk,
            benchmark="results_summary", unit="nJ", expected=row["min_nj"],
            band=(0.55, 1.45), match_rel=0.05,
            extract=lambda m, vk=vk: 1e9 * _field(
                _need(m, "results_summary"), vk, "min_handler_energy"))
        _vc(claims, id="s47.handler_max.%sv" % vk, section="Section 4.7",
            metric="Costliest handler energy @%sV" % vk,
            benchmark="results_summary", unit="nJ", expected=row["max_nj"],
            band=(0.55, 1.45), match_rel=0.05,
            extract=lambda m, vk=vk: 1e9 * _field(
                _need(m, "results_summary"), vk, "max_handler_energy"))
        _vc(claims, id="s47.power_low.%sv" % vk, section="Section 4.7",
            metric="Power floor at 10 events/s @%sV" % vk,
            benchmark="results_summary", unit="nW", expected=row["low_nw"],
            band=(0.55, 1.45), match_rel=0.05,
            extract=lambda m, vk=vk: 1e9 * _field(
                _need(m, "results_summary"), vk, "power_at_10hz_low"))
        _vc(claims, id="s47.power_high.%sv" % vk, section="Section 4.7",
            metric="Power ceiling at 10 events/s @%sV" % vk,
            benchmark="results_summary", unit="nW", expected=row["high_nw"],
            band=(0.55, 1.45), match_rel=0.05,
            extract=lambda m, vk=vk: 1e9 * _field(
                _need(m, "results_summary"), vk, "power_at_10hz_high"))

    def nanowatt_regime(m):
        worst = max(_field(_need(m, "results_summary"), vk,
                           "power_at_10hz_high") for vk in ("1.8", "0.6"))
        return worst < 1e-6, "worst case %.0f nW" % (worst * 1e9)

    _sc(claims, id="s47.nanowatt_regime", section="Section 4.7",
        metric="Active power at <=10 events/s stays under a microwatt",
        benchmark="results_summary", check=nanowatt_regime)

    def s47_scaling(m):
        ratio = (_field(_need(m, "results_summary"), "1.8",
                        "max_handler_energy")
                 / _field(_need(m, "results_summary"), "0.6",
                          "max_handler_energy"))
        return (abs(ratio / 9.0 - 1) <= 0.1,
                "1.8V/0.6V handler energy ratio %.2f (CV^2 predicts 9)"
                % ratio)

    _sc(claims, id="s47.voltage_scaling", section="Section 4.7",
        metric="Handler energy scales ~9x between 1.8V and 0.6V",
        benchmark="results_summary", check=s47_scaling)

    # -- Extensions (EXPERIMENTS.md, not tables in the paper) -----------------

    def eventqueue_shape(m):
        payload = _need(m, "ablation_eventqueue")
        hw_ins, hw_energy = _field(payload, "hardware")
        sw_ins, sw_energy = _field(payload, "software")
        saved = 1 - hw_ins / sw_ins
        return (sw_ins > 1.5 * hw_ins and sw_energy > 1.5 * hw_energy,
                "queue hardware removes %.0f%% of per-event instructions "
                "(%.0f vs %.0f)" % (100 * saved, hw_ins, sw_ins))

    _sc(claims, id="ext.eventqueue", section="Extensions",
        metric="Hardware event queue removes a material share of "
               "per-event work", benchmark="ablation_eventqueue",
        check=eventqueue_shape)

    def bus_shape(m):
        payload = _need(m, "ablation_bus")
        h = _field(payload, "hierarchical_epi")
        f = _field(payload, "flat_epi")
        saved = (f - h) / f
        return (f > h and saved > 0.03,
                "hierarchy saves %.1f%% (%.1f vs %.1f pJ/ins)"
                % (100 * saved, h * 1e12, f * 1e12))

    _sc(claims, id="ext.bus_hierarchy", section="Extensions",
        metric="Two-level bus hierarchy saves energy on the handler suite",
        benchmark="ablation_bus", check=bus_shape)

    def radio_if_shape(m):
        payload = _need(m, "ablation_radio_interface")
        word, bit = _field(payload, "word"), _field(payload, "bit")
        return (bit["instructions"] > 3 * word["instructions"]
                and bit["energy_j"] > 3 * word["energy_j"]
                and bit["wakeups"] >= 10 * word["wakeups"],
                "bit-banging: %dx instructions, %dx wakeups"
                % (bit["instructions"] // max(word["instructions"], 1),
                   bit["wakeups"] // max(word["wakeups"], 1)))

    _sc(claims, id="ext.radio_interface", section="Extensions",
        metric="Word-level radio interface beats bit-by-bit servicing "
               "severalfold", benchmark="ablation_radio_interface",
        check=radio_if_shape)

    def sweep_shape(m):
        rows = _field(_need(m, "voltage_sweep"), "sweep")
        mips = [row[1] for row in rows]
        epi = [row[2] for row in rows]
        return (mips == sorted(mips) and epi == sorted(epi)
                and epi[0] < epi[1],
                "MIPS and pJ/ins both rise monotonically with voltage; "
                "energy keeps falling below 0.6V")

    _sc(claims, id="ext.voltage_sweep", section="Extensions",
        metric="Energy/performance curve is monotonic; sub-0.6V keeps "
               "saving energy", benchmark="voltage_sweep",
        check=sweep_shape)
    _vc(claims, id="ext.voltage_sweep.epi.0.6v", section="Extensions",
        metric="Sweep workload energy/instruction @0.6V",
        benchmark="voltage_sweep", unit="pJ/ins", expected=24.0,
        band=(0.75, 1.25), match_rel=0.10,
        extract=lambda m: 1e12 * next(
            row[2] for row in _field(_need(m, "voltage_sweep"), "sweep")
            if abs(row[0] - 0.6) < 1e-9))

    def lifetime_shape(m):
        payload = _need(m, "network_lifetime")
        deliveries = _field(payload, "sink_deliveries")
        nodes = _field(payload, "nodes")
        powers = [node["average_power_w"] for node in nodes.values()]
        forwards = {int(nid): node["packets_forwarded"]
                    for nid, node in nodes.items()}
        comparison = _field(payload, "comparison")
        ratio = (comparison["snap_lifetime_s"]
                 / comparison["mote_lifetime_s"])
        ok = (deliveries >= 280 and max(powers) < 1e-6
              and forwards[2] > forwards[3] > forwards[4]
              and ratio > 100)
        return ok, ("%d deliveries; worst node %.0f nW; funnel %d>%d>%d; "
                    "lifetime %.0fx a mote" % (
                        deliveries, max(powers) * 1e9, forwards[2],
                        forwards[3], forwards[4], ratio))

    _sc(claims, id="ext.network_lifetime", section="Extensions",
        metric="Convergecast chain: nanowatt processors, relay funnel, "
               ">100x mote lifetime", benchmark="network_lifetime",
        check=lifetime_shape)

    return claims


#: The registry, in EXPERIMENTS.md order.
CLAIMS = build_claims()


def claims_by_id(claims=None):
    """``{claim.id: claim}`` over *claims* (default: the full registry)."""
    table = {}
    for claim in (claims if claims is not None else CLAIMS):
        if claim.id in table:
            raise ValueError("duplicate claim id %r" % claim.id)
        table[claim.id] = claim
    return table


# Fail fast on registry mistakes at import time.
claims_by_id()
