"""Produce the measurements the claims registry is graded against.

Two sources, one shape:

* :func:`collect` runs the benchmark harness directly (sharing the
  expensive handler-table runs between the claims that need them) and
  returns ``{benchmark_name: entry}``;
* :func:`load_results_dir` ingests ``BENCH_*.json`` dumps written by the
  benchmark suite under ``BENCH_RESULTS_DIR``.

Either way every entry is ``{"results": payload, "metrics": ...,
"host": ...}`` where *payload* has been normalised through
:func:`repro.bench.reporting._jsonable`, so claim extractors see the
exact structure of the JSON dumps (dataclasses as dicts, voltage keys
as strings) regardless of the source.
"""

import copy
import glob
import json
import os
import time
from collections import OrderedDict

from repro.baseline import build_avr_blink
from repro.bench.ablations import (
    bus_ablation,
    eventqueue_ablation,
    radio_interface_ablation,
    voltage_sweep,
)
from repro.bench.harness import (
    VOLTAGES,
    blink_comparison,
    energy_breakdown,
    handler_table,
    instruction_class_energy,
    radiostack_comparison,
    sense_comparison,
    throughput_and_wakeup,
)
from repro.bench.reporting import _jsonable
from repro.netstack import build_blink_app, build_temperature_app
from repro.netstack.drivers import build_aodv_node
from repro.network.experiments import convergecast, lifetime_comparison
from repro.obs import Observability


class _Cache:
    """Shares the handler-table and throughput runs between collectors:
    Table 1, Section 4.3, Table 2, and Section 4.7 all reduce the same
    six scenarios, so one run per voltage feeds all of them."""

    def __init__(self):
        self._handler_tables = {}
        self._throughput = {}
        self.obs = Observability()

    def handler_table(self, voltage):
        if voltage not in self._handler_tables:
            self._handler_tables[voltage] = handler_table(voltage,
                                                          obs=self.obs)
        return self._handler_tables[voltage]

    def throughput(self, voltage):
        if voltage not in self._throughput:
            self._throughput[voltage] = throughput_and_wakeup(
                voltage, rows=self.handler_table(voltage))
        return self._throughput[voltage]


def _collect_fig4(cache):
    return {voltage: instruction_class_energy(voltage, obs=cache.obs)
            for voltage in VOLTAGES}


def _collect_throughput(cache):
    return {voltage: cache.throughput(voltage) for voltage in VOLTAGES}


def _collect_table1(cache):
    return {voltage: cache.handler_table(voltage) for voltage in VOLTAGES}


def _collect_table1_code_size(cache):
    return {"network_bytes": build_aodv_node(1).text_size_bytes,
            "temperature_bytes": build_temperature_app().text_size_bytes}


def _collect_energy_breakdown(cache):
    return energy_breakdown(1.8, obs=cache.obs)


def _collect_fig5(cache):
    return blink_comparison(obs=cache.obs)


def _collect_fig5_code_size(cache):
    return {"snap_bytes": build_blink_app().text_size_bytes,
            "avr_bytes": build_avr_blink().size_bytes}


def _collect_sense(cache):
    return sense_comparison(obs=cache.obs)


def _collect_radiostack(cache):
    return radiostack_comparison(obs=cache.obs)


def _collect_table2(cache):
    points = {}
    for voltage in (0.6, 1.8):
        rows = cache.handler_table(voltage)
        energy = sum(row.energy for row in rows)
        instructions = sum(row.instructions for row in rows)
        mips = cache.throughput(voltage).mips
        points[voltage] = (mips * 1e6, energy / instructions)
    return points


def _collect_results_summary(cache):
    summaries = {}
    for voltage in (1.8, 0.6):
        rows = cache.handler_table(voltage)
        energies = [row.energy for row in rows]
        summaries[voltage] = {
            "voltage": voltage,
            "min_handler_energy": min(energies),
            "max_handler_energy": max(energies),
            "power_at_10hz_low": min(energies) * 10,
            "power_at_10hz_high": max(energies) * 10,
        }
    return summaries


def _collect_network_lifetime(cache):
    result = convergecast(chain_length=4, period_s=0.1, duration_s=10.0,
                          sample_every=0.5)
    comparison = lifetime_comparison(result, battery_j=2000.0)
    payload = {"nodes": result.nodes, "comparison": comparison,
               "sink_deliveries": result.sink_deliveries,
               "drain": result.drain}
    return payload, result.metrics


def _collect_ablation_eventqueue(cache):
    return eventqueue_ablation(obs=cache.obs)


def _collect_ablation_bus(cache):
    return bus_ablation(obs=cache.obs)


def _collect_ablation_radio_interface(cache):
    return radio_interface_ablation(obs=cache.obs)


def _collect_voltage_sweep(cache):
    return {"sweep": voltage_sweep(obs=cache.obs)}


#: Collector per benchmark payload, in EXPERIMENTS.md order.  Keys are
#: the ``BENCH_<name>.json`` names the benchmark suite dumps.
COLLECTORS = OrderedDict([
    ("throughput_wakeup", _collect_throughput),
    ("fig4_energy_per_class", _collect_fig4),
    ("energy_breakdown", _collect_energy_breakdown),
    ("table1_handlers", _collect_table1),
    ("table1_code_size", _collect_table1_code_size),
    ("fig5_blink", _collect_fig5),
    ("fig5_code_size", _collect_fig5_code_size),
    ("sense", _collect_sense),
    ("radiostack", _collect_radiostack),
    ("table2_platforms", _collect_table2),
    ("results_summary", _collect_results_summary),
    ("ablation_eventqueue", _collect_ablation_eventqueue),
    ("ablation_bus", _collect_ablation_bus),
    ("ablation_radio_interface", _collect_ablation_radio_interface),
    ("voltage_sweep", _collect_voltage_sweep),
    ("network_lifetime", _collect_network_lifetime),
])


def collect(names=None, log=None):
    """Run the benchmark harness and return ``{name: entry}`` where each
    entry is ``{"results": ..., "metrics": ..., "host": ...}`` in the
    exact shape of the corresponding ``BENCH_<name>.json`` dump.

    *names* restricts collection to a subset of :data:`COLLECTORS`;
    *log* is an optional ``log(message)`` progress callable.
    """
    cache = _Cache()
    entries = OrderedDict()
    for name, collector in COLLECTORS.items():
        if names is not None and name not in names:
            continue
        if log is not None:
            log("collecting %s ..." % name)
        started = time.perf_counter()
        produced = collector(cache)
        wall = time.perf_counter() - started
        if isinstance(produced, tuple):
            payload, metrics = produced
        else:
            payload, metrics = produced, None
        entries[name] = {
            "results": _jsonable(payload),
            "metrics": _jsonable(metrics) if metrics is not None else None,
            "host": {"wall_time_s": wall},
        }
    # The shared-cache runs charge their wall time to whichever
    # collector touched them first; note the shared metrics snapshot so
    # report consumers can see the benchmark-side counters.
    if entries and names is None:
        entries["throughput_wakeup"]["metrics"] = _jsonable(
            cache.obs.metrics.snapshot())
    return entries


def measurements_view(entries):
    """The ``{name: results_payload}`` dict the claim extractors read."""
    return OrderedDict((name, entry["results"])
                       for name, entry in entries.items())


def load_results_dir(directory):
    """Ingest every ``BENCH_*.json`` in *directory* (written by the
    benchmark suite via :func:`repro.bench.reporting.dump_results`)."""
    entries = OrderedDict()
    pattern = os.path.join(directory, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        with open(path) as handle:
            payload = json.load(handle)
        name = payload.get("benchmark") or os.path.basename(path)[6:-5]
        entries[name] = {
            "results": payload.get("results"),
            "metrics": payload.get("metrics"),
            "host": payload.get("host"),
        }
    return entries


#: Benchmarks whose payloads carry absolute energies; a calibration
#: error multiplies exactly these values, so the perturbation injector
#: scales them and nothing else.
_ENERGY_FIELDS = {
    "fig4_energy_per_class": "all",
    "table1_handlers": ("energy",),
    "fig5_blink": ("snap_energy_18", "snap_energy_06", "avr_energy"),
    "results_summary": ("min_handler_energy", "max_handler_energy",
                        "power_at_10hz_low", "power_at_10hz_high"),
    "table2_platforms": "epi",
    "ablation_bus": ("hierarchical_epi", "flat_epi"),
}


def perturb_measurements(measurements, factor):
    """Simulate a calibration error: scale every energy-dimensioned
    value by *factor* and return a deep-copied measurements dict.

    This is what a mis-scaled ``unit_pj`` calibration does to the
    simulator -- all absolute instruction energies move together while
    counts and cycle numbers stay put -- and it is what the CI gate's
    self-test injects to prove drift actually fails the build.
    """

    def scale_fields(node, fields):
        if isinstance(node, dict):
            for key, value in node.items():
                if key in fields and isinstance(value, (int, float)):
                    node[key] = value * factor
                else:
                    scale_fields(value, fields)
        elif isinstance(node, list):
            for item in node:
                scale_fields(item, fields)

    perturbed = copy.deepcopy(measurements)
    for name, spec in _ENERGY_FIELDS.items():
        payload = perturbed.get(name)
        if payload is None:
            continue
        if spec == "all":
            for table in payload.values():
                for key in table:
                    table[key] *= factor
        elif spec == "epi":
            for point in payload.values():
                point[1] *= factor
        else:
            scale_fields(payload, set(spec))
    return perturbed
