"""Cross-run benchmark trajectories.

A single ``BENCH_RESULTS_DIR`` answers "what did this run measure"; a
*trajectory* answers "how have those measurements moved across runs" --
across CI builds, across commits, or across machines.  Point
:func:`trajectory` at any number of results directories (the current
one plus however many archived ones are kept around) and it flattens
each run's ``BENCH_*.json`` dumps into one comparable metric set:

* every numeric top-level field of each benchmark's ``results`` payload
  (``network_lifetime.sink_deliveries``, ...);
* each benchmark's host wall-clock cost (``<name>.wall_time_s``);
* the sim-speed scenarios' speedups and fast-path rates
  (``sim_speed.<scenario>.speedup`` / ``.fast_ips``);
* the fidelity scorecard's grade counts and gate verdict, when a
  ``BENCH_FIDELITY.json`` is present (``fidelity.match``,
  ``fidelity.gate_ok``, ...).

The result renders as a table (rows = metrics, columns = runs, oldest
first -- ``snap-report --trajectory``) or dumps as JSON
(``repro.report.trajectory/1``) for plotting.
"""

import glob
import json
import os
from collections import OrderedDict

from repro.bench.reporting import format_table

SCHEMA = "repro.report.trajectory/1"


def _flatten_benchmark(name, payload, metrics):
    """Fold one ``BENCH_<name>.json`` payload into *metrics*."""
    key = name.lower()
    results = payload.get("results")
    if key == "fidelity" or "claims" in (payload or {}):
        summary = payload.get("summary") or {}
        for grade, count in sorted(summary.items()):
            metrics["fidelity.%s" % grade] = count
        gate = payload.get("gate") or {}
        if "ok" in gate:
            metrics["fidelity.gate_ok"] = int(bool(gate["ok"]))
        return
    if isinstance(results, dict):
        if results.get("schema") == "repro.bench.sweep/1":
            _flatten_sweep(results, metrics)
        elif key == "sim_speed":
            for scenario, row in sorted(results.items()):
                if isinstance(row, dict):
                    for field in ("speedup", "fast_ips"):
                        value = row.get(field)
                        if isinstance(value, (int, float)):
                            metrics["sim_speed.%s.%s"
                                    % (scenario, field)] = value
        else:
            for field, value in results.items():
                if isinstance(value, (int, float)) \
                        and not isinstance(value, bool):
                    metrics["%s.%s" % (key, field)] = value
    host = payload.get("host") or {}
    wall = host.get("wall_time_s")
    if isinstance(wall, (int, float)):
        metrics["%s.wall_time_s" % key] = wall


def _flatten_sweep(results, metrics):
    """Fold a ``repro.bench.sweep/1`` payload into *metrics*: grid
    health counts plus every cell's replica-mean aggregates, keyed by
    the cell's parameter label (``sweep.chain_ber.voltage=0.6,
    bit_error_rate=0.02.total_energy``) so the same operating point is
    comparable across runs regardless of grid order."""
    scenario = results.get("scenario", "sweep")
    prefix = "sweep.%s" % scenario
    for field in ("cells_total", "cells_ok", "cells_failed"):
        value = results.get(field)
        if isinstance(value, (int, float)):
            metrics["%s.%s" % (prefix, field)] = value
    for cell in results.get("cells") or ():
        if not isinstance(cell, dict) or not cell.get("ok"):
            continue
        params = cell.get("params") or {}
        label = ",".join("%s=%s" % (name, params[name])
                         for name in sorted(params))
        for field, stats in sorted((cell.get("aggregates") or {}).items()):
            if field in params or not isinstance(stats, dict):
                continue
            mean = stats.get("mean")
            if isinstance(mean, (int, float)):
                metrics["%s.%s.%s" % (prefix, label, field)] = mean


def scan_run(directory, label=None):
    """Flatten one results directory into ``{"label", "path",
    "metrics"}``; returns ``None`` when it holds no benchmark dumps."""
    metrics = OrderedDict()
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    for path in paths:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            continue
        if not isinstance(payload, dict):
            continue
        name = payload.get("benchmark") \
            or os.path.basename(path)[len("BENCH_"):-len(".json")]
        _flatten_benchmark(str(name), payload, metrics)
    if not metrics:
        return None
    return {
        "label": label or os.path.basename(os.path.normpath(directory)),
        "path": directory,
        "metrics": metrics,
    }


def trajectory(directories):
    """Aggregate several results directories, oldest first, into the
    ``repro.report.trajectory/1`` payload.

    Directories with no readable ``BENCH_*.json`` are skipped (and
    listed under ``skipped``); the metric-name union preserves
    first-seen order so related metrics stay adjacent in the table.
    """
    runs, skipped = [], []
    for directory in directories:
        run = scan_run(directory)
        if run is None:
            skipped.append(directory)
        else:
            runs.append(run)
    names = OrderedDict()
    for run in runs:
        for name in run["metrics"]:
            names.setdefault(name, None)
    return {"schema": SCHEMA, "runs": runs, "metrics": list(names),
            "skipped": skipped}


def _format_value(value):
    if value is None:
        return "-"
    if isinstance(value, int):
        return str(value)
    magnitude = abs(value)
    if magnitude != 0 and (magnitude >= 1e5 or magnitude < 1e-3):
        return "%.3e" % value
    return "%.4g" % value


def _format_delta(first, last):
    """Relative movement across the whole trajectory, when computable."""
    if not isinstance(first, (int, float)) \
            or not isinstance(last, (int, float)) or first == 0:
        return ""
    change = (last - first) / abs(first)
    if abs(change) < 0.0005:
        return "="
    return "%+.1f%%" % (change * 100.0)


def format_trajectory(payload):
    """Render the trajectory as a text table: one row per metric, one
    column per run, plus first-to-last relative movement."""
    runs = payload["runs"]
    if not runs:
        return "(no benchmark results found)"
    headers = ["metric"] + [run["label"] for run in runs] + ["trend"]
    rows = []
    for name in payload["metrics"]:
        values = [run["metrics"].get(name) for run in runs]
        present = [value for value in values if value is not None]
        trend = _format_delta(present[0], present[-1]) \
            if len(present) >= 2 else ""
        rows.append([name] + [_format_value(value) for value in values]
                    + [trend])
    title = "Benchmark trajectory over %d run%s" \
        % (len(runs), "" if len(runs) == 1 else "s")
    return format_table(headers, rows, title=title)


def write_trajectory_json(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path
