"""Grade the claims registry against a set of measurements.

The evaluator is deliberately dumb: it never runs a simulation, it only
reads the measurements dict produced by :mod:`repro.report.collect`
(live harness runs or ingested ``BENCH_*.json`` dumps) and applies each
claim's tolerance band or shape predicate.  Grades:

``match``
    within the tight inner band of the expected value (or the shape
    predicate holds);
``within_band``
    inside the claim's tolerance band but not a tight match;
``drift``
    outside the tolerance band -- the reproduction has moved;
``shape_violation``
    a structural constraint (ordering, ratio, bound) failed;
``missing``
    the benchmark payload the claim needs was not measured.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.report.claims import (
    CLAIMS,
    GRADE_DRIFT,
    GRADE_MATCH,
    GRADE_MISSING,
    GRADE_SEVERITY,
    GRADE_SHAPE_VIOLATION,
    GRADE_WITHIN_BAND,
    MissingMeasurement,
    ShapeClaim,
    ValueClaim,
)


@dataclass
class ClaimResult:
    """One graded claim."""

    id: str
    section: str
    metric: str
    benchmark: str
    source: str
    grade: str
    unit: str = ""
    expected: Optional[float] = None
    measured: Optional[float] = None
    delta_rel: Optional[float] = None
    detail: str = ""

    @property
    def severity(self):
        return GRADE_SEVERITY[self.grade]

    def to_dict(self):
        return {
            "id": self.id, "section": self.section, "metric": self.metric,
            "benchmark": self.benchmark, "source": self.source,
            "grade": self.grade, "unit": self.unit,
            "expected": self.expected, "measured": self.measured,
            "delta_rel": self.delta_rel, "detail": self.detail,
        }


def _grade_value(claim, measured):
    delta = measured - claim.expected
    delta_rel = (delta / claim.expected) if claim.expected else None
    if claim.band_abs is not None:
        match_abs = (claim.match_abs if claim.match_abs is not None
                     else claim.band_abs / 5.0)
        if abs(delta) <= match_abs:
            grade = GRADE_MATCH
        elif abs(delta) <= claim.band_abs:
            grade = GRADE_WITHIN_BAND
        else:
            grade = GRADE_DRIFT
        detail = "measured %.6g, expected %.6g +/- %.3g" % (
            measured, claim.expected, claim.band_abs)
    else:
        low, high = claim.band
        ratio = measured / claim.expected if claim.expected else float("inf")
        if abs(ratio - 1.0) <= claim.match_rel:
            grade = GRADE_MATCH
        elif low <= ratio <= high:
            grade = GRADE_WITHIN_BAND
        else:
            grade = GRADE_DRIFT
        detail = "measured %.6g = %.3fx of expected %.6g (band %.2f-%.2f)" % (
            measured, ratio, claim.expected, low, high)
    return grade, delta_rel, detail


def evaluate_claim(claim, measurements):
    """Grade one claim; never raises on missing or malformed payloads."""
    common = dict(id=claim.id, section=claim.section, metric=claim.metric,
                  benchmark=claim.benchmark, source=claim.source)
    if isinstance(claim, ValueClaim):
        try:
            measured = float(claim.extract(measurements))
        except MissingMeasurement as exc:
            return ClaimResult(grade=GRADE_MISSING, unit=claim.unit,
                               expected=claim.expected,
                               detail="missing measurement: %s" % exc,
                               **common)
        grade, delta_rel, detail = _grade_value(claim, measured)
        return ClaimResult(grade=grade, unit=claim.unit,
                           expected=claim.expected, measured=measured,
                           delta_rel=delta_rel, detail=detail, **common)
    assert isinstance(claim, ShapeClaim)
    try:
        ok, detail = claim.check(measurements)
    except MissingMeasurement as exc:
        return ClaimResult(grade=GRADE_MISSING,
                           detail="missing measurement: %s" % exc, **common)
    return ClaimResult(grade=GRADE_MATCH if ok else GRADE_SHAPE_VIOLATION,
                       detail=detail, **common)


@dataclass
class Scorecard:
    """Every claim graded, plus gate and baseline-comparison helpers."""

    results: List[ClaimResult] = field(default_factory=list)

    def counts(self):
        table = {GRADE_MATCH: 0, GRADE_WITHIN_BAND: 0, GRADE_DRIFT: 0,
                 GRADE_SHAPE_VIOLATION: 0, GRADE_MISSING: 0}
        for result in self.results:
            table[result.grade] += 1
        return table

    def by_section(self):
        sections = {}
        for result in self.results:
            sections.setdefault(result.section, []).append(result)
        return sections

    def failures(self, strict_missing=True):
        """Claims that fail the gate: drift, shape violations, and
        (unless *strict_missing* is off) claims that could not be
        measured at all."""
        bad = {GRADE_DRIFT, GRADE_SHAPE_VIOLATION}
        if strict_missing:
            bad = bad | {GRADE_MISSING}
        return [result for result in self.results if result.grade in bad]

    def gate(self, strict_missing=True):
        """``(ok, failures)`` -- the CI pass/fail verdict."""
        failures = self.failures(strict_missing=strict_missing)
        return (not failures, failures)

    def grades(self):
        """``{claim_id: grade}`` -- the baseline golden's payload."""
        return {result.id: result.grade for result in self.results}

    def get(self, claim_id):
        for result in self.results:
            if result.id == claim_id:
                return result
        raise KeyError(claim_id)


def evaluate(measurements, claims=None):
    """Grade *claims* (default: the full registry) against
    *measurements* and return a :class:`Scorecard`."""
    claims = CLAIMS if claims is None else claims
    return Scorecard(results=[evaluate_claim(claim, measurements)
                              for claim in claims])


def compare_to_baseline(scorecard, baseline_grades):
    """Diff a scorecard against a committed ``{claim_id: grade}``
    baseline.

    Returns a dict with ``regressions`` (severity increased),
    ``improvements`` (severity decreased), ``new`` (claims the baseline
    has no entry for) and ``removed`` (baseline entries no longer in the
    registry).  Only ``regressions`` should gate a build.
    """
    regressions, improvements, new = [], [], []
    seen = set()
    for result in scorecard.results:
        seen.add(result.id)
        baseline = baseline_grades.get(result.id)
        if baseline is None:
            new.append(result.id)
            continue
        before = GRADE_SEVERITY.get(baseline, 0)
        after = result.severity
        entry = {"id": result.id, "before": baseline,
                 "after": result.grade, "detail": result.detail}
        if after > before:
            regressions.append(entry)
        elif after < before:
            improvements.append(entry)
    removed = [claim_id for claim_id in baseline_grades
               if claim_id not in seen]
    return {"regressions": regressions, "improvements": improvements,
            "new": new, "removed": removed}
