"""Paper-fidelity scorecard: a machine-checked registry of every
evaluation claim this reproduction makes against the paper.

``EXPERIMENTS.md`` records ~60 paper-vs-measured values by hand; this
package is the machine check that a refactor has not silently drifted
them.  Three pieces:

* :mod:`repro.report.claims` -- the typed **claims registry**: every
  table/figure value from the paper's Section 4 (and the repo's
  extension benchmarks) as :class:`ValueClaim` / :class:`ShapeClaim`
  records with expected values, tolerance bands, and shape constraints
  (orderings, ratios, bounds);
* :mod:`repro.report.collect` -- produces the **measurements** the
  claims are graded against, either by running the benchmark harness
  directly or by ingesting ``BENCH_*.json`` dumps;
* :mod:`repro.report.evaluate` / :mod:`repro.report.render` -- grade
  each claim (``match`` / ``within_band`` / ``drift`` /
  ``shape_violation`` / ``missing``), gate on regressions, and render
  the Markdown scorecard, the machine-readable ``BENCH_FIDELITY.json``,
  and the regenerated measured-column block for ``EXPERIMENTS.md``.

The ``snap-report`` CLI (``python -m repro.tools.snap_report``) wraps
the pipeline end to end; ``tests/test_report.py`` gates CI on the
committed baseline under ``tests/goldens/fidelity_baseline.json``.
"""

from repro.report.claims import (
    CLAIMS,
    GRADE_DRIFT,
    GRADE_MATCH,
    GRADE_MISSING,
    GRADE_SHAPE_VIOLATION,
    GRADE_WITHIN_BAND,
    GRADE_SEVERITY,
    MissingMeasurement,
    PaperClaim,
    ShapeClaim,
    ValueClaim,
    claims_by_id,
)
from repro.report.collect import (
    COLLECTORS,
    collect,
    load_results_dir,
    measurements_view,
    perturb_measurements,
)
from repro.report.evaluate import ClaimResult, Scorecard, compare_to_baseline, evaluate
from repro.report.render import (
    experiments_block,
    fidelity_payload,
    markdown_scorecard,
    write_fidelity_json,
)

__all__ = [
    "CLAIMS",
    "GRADE_MATCH",
    "GRADE_WITHIN_BAND",
    "GRADE_DRIFT",
    "GRADE_SHAPE_VIOLATION",
    "GRADE_MISSING",
    "GRADE_SEVERITY",
    "MissingMeasurement",
    "PaperClaim",
    "ValueClaim",
    "ShapeClaim",
    "claims_by_id",
    "COLLECTORS",
    "collect",
    "load_results_dir",
    "measurements_view",
    "perturb_measurements",
    "ClaimResult",
    "Scorecard",
    "evaluate",
    "compare_to_baseline",
    "markdown_scorecard",
    "fidelity_payload",
    "write_fidelity_json",
    "experiments_block",
]
