"""Execution tracing helpers."""


class Tracer:
    """Collects an execution trace; install as ``CoreConfig.trace_fn``.

    Each entry is ``(time, pc, text)``.  Use ``limit`` to keep only the
    most recent entries of a long run.

    Trimming is amortized: the internal list is allowed to grow to twice
    the limit before the oldest half is discarded in one ``del``, so a
    long traced run costs O(1) per instruction instead of the O(limit)
    per-append front-deletion of the naive scheme.  :attr:`entries`
    always presents at most ``limit`` entries.
    """

    def __init__(self, limit=100000):
        if limit <= 0:
            raise ValueError("trace limit must be positive")
        self.limit = limit
        self._entries = []

    def __call__(self, processor, time, pc, instruction):
        self._entries.append((time, pc, instruction.text()))
        if len(self._entries) >= 2 * self.limit:
            del self._entries[: len(self._entries) - self.limit]

    @property
    def entries(self):
        """The most recent entries (at most ``limit`` of them)."""
        if len(self._entries) > self.limit:
            del self._entries[: len(self._entries) - self.limit]
        return self._entries

    def __len__(self):
        return min(len(self._entries), self.limit)

    def clear(self):
        del self._entries[:]

    def format(self, last=None):
        """Render the trace (optionally only the *last* N entries)."""
        entries = self.entries if last is None else self.entries[-last:]
        return "\n".join("%.9f  %04x:  %s" % entry for entry in entries)
