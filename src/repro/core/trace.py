"""Execution tracing helpers."""

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class Tracer:
    """Collects an execution trace; install as ``CoreConfig.trace_fn``.

    Each entry is ``(time, pc, text)``.  Use ``limit`` to keep only the
    most recent entries of a long run.
    """

    limit: int = 100000
    entries: List[Tuple[float, int, str]] = field(default_factory=list)

    def __call__(self, processor, time, pc, instruction):
        self.entries.append((time, pc, instruction.text()))
        if len(self.entries) > self.limit:
            del self.entries[: len(self.entries) - self.limit]

    def format(self, last=None):
        """Render the trace (optionally only the *last* N entries)."""
        entries = self.entries if last is None else self.entries[-last:]
        return "\n".join("%.9f  %04x:  %s" % entry for entry in entries)
