"""The SNAP/LE processor: event-driven fetch/decode/execute with energy
and timing accounting.

The processor is a component on a :class:`~repro.core.kernel.Kernel`
timeline.  While awake it schedules one kernel callback per instruction,
spaced by the asynchronous timing model; while asleep it schedules
nothing at all -- the QDI property that idle circuits have no switching
activity falls out of the simulation structure itself.  An event-token
insertion wakes it after the 18-gate-delay wakeup latency (Section 4.3).
"""

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.coprocessors.message import MessageCoprocessor
from repro.coprocessors.timer import DEFAULT_TICK_HZ, TimerCoprocessor
from repro.core.event_queue import POLICY_DROP, EventQueue
from repro.core.exceptions import SimulationDeadlock, SimulationError
from repro.core.execute import execute
from repro.core.kernel import Kernel
from repro.core.lfsr import Lfsr16
from repro.core.memory import MemoryBank
from repro.core.regfile import RegisterFile
from repro.core.timing import TimingModel, gate_delays_for
from repro.energy.accounting import EnergyMeter
from repro.energy.calibration import DEFAULT_CALIBRATION
from repro.energy.model import EnergyModel
from repro.isa.encoding import decode
from repro.isa.events import NUM_EVENTS, Event
from repro.isa.opcodes import Opcode, spec_for
from repro.isa.registers import REG_MSG


class Mode(enum.Enum):
    """Processor execution state."""

    RESET = "reset"
    RUNNING = "running"
    #: Stalled on an r15 read with the outgoing FIFO empty.
    STALLED = "stalled"
    #: Asleep: `done` found the event queue empty; zero switching activity.
    SLEEPING = "sleeping"
    #: Between token arrival and the first handler instruction.
    WAKING = "waking"
    HALTED = "halted"


@dataclass
class CoreConfig:
    """Configuration of one SNAP/LE core."""

    voltage: float = 0.6
    imem_words: int = 2048
    dmem_words: int = 2048
    event_queue_capacity: int = 8
    event_queue_policy: str = POLICY_DROP
    fifo_capacity: int = 16
    timer_tick_hz: int = DEFAULT_TICK_HZ
    leakage_power: float = 0.0
    calibration: object = DEFAULT_CALIBRATION
    #: Safety valve: fault if a single run executes more than this many
    #: instructions (None disables the check).  The default is far above
    #: any workload in this repository; it exists to turn accidentally
    #: divergent guest programs into errors instead of hangs.
    max_instructions: Optional[int] = 10_000_000
    #: Optional per-instruction trace callback:
    #: ``trace_fn(processor, time, pc, instruction)``.
    trace_fn: Optional[Callable] = None


class SnapProcessor:
    """One SNAP/LE core with its coprocessors."""

    def __init__(self, kernel=None, config=None, name="snap"):
        self.name = name
        self.config = config or CoreConfig()
        self.kernel = kernel if kernel is not None else Kernel()

        self.imem = MemoryBank(self.config.imem_words, name="%s.imem" % name)
        self.dmem = MemoryBank(self.config.dmem_words, name="%s.dmem" % name)
        self.regs = RegisterFile()
        self.lfsr = Lfsr16()
        self.carry = 0
        self.pc = 0
        self.handler_table = [0] * NUM_EVENTS

        self.timing = TimingModel(self.config.voltage)
        self.energy_model = EnergyModel(
            voltage=self.config.voltage,
            calibration=self.config.calibration,
            leakage_power=self.config.leakage_power)
        self.meter = EnergyMeter()

        self.event_queue = EventQueue(
            capacity=self.config.event_queue_capacity,
            policy=self.config.event_queue_policy)
        self.event_queue.on_insert.append(self._on_event_token)

        self.mcp = MessageCoprocessor(
            self.kernel, self.event_queue,
            fifo_capacity=self.config.fifo_capacity,
            on_token=self._meter_event_token)
        self.mcp.on_outgoing_data.append(self._on_outgoing_data)
        self.timer = TimerCoprocessor(
            self.kernel, self.event_queue,
            tick_hz=self.config.timer_tick_hz,
            on_token=self._meter_event_token)

        self.mode = Mode.RESET
        #: Tag under which instruction statistics are being accumulated
        #: ("boot", then the current handler's tag).
        self.current_tag = "boot"
        #: Maps an event to the statistics tag of its handler; replace
        #: entries to attribute handler costs to named workloads.
        self.handler_tags = {event: event.name for event in Event}

        self._sleep_start = None
        self._instruction_budget_used = 0
        self._step_pending = False
        self._decode_cache = {}

        #: Optional :class:`~repro.obs.Observability` context.  ``None``
        #: (the default) means every hook site is a single skipped
        #: ``is not None`` check -- simulation results are bit-identical
        #: with observability detached.
        self.obs = None

    def attach_observability(self, obs):
        """Attach an :class:`~repro.obs.Observability` context.

        Instruments this core, its event queue, and its message
        coprocessor.  Pass ``None`` to detach.
        """
        self.obs = obs
        self.event_queue.obs = obs
        self.event_queue.name = "%s.eq" % self.name
        self.mcp.obs = obs
        self.mcp.name = "%s.mcp" % self.name
        return self

    # -- program loading and control ------------------------------------------

    def load(self, program):
        """Load a linked :class:`~repro.asm.Program` into IMEM/DMEM."""
        self.imem.load_image(program.imem)
        self.dmem.load_image(program.dmem)
        self.pc = program.entry

    def start(self):
        """Begin executing boot code at the current kernel time."""
        if self.mode != Mode.RESET:
            raise SimulationError("processor already started")
        self.mode = Mode.RUNNING
        self.current_tag = "boot"
        self._schedule_step(0.0)

    def run(self, until=None, max_events=None):
        """Drive the kernel; returns this core's :class:`EnergyMeter`.

        Starts the core if it has not started.  Raises
        :class:`SimulationDeadlock` if the kernel drains while the core is
        stalled on r15 (nothing can ever deliver the word it is waiting
        for).
        """
        if self.mode == Mode.RESET:
            self.start()
        self.kernel.run(until=until, max_events=max_events)
        if self.mode == Mode.STALLED and self.kernel.pending == 0:
            raise SimulationDeadlock(
                "%s stalled on r15 at pc=0x%04x with no pending activity"
                % (self.name, self.pc))
        return self.meter

    @property
    def asleep(self):
        return self.mode == Mode.SLEEPING

    @property
    def halted(self):
        return self.mode == Mode.HALTED

    def raise_soft_event(self):
        """Insert a software event token (testing / experiments)."""
        self.event_queue.insert(Event.SOFT, raised_at=self.kernel.now)

    # -- register access (the r15 convention) ----------------------------------

    def read_reg(self, index):
        if index == REG_MSG:
            return self.mcp.pop_to_core()
        return self.regs.read(index)

    def write_reg(self, index, value):
        if index == REG_MSG:
            self.mcp.push_from_core(value & 0xFFFF)
        else:
            self.regs.write(index, value)

    # -- the fetch/decode/execute step -----------------------------------------

    def _schedule_step(self, delay):
        if self._step_pending:
            raise AssertionError("step already scheduled")
        self._step_pending = True
        self.kernel.schedule(delay, self._step)

    def _step(self):
        self._step_pending = False
        if self.mode == Mode.HALTED:
            return
        if self.mode == Mode.WAKING:
            self.mode = Mode.RUNNING
            if not self._dispatch():
                return

        instruction = self._fetch()
        if self._stall_needed(instruction):
            self.mode = Mode.STALLED
            return

        if self.config.trace_fn is not None:
            self.config.trace_fn(self, self.kernel.now, self.pc, instruction)

        pc = self.pc
        outcome = execute(self, instruction)

        spec = instruction.spec
        delay = self.timing.instruction_delay(spec, taken=outcome.taken)
        breakdown = self.energy_model.instruction_energy(spec)
        self.meter.record_instruction(spec, breakdown, delay,
                                      handler_tag=self.current_tag)
        if self.obs is not None:
            self.obs.instruction_retired(
                self.name, self.kernel.now, pc, instruction,
                self.current_tag, breakdown.total, delay)
        self._check_budget()

        if outcome.halt:
            self.mode = Mode.HALTED
            return
        if outcome.done:
            if self._dispatch():
                self._schedule_step(delay)
            return
        if outcome.next_pc is not None:
            self.pc = outcome.next_pc
        else:
            self.pc += instruction.size
        self._schedule_step(delay)

    def _fetch(self):
        cached = self._decode_cache.get(self.pc)
        words = [self.imem.read(self.pc)]
        if cached is not None and cached[0] == words[0]:
            instruction = cached[1]
            if instruction.size == 2:
                second = self.imem.read(self.pc + 1)
                if second != cached[2]:
                    instruction, _ = decode([words[0], second])
                    self._decode_cache[self.pc] = (words[0], instruction, second)
            return instruction
        first = words[0]
        opcode_value = first >> 10
        try:
            spec = spec_for(Opcode(opcode_value))
        except ValueError:
            raise SimulationError(
                "%s: illegal opcode 0x%02x at pc=0x%04x"
                % (self.name, opcode_value, self.pc)) from None
        if spec.two_word:
            words.append(self.imem.read(self.pc + 1))
        instruction, _ = decode(words)
        self._decode_cache[self.pc] = (
            first, instruction, words[1] if len(words) > 1 else None)
        return instruction

    def _stall_needed(self, instruction):
        """True when the instruction reads r15 and data is not yet there.

        The check happens before any architectural side effect so a
        stalled instruction can simply retry when data arrives.
        """
        spec = instruction.spec
        needed = 0
        if spec.reads_rd and instruction.rd == REG_MSG:
            needed += 1
        if spec.reads_rs and instruction.rs == REG_MSG:
            needed += 1
        return needed > self.mcp.outgoing_available()

    def _dispatch(self):
        """Pop the event queue and jump to the handler.

        Returns True when a token was dispatched; False when the queue was
        empty and the core went to sleep.
        """
        token = self.event_queue.pop()
        if token is None:
            self.mode = Mode.SLEEPING
            self._sleep_start = self.kernel.now
            if self.obs is not None:
                self.obs.sleep_enter(self.name, self.kernel.now)
            return False
        self.pc = self.handler_table[token.event]
        self.current_tag = self.handler_tags[token.event]
        self.meter.record_handler_start(self.current_tag)
        latency = self.kernel.now - token.raised_at
        self.meter.record_dispatch_latency(latency)
        if self.obs is not None:
            self.obs.handler_dispatch(self.name, self.kernel.now,
                                      token.event.name, self.current_tag,
                                      latency)
        return True

    # -- wakeup ----------------------------------------------------------------

    def _on_event_token(self, token):
        if self.mode != Mode.SLEEPING:
            return
        idle = self.kernel.now - self._sleep_start
        self.meter.record_idle(idle, self.energy_model.idle_energy(idle))
        self.meter.record_wakeup(self.energy_model.wakeup_energy)
        if self.obs is not None:
            self.obs.wakeup(self.name, self.kernel.now, idle)
        self.mode = Mode.WAKING
        self._schedule_step(self.timing.wakeup_latency)

    def _on_outgoing_data(self):
        if self.mode == Mode.STALLED:
            self.mode = Mode.RUNNING
            self._schedule_step(0.0)

    def _meter_event_token(self):
        self.meter.record_event_token(self.energy_model.event_token_energy)

    def _check_budget(self):
        self._instruction_budget_used += 1
        limit = self.config.max_instructions
        if limit is not None and self._instruction_budget_used > limit:
            raise SimulationError(
                "%s exceeded the instruction budget of %d -- runaway program?"
                % (self.name, limit))
