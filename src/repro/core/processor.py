"""The SNAP/LE processor: event-driven fetch/decode/execute with energy
and timing accounting.

The processor is a component on a :class:`~repro.core.kernel.Kernel`
timeline.  While awake it advances one instruction at a time, spaced by
the asynchronous timing model; while asleep it schedules nothing at all
-- the QDI property that idle circuits have no switching activity falls
out of the simulation structure itself.  An event-token insertion wakes
it after the 18-gate-delay wakeup latency (Section 4.3).

Two execution engines produce bit-identical results:

* the **fast path** (default) predecodes each IMEM word once into an
  executor-bound slot and executes straight-line instructions in a tight
  burst loop inside a single kernel callback, advancing the kernel clock
  directly and re-entering the event heap only when the next pending
  event (or the run horizon) would interleave;
* the **reference path** (``CoreConfig(fast_path=False)``) keeps the
  pre-burst cost profile -- one kernel callback per instruction, a
  fetch-time decode-cache probe, and a fresh delay/energy computation per
  dynamic instruction -- and serves as the baseline for the sim-speed
  benchmark and for differential testing.

See DESIGN.md ("The fast-path execution engine") for the burst/yield
rule and the bit-identity argument.
"""

import contextlib
import dataclasses
import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.coprocessors.message import MessageCoprocessor
from repro.coprocessors.timer import DEFAULT_TICK_HZ, TimerCoprocessor
from repro.core.event_queue import POLICY_DROP, EventQueue
from repro.core.exceptions import SimulationDeadlock, SimulationError
from repro.core.execute import EXECUTORS, FALL_THROUGH, execute
from repro.core.kernel import Kernel
from repro.core.lfsr import Lfsr16
from repro.core.memory import MemoryBank
from repro.core.regfile import RegisterFile
from repro.core.timing import TimingModel, gate_delays_for
from repro.energy.accounting import EnergyMeter
from repro.energy.calibration import DEFAULT_CALIBRATION
from repro.energy.model import EnergyModel
from repro.isa.encoding import decode
from repro.isa.events import NUM_EVENTS, Event
from repro.isa.opcodes import Opcode, spec_for
from repro.isa.registers import REG_MSG

_INFINITY = float("inf")


class Mode(enum.Enum):
    """Processor execution state."""

    RESET = "reset"
    RUNNING = "running"
    #: Stalled on an r15 read with the outgoing FIFO empty.
    STALLED = "stalled"
    #: Asleep: `done` found the event queue empty; zero switching activity.
    SLEEPING = "sleeping"
    #: Between token arrival and the first handler instruction.
    WAKING = "waking"
    HALTED = "halted"


@dataclass
class CoreConfig:
    """Configuration of one SNAP/LE core."""

    voltage: float = 0.6
    imem_words: int = 2048
    dmem_words: int = 2048
    event_queue_capacity: int = 8
    event_queue_policy: str = POLICY_DROP
    fifo_capacity: int = 16
    timer_tick_hz: int = DEFAULT_TICK_HZ
    leakage_power: float = 0.0
    calibration: object = DEFAULT_CALIBRATION
    #: Safety valve: fault if a single run executes more than this many
    #: instructions (None disables the check).  The default is far above
    #: any workload in this repository; it exists to turn accidentally
    #: divergent guest programs into errors instead of hangs.
    max_instructions: Optional[int] = 10_000_000
    #: Optional per-instruction trace callback:
    #: ``trace_fn(processor, time, pc, instruction)``.
    trace_fn: Optional[Callable] = None
    #: Use the batched fast-path engine (predecoded IMEM + instruction
    #: bursts).  ``False`` selects the per-event reference interpreter
    #: with the pre-burst cost profile; results are bit-identical either
    #: way.
    fast_path: bool = True


def _calibration_key(calibration):
    """A hashable identity for a calibration object.

    ``Calibration`` is a frozen dataclass whose ``unit_pj`` dict defeats
    its own ``__hash__``; fold the fields into tuples instead.  Objects
    that are not dataclasses fall back to instance identity, which only
    under-shares (never mis-shares)."""
    if not dataclasses.is_dataclass(calibration):
        return id(calibration)
    fields = []
    for field in dataclasses.fields(calibration):
        value = getattr(calibration, field.name)
        if isinstance(value, dict):
            value = tuple(sorted(
                (getattr(key, "value", key), item)
                for key, item in value.items()))
        fields.append((field.name, value))
    return tuple(fields)


class PredecodeCache:
    """Shares predecoded-slot tables across cores running the same
    (IMEM image, voltage, calibration).

    A slot is a pure function of the instruction word(s), the supply
    voltage (delay tables), and the energy calibration (interned
    :class:`EnergyBreakdown`), so every replica of a parameter-sweep
    cell that loads the same program at the same operating point can
    reuse the decode work of the first one.  Sharing is bit-transparent:
    the shared slots are the exact tuples :meth:`SnapProcessor._predecode`
    would have built.

    Each processor leases a *copy* of the master list at :meth:`load`
    time and contributes newly decoded slots back -- until its IMEM is
    written (self-modifying code, pokes, checkpoint restore), at which
    point it detaches and its divergent slots stay private.
    """

    def __init__(self):
        self._masters = {}
        #: Lease statistics: ``hits`` counts leases that found a master
        #: table (warm start), ``misses`` leases that created one.
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._masters)

    def lease(self, key, imem_words):
        """The master slot table for *key*, creating it when new."""
        master = self._masters.get(key)
        if master is None:
            master = [None] * imem_words
            self._masters[key] = master
            self.misses += 1
        else:
            self.hits += 1
        return master

    @staticmethod
    def key_for(image, config):
        """Cache key for a program image under a core configuration."""
        return (config.imem_words, config.voltage,
                _calibration_key(config.calibration), tuple(image))


#: Process-wide ambient cache consulted by :meth:`SnapProcessor.load`;
#: installed by :func:`shared_predecode`, ``None`` (sharing off) outside.
_SHARED_PREDECODE = None


@contextlib.contextmanager
def shared_predecode(cache=None):
    """Share predecode tables between every core loaded in this block.

    ::

        with shared_predecode() as cache:
            for replica in range(n):
                run_cell(...)   # same program+voltage -> one decode pass

    Nests safely (the previous cache is restored on exit) and is
    bit-transparent: simulations produce identical meters, traces, and
    digests with or without it.  Pass an existing :class:`PredecodeCache`
    to keep tables warm across several blocks (the sweep engine keeps
    one per worker process).
    """
    global _SHARED_PREDECODE
    previous = _SHARED_PREDECODE
    if cache is None:
        cache = PredecodeCache()
    _SHARED_PREDECODE = cache
    try:
        yield cache
    finally:
        _SHARED_PREDECODE = previous


class SnapProcessor:
    """One SNAP/LE core with its coprocessors."""

    def __init__(self, kernel=None, config=None, name="snap"):
        self.name = name
        self.config = config or CoreConfig()
        self.kernel = kernel if kernel is not None else Kernel()

        self.imem = MemoryBank(self.config.imem_words, name="%s.imem" % name)
        self.dmem = MemoryBank(self.config.dmem_words, name="%s.dmem" % name)
        self.regs = RegisterFile()
        self.lfsr = Lfsr16()
        self.carry = 0
        self.pc = 0
        self.handler_table = [0] * NUM_EVENTS

        self.timing = TimingModel(self.config.voltage)
        self.energy_model = EnergyModel(
            voltage=self.config.voltage,
            calibration=self.config.calibration,
            leakage_power=self.config.leakage_power)
        self.meter = EnergyMeter()

        self.event_queue = EventQueue(
            capacity=self.config.event_queue_capacity,
            policy=self.config.event_queue_policy)
        self.event_queue.on_insert.append(self._on_event_token)

        self.mcp = MessageCoprocessor(
            self.kernel, self.event_queue,
            fifo_capacity=self.config.fifo_capacity,
            on_token=self._meter_event_token)
        self.mcp.on_outgoing_data.append(self._on_outgoing_data)
        self.timer = TimerCoprocessor(
            self.kernel, self.event_queue,
            tick_hz=self.config.timer_tick_hz,
            on_token=self._meter_event_token)

        self.mode = Mode.RESET
        #: Tag under which instruction statistics are being accumulated
        #: ("boot", then the current handler's tag).
        self.current_tag = "boot"
        #: Maps an event to the statistics tag of its handler; replace
        #: entries to attribute handler costs to named workloads.
        self.handler_tags = {event: event.name for event in Event}

        self._sleep_start = None
        self._instruction_budget_used = 0
        self._step_pending = False
        self._decode_cache = {}

        self._fast_path = self.config.fast_path
        #: Predecoded IMEM: one slot per word, built lazily by
        #: :meth:`_predecode` and invalidated by the IMEM write hook.
        self._predec = None
        #: Master table of an ambient :class:`PredecodeCache` this core
        #: contributes decoded slots to; detached (set to ``None``) on
        #: the first IMEM write after load.
        self._predec_master = None
        if self._fast_path:
            self._predec = [None] * self.config.imem_words
            self.imem.write_hook = self._invalidate_predecode
        #: Fast-path burst statistics (host-side, no simulation effect):
        #: number of burst entries and instructions retired inside bursts.
        self.bursts = 0
        self.burst_instructions = 0

        #: Optional :class:`~repro.obs.Observability` context.  ``None``
        #: (the default) means every hook site is a single skipped
        #: ``is not None`` check -- simulation results are bit-identical
        #: with observability detached.
        self.obs = None
        #: The linked :class:`~repro.asm.Program` last loaded, kept for
        #: pc symbolication (debugger, profiler, crash bundles).
        self.program = None

    def attach_observability(self, obs):
        """Attach an :class:`~repro.obs.Observability` context.

        Instruments this core, its event queue, and its message
        coprocessor.  Pass ``None`` to detach.
        """
        self.obs = obs
        self.event_queue.obs = obs
        self.event_queue.name = "%s.eq" % self.name
        self.mcp.obs = obs
        self.mcp.name = "%s.mcp" % self.name
        if obs is not None:
            obs.register_processor(self)
            if self.program is not None:
                self._report_program(self.program)
        return self

    # -- program loading and control ------------------------------------------

    def load(self, program):
        """Load a linked :class:`~repro.asm.Program` into IMEM/DMEM.

        The program is kept on ``self.program`` so debuggers and crash
        bundles can symbolicate pcs through its line table.
        """
        self.imem.load_image(program.imem)
        self.dmem.load_image(program.dmem)
        self.pc = program.entry
        self.program = program
        if self._fast_path and _SHARED_PREDECODE is not None:
            # Warm-start from the ambient cache: lease the master table
            # for this (image, operating point), take a private copy of
            # whatever slots are already decoded, and contribute new ones
            # back until the first IMEM write detaches us.  (load_image
            # above already fired the write hook, so attach afterwards.)
            key = PredecodeCache.key_for(program.imem, self.config)
            master = _SHARED_PREDECODE.lease(key, self.config.imem_words)
            self._predec = list(master)
            self._predec_master = master
        if self.obs is not None:
            self._report_program(program)

    def _report_program(self, program):
        self.obs.program_loaded(
            self.name, len(program.imem), len(program.dmem),
            self.config.imem_words, self.config.dmem_words)

    def start(self):
        """Begin executing boot code at the current kernel time."""
        if self.mode != Mode.RESET:
            raise SimulationError("processor already started")
        self.mode = Mode.RUNNING
        self.current_tag = "boot"
        self._schedule_step(0.0)

    def run(self, until=None, max_events=None):
        """Drive the kernel; returns this core's :class:`EnergyMeter`.

        Starts the core if it has not started.  Raises
        :class:`SimulationDeadlock` if the kernel drains while the core is
        stalled on r15 (nothing can ever deliver the word it is waiting
        for).
        """
        if self.mode == Mode.RESET:
            self.start()
        self.kernel.run(until=until, max_events=max_events)
        if self.mode == Mode.STALLED and self.kernel.pending == 0:
            raise SimulationDeadlock(
                "%s stalled on r15 at pc=0x%04x with no pending activity"
                % (self.name, self.pc))
        return self.meter

    @property
    def asleep(self):
        return self.mode == Mode.SLEEPING

    @property
    def halted(self):
        return self.mode == Mode.HALTED

    def raise_soft_event(self):
        """Insert a software event token (testing / experiments)."""
        self.event_queue.insert(Event.SOFT, raised_at=self.kernel.now)

    # -- register access (the r15 convention) ----------------------------------

    def read_reg(self, index):
        if index == REG_MSG:
            return self.mcp.pop_to_core()
        return self.regs.read(index)

    def write_reg(self, index, value):
        if index == REG_MSG:
            self.mcp.push_from_core(value & 0xFFFF)
        else:
            self.regs.write(index, value)

    # -- the fetch/decode/execute step -----------------------------------------

    def _schedule_step(self, delay):
        if self._step_pending:
            raise AssertionError("step already scheduled")
        self._step_pending = True
        self.kernel.schedule(delay, self._step)

    def _step(self):
        self._step_pending = False
        if self.mode == Mode.HALTED:
            return
        if self.mode == Mode.WAKING:
            self.mode = Mode.RUNNING
            if not self._dispatch():
                return
        if self._fast_path and self.kernel._burst_ok:
            self._burst()
        else:
            self._step_once()

    # -- the batched fast path -------------------------------------------------

    def _invalidate_predecode(self, start, count):
        """IMEM write hook: drop slots whose words were rewritten.

        The slot at ``start - 1`` may be a two-word instruction whose
        second word just changed, so it is invalidated too.
        """
        predec = self._predec
        lower = start - 1 if start > 0 else 0
        upper = start + count
        if upper > len(predec):
            upper = len(predec)
        for index in range(lower, upper):
            predec[index] = None
        # The IMEM no longer matches the loaded image: stop contributing
        # slots to the shared master table (self-modified code must never
        # pollute other leases of the same program).
        self._predec_master = None

    def _predecode(self, pc):
        """Decode the instruction at *pc* into an executor-bound slot.

        Charges nothing: IMEM read accounting happens when a dynamic
        instruction actually proceeds past its stall check.
        """
        imem = self.imem
        first = imem.peek(pc)
        opcode_value = first >> 10
        try:
            spec = spec_for(Opcode(opcode_value))
        except ValueError:
            raise SimulationError(
                "%s: illegal opcode 0x%02x at pc=0x%04x"
                % (self.name, opcode_value, pc)) from None
        words = [first]
        if spec.two_word:
            words.append(imem.peek(pc + 1))
        instruction, _ = decode(words)

        breakdown = self.energy_model.instruction_energy(spec)
        delay_not_taken = self.timing.instruction_delay(spec, taken=False)
        delay_taken = self.timing.instruction_delay(spec, taken=True)
        r15_reads = 0
        if spec.reads_rd and instruction.rd == REG_MSG:
            r15_reads += 1
        if spec.reads_rs and instruction.rs == REG_MSG:
            r15_reads += 1
        # A slot is "meter-safe" when executing it cannot touch the
        # EnergyMeter through a side channel while the burst loop holds
        # ``total_energy`` in a local: r15 traffic can raise event tokens
        # via the message coprocessor, and ``cancel`` inserts a token
        # synchronously -- both call record_event_token.  (``schedlo`` /
        # ``schedhi`` only move kernel events, which the burst's
        # next-event cache handles via the kernel version counter.)
        meter_safe = (r15_reads == 0
                      and not (spec.writes_rd and instruction.rd == REG_MSG)
                      and spec.opcode is not Opcode.CANCEL)
        slot = (instruction, EXECUTORS[instruction.opcode], instruction.size,
                spec.instr_class, delay_not_taken, delay_taken,
                breakdown.total, breakdown.imem, breakdown.dmem,
                breakdown.datapath, breakdown.fetch, breakdown.decode,
                breakdown.mem_if, breakdown.misc, breakdown,
                r15_reads, meter_safe)
        self._predec[pc] = slot
        if self._predec_master is not None:
            self._predec_master[pc] = slot
        return slot

    def _raise_budget_exceeded(self):
        raise SimulationError(
            "%s exceeded the instruction budget of %d -- runaway program?"
            % (self.name, self.config.max_instructions))

    def _burst(self):
        """Execute instructions in a tight loop inside one kernel event.

        Invariants, per iteration: the kernel clock equals the fetch time
        of the current instruction (so timer scheduling, dispatch-latency
        accounting, trace and obs hooks observe exactly the times the
        per-event engine would); the hot meter accumulators live in
        locals and are written back before anything else can observe or
        mutate the meter (yield, stall, sleep, halt, dispatch, a
        non-meter-safe instruction, or an exception).

        The loop yields back to the kernel heap -- scheduling the next
        step callback after the current instruction's delay -- as soon as
        the accumulated time would pass the next pending kernel event or
        the run horizon.
        """
        kernel = self.kernel
        meter = self.meter
        mcp = self.mcp
        obs = self.obs
        trace_fn = self.config.trace_fn
        predec = self._predec
        imem = self.imem
        by_class = meter.by_class
        by_handler = meter.by_handler

        limit = self.config.max_instructions
        if limit is None:
            limit = _INFINITY
        budget = self._instruction_budget_used

        now = kernel._now
        horizon = kernel._horizon
        if horizon is None:
            horizon = _INFINITY
        version = kernel._version
        next_event = kernel.next_time()
        if next_event is None:
            next_event = _INFINITY

        pc = self.pc
        tag = self.current_tag

        (m_ins, m_cyc, m_total, m_busy, m_imem, m_dmem,
         b_datapath, b_fetch, b_decode, b_mem_if, b_misc) = meter.hoist_hot()
        hstats = by_handler[tag]
        h_ins = hstats.instructions
        h_cyc = hstats.cycles
        h_en = hstats.energy
        self.bursts += 1
        try:
            while True:
                try:
                    slot = predec[pc]
                except IndexError:
                    imem._check(pc)  # raises MemoryFault with bank context
                    raise
                if slot is None:
                    slot = self._predecode(pc)
                (instruction, executor, size, cls, delay_nt, delay_tk,
                 e_total, e_imem, e_dmem, e_datapath, e_fetch, e_decode,
                 e_mem_if, e_misc, breakdown, r15_reads, meter_safe) = slot

                if meter_safe:
                    imem.reads += size
                    self.pc = pc
                    if trace_fn is not None:
                        trace_fn(self, now, pc, instruction)
                    outcome = executor(self, instruction)
                else:
                    if r15_reads > mcp.outgoing_available():
                        self.mode = Mode.STALLED
                        self.pc = pc
                        return
                    imem.reads += size
                    self.pc = pc
                    if trace_fn is not None:
                        trace_fn(self, now, pc, instruction)
                    # The executor may add event-token energy to
                    # ``total_energy`` through the coprocessors; sync the
                    # hoisted local around the call so every addition
                    # lands in the same order as the per-event engine.
                    meter.total_energy = m_total
                    try:
                        outcome = executor(self, instruction)
                    finally:
                        m_total = meter.total_energy

                if outcome is FALL_THROUGH:
                    delay = delay_nt
                    next_pc = pc + size
                    control = False
                else:
                    delay = delay_tk if outcome.taken else delay_nt
                    next_pc = outcome.next_pc
                    if next_pc is None:
                        next_pc = pc + size
                    control = outcome.done or outcome.halt

                m_ins += 1
                m_cyc += size
                m_total += e_total
                m_busy += delay
                m_imem += e_imem
                m_dmem += e_dmem
                b_datapath += e_datapath
                b_fetch += e_fetch
                b_decode += e_decode
                b_mem_if += e_mem_if
                b_misc += e_misc
                class_stats = by_class[cls]
                class_stats.count += 1
                class_stats.energy += e_total
                h_ins += 1
                h_cyc += size
                h_en += e_total
                if obs is not None:
                    obs.instruction_retired(self.name, now, pc, instruction,
                                            tag, e_total, delay)
                budget += 1
                if budget > limit:
                    self._raise_budget_exceeded()
                self.burst_instructions += 1

                if control:
                    if outcome.halt:
                        self.mode = Mode.HALTED
                        return
                    # done: flush the per-handler stats before dispatch
                    # touches them (invocations) and swap to the new tag.
                    # The other hoisted accumulators are untouched by
                    # dispatch and stay in locals.
                    hstats.instructions = h_ins
                    hstats.cycles = h_cyc
                    hstats.energy = h_en
                    if not self._dispatch():
                        return
                    pc = self.pc
                    tag = self.current_tag
                    hstats = by_handler[tag]
                    h_ins = hstats.instructions
                    h_cyc = hstats.cycles
                    h_en = hstats.energy
                    next_pc = pc

                finish = now + delay
                if kernel._version != version:
                    version = kernel._version
                    next_event = kernel.next_time()
                    if next_event is None:
                        next_event = _INFINITY
                if next_event <= finish or finish > horizon:
                    self.pc = next_pc
                    self._schedule_step(delay)
                    return
                now = finish
                kernel._now = finish
                pc = next_pc
        finally:
            meter.absorb_hot(m_ins, m_cyc, m_total, m_busy, m_imem,
                             m_dmem, b_datapath, b_fetch, b_decode,
                             b_mem_if, b_misc)
            hstats.instructions = h_ins
            hstats.cycles = h_cyc
            hstats.energy = h_en
            self._instruction_budget_used = budget

    # -- the per-event path ----------------------------------------------------

    def _step_once(self):
        """Execute exactly one instruction in this kernel callback.

        Used by the reference interpreter (``fast_path=False``) and
        whenever the kernel is being single-stepped (a bare
        ``kernel.step()`` or a ``max_events`` run), where one callback
        must retire at most one instruction.
        """
        fast = self._fast_path
        if fast:
            try:
                slot = self._predec[self.pc]
            except IndexError:
                self.imem._check(self.pc)
                raise
            if slot is None:
                slot = self._predecode(self.pc)
            instruction = slot[0]
            if slot[15] > self.mcp.outgoing_available():
                self.mode = Mode.STALLED
                return
        else:
            instruction = self._fetch()
            if self._stall_needed(instruction):
                self.mode = Mode.STALLED
                return
        # One IMEM read per word, charged only when the instruction
        # proceeds -- a stalled instruction retrying later is one dynamic
        # instruction and must not be charged twice.
        self.imem.reads += instruction.size

        if self.config.trace_fn is not None:
            self.config.trace_fn(self, self.kernel.now, self.pc, instruction)

        pc = self.pc
        outcome = execute(self, instruction)

        if fast:
            delay = slot[5] if outcome.taken else slot[4]
            breakdown = slot[14]
        else:
            # Reference cost profile: recompute delay and energy from
            # scratch for every dynamic instruction, as the pre-burst
            # interpreter did.
            spec = instruction.spec
            delay = gate_delays_for(spec, taken=outcome.taken) \
                * self.timing.gate_delay
            breakdown = self.energy_model.compute_instruction_energy(spec)
        self.meter.record_instruction(instruction.spec, breakdown, delay,
                                      handler_tag=self.current_tag)
        if self.obs is not None:
            self.obs.instruction_retired(
                self.name, self.kernel.now, pc, instruction,
                self.current_tag, breakdown.total, delay)
        self._check_budget()

        if outcome.halt:
            self.mode = Mode.HALTED
            return
        if outcome.done:
            if self._dispatch():
                self._schedule_step(delay)
            return
        if outcome.next_pc is not None:
            self.pc = outcome.next_pc
        else:
            self.pc += instruction.size
        self._schedule_step(delay)

    def _fetch(self):
        """Reference-path fetch: decode-cache probe with word compare.

        Reads go through ``peek``: the per-word access charge lands in
        ``_step_once`` after the stall check so a stalled retry is not
        double-counted.
        """
        cached = self._decode_cache.get(self.pc)
        first = self.imem.peek(self.pc)
        if cached is not None and cached[0] == first:
            instruction = cached[1]
            if instruction.size == 2:
                second = self.imem.peek(self.pc + 1)
                if second != cached[2]:
                    instruction, _ = decode([first, second])
                    self._decode_cache[self.pc] = (first, instruction, second)
            return instruction
        opcode_value = first >> 10
        try:
            spec = spec_for(Opcode(opcode_value))
        except ValueError:
            raise SimulationError(
                "%s: illegal opcode 0x%02x at pc=0x%04x"
                % (self.name, opcode_value, self.pc)) from None
        words = [first]
        if spec.two_word:
            words.append(self.imem.peek(self.pc + 1))
        instruction, _ = decode(words)
        self._decode_cache[self.pc] = (
            first, instruction, words[1] if len(words) > 1 else None)
        return instruction

    def _stall_needed(self, instruction):
        """True when the instruction reads r15 and data is not yet there.

        The check happens before any architectural side effect so a
        stalled instruction can simply retry when data arrives.
        """
        spec = instruction.spec
        needed = 0
        if spec.reads_rd and instruction.rd == REG_MSG:
            needed += 1
        if spec.reads_rs and instruction.rs == REG_MSG:
            needed += 1
        return needed > self.mcp.outgoing_available()

    def _dispatch(self):
        """Pop the event queue and jump to the handler.

        Returns True when a token was dispatched; False when the queue was
        empty and the core went to sleep.
        """
        token = self.event_queue.pop()
        if token is None:
            self.mode = Mode.SLEEPING
            self._sleep_start = self.kernel.now
            if self.obs is not None:
                self.obs.sleep_enter(self.name, self.kernel.now)
            return False
        self.pc = self.handler_table[token.event]
        self.current_tag = self.handler_tags[token.event]
        self.meter.record_handler_start(self.current_tag)
        latency = self.kernel.now - token.raised_at
        self.meter.record_dispatch_latency(latency)
        if self.obs is not None:
            self.obs.handler_dispatch(self.name, self.kernel.now,
                                      token.event.name, self.current_tag,
                                      latency)
        return True

    # -- wakeup ----------------------------------------------------------------

    def _on_event_token(self, token):
        if self.mode != Mode.SLEEPING:
            return
        idle = self.kernel.now - self._sleep_start
        self.meter.record_idle(idle, self.energy_model.idle_energy(idle))
        self.meter.record_wakeup(self.energy_model.wakeup_energy)
        if self.obs is not None:
            self.obs.wakeup(self.name, self.kernel.now, idle)
        self.mode = Mode.WAKING
        self._schedule_step(self.timing.wakeup_latency)

    def _on_outgoing_data(self):
        if self.mode == Mode.STALLED:
            self.mode = Mode.RUNNING
            self._schedule_step(0.0)

    def _meter_event_token(self):
        self.meter.record_event_token(self.energy_model.event_token_energy)

    def _check_budget(self):
        self._instruction_budget_used += 1
        limit = self.config.max_instructions
        if limit is not None and self._instruction_budget_used > limit:
            raise SimulationError(
                "%s exceeded the instruction budget of %d -- runaway program?"
                % (self.name, limit))
