"""The register file.

Fifteen physical 16-bit registers; ``r15`` is the architectural window
onto the message coprocessor's FIFOs and is handled by the processor, not
here (Section 3.3: "SNAP/LE's register file actually has only fifteen
physical registers").
"""

from repro.isa.registers import REG_MSG

WORD_MASK = 0xFFFF


class RegisterFile:
    """Fifteen physical registers, r0..r14."""

    def __init__(self):
        self._regs = [0] * 15
        self.reads = 0
        self.writes = 0

    def read(self, index):
        if index == REG_MSG:
            raise AssertionError("r15 reads must go through the message "
                                 "coprocessor")
        self.reads += 1
        return self._regs[index]

    def write(self, index, value):
        if index == REG_MSG:
            raise AssertionError("r15 writes must go through the message "
                                 "coprocessor")
        self.writes += 1
        self._regs[index] = value & WORD_MASK

    def peek(self, index):
        """Debugger access without touching counters."""
        return self._regs[index]

    def poke(self, index, value):
        self._regs[index] = value & WORD_MASK

    def snapshot(self):
        return list(self._regs)
