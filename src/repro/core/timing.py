"""The asynchronous timing model.

A QDI asynchronous processor has no clock; each instruction completes
after a number of gate delays that depends on the operation and on the
dynamic state of the pipeline (Section 2).  We model each instruction
class with a gate-delay count (two-word instructions cost an extra fetch,
slow-bus units cost extra bus transfers) and scale the gate delay with
supply voltage.

Calibration comes straight from the paper (Section 4.3):

* the idle-to-active transition is **18 gate delays**, measured as 2.5 ns
  at 1.8 V, 9.8 ns at 0.9 V, and 21.4 ns at 0.6 V -- which pins the gate
  delay at each published voltage;
* the same scaling reproduces the throughput ratios 240 : 61 : 28 MIPS,
  since 240/61 = 3.93 = 9.8/2.5 and 240/28 = 8.57 = 21.4/2.5.

For unpublished voltages the gate delay is interpolated log-log between
the calibrated points (and extrapolated with the boundary slope), which
keeps the model exact at the three published operating points.
"""

import math

from repro.isa.opcodes import InstrClass, Opcode, spec_for

#: Gate delays in the idle->active transition (Section 4.3).
WAKEUP_GATE_DELAYS = 18

#: Calibrated gate delay (seconds) at each published supply voltage.
GATE_DELAY_BY_VOLTAGE = {
    1.8: 2.5e-9 / WAKEUP_GATE_DELAYS,
    0.9: 9.8e-9 / WAKEUP_GATE_DELAYS,
    0.6: 21.4e-9 / WAKEUP_GATE_DELAYS,
}

#: Lowest voltage the model accepts; below this the QDI circuits would be
#: in deep sub-threshold where this interpolation has no support.
MIN_VOLTAGE = 0.4
MAX_VOLTAGE = 2.0

#: Gate-delay counts per instruction class.  Two-word formats already
#: include their second fetch; slow-bus units already include the extra
#: bus transfer through the fast busses (Section 3.1).
GATE_DELAYS_BY_CLASS = {
    InstrClass.NOP: 18,
    InstrClass.EVENT: 20,
    InstrClass.ARITH_REG: 22,
    InstrClass.LOGICAL_REG: 22,
    InstrClass.SHIFT: 22,
    InstrClass.BRANCH: 24,
    InstrClass.JUMP: 24,
    InstrClass.ARITH_IMM: 34,
    InstrClass.LOGICAL_IMM: 34,
    InstrClass.BITFIELD: 36,
    InstrClass.RAND: 30,
    InstrClass.TIMER: 32,
    InstrClass.LOAD: 46,
    InstrClass.STORE: 44,
    InstrClass.IMEM_LOAD: 56,
    InstrClass.IMEM_STORE: 56,
}

#: Extra gate delays when a branch is taken or a two-word jump redirects
#: fetch (the fetch pipeline restarts from a new address).
TAKEN_PENALTY = 6
#: Extra gate delays for the second fetch of two-word jumps.
TWO_WORD_JUMP_EXTRA = 12
#: Extra gate delays for `setaddr` writing the event-handler table.
SETADDR_EXTRA = 10


def gate_delays_for(spec, taken=False):
    """Gate-delay count for one dynamic instance of *spec*."""
    count = GATE_DELAYS_BY_CLASS[spec.instr_class]
    if spec.instr_class == InstrClass.JUMP and spec.two_word:
        count += TWO_WORD_JUMP_EXTRA
    if spec.opcode == Opcode.SETADDR:
        count += SETADDR_EXTRA
    if taken:
        count += TAKEN_PENALTY
    return count


def gate_delay_at(voltage):
    """Gate delay in seconds at *voltage* (log-log interpolation)."""
    if not MIN_VOLTAGE <= voltage <= MAX_VOLTAGE:
        raise ValueError("voltage %.2f outside supported range [%.1f, %.1f]"
                         % (voltage, MIN_VOLTAGE, MAX_VOLTAGE))
    points = sorted(GATE_DELAY_BY_VOLTAGE.items())
    for known_voltage, delay in points:
        if math.isclose(voltage, known_voltage):
            return delay
    log_v = math.log(voltage)
    coords = [(math.log(v), math.log(d)) for v, d in points]
    if log_v <= coords[0][0]:
        (x0, y0), (x1, y1) = coords[0], coords[1]
    elif log_v >= coords[-1][0]:
        (x0, y0), (x1, y1) = coords[-2], coords[-1]
    else:
        for (x0, y0), (x1, y1) in zip(coords, coords[1:]):
            if x0 <= log_v <= x1:
                break
    slope = (y1 - y0) / (x1 - x0)
    return math.exp(y0 + slope * (log_v - x0))


class TimingModel:
    """Per-instruction latency and wakeup latency at a supply voltage."""

    def __init__(self, voltage=0.6):
        self.voltage = voltage
        self._gate_delay = gate_delay_at(voltage)
        #: (opcode, taken) -> seconds; a dynamic instruction's latency
        #: depends only on its spec and the taken bit, so each pair is
        #: computed once per voltage.  The memoised value comes from the
        #: identical multiplication, so interning is bit-transparent.
        self._delay_table = {}

    @property
    def gate_delay(self):
        """One gate delay, in seconds."""
        return self._gate_delay

    def instruction_delay(self, spec, taken=False):
        """Latency of one instruction, in seconds (interned per spec)."""
        key = (spec.opcode, taken)
        delay = self._delay_table.get(key)
        if delay is None:
            delay = gate_delays_for(spec, taken=taken) * self._gate_delay
            self._delay_table[key] = delay
        return delay

    def delay_for_opcode(self, opcode, taken=False):
        return self.instruction_delay(spec_for(opcode), taken=taken)

    @property
    def wakeup_latency(self):
        """Idle-to-active transition time, in seconds (18 gate delays)."""
        return WAKEUP_GATE_DELAYS * self._gate_delay
