"""The hardware event queue (Section 3.1).

Event tokens are inserted by the timer coprocessor (expiry and cancel) and
by the message coprocessor (radio words, sensor readings, interrupts).
Instruction fetch pops the head token when it sees ``done``, giving
atomic, in-order handler execution with no preemption.

The physical queue is finite; the paper notes that if a handler runs too
long "SNAP/LE may end up dropping pending events because the event queue
has filled up" (Section 4.2).  The default policy reproduces that: a full
queue drops the newly arriving token and counts the drop.  A ``fault``
policy is available for tests that want overflow to be loud.
"""

from collections import deque
from dataclasses import dataclass

from repro.core.exceptions import EventQueueOverflow
from repro.isa.events import Event

DEFAULT_CAPACITY = 8

POLICY_DROP = "drop"
POLICY_FAULT = "fault"


@dataclass(frozen=True)
class EventToken:
    """One token in the event queue: which event, and when it was raised."""

    event: Event
    raised_at: float = 0.0


class EventQueue:
    """Finite FIFO of :class:`EventToken` s."""

    def __init__(self, capacity=DEFAULT_CAPACITY, policy=POLICY_DROP,
                 name="eq"):
        if capacity <= 0:
            raise ValueError("event queue capacity must be positive")
        if policy not in (POLICY_DROP, POLICY_FAULT):
            raise ValueError("unknown overflow policy %r" % policy)
        self.capacity = capacity
        self.policy = policy
        self.name = name
        self._tokens = deque()
        self.inserted = 0
        self.dropped = 0
        #: Observers called (with the token) on every successful insert;
        #: the processor uses this to wake from sleep.
        self.on_insert = []
        #: Optional :class:`~repro.obs.Observability` context (set by
        #: ``SnapProcessor.attach_observability``); ``None`` disables all
        #: instrumentation.
        self.obs = None

    def __len__(self):
        return len(self._tokens)

    @property
    def empty(self):
        return not self._tokens

    @property
    def full(self):
        return len(self._tokens) >= self.capacity

    def insert(self, event, raised_at=0.0):
        """Insert a token; applies the overflow policy when full.

        Returns True when the token was enqueued, False when dropped.
        """
        if self.full:
            if self.policy == POLICY_FAULT:
                raise EventQueueOverflow(
                    "event queue full (capacity %d) inserting %s"
                    % (self.capacity, Event(event).name))
            self.dropped += 1
            if self.obs is not None:
                self.obs.event_dropped(self.name, raised_at,
                                       Event(event).name)
            return False
        token = EventToken(event=Event(event), raised_at=raised_at)
        self._tokens.append(token)
        self.inserted += 1
        if self.obs is not None:
            self.obs.event_enqueued(self.name, raised_at, token.event.name,
                                    len(self._tokens))
        for observer in list(self.on_insert):
            observer(token)
        return True

    def pop(self):
        """Remove and return the head token; None when empty."""
        if not self._tokens:
            return None
        token = self._tokens.popleft()
        if self.obs is not None:
            self.obs.queue_depth(self.name, len(self._tokens))
        return token

    def peek(self):
        return self._tokens[0] if self._tokens else None

    def tokens(self):
        """A list of the queued tokens, head first (inspection only)."""
        return list(self._tokens)
