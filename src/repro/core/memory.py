"""On-chip memory banks.

SNAP/LE has two 4KB single-cycle banks with no caches (Section 3.1): the
IMEM for instructions and the DMEM for data.  Both are word-addressed
arrays of 16-bit words here; the core can write either bank, which is how
the node can be re-programmed over the radio link.
"""

from repro.core.exceptions import MemoryFault

WORD_MASK = 0xFFFF


class MemoryBank:
    """A word-addressed bank of 16-bit words with access counting."""

    def __init__(self, size_words, name="mem"):
        if size_words <= 0:
            raise ValueError("memory size must be positive")
        self.name = name
        self.size_words = size_words
        self._words = [0] * size_words
        self.reads = 0
        self.writes = 0
        #: Optional ``hook(start, count)`` called after any mutation of
        #: the bank's contents (``write``, ``poke``, ``load_image``).
        #: The processor uses it to invalidate predecoded IMEM slots so
        #: self-modifying code always re-decodes the rewritten words.
        self.write_hook = None

    @property
    def size_bytes(self):
        return 2 * self.size_words

    def load_image(self, words, base=0):
        """Load a program image (list of words) starting at *base*."""
        if base < 0 or base + len(words) > self.size_words:
            raise MemoryFault("%s: image of %d words does not fit at %d"
                              % (self.name, len(words), base))
        for index, word in enumerate(words):
            self._words[base + index] = word & WORD_MASK
        if self.write_hook is not None and words:
            self.write_hook(base, len(words))

    def read(self, address):
        self._check(address)
        self.reads += 1
        return self._words[address]

    def write(self, address, value):
        self._check(address)
        self.writes += 1
        self._words[address] = value & WORD_MASK
        if self.write_hook is not None:
            self.write_hook(address, 1)

    def peek(self, address):
        """Debugger access: read without touching access counters."""
        self._check(address)
        return self._words[address]

    def poke(self, address, value):
        """Debugger access: write without touching access counters."""
        self._check(address)
        self._words[address] = value & WORD_MASK
        if self.write_hook is not None:
            self.write_hook(address, 1)

    def dump(self, start=0, count=None):
        """Return a slice of memory contents (for tests and debugging)."""
        if count is None:
            count = self.size_words - start
        return list(self._words[start:start + count])

    def _check(self, address):
        if not 0 <= address < self.size_words:
            raise MemoryFault("%s: address 0x%04x out of range (%d words)"
                              % (self.name, address, self.size_words))
