"""Instruction semantics.

Each executor function receives the processor and the decoded instruction,
performs the architectural side effects, and returns an :class:`Outcome`
telling the fetch where to go next.  Register accesses go through the
processor's ``read_reg``/``write_reg`` so the r15 message-FIFO mapping
applies uniformly to every instruction (Section 3.4: "any instruction can
communicate with the message coprocessor by using r15").
"""

from dataclasses import dataclass
from typing import Optional

from repro.core.exceptions import SimulationError
from repro.coprocessors.timer import NUM_TIMERS
from repro.isa.events import NUM_EVENTS
from repro.isa.opcodes import Opcode
from repro.isa.registers import REG_LINK

WORD_MASK = 0xFFFF
SIGN_BIT = 0x8000


@dataclass(frozen=True)
class Outcome:
    """Result of executing one instruction."""

    #: Next pc; None means fall through to pc + size.
    next_pc: Optional[int] = None
    #: True when control transferred (branch taken / jump) -- costs extra
    #: gate delays in the timing model.
    taken: bool = False
    #: Control effects handled by the processor's main loop.
    done: bool = False
    halt: bool = False


#: The shared fall-through outcome.  Executors return this exact instance
#: for straight-line instructions, so dispatch loops can use an identity
#: check (``outcome is FALL_THROUGH``) instead of reading four fields.
FALL_THROUGH = Outcome()
_FALL_THROUGH = FALL_THROUGH


def _signed(value):
    return value - 0x10000 if value & SIGN_BIT else value


def _execute_add(proc, ins):
    total = proc.read_reg(ins.rd) + proc.read_reg(ins.rs)
    proc.carry = (total >> 16) & 1
    proc.write_reg(ins.rd, total)
    return _FALL_THROUGH


def _execute_addc(proc, ins):
    total = proc.read_reg(ins.rd) + proc.read_reg(ins.rs) + proc.carry
    proc.carry = (total >> 16) & 1
    proc.write_reg(ins.rd, total)
    return _FALL_THROUGH


def _execute_sub(proc, ins):
    difference = proc.read_reg(ins.rd) - proc.read_reg(ins.rs)
    proc.carry = 1 if difference < 0 else 0
    proc.write_reg(ins.rd, difference)
    return _FALL_THROUGH


def _execute_subc(proc, ins):
    difference = proc.read_reg(ins.rd) - proc.read_reg(ins.rs) - proc.carry
    proc.carry = 1 if difference < 0 else 0
    proc.write_reg(ins.rd, difference)
    return _FALL_THROUGH


def _execute_addi(proc, ins):
    total = proc.read_reg(ins.rd) + ins.imm
    proc.carry = (total >> 16) & 1
    proc.write_reg(ins.rd, total)
    return _FALL_THROUGH


def _execute_subi(proc, ins):
    difference = proc.read_reg(ins.rd) - ins.imm
    proc.carry = 1 if difference < 0 else 0
    proc.write_reg(ins.rd, difference)
    return _FALL_THROUGH


def _logical(operation):
    def execute(proc, ins):
        result = operation(proc.read_reg(ins.rd), proc.read_reg(ins.rs))
        proc.write_reg(ins.rd, result)
        return _FALL_THROUGH
    return execute


def _logical_imm(operation):
    def execute(proc, ins):
        result = operation(proc.read_reg(ins.rd), ins.imm)
        proc.write_reg(ins.rd, result)
        return _FALL_THROUGH
    return execute


def _execute_not(proc, ins):
    proc.write_reg(ins.rd, ~proc.read_reg(ins.rs))
    return _FALL_THROUGH


def _execute_mov(proc, ins):
    proc.write_reg(ins.rd, proc.read_reg(ins.rs))
    return _FALL_THROUGH


def _execute_movi(proc, ins):
    proc.write_reg(ins.rd, ins.imm)
    return _FALL_THROUGH


def _shift(kind, amount_from_reg):
    def execute(proc, ins):
        value = proc.read_reg(ins.rd)
        amount = (proc.read_reg(ins.rs) & 0xF) if amount_from_reg else ins.rs
        if kind == "sll":
            result = value << amount
        elif kind == "srl":
            result = value >> amount
        else:  # sra
            result = _signed(value) >> amount
        proc.write_reg(ins.rd, result)
        return _FALL_THROUGH
    return execute


def _execute_ld(proc, ins):
    address = (proc.read_reg(ins.rs) + ins.imm) & WORD_MASK
    proc.write_reg(ins.rd, proc.dmem.read(address))
    return _FALL_THROUGH


def _execute_st(proc, ins):
    value = proc.read_reg(ins.rd)
    address = (proc.read_reg(ins.rs) + ins.imm) & WORD_MASK
    proc.dmem.write(address, value)
    return _FALL_THROUGH


def _execute_ldi(proc, ins):
    address = (proc.read_reg(ins.rs) + ins.imm) & WORD_MASK
    proc.write_reg(ins.rd, proc.imem.read(address))
    return _FALL_THROUGH


def _execute_sti(proc, ins):
    value = proc.read_reg(ins.rd)
    address = (proc.read_reg(ins.rs) + ins.imm) & WORD_MASK
    proc.imem.write(address, value)
    return _FALL_THROUGH


def _execute_bfs(proc, ins):
    destination = proc.read_reg(ins.rd)
    source = proc.read_reg(ins.rs)
    mask = ins.imm
    proc.write_reg(ins.rd, (destination & ~mask) | (source & mask))
    return _FALL_THROUGH


def _execute_rand(proc, ins):
    proc.write_reg(ins.rd, proc.lfsr.next())
    return _FALL_THROUGH


def _execute_seed(proc, ins):
    proc.lfsr.seed(proc.read_reg(ins.rd))
    return _FALL_THROUGH


def _timer_index(proc, ins):
    index = proc.read_reg(ins.rd)
    if index >= NUM_TIMERS:
        raise SimulationError(
            "timer instruction with register number %d (only %d timers)"
            % (index, NUM_TIMERS))
    return index


def _execute_schedhi(proc, ins):
    proc.timer.schedhi(_timer_index(proc, ins), proc.read_reg(ins.rs))
    return _FALL_THROUGH


def _execute_schedlo(proc, ins):
    proc.timer.schedlo(_timer_index(proc, ins), proc.read_reg(ins.rs))
    return _FALL_THROUGH


def _execute_cancel(proc, ins):
    proc.timer.cancel(_timer_index(proc, ins))
    return _FALL_THROUGH


def _branch(predicate):
    def execute(proc, ins):
        value = proc.read_reg(ins.rs)
        if predicate(value):
            return Outcome(next_pc=(proc.pc + 1 + ins.imm) & WORD_MASK,
                           taken=True)
        return _FALL_THROUGH
    return execute


def _execute_jr(proc, ins):
    return Outcome(next_pc=proc.read_reg(ins.rd), taken=True)


def _execute_jalr(proc, ins):
    target = proc.read_reg(ins.rd)
    proc.write_reg(REG_LINK, proc.pc + 1)
    return Outcome(next_pc=target, taken=True)


def _execute_jmp(proc, ins):
    return Outcome(next_pc=ins.imm, taken=True)


def _execute_jal(proc, ins):
    proc.write_reg(REG_LINK, proc.pc + 2)
    return Outcome(next_pc=ins.imm, taken=True)


def _execute_setaddr(proc, ins):
    index = proc.read_reg(ins.rd)
    if index >= NUM_EVENTS:
        raise SimulationError("setaddr with event number %d (only %d events)"
                              % (index, NUM_EVENTS))
    proc.handler_table[index] = proc.read_reg(ins.rs)
    return _FALL_THROUGH


def _execute_nop(proc, ins):
    return _FALL_THROUGH


def _execute_done(proc, ins):
    return Outcome(done=True)


def _execute_halt(proc, ins):
    return Outcome(halt=True)


EXECUTORS = {
    Opcode.NOP: _execute_nop,
    Opcode.DONE: _execute_done,
    Opcode.HALT: _execute_halt,
    Opcode.SETADDR: _execute_setaddr,
    Opcode.ADD: _execute_add,
    Opcode.ADDC: _execute_addc,
    Opcode.SUB: _execute_sub,
    Opcode.SUBC: _execute_subc,
    Opcode.AND: _logical(lambda a, b: a & b),
    Opcode.OR: _logical(lambda a, b: a | b),
    Opcode.XOR: _logical(lambda a, b: a ^ b),
    Opcode.NOT: _execute_not,
    Opcode.MOV: _execute_mov,
    Opcode.SLL: _shift("sll", amount_from_reg=False),
    Opcode.SRL: _shift("srl", amount_from_reg=False),
    Opcode.SRA: _shift("sra", amount_from_reg=False),
    Opcode.SLLV: _shift("sll", amount_from_reg=True),
    Opcode.SRLV: _shift("srl", amount_from_reg=True),
    Opcode.SRAV: _shift("sra", amount_from_reg=True),
    Opcode.RAND: _execute_rand,
    Opcode.SEED: _execute_seed,
    Opcode.SCHEDHI: _execute_schedhi,
    Opcode.SCHEDLO: _execute_schedlo,
    Opcode.CANCEL: _execute_cancel,
    Opcode.JR: _execute_jr,
    Opcode.JALR: _execute_jalr,
    Opcode.BEQZ: _branch(lambda v: v == 0),
    Opcode.BNEZ: _branch(lambda v: v != 0),
    Opcode.BLTZ: _branch(lambda v: bool(v & SIGN_BIT)),
    Opcode.BGEZ: _branch(lambda v: not v & SIGN_BIT),
    Opcode.MOVI: _execute_movi,
    Opcode.ADDI: _execute_addi,
    Opcode.SUBI: _execute_subi,
    Opcode.ANDI: _logical_imm(lambda a, b: a & b),
    Opcode.ORI: _logical_imm(lambda a, b: a | b),
    Opcode.XORI: _logical_imm(lambda a, b: a ^ b),
    Opcode.LD: _execute_ld,
    Opcode.ST: _execute_st,
    Opcode.LDI: _execute_ldi,
    Opcode.STI: _execute_sti,
    Opcode.BFS: _execute_bfs,
    Opcode.JMP: _execute_jmp,
    Opcode.JAL: _execute_jal,
}


def execute(proc, instruction):
    """Execute *instruction* on *proc*; returns an :class:`Outcome`."""
    return EXECUTORS[instruction.opcode](proc, instruction)
