"""Simulation error types."""

from repro.signals import WouldBlock  # noqa: F401  (re-export)


class SimulationError(Exception):
    """Base class for simulator-detected faults."""


class MemoryFault(SimulationError):
    """Access outside an on-chip memory bank."""


class SimulationDeadlock(SimulationError):
    """The core is stalled on the r15 FIFO and no device can ever wake it."""


class EventQueueOverflow(SimulationError):
    """Raised only when the event queue's overflow policy is 'fault'."""
