"""Discrete-event simulation kernel.

Every component in a simulated node or network (processor core, timer
coprocessor, radio, sensors, wireless channel) shares one kernel and
schedules callbacks on its timeline.  Time is a float in seconds.
"""

import heapq
import itertools


class Kernel:
    """A minimal deterministic discrete-event scheduler."""

    def __init__(self):
        self._queue = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._cancelled = set()

    @property
    def now(self):
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to run *delay* seconds from now.

        Returns an opaque handle usable with :meth:`cancel`.  Events at
        equal times run in scheduling order (deterministic).
        """
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        handle = next(self._sequence)
        heapq.heappush(self._queue, (self._now + delay, handle, callback, args))
        return handle

    def schedule_at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at an absolute *time*."""
        return self.schedule(time - self._now, callback, *args)

    def cancel(self, handle):
        """Cancel a previously scheduled callback (lazily)."""
        self._cancelled.add(handle)

    @property
    def pending(self):
        """Number of scheduled (non-cancelled) events."""
        return sum(1 for _, handle, _, _ in self._queue
                   if handle not in self._cancelled)

    def step(self):
        """Run the next event; returns False when the queue is empty."""
        while self._queue:
            time, handle, callback, args = heapq.heappop(self._queue)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self._now = time
            callback(*args)
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run events until the queue drains, *until* seconds pass, or
        *max_events* callbacks have run.  Returns the number of callbacks
        executed."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_time = self._peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            self.step()
            executed += 1
        return executed

    def _peek_time(self):
        while self._queue:
            time, handle, _, _ = self._queue[0]
            if handle in self._cancelled:
                heapq.heappop(self._queue)
                self._cancelled.discard(handle)
                continue
            return time
        return None
