"""Discrete-event simulation kernel.

Every component in a simulated node or network (processor core, timer
coprocessor, radio, sensors, wireless channel) shares one kernel and
schedules callbacks on its timeline.  Time is a float in seconds.

Heap entries are mutable lists ``[time, handle, callback, args]`` indexed
by handle in ``_live``: cancelling clears the callback slot in place and
drops the index entry, so :meth:`cancel` is O(1), idempotent, and safe on
handles that already fired -- nothing accumulates across long timer-heavy
runs.  Dead entries are skipped (and popped) lazily by :meth:`step` and
:meth:`next_time`.
"""

import heapq


class Kernel:
    """A minimal deterministic discrete-event scheduler."""

    def __init__(self):
        self._queue = []
        #: Next handle to hand out.  A plain integer (not an iterator) so
        #: a checkpoint can capture and restore the exact tie-break
        #: sequence: events at equal times run in handle order.
        self._next_handle = 0
        self._now = 0.0
        #: handle -> live heap entry; cancelled/fired handles are absent.
        self._live = {}
        #: Bumped on every schedule; burst loops use it to know when a
        #: cached :meth:`next_time` may have moved *earlier*.  (Cancels
        #: can only move it later, which a stale cache handles safely.)
        self._version = 0
        #: Set by :meth:`run`: the ``until`` horizon of the active run
        #: (None outside a run or for unbounded runs).
        self._horizon = None
        #: Cumulative callbacks executed over the kernel's lifetime.
        #: Host-side telemetry only (events/s heartbeats); not part of
        #: any checkpoint or digest.
        self.executed = 0
        #: True while inside an unbounded :meth:`run` (no ``max_events``):
        #: components may batch work between events.  ``step()`` called
        #: directly -- e.g. by a debugger -- keeps single-event semantics.
        self._burst_ok = False

    @property
    def now(self):
        """Current simulation time in seconds."""
        return self._now

    @property
    def horizon(self):
        """The ``until`` bound of the active :meth:`run`, or ``None``
        outside a run / for unbounded runs.  Lets periodic host-side
        callbacks (progress heartbeats) compute an ETA."""
        return self._horizon

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to run *delay* seconds from now.

        Returns an opaque handle usable with :meth:`cancel`.  Events at
        equal times run in scheduling order (deterministic).
        """
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)" % delay)
        handle = self._next_handle
        self._next_handle = handle + 1
        entry = [self._now + delay, handle, callback, args]
        self._live[handle] = entry
        heapq.heappush(self._queue, entry)
        self._version += 1
        return handle

    def schedule_at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at an absolute *time*."""
        return self.schedule(time - self._now, callback, *args)

    def cancel(self, handle):
        """Cancel a previously scheduled callback.

        O(1); a no-op when the handle already fired or was already
        cancelled.
        """
        entry = self._live.pop(handle, None)
        if entry is not None:
            entry[2] = None

    @property
    def pending(self):
        """Number of scheduled (non-cancelled) events."""
        return len(self._live)

    def step(self):
        """Run the next event; returns False when the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            callback = entry[2]
            if callback is None:
                continue
            del self._live[entry[1]]
            self._now = entry[0]
            self.executed += 1
            callback(*entry[3])
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run events until the queue drains, *until* seconds pass, or
        *max_events* callbacks have run.  Returns the number of callbacks
        executed.

        When the run ends with no runnable event at or before *until*
        (the queue drained, or the next event lies beyond the horizon),
        the clock advances to *until* so back-to-back bounded runs and
        timeline samplers see a consistent timeline.  A run cut short by
        *max_events* leaves the clock at the last event executed.
        """
        executed = 0
        saved = (self._horizon, self._burst_ok)
        self._horizon = until
        self._burst_ok = max_events is None
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.next_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._horizon, self._burst_ok = saved
        if until is not None and until > self._now:
            next_time = self.next_time()
            if next_time is None or next_time > until:
                self._now = until
        return executed

    def next_time(self):
        """Time of the next live event, or None when the queue is empty."""
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[2] is None:
                heapq.heappop(queue)
                continue
            return entry[0]
        return None

    # -- checkpoint support ----------------------------------------------------

    def live_entries(self):
        """The live heap entries as ``(time, handle, callback, args)``
        tuples in execution order (time, then handle).

        Cancelled entries are excluded -- they carry no future behavior.
        Used by :mod:`repro.sim.checkpoint` to serialize the heap.
        """
        entries = [(entry[0], entry[1], entry[2], entry[3])
                   for entry in self._live.values()]
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return entries

    def restore_state(self, now, next_handle, entries):
        """Replace clock, handle counter, and heap with restored state.

        *entries* is an iterable of ``(time, handle, callback, args)``;
        handles must be unique and below *next_handle*.  Replaces any
        existing schedule wholesale.
        """
        self._now = now
        self._queue = []
        self._live = {}
        for time, handle, callback, args in entries:
            if handle >= next_handle:
                raise ValueError(
                    "restored handle %d is not below the restored "
                    "counter %d" % (handle, next_handle))
            if handle in self._live:
                raise ValueError("duplicate restored handle %d" % handle)
            entry = [time, handle, callback, tuple(args)]
            self._live[handle] = entry
            self._queue.append(entry)
        heapq.heapify(self._queue)
        self._next_handle = next_handle
        self._version += 1

    def advance(self, time):
        """Move the clock forward without running events.

        Used by batching components (the processor's instruction-burst
        loop) that account for intermediate work themselves; *time* must
        not exceed the next pending event's time.
        """
        if time < self._now:
            raise ValueError("cannot advance backwards (%r < %r)"
                             % (time, self._now))
        self._now = time

    # Backwards-compatible alias (pre-burst internal name).
    _peek_time = next_time
