"""The pseudo-random-number unit: a 16-bit maximal-length LFSR.

Backs the ``rand`` and ``seed`` instructions (Section 3.4).  A Galois LFSR
with taps 16, 14, 13, 11 (polynomial ``x^16 + x^14 + x^13 + x^11 + 1``,
mask ``0xB400``) has a period of 2**16 - 1 over nonzero states.
"""

TAP_MASK = 0xB400
DEFAULT_SEED = 0xACE1


class Lfsr16:
    """Galois linear-feedback shift register, 16 bits."""

    def __init__(self, seed=DEFAULT_SEED):
        self.seed(seed)

    @property
    def state(self):
        return self._state

    def seed(self, value):
        """Load a new seed.  A zero seed would lock the register at zero,
        so hardware maps it to the nonzero default."""
        value &= 0xFFFF
        self._state = value if value else DEFAULT_SEED

    def next(self):
        """Advance one step and return the new 16-bit state."""
        lsb = self._state & 1
        self._state >>= 1
        if lsb:
            self._state ^= TAP_MASK
        return self._state
