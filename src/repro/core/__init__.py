"""The SNAP/LE processor core simulator.

This package implements the event-driven asynchronous core of Section 3.1:
instruction fetch with the hardware event queue and event-handler table,
decode, the execution units on the two-level bus hierarchy, the register
file with the r15 message-FIFO mapping, the on-chip IMEM/DMEM banks, and
the quasi-delay-insensitive timing model (variable per-instruction cycle
time, zero switching activity while asleep, 18-gate-delay wakeup).
"""

from repro.core.kernel import Kernel
from repro.core.exceptions import (
    EventQueueOverflow,
    MemoryFault,
    SimulationDeadlock,
    SimulationError,
)
from repro.core.event_queue import EventQueue, EventToken
from repro.core.memory import MemoryBank
from repro.core.lfsr import Lfsr16
from repro.core.regfile import RegisterFile
from repro.core.timing import TimingModel
from repro.core.processor import (
    CoreConfig,
    PredecodeCache,
    SnapProcessor,
    shared_predecode,
)

__all__ = [
    "Kernel",
    "EventQueueOverflow",
    "MemoryFault",
    "SimulationDeadlock",
    "SimulationError",
    "EventQueue",
    "EventToken",
    "MemoryBank",
    "Lfsr16",
    "RegisterFile",
    "TimingModel",
    "CoreConfig",
    "PredecodeCache",
    "SnapProcessor",
    "shared_predecode",
]
