"""Disassembler for SNAP machine code."""

from repro.isa.encoding import EncodingError, decode


def disassemble(instruction, address=None):
    """Render one instruction; with *address*, prefix ``addr:`` hex."""
    text = instruction.text()
    if address is None:
        return text
    return "%04x:  %s" % (address, text)


def disassemble_words(words, base=0):
    """Disassemble a word stream into a list of text lines.

    Words that fail to decode are rendered as ``.word 0xNNNN`` lines so a
    dump of a mixed code/data image is still readable.
    """
    lines = []
    offset = 0
    while offset < len(words):
        try:
            instruction, size = decode(words, offset)
        except EncodingError:
            lines.append("%04x:  .word 0x%04x" % (base + offset, words[offset] & 0xFFFF))
            offset += 1
            continue
        lines.append(disassemble(instruction, address=base + offset))
        offset += size
    return lines
