"""The decoded-instruction representation shared by the whole tool-chain."""

from dataclasses import dataclass
from typing import Optional

from repro.isa.opcodes import Format, Opcode, spec_for
from repro.isa.registers import register_name

#: Range of the 6-bit signed branch offset (in words, relative to the word
#: after the branch).
BRANCH_OFFSET_MIN = -32
BRANCH_OFFSET_MAX = 31


@dataclass(frozen=True)
class Instruction:
    """A decoded SNAP instruction.

    Fields that a format does not use are ``None`` (``imm`` for one-word
    formats, registers for ``J``/``N`` formats, ...).  ``imm`` holds the
    16-bit immediate of ``RI`` instructions, the 16-bit absolute address of
    ``J`` instructions, or the signed word offset of ``B`` branches.
    """

    opcode: Opcode
    rd: Optional[int] = None
    rs: Optional[int] = None
    imm: Optional[int] = None

    @property
    def spec(self):
        return spec_for(self.opcode)

    @property
    def size(self):
        """Size in 16-bit words (1 or 2)."""
        return 2 if self.spec.two_word else 1

    def validate(self):
        """Raise ``ValueError`` if operands do not fit the format."""
        spec = self.spec
        fmt = spec.format
        if fmt == Format.N:
            _require(self.rd is None and self.rs is None and self.imm is None,
                     "%s takes no operands" % spec.mnemonic)
        elif fmt == Format.R:
            _require(self.imm is None, "%s takes no immediate" % spec.mnemonic)
            _require_reg(self.rd, spec.mnemonic)
            _require_reg(self.rs, spec.mnemonic)
        elif fmt == Format.B:
            _require(self.rd is None, "%s has no rd field" % spec.mnemonic)
            _require_reg(self.rs, spec.mnemonic)
            _require(self.imm is not None
                     and BRANCH_OFFSET_MIN <= self.imm <= BRANCH_OFFSET_MAX,
                     "%s offset out of range: %r" % (spec.mnemonic, self.imm))
        elif fmt == Format.RI:
            _require_reg(self.rd, spec.mnemonic)
            _require_reg(self.rs, spec.mnemonic)
            _require(self.imm is not None and 0 <= self.imm <= 0xFFFF,
                     "%s immediate out of range: %r" % (spec.mnemonic, self.imm))
        elif fmt == Format.J:
            _require(self.rd is None and self.rs is None,
                     "%s takes only an address" % spec.mnemonic)
            _require(self.imm is not None and 0 <= self.imm <= 0xFFFF,
                     "%s address out of range: %r" % (spec.mnemonic, self.imm))
        return self

    def text(self):
        """Render back to canonical assembly syntax."""
        spec = self.spec
        fmt = spec.format
        if fmt == Format.N:
            return spec.mnemonic
        if fmt == Format.R:
            if self.opcode in (Opcode.SLL, Opcode.SRL, Opcode.SRA):
                return "%s %s, %d" % (spec.mnemonic, register_name(self.rd), self.rs)
            if self.opcode in (Opcode.RAND, Opcode.SEED, Opcode.CANCEL,
                               Opcode.JR, Opcode.JALR):
                return "%s %s" % (spec.mnemonic, register_name(self.rd))
            return "%s %s, %s" % (spec.mnemonic,
                                  register_name(self.rd), register_name(self.rs))
        if fmt == Format.B:
            return "%s %s, %d" % (spec.mnemonic, register_name(self.rs), self.imm)
        if fmt == Format.RI:
            if self.opcode in (Opcode.LD, Opcode.ST, Opcode.LDI, Opcode.STI):
                return "%s %s, %d(%s)" % (spec.mnemonic, register_name(self.rd),
                                          self.imm, register_name(self.rs))
            if self.opcode == Opcode.BFS:
                return "bfs %s, %s, 0x%04x" % (register_name(self.rd),
                                               register_name(self.rs), self.imm)
            if self.opcode in (Opcode.MOVI,):
                return "%s %s, %d" % (spec.mnemonic, register_name(self.rd), self.imm)
            return "%s %s, %d" % (spec.mnemonic, register_name(self.rd), self.imm)
        if fmt == Format.J:
            return "%s 0x%04x" % (spec.mnemonic, self.imm)
        raise AssertionError("unreachable format %r" % fmt)

    def __str__(self):
        return self.text()


def _require(condition, message):
    if not condition:
        raise ValueError(message)


def _require_reg(value, mnemonic):
    _require(value is not None and 0 <= value <= 15,
             "%s register operand out of range: %r" % (mnemonic, value))
