"""Hardware event identifiers.

Event tokens flowing through SNAP/LE's event queue carry one of these
identifiers; each identifier has its own entry in the event-handler table
(paper, Sections 3.1-3.3).  Timer events are raised both on expiry and on
cancellation (the cancel-race rule of Section 3.2); software distinguishes
the two cases by tracking which timers it cancelled.
"""

import enum


class Event(enum.IntEnum):
    """Event identifiers / event-handler-table indices."""

    TIMER0 = 0
    TIMER1 = 1
    TIMER2 = 2
    #: A 16-bit word arrived from the radio and is in the r15 FIFO.
    RADIO_RX = 3
    #: The radio finished serializing the previously queued TX word.
    RADIO_TX_DONE = 4
    #: A sensor asserted the external-interrupt pin (passive sensing).
    SENSOR_IRQ = 5
    #: A Query command completed; the sensor value is in the r15 FIFO.
    QUERY_DONE = 6
    #: Reserved for experiments (software-raised events).
    SOFT = 7


NUM_EVENTS = 8

#: Events for which a timer register number accompanies the token.
TIMER_EVENTS = (Event.TIMER0, Event.TIMER1, Event.TIMER2)
