"""Opcode table for the SNAP ISA.

Each opcode carries static metadata used across the tool-chain and the
simulator: its binary encoding format, the instruction class used for
energy/timing accounting (the classes in the paper's Figure 4), the
execution unit that performs it, and whether that unit sits on the fast or
slow bus of SNAP/LE's two-level bus hierarchy (paper, Section 3.1).
"""

import enum
from dataclasses import dataclass


class Format(enum.Enum):
    """Binary encoding formats.

    * ``N``  -- no operands; one word.
    * ``R``  -- register/register; one word (``rs`` doubles as a 4-bit
      shift amount for the immediate-shift opcodes).
    * ``B``  -- compare-register-to-zero branch with a 6-bit signed word
      offset; one word.
    * ``RI`` -- register/register plus a 16-bit immediate; two words.
    * ``J``  -- absolute 16-bit target address; two words.
    """

    N = "n"
    R = "r"
    B = "b"
    RI = "ri"
    J = "j"


class InstrClass(enum.Enum):
    """Instruction classes reported in the paper's Figure 4."""

    ARITH_REG = "Arith Reg"
    ARITH_IMM = "Arith Imm"
    LOGICAL_REG = "Logical Reg"
    LOGICAL_IMM = "Logical Imm"
    SHIFT = "Shift"
    LOAD = "Load"
    STORE = "Store"
    IMEM_LOAD = "IMem Load"
    IMEM_STORE = "IMem Store"
    BRANCH = "Branch"
    JUMP = "Jump"
    BITFIELD = "Bitfield"
    RAND = "Rand"
    TIMER = "Timer"
    EVENT = "Event"
    NOP = "Nop"


class Unit(enum.Enum):
    """Execution units of the SNAP/LE core (paper, Section 3.1)."""

    ADDER = "adder"
    LOGIC = "logic"
    SHIFTER = "shifter"
    DMEM = "dmem-ls"
    IMEM = "imem-ls"
    JUMP = "jump-branch"
    LFSR = "lfsr"
    TIMER = "timer-if"
    EVENT = "event"
    NONE = "none"


#: Units attached to the fast busses; everything else rides the slow busses
#: through the fast ones (Section 3.1: adder, logic unit, DMEM load-store,
#: shifter and jump/branch are the commonly used units and sit on the fast
#: busses).
FAST_BUS_UNITS = frozenset(
    {Unit.ADDER, Unit.LOGIC, Unit.SHIFTER, Unit.DMEM, Unit.JUMP, Unit.NONE}
)


class Opcode(enum.IntEnum):
    """6-bit primary opcodes."""

    NOP = 0x00
    DONE = 0x01
    HALT = 0x02  # simulation extension: stop the simulator
    SETADDR = 0x03

    ADD = 0x04
    ADDC = 0x05
    SUB = 0x06
    SUBC = 0x07

    AND = 0x08
    OR = 0x09
    XOR = 0x0A
    NOT = 0x0B
    MOV = 0x0C

    SLL = 0x0D
    SRL = 0x0E
    SRA = 0x0F
    SLLV = 0x10
    SRLV = 0x11
    SRAV = 0x12

    RAND = 0x13
    SEED = 0x14

    SCHEDHI = 0x15
    SCHEDLO = 0x16
    CANCEL = 0x17

    JR = 0x18
    JALR = 0x19

    BEQZ = 0x1A
    BNEZ = 0x1B
    BLTZ = 0x1C
    BGEZ = 0x1D

    MOVI = 0x20
    ADDI = 0x21
    SUBI = 0x22
    ANDI = 0x23
    ORI = 0x24
    XORI = 0x25

    LD = 0x26
    ST = 0x27
    LDI = 0x28
    STI = 0x29

    BFS = 0x2A

    JMP = 0x2C
    JAL = 0x2D


@dataclass(frozen=True)
class OpcodeSpec:
    """Static description of one opcode."""

    opcode: "Opcode"
    mnemonic: str
    format: Format
    instr_class: InstrClass
    unit: Unit
    #: True when ``rd`` is read as a source operand (destructive ALU form,
    #: stores, coprocessor ops that read rd, ...).
    reads_rd: bool
    #: True when ``rs`` is read as a source operand.
    reads_rs: bool
    #: True when ``rd`` is written with a result.
    writes_rd: bool

    @property
    def two_word(self):
        """Two-word instructions carry a 16-bit immediate/address word."""
        return self.format in (Format.RI, Format.J)

    @property
    def on_fast_bus(self):
        return self.unit in FAST_BUS_UNITS


def _spec(opcode, fmt, cls, unit, reads_rd, reads_rs, writes_rd):
    return OpcodeSpec(
        opcode=opcode,
        mnemonic=opcode.name.lower(),
        format=fmt,
        instr_class=cls,
        unit=unit,
        reads_rd=reads_rd,
        reads_rs=reads_rs,
        writes_rd=writes_rd,
    )


_SPECS = {
    Opcode.NOP: _spec(Opcode.NOP, Format.N, InstrClass.NOP, Unit.NONE, False, False, False),
    Opcode.DONE: _spec(Opcode.DONE, Format.N, InstrClass.EVENT, Unit.EVENT, False, False, False),
    Opcode.HALT: _spec(Opcode.HALT, Format.N, InstrClass.NOP, Unit.NONE, False, False, False),
    Opcode.SETADDR: _spec(Opcode.SETADDR, Format.R, InstrClass.EVENT, Unit.EVENT, True, True, False),
    Opcode.ADD: _spec(Opcode.ADD, Format.R, InstrClass.ARITH_REG, Unit.ADDER, True, True, True),
    Opcode.ADDC: _spec(Opcode.ADDC, Format.R, InstrClass.ARITH_REG, Unit.ADDER, True, True, True),
    Opcode.SUB: _spec(Opcode.SUB, Format.R, InstrClass.ARITH_REG, Unit.ADDER, True, True, True),
    Opcode.SUBC: _spec(Opcode.SUBC, Format.R, InstrClass.ARITH_REG, Unit.ADDER, True, True, True),
    Opcode.AND: _spec(Opcode.AND, Format.R, InstrClass.LOGICAL_REG, Unit.LOGIC, True, True, True),
    Opcode.OR: _spec(Opcode.OR, Format.R, InstrClass.LOGICAL_REG, Unit.LOGIC, True, True, True),
    Opcode.XOR: _spec(Opcode.XOR, Format.R, InstrClass.LOGICAL_REG, Unit.LOGIC, True, True, True),
    Opcode.NOT: _spec(Opcode.NOT, Format.R, InstrClass.LOGICAL_REG, Unit.LOGIC, False, True, True),
    Opcode.MOV: _spec(Opcode.MOV, Format.R, InstrClass.LOGICAL_REG, Unit.LOGIC, False, True, True),
    Opcode.SLL: _spec(Opcode.SLL, Format.R, InstrClass.SHIFT, Unit.SHIFTER, True, False, True),
    Opcode.SRL: _spec(Opcode.SRL, Format.R, InstrClass.SHIFT, Unit.SHIFTER, True, False, True),
    Opcode.SRA: _spec(Opcode.SRA, Format.R, InstrClass.SHIFT, Unit.SHIFTER, True, False, True),
    Opcode.SLLV: _spec(Opcode.SLLV, Format.R, InstrClass.SHIFT, Unit.SHIFTER, True, True, True),
    Opcode.SRLV: _spec(Opcode.SRLV, Format.R, InstrClass.SHIFT, Unit.SHIFTER, True, True, True),
    Opcode.SRAV: _spec(Opcode.SRAV, Format.R, InstrClass.SHIFT, Unit.SHIFTER, True, True, True),
    Opcode.RAND: _spec(Opcode.RAND, Format.R, InstrClass.RAND, Unit.LFSR, False, False, True),
    Opcode.SEED: _spec(Opcode.SEED, Format.R, InstrClass.RAND, Unit.LFSR, True, False, False),
    Opcode.SCHEDHI: _spec(Opcode.SCHEDHI, Format.R, InstrClass.TIMER, Unit.TIMER, True, True, False),
    Opcode.SCHEDLO: _spec(Opcode.SCHEDLO, Format.R, InstrClass.TIMER, Unit.TIMER, True, True, False),
    Opcode.CANCEL: _spec(Opcode.CANCEL, Format.R, InstrClass.TIMER, Unit.TIMER, True, False, False),
    Opcode.JR: _spec(Opcode.JR, Format.R, InstrClass.JUMP, Unit.JUMP, True, False, False),
    Opcode.JALR: _spec(Opcode.JALR, Format.R, InstrClass.JUMP, Unit.JUMP, True, False, False),
    Opcode.BEQZ: _spec(Opcode.BEQZ, Format.B, InstrClass.BRANCH, Unit.JUMP, False, True, False),
    Opcode.BNEZ: _spec(Opcode.BNEZ, Format.B, InstrClass.BRANCH, Unit.JUMP, False, True, False),
    Opcode.BLTZ: _spec(Opcode.BLTZ, Format.B, InstrClass.BRANCH, Unit.JUMP, False, True, False),
    Opcode.BGEZ: _spec(Opcode.BGEZ, Format.B, InstrClass.BRANCH, Unit.JUMP, False, True, False),
    Opcode.MOVI: _spec(Opcode.MOVI, Format.RI, InstrClass.LOGICAL_IMM, Unit.LOGIC, False, False, True),
    Opcode.ADDI: _spec(Opcode.ADDI, Format.RI, InstrClass.ARITH_IMM, Unit.ADDER, True, False, True),
    Opcode.SUBI: _spec(Opcode.SUBI, Format.RI, InstrClass.ARITH_IMM, Unit.ADDER, True, False, True),
    Opcode.ANDI: _spec(Opcode.ANDI, Format.RI, InstrClass.LOGICAL_IMM, Unit.LOGIC, True, False, True),
    Opcode.ORI: _spec(Opcode.ORI, Format.RI, InstrClass.LOGICAL_IMM, Unit.LOGIC, True, False, True),
    Opcode.XORI: _spec(Opcode.XORI, Format.RI, InstrClass.LOGICAL_IMM, Unit.LOGIC, True, False, True),
    Opcode.LD: _spec(Opcode.LD, Format.RI, InstrClass.LOAD, Unit.DMEM, False, True, True),
    Opcode.ST: _spec(Opcode.ST, Format.RI, InstrClass.STORE, Unit.DMEM, True, True, False),
    Opcode.LDI: _spec(Opcode.LDI, Format.RI, InstrClass.IMEM_LOAD, Unit.IMEM, False, True, True),
    Opcode.STI: _spec(Opcode.STI, Format.RI, InstrClass.IMEM_STORE, Unit.IMEM, True, True, False),
    Opcode.BFS: _spec(Opcode.BFS, Format.RI, InstrClass.BITFIELD, Unit.LOGIC, True, True, True),
    Opcode.JMP: _spec(Opcode.JMP, Format.J, InstrClass.JUMP, Unit.JUMP, False, False, False),
    Opcode.JAL: _spec(Opcode.JAL, Format.J, InstrClass.JUMP, Unit.JUMP, False, False, False),
}

_BY_MNEMONIC = {spec.mnemonic: spec for spec in _SPECS.values()}


def spec_for(opcode):
    """Return the :class:`OpcodeSpec` for an :class:`Opcode`."""
    return _SPECS[Opcode(opcode)]


def spec_for_mnemonic(mnemonic):
    """Look up a spec by assembly mnemonic; raises ``KeyError`` if unknown."""
    return _BY_MNEMONIC[mnemonic.lower()]


def all_specs():
    """All opcode specs, in opcode order."""
    return [spec for _, spec in sorted(_SPECS.items())]


def mnemonics():
    """All known mnemonics."""
    return sorted(_BY_MNEMONIC)
