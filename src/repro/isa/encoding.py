"""Binary encoding and decoding of SNAP instructions.

Word layouts (bit 15 is the most significant bit):

* ``N``  : ``oooooo 0000000000``
* ``R``  : ``oooooo dddd ssss 00``
* ``B``  : ``oooooo ssss ffffff``   (``f`` = 6-bit signed word offset)
* ``RI`` : ``oooooo dddd ssss 00`` + 16-bit immediate word
* ``J``  : ``oooooo 0000000000``   + 16-bit address word
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Opcode, spec_for

WORD_MASK = 0xFFFF


class EncodingError(Exception):
    """Raised when a word sequence does not decode to a valid instruction."""


def encode(instruction):
    """Encode an :class:`Instruction` into a list of one or two 16-bit words."""
    instruction.validate()
    spec = instruction.spec
    opcode_bits = int(instruction.opcode) << 10
    fmt = spec.format
    if fmt == Format.N:
        return [opcode_bits]
    if fmt == Format.R:
        return [opcode_bits | (instruction.rd << 6) | (instruction.rs << 2)]
    if fmt == Format.B:
        offset = instruction.imm & 0x3F
        return [opcode_bits | (instruction.rs << 6) | offset]
    if fmt == Format.RI:
        word = opcode_bits | (instruction.rd << 6) | (instruction.rs << 2)
        return [word, instruction.imm & WORD_MASK]
    if fmt == Format.J:
        return [opcode_bits, instruction.imm & WORD_MASK]
    raise AssertionError("unreachable format %r" % fmt)


def decode(words, offset=0):
    """Decode one instruction starting at ``words[offset]``.

    Returns ``(instruction, size_in_words)``.  Raises :class:`EncodingError`
    on an unknown opcode, a truncated two-word instruction, or nonzero bits
    in fields the format leaves unused.
    """
    if offset >= len(words):
        raise EncodingError("decode past end of word stream")
    word = words[offset] & WORD_MASK
    opcode_value = word >> 10
    try:
        opcode = Opcode(opcode_value)
    except ValueError:
        raise EncodingError("unknown opcode 0x%02x in word 0x%04x"
                            % (opcode_value, word)) from None
    spec = spec_for(opcode)
    fmt = spec.format

    if spec.two_word and offset + 1 >= len(words):
        raise EncodingError("truncated two-word instruction %s" % spec.mnemonic)

    if fmt == Format.N:
        if word & 0x03FF:
            raise EncodingError("nonzero operand bits in %s" % spec.mnemonic)
        return Instruction(opcode), 1
    if fmt == Format.R:
        if word & 0x3:
            raise EncodingError("nonzero pad bits in %s" % spec.mnemonic)
        rd = (word >> 6) & 0xF
        rs = (word >> 2) & 0xF
        return Instruction(opcode, rd=rd, rs=rs), 1
    if fmt == Format.B:
        rs = (word >> 6) & 0xF
        off = word & 0x3F
        if off >= 32:
            off -= 64
        return Instruction(opcode, rs=rs, imm=off), 1
    if fmt == Format.RI:
        if word & 0x3:
            raise EncodingError("nonzero pad bits in %s" % spec.mnemonic)
        rd = (word >> 6) & 0xF
        rs = (word >> 2) & 0xF
        imm = words[offset + 1] & WORD_MASK
        return Instruction(opcode, rd=rd, rs=rs, imm=imm), 2
    if fmt == Format.J:
        if word & 0x03FF:
            raise EncodingError("nonzero operand bits in %s" % spec.mnemonic)
        imm = words[offset + 1] & WORD_MASK
        return Instruction(opcode, imm=imm), 2
    raise AssertionError("unreachable format %r" % fmt)


def decode_stream(words):
    """Decode a whole word stream into ``[(address, instruction), ...]``.

    Decoding is linear from word 0; embedded data words will decode as
    (possibly bogus) instructions or raise, exactly as real fetch hardware
    would misinterpret them.
    """
    result = []
    offset = 0
    while offset < len(words):
        instruction, size = decode(words, offset)
        result.append((offset, instruction))
        offset += size
    return result
