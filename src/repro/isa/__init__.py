"""SNAP instruction-set architecture definition.

This package defines the SNAP ISA from Section 3.4 of the paper: a 16-bit
RISC instruction set with one- and two-word instructions, organized into the
paper's five categories:

1. standard RISC instructions (arithmetic, logic, shift, memory, control),
2. timer-coprocessor instructions (``schedhi``, ``schedlo``, ``cancel``),
3. message-coprocessor communication via register ``r15``,
4. network-protocol instructions (``bfs``, ``rand``, ``seed``), and
5. event-driven execution instructions (``done``, ``setaddr``).

The concrete binary encoding is this reproduction's own (the paper does not
publish one); the architectural properties it preserves are the ones the
evaluation depends on: 16-bit instruction words, two-word immediate forms,
two-word memory operations, and the r15 message-FIFO convention.
"""

from repro.isa.registers import (
    NUM_REGISTERS,
    REG_LINK,
    REG_MSG,
    REG_STACK,
    register_name,
    register_number,
)
from repro.isa.opcodes import Format, InstrClass, Opcode, Unit, spec_for
from repro.isa.instruction import Instruction
from repro.isa.encoding import (
    EncodingError,
    decode,
    decode_stream,
    encode,
)
from repro.isa.disasm import disassemble, disassemble_words
from repro.isa.events import Event, NUM_EVENTS

__all__ = [
    "NUM_REGISTERS",
    "REG_LINK",
    "REG_MSG",
    "REG_STACK",
    "register_name",
    "register_number",
    "Format",
    "InstrClass",
    "Opcode",
    "Unit",
    "spec_for",
    "Instruction",
    "EncodingError",
    "decode",
    "decode_stream",
    "encode",
    "disassemble",
    "disassemble_words",
    "Event",
    "NUM_EVENTS",
]
