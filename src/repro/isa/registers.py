"""Register conventions for the SNAP ISA.

SNAP/LE's register file has fifteen physical registers (``r0`` .. ``r14``).
Register ``r15`` is not physical: reading it pops a word from the message
coprocessor's outgoing FIFO, and writing it pushes a word onto the message
coprocessor's incoming FIFO (paper, Section 3.3).

Software conventions used by the tool-chain (not enforced by hardware):

* ``r13`` (alias ``sp``) -- stack pointer used by the C compiler,
* ``r14`` (alias ``lr``) -- link register written by ``jal``/``jalr``,
* ``r15`` (alias ``msg``) -- the message-coprocessor FIFO register.
"""

NUM_REGISTERS = 16

REG_STACK = 13
REG_LINK = 14
REG_MSG = 15

_ALIASES = {
    "sp": REG_STACK,
    "lr": REG_LINK,
    "msg": REG_MSG,
}

_ALIAS_BY_NUMBER = {number: alias for alias, number in _ALIASES.items()}


def register_name(number, prefer_alias=False):
    """Return the canonical assembly name for register *number*.

    >>> register_name(3)
    'r3'
    >>> register_name(15, prefer_alias=True)
    'msg'
    """
    if not 0 <= number < NUM_REGISTERS:
        raise ValueError("register number out of range: %r" % (number,))
    if prefer_alias and number in _ALIAS_BY_NUMBER:
        return _ALIAS_BY_NUMBER[number]
    return "r%d" % number


def register_number(name):
    """Parse a register name (``r7``, ``sp``, ``lr``, ``msg``) to its number.

    Raises ``ValueError`` for anything that is not a register name.
    """
    text = name.strip().lower()
    if text in _ALIASES:
        return _ALIASES[text]
    if text.startswith("r") and text[1:].isdigit():
        number = int(text[1:])
        if 0 <= number < NUM_REGISTERS:
            return number
    raise ValueError("not a register name: %r" % (name,))
