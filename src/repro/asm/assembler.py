"""Two-phase assembler for SNAP assembly source.

Syntax overview::

    ; full-line or trailing comments (also '#')
    .text                 ; assemble into IMEM (default)
    .data                 ; assemble into DMEM
    .equ NAME, expr       ; assembly-time constant
    .word expr [, expr]*  ; literal data words (labels allowed)
    .space N              ; N zero words
    .ascii "text"         ; one character per 16-bit word
    .org OFFSET           ; pad current section to a module-relative offset
    .file "app.c"         ; source file for following .loc directives
    .loc N                ; following text words came from source line N

    label:                ; labels beginning with '.' are module-local
        movi r1, 0x1234
        add  r2, r1
        ld   r3, 4(r2)
        beqz r3, .skip
        jal  subroutine
        done

Pseudo-instructions: ``li`` (alias of ``movi``), ``ret`` (``jr lr``),
``call`` (``jal``), ``push``/``pop`` (stack via ``sp``), ``inc``/``dec``.
"""

import re

from repro.asm.errors import AsmError
from repro.asm.expr import evaluate
from repro.asm.objectfile import (
    RELOC_ABS16,
    RELOC_BRANCH6,
    SECTION_DATA,
    SECTION_TEXT,
    LineEntry,
    ObjectModule,
    Relocation,
    Symbol,
)
from repro.isa.encoding import encode
from repro.isa.instruction import (
    BRANCH_OFFSET_MAX,
    BRANCH_OFFSET_MIN,
    Instruction,
)
from repro.isa.opcodes import Format, Opcode, spec_for_mnemonic
from repro.isa.registers import REG_LINK, REG_STACK, register_number

_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.$]*)\s*:")
_MEM_OPERAND_RE = re.compile(r"^(.*)\((\s*[\w$]+\s*)\)$")

#: Opcodes whose R-format second field is a 4-bit shift amount, not a register.
_SHIFT_IMM_OPS = (Opcode.SLL, Opcode.SRL, Opcode.SRA)
#: R-format opcodes that take a single register operand (in the rd field).
_ONE_REG_OPS = (Opcode.RAND, Opcode.SEED, Opcode.CANCEL, Opcode.JR, Opcode.JALR)


def assemble(source, name="module"):
    """Assemble *source* text into an :class:`ObjectModule`."""
    return _Assembler(source, name).run()


class _Assembler:
    def __init__(self, source, name):
        self._source = source
        self._name = name
        self._module = ObjectModule(name=name)
        self._section = SECTION_TEXT
        self._equs = {}
        #: (section, word_offset, symbol, addend, line) for branch fixups.
        self._branch_fixups = []
        #: Source file named by ``.file`` (None -> the module name).
        self._file = None
        #: Active ``.loc`` position, or None to fall back to the
        #: assembly line itself.
        self._loc = None

    # -- driving --------------------------------------------------------

    def run(self):
        for line_number, raw_line in enumerate(self._source.splitlines(), start=1):
            self._line = line_number
            self._assemble_line(raw_line)
        self._apply_branch_fixups()
        return self._module

    def _assemble_line(self, raw_line):
        text = _strip_comment(raw_line).strip()
        while text:
            match = _LABEL_RE.match(text)
            if not match:
                break
            self._define_label(match.group(1))
            text = text[match.end():].strip()
        if not text:
            return
        if text.startswith("."):
            self._directive(text)
        else:
            self._instruction(text)

    def _error(self, message):
        raise AsmError(message, line=self._line, source_name=self._name)

    # -- symbols and sections --------------------------------------------

    @property
    def _words(self):
        return self._module.section_words(self._section)

    def _define_label(self, label):
        if label in self._module.symbols or label in self._equs:
            self._error("duplicate symbol %r" % label)
        exported = not label.startswith(".")
        self._module.symbols[label] = Symbol(
            name=label, section=self._section,
            offset=len(self._words), exported=exported)

    def _lookup_equ(self, symbol):
        return self._equs.get(symbol)

    def _evaluate(self, text):
        return evaluate(text, line=self._line, lookup=self._lookup_equ)

    # -- directives -------------------------------------------------------

    def _directive(self, text):
        parts = text.split(None, 1)
        directive = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if directive == ".text":
            self._section = SECTION_TEXT
        elif directive == ".data":
            self._section = SECTION_DATA
        elif directive == ".equ":
            self._equ(rest)
        elif directive == ".word":
            self._word(rest)
        elif directive == ".space":
            self._space(rest)
        elif directive == ".ascii":
            self._ascii(rest)
        elif directive == ".org":
            self._org(rest)
        elif directive == ".file":
            self._file_directive(rest)
        elif directive == ".loc":
            self._loc_directive(rest)
        else:
            self._error("unknown directive %r" % directive)

    def _file_directive(self, rest):
        rest = rest.strip()
        if len(rest) < 2 or rest[0] != '"' or rest[-1] != '"':
            self._error('.file needs a double-quoted name')
        self._file = rest[1:-1]
        self._loc = None

    def _loc_directive(self, rest):
        value = self._evaluate(rest)
        if not value.is_constant or value.constant < 0:
            self._error(".loc needs a non-negative constant line number")
        self._loc = (self._file or self._name, value.constant)

    def _equ(self, rest):
        name, _, expr_text = rest.partition(",")
        name = name.strip()
        if not name or not expr_text.strip():
            self._error(".equ needs NAME, expr")
        if name in self._equs or name in self._module.symbols:
            self._error("duplicate symbol %r" % name)
        value = self._evaluate(expr_text)
        if not value.is_constant:
            self._error(".equ value must be constant")
        self._equs[name] = value.constant

    def _word(self, rest):
        for piece in _split_operands(rest):
            value = self._evaluate(piece)
            if value.is_constant:
                self._emit_word(value.constant)
            else:
                self._reloc(RELOC_ABS16, value.symbol, value.constant)
                self._emit_word(0)

    def _space(self, rest):
        value = self._evaluate(rest)
        if not value.is_constant or value.constant < 0:
            self._error(".space needs a non-negative constant")
        self._words.extend([0] * value.constant)

    def _ascii(self, rest):
        rest = rest.strip()
        if len(rest) < 2 or rest[0] != '"' or rest[-1] != '"':
            self._error('.ascii needs a double-quoted string')
        for char in rest[1:-1]:
            self._emit_word(ord(char))

    def _org(self, rest):
        value = self._evaluate(rest)
        if not value.is_constant:
            self._error(".org needs a constant offset")
        if value.constant < len(self._words):
            self._error(".org would move location counter backwards")
        self._words.extend([0] * (value.constant - len(self._words)))

    def _emit_word(self, value):
        if not -0x8000 <= value <= 0xFFFF:
            self._error("word value out of 16-bit range: %d" % value)
        self._words.append(value & 0xFFFF)

    def _reloc(self, kind, symbol, addend, site_offset=None):
        if site_offset is None:
            site_offset = len(self._words)
        self._module.relocations.append(Relocation(
            section=self._section, offset=site_offset, symbol=symbol,
            kind=kind, addend=addend, line=self._line))

    # -- instructions -----------------------------------------------------

    def _record_line(self):
        """Annotate the next text word with its source position.

        A ``.loc`` from a higher-level compiler wins; hand-written
        assembly falls back to the module name and the assembly line.
        Consecutive words from the same position share one entry.
        """
        if self._loc is not None:
            file, line = self._loc
        else:
            file, line = self._name, self._line
        lines = self._module.lines
        if lines and lines[-1].file == file and lines[-1].line == line:
            return
        lines.append(LineEntry(offset=len(self._words), file=file, line=line))

    def _instruction(self, text):
        if self._section != SECTION_TEXT:
            self._error("instructions are only allowed in .text")
        self._record_line()
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = _split_operands(operand_text)
        expansion = self._expand_pseudo(mnemonic, operands)
        if expansion is not None:
            for expanded_mnemonic, expanded_operands in expansion:
                self._encode(expanded_mnemonic, expanded_operands)
        else:
            self._encode(mnemonic, operands)

    def _expand_pseudo(self, mnemonic, operands):
        if mnemonic == "li":
            return [("movi", operands)]
        if mnemonic == "ret":
            self._expect_count(operands, 0, "ret")
            return [("jr", ["r%d" % REG_LINK])]
        if mnemonic == "call":
            self._expect_count(operands, 1, "call")
            return [("jal", operands)]
        if mnemonic == "push":
            self._expect_count(operands, 1, "push")
            return [("subi", ["r%d" % REG_STACK, "1"]),
                    ("st", [operands[0], "0(r%d)" % REG_STACK])]
        if mnemonic == "pop":
            self._expect_count(operands, 1, "pop")
            return [("ld", [operands[0], "0(r%d)" % REG_STACK]),
                    ("addi", ["r%d" % REG_STACK, "1"])]
        if mnemonic == "inc":
            self._expect_count(operands, 1, "inc")
            return [("addi", [operands[0], "1"])]
        if mnemonic == "dec":
            self._expect_count(operands, 1, "dec")
            return [("subi", [operands[0], "1"])]
        return None

    def _expect_count(self, operands, count, mnemonic):
        if len(operands) != count:
            self._error("%s takes %d operand(s), got %d"
                        % (mnemonic, count, len(operands)))

    def _encode(self, mnemonic, operands):
        try:
            spec = spec_for_mnemonic(mnemonic)
        except KeyError:
            self._error("unknown mnemonic %r" % mnemonic)
        fmt = spec.format
        if fmt == Format.N:
            self._expect_count(operands, 0, mnemonic)
            instruction = Instruction(spec.opcode)
        elif fmt == Format.R:
            instruction = self._encode_r(spec, operands)
        elif fmt == Format.B:
            instruction = self._encode_b(spec, operands)
        elif fmt == Format.RI:
            instruction = self._encode_ri(spec, operands)
        else:  # Format.J
            instruction = self._encode_j(spec, operands)
        try:
            self._words.extend(encode(instruction))
        except ValueError as error:
            self._error(str(error))

    def _register(self, text):
        try:
            return register_number(text)
        except ValueError:
            self._error("expected a register, got %r" % text)

    def _constant(self, text, low, high, what):
        value = self._evaluate(text)
        if not value.is_constant or not low <= value.constant <= high:
            self._error("%s must be a constant in [%d, %d]" % (what, low, high))
        return value.constant

    def _encode_r(self, spec, operands):
        if spec.opcode in _ONE_REG_OPS:
            self._expect_count(operands, 1, spec.mnemonic)
            return Instruction(spec.opcode, rd=self._register(operands[0]), rs=0)
        self._expect_count(operands, 2, spec.mnemonic)
        rd = self._register(operands[0])
        if spec.opcode in _SHIFT_IMM_OPS:
            shamt = self._constant(operands[1], 0, 15, "shift amount")
            return Instruction(spec.opcode, rd=rd, rs=shamt)
        return Instruction(spec.opcode, rd=rd, rs=self._register(operands[1]))

    def _encode_b(self, spec, operands):
        self._expect_count(operands, 2, spec.mnemonic)
        rs = self._register(operands[0])
        value = self._evaluate(operands[1])
        if value.is_constant:
            if not BRANCH_OFFSET_MIN <= value.constant <= BRANCH_OFFSET_MAX:
                self._error("branch offset out of range: %d" % value.constant)
            return Instruction(spec.opcode, rs=rs, imm=value.constant)
        self._branch_fixups.append(
            (self._section, len(self._words), value.symbol, value.constant,
             self._line))
        return Instruction(spec.opcode, rs=rs, imm=0)

    def _encode_ri(self, spec, operands):
        opcode = spec.opcode
        if opcode in (Opcode.LD, Opcode.ST, Opcode.LDI, Opcode.STI):
            self._expect_count(operands, 2, spec.mnemonic)
            rd = self._register(operands[0])
            match = _MEM_OPERAND_RE.match(operands[1].strip())
            if not match:
                self._error("%s needs offset(base), got %r"
                            % (spec.mnemonic, operands[1]))
            offset_text = match.group(1).strip() or "0"
            rs = self._register(match.group(2).strip())
            imm, symbol, addend = self._immediate16(offset_text)
            if symbol is not None:
                self._reloc(RELOC_ABS16, symbol, addend,
                            site_offset=len(self._words) + 1)
            return Instruction(opcode, rd=rd, rs=rs, imm=imm)
        if opcode == Opcode.BFS:
            self._expect_count(operands, 3, spec.mnemonic)
            rd = self._register(operands[0])
            rs = self._register(operands[1])
            imm, symbol, addend = self._immediate16(operands[2])
            if symbol is not None:
                self._error("bfs mask must be constant")
            return Instruction(opcode, rd=rd, rs=rs, imm=imm)
        self._expect_count(operands, 2, spec.mnemonic)
        rd = self._register(operands[0])
        imm, symbol, addend = self._immediate16(operands[1])
        if symbol is not None:
            self._reloc(RELOC_ABS16, symbol, addend,
                        site_offset=len(self._words) + 1)
        return Instruction(opcode, rd=rd, rs=0, imm=imm)

    def _encode_j(self, spec, operands):
        self._expect_count(operands, 1, spec.mnemonic)
        imm, symbol, addend = self._immediate16(operands[0])
        if symbol is not None:
            self._reloc(RELOC_ABS16, symbol, addend,
                        site_offset=len(self._words) + 1)
        return Instruction(spec.opcode, imm=imm)

    def _immediate16(self, text):
        """Evaluate a 16-bit immediate; returns (imm, symbol, addend)."""
        value = self._evaluate(text)
        if value.is_constant:
            if not -0x8000 <= value.constant <= 0xFFFF:
                self._error("immediate out of 16-bit range: %d" % value.constant)
            return value.constant & 0xFFFF, None, 0
        return 0, value.symbol, value.constant

    # -- fixups -----------------------------------------------------------

    def _apply_branch_fixups(self):
        for section, site, symbol, addend, line in self._branch_fixups:
            local = self._module.symbols.get(symbol)
            if local is not None and local.section == section:
                offset = local.offset + addend - (site + 1)
                if not BRANCH_OFFSET_MIN <= offset <= BRANCH_OFFSET_MAX:
                    raise AsmError(
                        "branch to %r out of range (offset %d)" % (symbol, offset),
                        line=line, source_name=self._name)
                words = self._module.section_words(section)
                words[site] = (words[site] & ~0x3F) | (offset & 0x3F)
            else:
                self._module.relocations.append(Relocation(
                    section=section, offset=site, symbol=symbol,
                    kind=RELOC_BRANCH6, addend=addend, line=line))


def _strip_comment(line):
    result = []
    in_string = False
    for char in line:
        if char == '"':
            in_string = not in_string
        if not in_string and char in ";#":
            break
        result.append(char)
    return "".join(result)


def _split_operands(text):
    """Split an operand list on commas that are outside parentheses."""
    operands = []
    depth = 0
    current = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return [operand for operand in operands if operand]
