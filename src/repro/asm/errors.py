"""Errors raised by the assembler and linker."""


class AsmError(Exception):
    """A problem in assembly source; carries file/line context."""

    def __init__(self, message, line=None, source_name=None):
        self.line = line
        self.source_name = source_name
        location = ""
        if source_name is not None:
            location += "%s:" % source_name
        if line is not None:
            location += "%d: " % line
        elif location:
            location += " "
        super().__init__(location + message)


class LinkError(Exception):
    """A problem combining object modules (duplicate/undefined symbols,
    image overflow, ...)."""
