"""Assembler, linker, and object-file model for the SNAP ISA.

The paper's tool-chain was "a complete custom assembler/linker tool-chain"
(Section 4.2); this package is its reproduction.  The pipeline is::

    source text --(assemble)--> ObjectModule --(link)--> Program

``ObjectModule`` carries code/data words plus symbols and relocations, so
separately assembled modules (e.g. the MAC library and an application) can
be linked together exactly as the paper's handlers were linked against
their MAC/routing libraries.
"""

from repro.asm.errors import AsmError, LinkError
from repro.asm.objectfile import (
    LineEntry,
    ObjectModule,
    Program,
    Relocation,
    SourceLoc,
    Symbol,
)
from repro.asm.assembler import assemble
from repro.asm.linker import link

__all__ = [
    "AsmError",
    "LinkError",
    "LineEntry",
    "ObjectModule",
    "Program",
    "Relocation",
    "SourceLoc",
    "Symbol",
    "assemble",
    "link",
]


def build(*sources, **kwargs):
    """Assemble each source text and link them into a :class:`Program`.

    Convenience wrapper: ``build(boot_src, mac_src, app_src)``.
    """
    modules = [assemble(source, name="module%d" % index)
               for index, source in enumerate(sources)]
    return link(modules, **kwargs)
