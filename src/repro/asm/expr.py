"""Operand-expression parsing for the assembler.

Expressions support integer literals (decimal, ``0x`` hex, ``0b`` binary,
``'c'`` character), symbol names, unary minus, ``+``/``-``/``*`` and
parentheses.  An expression must reduce to either a pure constant or to
``symbol + constant`` (so it can become a relocation); anything else -- for
example multiplying a symbol -- is rejected.
"""

import re
from dataclasses import dataclass
from typing import Optional

from repro.asm.errors import AsmError

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<hex>0[xX][0-9a-fA-F]+)"
    r"|(?P<bin>0[bB][01]+)"
    r"|(?P<dec>\d+)"
    r"|(?P<char>'(?:\\.|[^'\\])')"
    r"|(?P<name>[.\w$][\w.$]*)"
    r"|(?P<op>[-+*()])"
    r")"
)

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39}


@dataclass(frozen=True)
class ExprValue:
    """Result of expression evaluation: ``constant`` or ``symbol+constant``."""

    symbol: Optional[str]
    constant: int

    @property
    def is_constant(self):
        return self.symbol is None


def _tokenize(text, line):
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise AsmError("bad expression near %r" % remainder, line=line)
        position = match.end()
        if match.lastgroup == "hex":
            tokens.append(("num", int(match.group("hex"), 16)))
        elif match.lastgroup == "bin":
            tokens.append(("num", int(match.group("bin"), 2)))
        elif match.lastgroup == "dec":
            tokens.append(("num", int(match.group("dec"))))
        elif match.lastgroup == "char":
            body = match.group("char")[1:-1]
            if body.startswith("\\"):
                if body[1] not in _ESCAPES:
                    raise AsmError("unknown escape %r" % body, line=line)
                tokens.append(("num", _ESCAPES[body[1]]))
            else:
                tokens.append(("num", ord(body)))
        elif match.lastgroup == "name":
            tokens.append(("name", match.group("name")))
        else:
            tokens.append(("op", match.group("op")))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens, line, lookup):
        self._tokens = tokens
        self._index = 0
        self._line = line
        self._lookup = lookup

    def parse(self):
        value = self._additive()
        if self._index != len(self._tokens):
            raise AsmError("trailing junk in expression", line=self._line)
        return value

    def _peek(self):
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return (None, None)

    def _next(self):
        token = self._peek()
        self._index += 1
        return token

    def _additive(self):
        value = self._multiplicative()
        while self._peek() == ("op", "+") or self._peek() == ("op", "-"):
            _, operator = self._next()
            right = self._multiplicative()
            value = self._combine_add(value, right, operator)
        return value

    def _multiplicative(self):
        value = self._unary()
        while self._peek() == ("op", "*"):
            self._next()
            right = self._unary()
            if not (value.is_constant and right.is_constant):
                raise AsmError("cannot multiply a symbol", line=self._line)
            value = ExprValue(None, value.constant * right.constant)
        return value

    def _unary(self):
        if self._peek() == ("op", "-"):
            self._next()
            value = self._unary()
            if not value.is_constant:
                raise AsmError("cannot negate a symbol", line=self._line)
            return ExprValue(None, -value.constant)
        return self._primary()

    def _primary(self):
        kind, payload = self._next()
        if kind == "num":
            return ExprValue(None, payload)
        if kind == "name":
            resolved = self._lookup(payload)
            if resolved is not None:
                return ExprValue(None, resolved)
            return ExprValue(payload, 0)
        if (kind, payload) == ("op", "("):
            value = self._additive()
            if self._next() != ("op", ")"):
                raise AsmError("missing ')' in expression", line=self._line)
            return value
        raise AsmError("bad expression", line=self._line)

    def _combine_add(self, left, right, operator):
        if operator == "+":
            if left.symbol is not None and right.symbol is not None:
                raise AsmError("cannot add two symbols", line=self._line)
            symbol = left.symbol or right.symbol
            return ExprValue(symbol, left.constant + right.constant)
        if right.symbol is not None:
            raise AsmError("cannot subtract a symbol", line=self._line)
        return ExprValue(left.symbol, left.constant - right.constant)


def evaluate(text, line=None, lookup=None):
    """Evaluate *text* to an :class:`ExprValue`.

    *lookup* maps a name to an integer (e.g. ``.equ`` constants) or ``None``
    when the name should stay symbolic (a label for the linker).
    """
    if lookup is None:
        lookup = lambda name: None
    tokens = _tokenize(text, line)
    if not tokens:
        raise AsmError("empty expression", line=line)
    return _Parser(tokens, line, lookup).parse()
