"""Object-module and linked-program representations."""

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Section names.  ``text`` assembles into IMEM, ``data`` into DMEM.
SECTION_TEXT = "text"
SECTION_DATA = "data"

#: Relocation kinds.
#: ``abs16``  -- the 16-bit word at the site receives the symbol's address.
#: ``branch6`` -- the low 6 bits of the word at the site receive the signed
#: word offset from (site address + 1) to the symbol.
RELOC_ABS16 = "abs16"
RELOC_BRANCH6 = "branch6"


@dataclass(frozen=True)
class Symbol:
    """A named address within a module section."""

    name: str
    section: str
    offset: int
    exported: bool = True


@dataclass(frozen=True)
class Relocation:
    """A patch site that needs a symbol's final address."""

    section: str
    offset: int
    symbol: str
    kind: str
    #: Constant added to the symbol address (supports ``label+2`` operands).
    addend: int = 0
    #: Source line, for error messages.
    line: int = 0


@dataclass(frozen=True)
class LineEntry:
    """A source-line annotation for text words at and after *offset*.

    The assembler records one entry per source-position change: all text
    words from ``offset`` up to the next entry's offset came from
    (*file*, *line*).  For C-compiled modules the compiler emits
    ``.file``/``.loc`` directives carrying the original C position; for
    hand-written assembly the assembler falls back to the module name
    and the assembly line itself.
    """

    offset: int
    file: str
    line: int


@dataclass(frozen=True)
class SourceLoc:
    """Where one IMEM address came from: function, file, and line."""

    function: Optional[str]
    file: Optional[str]
    line: Optional[int]

    @property
    def is_unknown(self):
        """True when no table could place this address (out-of-range
        PC, linker padding, or a ``.hex`` image with no symbols)."""
        return (self.function is None and self.file is None
                and self.line is None)

    def __str__(self):
        parts = []
        if self.function:
            parts.append(self.function)
        if self.file:
            parts.append("%s:%s" % (self.file,
                                    self.line if self.line else "?"))
        return " at ".join(parts) if parts else "?"


#: The typed unknown location.  ``Program.lookup`` returns this (rather
#: than the nearest preceding table entry) for PCs outside the linked
#: image and for words the linker marked as unmapped padding.
UNKNOWN_LOC = SourceLoc(function=None, file=None, line=None)

#: Line-table file marker for words with no source mapping (linker
#: padding, modules assembled without line info).  Sorts before any real
#: filename and is never a legal path.
UNMAPPED_FILE = ""


@dataclass
class ObjectModule:
    """One assembled translation unit."""

    name: str
    text: List[int] = field(default_factory=list)
    data: List[int] = field(default_factory=list)
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    relocations: List[Relocation] = field(default_factory=list)
    #: Source-line table for the text section, ascending by offset.
    lines: List[LineEntry] = field(default_factory=list)

    def section_words(self, section):
        if section == SECTION_TEXT:
            return self.text
        if section == SECTION_DATA:
            return self.data
        raise ValueError("unknown section %r" % (section,))


@dataclass
class Program:
    """A fully linked, loadable program image."""

    imem: List[int]
    dmem: List[int]
    symbols: Dict[str, int]
    entry: int = 0
    #: pc -> source annotations, ascending by address: ``(address, file,
    #: line)``.  Each entry covers addresses up to the next entry.
    line_table: List[Tuple[int, str, int]] = field(default_factory=list)
    #: Function boundaries, ascending by address: ``(address, name)``.
    func_table: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def text_size_words(self):
        return len(self.imem)

    @property
    def text_size_bytes(self):
        """Code size in bytes (each word is two bytes)."""
        return 2 * len(self.imem)

    @property
    def data_size_bytes(self):
        return 2 * len(self.dmem)

    def address_of(self, symbol):
        """Final address of a linked symbol; raises ``KeyError`` if absent."""
        return self.symbols[symbol]

    # -- symbolication -----------------------------------------------------

    def lookup(self, pc):
        """Symbolicate an IMEM address into a :class:`SourceLoc`.

        Uses the linked function table (text symbols) and the merged
        source-line table.  PCs outside ``[0, len(imem))`` and PCs the
        linker marked as unmapped padding (:data:`UNMAPPED_FILE`
        sentinel entries) return :data:`UNKNOWN_LOC` -- never the
        nearest preceding entry, which would attribute padding to
        whatever code happened to be linked before it.  Fields the
        tables cannot resolve come back ``None`` -- a ``.hex``-loaded
        image with no symbols yields the unknown location too.
        """
        if not isinstance(pc, int) or isinstance(pc, bool) \
                or not 0 <= pc < len(self.imem):
            return UNKNOWN_LOC
        file = line = None
        if self.line_table and pc >= self.line_table[0][0]:
            index = bisect_right(self.line_table, (pc, "￿", 1 << 30)) - 1
            _, file, line = self.line_table[index]
            if file == UNMAPPED_FILE:
                # Padding sentinel: this word has no source; suppress
                # the function too rather than blame a neighbor.
                return UNKNOWN_LOC
        function = None
        if self.func_table and pc >= self.func_table[0][0]:
            index = bisect_right(self.func_table, (pc, "￿")) - 1
            function = self.func_table[index][1]
        return SourceLoc(function=function, file=file, line=line)
