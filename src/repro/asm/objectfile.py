"""Object-module and linked-program representations."""

from dataclasses import dataclass, field
from typing import Dict, List

#: Section names.  ``text`` assembles into IMEM, ``data`` into DMEM.
SECTION_TEXT = "text"
SECTION_DATA = "data"

#: Relocation kinds.
#: ``abs16``  -- the 16-bit word at the site receives the symbol's address.
#: ``branch6`` -- the low 6 bits of the word at the site receive the signed
#: word offset from (site address + 1) to the symbol.
RELOC_ABS16 = "abs16"
RELOC_BRANCH6 = "branch6"


@dataclass(frozen=True)
class Symbol:
    """A named address within a module section."""

    name: str
    section: str
    offset: int
    exported: bool = True


@dataclass(frozen=True)
class Relocation:
    """A patch site that needs a symbol's final address."""

    section: str
    offset: int
    symbol: str
    kind: str
    #: Constant added to the symbol address (supports ``label+2`` operands).
    addend: int = 0
    #: Source line, for error messages.
    line: int = 0


@dataclass
class ObjectModule:
    """One assembled translation unit."""

    name: str
    text: List[int] = field(default_factory=list)
    data: List[int] = field(default_factory=list)
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    relocations: List[Relocation] = field(default_factory=list)

    def section_words(self, section):
        if section == SECTION_TEXT:
            return self.text
        if section == SECTION_DATA:
            return self.data
        raise ValueError("unknown section %r" % (section,))


@dataclass
class Program:
    """A fully linked, loadable program image."""

    imem: List[int]
    dmem: List[int]
    symbols: Dict[str, int]
    entry: int = 0

    @property
    def text_size_words(self):
        return len(self.imem)

    @property
    def text_size_bytes(self):
        """Code size in bytes (each word is two bytes)."""
        return 2 * len(self.imem)

    @property
    def data_size_bytes(self):
        return 2 * len(self.dmem)

    def address_of(self, symbol):
        """Final address of a linked symbol; raises ``KeyError`` if absent."""
        return self.symbols[symbol]
