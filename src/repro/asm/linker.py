"""Linker: combine :class:`ObjectModule` s into a loadable :class:`Program`.

Modules are laid out in the order given; the first module's ``.text``
therefore starts at IMEM address 0 and should contain the boot code.
IMEM and DMEM are separate 4KB (2048-word) memories (paper, Section 3.1),
so text and data addresses both start at zero.
"""

from repro.asm.errors import LinkError
from repro.asm.objectfile import (
    RELOC_ABS16,
    RELOC_BRANCH6,
    SECTION_DATA,
    SECTION_TEXT,
    Program,
)
from repro.isa.instruction import BRANCH_OFFSET_MAX, BRANCH_OFFSET_MIN

#: 4KB banks of 16-bit words.
IMEM_WORDS = 2048
DMEM_WORDS = 2048


def link(modules, imem_words=IMEM_WORDS, dmem_words=DMEM_WORDS):
    """Link *modules* into a :class:`Program`."""
    text_bases = {}
    data_bases = {}
    imem = []
    dmem = []
    for module in modules:
        text_bases[module.name] = len(imem)
        data_bases[module.name] = len(dmem)
        imem.extend(module.text)
        dmem.extend(module.data)

    if len(imem) > imem_words:
        raise LinkError("program text (%d words) exceeds IMEM (%d words)"
                        % (len(imem), imem_words))
    if len(dmem) > dmem_words:
        raise LinkError("program data (%d words) exceeds DMEM (%d words)"
                        % (len(dmem), dmem_words))

    bases = {SECTION_TEXT: text_bases, SECTION_DATA: data_bases}

    global_symbols = {}
    for module in modules:
        for symbol in module.symbols.values():
            if not symbol.exported:
                continue
            if symbol.name in global_symbols:
                raise LinkError("duplicate symbol %r (modules %r and %r)"
                                % (symbol.name,
                                   global_symbols[symbol.name][0],
                                   module.name))
            address = bases[symbol.section][module.name] + symbol.offset
            global_symbols[symbol.name] = (module.name, address)

    for module in modules:
        for reloc in module.relocations:
            target = _resolve(module, reloc, bases, global_symbols)
            _patch(module, reloc, target, bases,
                   imem if reloc.section == SECTION_TEXT else dmem)

    symbols = {name: address for name, (_, address) in global_symbols.items()}
    for module in modules:
        for symbol in module.symbols.values():
            if not symbol.exported:
                qualified = "%s:%s" % (module.name, symbol.name)
                symbols[qualified] = (bases[symbol.section][module.name]
                                      + symbol.offset)
    return Program(imem=imem, dmem=dmem, symbols=symbols, entry=0)


def _resolve(module, reloc, bases, global_symbols):
    local = module.symbols.get(reloc.symbol)
    if local is not None:
        base = bases[local.section][module.name]
        return base + local.offset + reloc.addend
    entry = global_symbols.get(reloc.symbol)
    if entry is None:
        raise LinkError("undefined symbol %r (module %r, line %d)"
                        % (reloc.symbol, module.name, reloc.line))
    return entry[1] + reloc.addend


def _patch(module, reloc, target, bases, image):
    site = bases[reloc.section][module.name] + reloc.offset
    if reloc.kind == RELOC_ABS16:
        image[site] = target & 0xFFFF
    elif reloc.kind == RELOC_BRANCH6:
        offset = target - (site + 1)
        if not BRANCH_OFFSET_MIN <= offset <= BRANCH_OFFSET_MAX:
            raise LinkError(
                "branch to %r out of range after linking (offset %d, "
                "module %r line %d)"
                % (reloc.symbol, offset, module.name, reloc.line))
        image[site] = (image[site] & ~0x3F) | (offset & 0x3F)
    else:
        raise LinkError("unknown relocation kind %r" % reloc.kind)
