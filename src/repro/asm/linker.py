"""Linker: combine :class:`ObjectModule` s into a loadable :class:`Program`.

Modules are laid out in the order given; the first module's ``.text``
therefore starts at IMEM address 0 and should contain the boot code.
IMEM and DMEM are separate 4KB (2048-word) memories (paper, Section 3.1),
so text and data addresses both start at zero.
"""

from repro.asm.errors import LinkError
from repro.asm.objectfile import (
    RELOC_ABS16,
    RELOC_BRANCH6,
    SECTION_DATA,
    SECTION_TEXT,
    UNMAPPED_FILE,
    Program,
)
from repro.isa.instruction import BRANCH_OFFSET_MAX, BRANCH_OFFSET_MIN

#: 4KB banks of 16-bit words.
IMEM_WORDS = 2048
DMEM_WORDS = 2048


def link(modules, imem_words=IMEM_WORDS, dmem_words=DMEM_WORDS):
    """Link *modules* into a :class:`Program`."""
    text_bases = {}
    data_bases = {}
    imem = []
    dmem = []
    for module in modules:
        text_bases[module.name] = len(imem)
        data_bases[module.name] = len(dmem)
        imem.extend(module.text)
        dmem.extend(module.data)

    if len(imem) > imem_words:
        raise LinkError(_overflow_report("text", "IMEM", imem_words, modules,
                                         lambda m: len(m.text)))
    if len(dmem) > dmem_words:
        raise LinkError(_overflow_report("data", "DMEM", dmem_words, modules,
                                         lambda m: len(m.data)))

    bases = {SECTION_TEXT: text_bases, SECTION_DATA: data_bases}

    global_symbols = {}
    for module in modules:
        for symbol in module.symbols.values():
            if not symbol.exported:
                continue
            if symbol.name in global_symbols:
                raise LinkError("duplicate symbol %r (modules %r and %r)"
                                % (symbol.name,
                                   global_symbols[symbol.name][0],
                                   module.name))
            address = bases[symbol.section][module.name] + symbol.offset
            global_symbols[symbol.name] = (module.name, address)

    for module in modules:
        for reloc in module.relocations:
            target = _resolve(module, reloc, bases, global_symbols)
            _patch(module, reloc, target, bases,
                   imem if reloc.section == SECTION_TEXT else dmem)

    symbols = {name: address for name, (_, address) in global_symbols.items()}
    for module in modules:
        for symbol in module.symbols.values():
            if not symbol.exported:
                qualified = "%s:%s" % (module.name, symbol.name)
                symbols[qualified] = (bases[symbol.section][module.name]
                                      + symbol.offset)

    line_table = []
    for module in modules:
        base = text_bases[module.name]
        if module.text and (not module.lines or module.lines[0].offset > 0):
            # Words before the module's first line entry (or all of a
            # module assembled without line info) have no source
            # mapping; without this sentinel, ``Program.lookup`` would
            # attribute them to the previous module's last line.
            line_table.append((base, UNMAPPED_FILE, 0))
        for entry in module.lines:
            line_table.append((base + entry.offset, entry.file, entry.line))
    line_table.sort()

    func_table = _function_table(modules, text_bases)
    return Program(imem=imem, dmem=dmem, symbols=symbols, entry=0,
                   line_table=line_table, func_table=func_table)


def _function_table(modules, text_bases):
    """Function boundaries from text symbols: ``(address, name)`` ascending.

    Dot-prefixed labels (compiler temporaries, module-local branch
    targets) are not functions and are skipped; when an exported and a
    local symbol share an address the exported name wins.
    """
    table = {}
    for module in modules:
        base = text_bases[module.name]
        for symbol in module.symbols.values():
            if symbol.section != SECTION_TEXT:
                continue
            if symbol.name.startswith("."):
                continue
            address = base + symbol.offset
            if address not in table or symbol.exported:
                table[address] = symbol.name
    return sorted(table.items())


def _overflow_report(section, bank, capacity, modules, words_of):
    """A LinkError message with per-module sizes and the culprit module.

    The culprit is the module whose words first push the cumulative
    layout past the bank's capacity.
    """
    total = sum(words_of(module) for module in modules)
    culprit = None
    cumulative = 0
    for module in modules:
        cumulative += words_of(module)
        if culprit is None and cumulative > capacity:
            culprit = module.name
    sizes = ", ".join("%s=%d" % (module.name, words_of(module))
                      for module in modules if words_of(module))
    return ("program %s (%d words) exceeds %s (%d words); "
            "section sizes: %s; first module past the limit: %s"
            % (section, total, bank, capacity, sizes, culprit))


def _resolve(module, reloc, bases, global_symbols):
    local = module.symbols.get(reloc.symbol)
    if local is not None:
        base = bases[local.section][module.name]
        return base + local.offset + reloc.addend
    entry = global_symbols.get(reloc.symbol)
    if entry is None:
        raise LinkError("undefined symbol %r (module %r, line %d)"
                        % (reloc.symbol, module.name, reloc.line))
    return entry[1] + reloc.addend


def _patch(module, reloc, target, bases, image):
    site = bases[reloc.section][module.name] + reloc.offset
    if reloc.kind == RELOC_ABS16:
        image[site] = target & 0xFFFF
    elif reloc.kind == RELOC_BRANCH6:
        offset = target - (site + 1)
        if not BRANCH_OFFSET_MIN <= offset <= BRANCH_OFFSET_MAX:
            raise LinkError(
                "branch to %r out of range after linking (offset %d, "
                "module %r line %d)"
                % (reloc.symbol, offset, module.name, reloc.line))
        image[site] = (image[site] & ~0x3F) | (offset & 0x3F)
    else:
        raise LinkError("unknown relocation kind %r" % reloc.kind)
