"""Base sensor models."""

import numpy as np


class Sensor:
    """A pollable sensor: returns a 16-bit code when read.

    Subclasses implement :meth:`read`.  Sensors can also be passive: an
    :class:`InterruptSensor` asserts the external-interrupt pin instead
    of (or as well as) being polled.
    """

    def read(self, now):
        """Return the sensor code (0..65535) at simulation time *now*."""
        raise NotImplementedError

    #: Assigned by the message coprocessor when attached; calling it
    #: raises a SENSOR_IRQ event token.
    on_interrupt = None


class ConstantSensor(Sensor):
    """Always reads the same value (tests, calibration)."""

    def __init__(self, value):
        self.value = value & 0xFFFF

    def read(self, now):
        return self.value


class TraceSensor(Sensor):
    """Replays a recorded sample trace at a fixed sample rate.

    Models a data-gathering deployment where readings follow a captured
    real-world signal; the trace index is derived from simulation time so
    repeated polls within one sample period read the same value.
    """

    def __init__(self, samples, sample_hz=1.0, wrap=True):
        if not samples:
            raise ValueError("trace must contain at least one sample")
        self.samples = [int(sample) & 0xFFFF for sample in samples]
        self.sample_hz = sample_hz
        self.wrap = wrap
        self.reads = 0

    def read(self, now):
        self.reads += 1
        index = int(now * self.sample_hz)
        if self.wrap:
            index %= len(self.samples)
        else:
            index = min(index, len(self.samples) - 1)
        return self.samples[index]


class InterruptSensor(Sensor):
    """A passive sensor that asserts the external-interrupt pin.

    Schedule interrupt times up front (``schedule_interrupts``) or fire
    one programmatically (``fire``).  Reads return the value latched at
    the most recent interrupt.
    """

    def __init__(self, kernel, values=None, seed=0):
        self.kernel = kernel
        self._rng = np.random.RandomState(seed)
        self._values = list(values) if values is not None else None
        self._value_index = 0
        self._latched = 0
        self.fires = 0

    def schedule_interrupts(self, times):
        for time in times:
            self.kernel.schedule_at(time, self.fire)

    def fire(self):
        """Latch the next value and assert the interrupt pin."""
        if self._values is not None:
            self._latched = self._values[self._value_index % len(self._values)]
            self._value_index += 1
        else:
            self._latched = int(self._rng.randint(0, 1 << 16))
        self.fires += 1
        if self.on_interrupt is not None:
            self.on_interrupt()

    def read(self, now):
        return self._latched & 0xFFFF
