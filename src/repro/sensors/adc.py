"""Analog-to-digital conversion model."""


class Adc:
    """Quantizes a physical quantity into an n-bit code.

    Mirrors the successive-approximation ADCs on sensor-node platforms
    (the ATmega128L has a 10-bit ADC); SNAP/LE reads converted values
    through the message coprocessor instead of servicing per-conversion
    interrupts.
    """

    def __init__(self, bits=10, low=0.0, high=1.0):
        if bits <= 0 or bits > 16:
            raise ValueError("adc resolution must be 1..16 bits")
        if high <= low:
            raise ValueError("adc range must have high > low")
        self.bits = bits
        self.low = low
        self.high = high

    @property
    def max_code(self):
        return (1 << self.bits) - 1

    def convert(self, value):
        """Quantize *value* (clamped to the input range) to a code."""
        clamped = min(max(value, self.low), self.high)
        fraction = (clamped - self.low) / (self.high - self.low)
        return min(self.max_code, int(fraction * (self.max_code + 1)))

    def to_physical(self, code):
        """Midpoint reconstruction of a code back to a physical value."""
        code = min(max(code, 0), self.max_code)
        step = (self.high - self.low) / (self.max_code + 1)
        return self.low + (code + 0.5) * step
