"""A synthetic temperature sensor.

Models the habitat-monitoring workload the paper cites (Section 4.2): a
slowly varying diurnal signal plus measurement noise, quantized by an
ADC.  Deterministic for a given seed.
"""

import math

import numpy as np

from repro.sensors.adc import Adc
from repro.sensors.sensor import Sensor


class TemperatureSensor(Sensor):
    """Sinusoidal diurnal temperature with Gaussian noise, ADC-quantized."""

    def __init__(self, base_c=18.0, amplitude_c=8.0, period_s=86_400.0,
                 noise_c=0.3, adc=None, seed=0):
        self.base_c = base_c
        self.amplitude_c = amplitude_c
        self.period_s = period_s
        self.noise_c = noise_c
        #: Default ADC range covers -10C..50C on a 10-bit converter.
        self.adc = adc or Adc(bits=10, low=-10.0, high=50.0)
        self._rng = np.random.RandomState(seed)
        self.reads = 0

    def temperature_at(self, now):
        """Noise-free temperature in Celsius at time *now*."""
        phase = 2.0 * math.pi * (now % self.period_s) / self.period_s
        return self.base_c + self.amplitude_c * math.sin(phase)

    def read(self, now):
        self.reads += 1
        noisy = self.temperature_at(now) + self._rng.normal(0.0, self.noise_c)
        return self.adc.convert(noisy)
