"""Output ports (LEDs, GPIO) driven through the message coprocessor."""


class OutputPort:
    """Records every value written, with its timestamp."""

    def __init__(self, name="port"):
        self.name = name
        self.history = []

    @property
    def value(self):
        """Most recently written value (None before the first write)."""
        return self.history[-1][1] if self.history else None

    def write(self, value, now):
        self.history.append((now, value & 0xFF))


class LedPort(OutputPort):
    """The LED bank of a sensor node (the Blink/Sense display target)."""

    def __init__(self, leds=3, name="leds"):
        super().__init__(name=name)
        self.leds = leds

    def toggles(self, led=0):
        """Number of observed state changes of one LED bit."""
        mask = 1 << led
        count = 0
        previous = None
        for _, value in self.history:
            bit = value & mask
            if previous is not None and bit != previous:
                count += 1
            previous = bit
        return count
