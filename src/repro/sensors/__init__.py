"""Sensor and port models.

The paper's node talks to physical sensors either actively (the core
polls via a Query command) or passively (a sensor asserts the external
interrupt pin) -- Section 3.3.  These models drive both paths with
synthetic but realistic data, replacing the physical transducers the
paper's prototype would attach.
"""

from repro.sensors.adc import Adc
from repro.sensors.sensor import (
    ConstantSensor,
    InterruptSensor,
    Sensor,
    TraceSensor,
)
from repro.sensors.temperature import TemperatureSensor
from repro.sensors.ports import LedPort, OutputPort

__all__ = [
    "Adc",
    "ConstantSensor",
    "InterruptSensor",
    "Sensor",
    "TraceSensor",
    "TemperatureSensor",
    "LedPort",
    "OutputPort",
]
