"""Multi-node network simulation.

A :class:`NetworkSimulator` places several :class:`~repro.node.SensorNode`
instances on one kernel and one shared :class:`~repro.radio.Channel`, so
the MAC and AODV software running on the simulated SNAP/LE cores can be
exercised across real multi-hop topologies.
"""

from repro.network.simulator import NetworkSimulator
from repro.network.topology import grid_positions, line_positions, random_positions

__all__ = [
    "NetworkSimulator",
    "grid_positions",
    "line_positions",
    "random_positions",
]
