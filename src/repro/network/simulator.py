"""The multi-node discrete-event network simulator."""

from repro.core.kernel import Kernel
from repro.node.node import SensorNode
from repro.radio.channel import Channel


class NetworkSimulator:
    """Several SNAP/LE nodes on one kernel and one shared channel."""

    def __init__(self, comm_range=None, bit_error_rate=0.0, seed=0,
                 corruption="drop"):
        self.kernel = Kernel()
        self.channel = Channel(comm_range=comm_range,
                               bit_error_rate=bit_error_rate, seed=seed,
                               corruption=corruption)
        self.nodes = {}
        self.obs = None

    def add_node(self, node_id, program=None, position=(0.0, 0.0),
                 config=None, radio_config=None):
        """Create a node, join it to the channel, optionally load code."""
        if node_id in self.nodes:
            raise ValueError("duplicate node id %r" % (node_id,))
        node = SensorNode(kernel=self.kernel, node_id=node_id,
                          config=config, radio_config=radio_config,
                          position=position)
        self.channel.join(node.radio)
        if program is not None:
            node.load(program)
        if self.obs is not None:
            node.attach_observability(self.obs)
        self.nodes[node_id] = node
        return node

    def attach_observability(self, obs):
        """Instrument the channel and every node (present and future)."""
        self.obs = obs
        self.channel.obs = obs
        for node in self.nodes.values():
            node.attach_observability(obs)
        return self

    def timeline_sampler(self, interval, start=True, first_delay=None):
        """Create (and by default start) an energy-timeline sampler
        covering every node of this network.

        Returns the :class:`~repro.obs.timeline.TimelineSampler`; the
        sampler emits on the attached observability context, if any.
        """
        from repro.obs.timeline import TimelineSampler

        sampler = TimelineSampler.for_network(self, interval, obs=self.obs)
        if start:
            sampler.start(first_delay=first_delay)
        return sampler

    def telemetry_exporter(self, transport, interval=None, start=True,
                           horizon=None, **kwargs):
        """Create (and by default start) a streaming telemetry exporter
        covering every node of this network.

        Reuses the attached observability context when present (creating
        and attaching one otherwise) and returns the armed
        :class:`~repro.obs.telemetry.TelemetryExporter`; remember to
        ``close()`` it when the run ends.
        """
        from repro.obs.telemetry import DEFAULT_INTERVAL, TelemetryExporter

        exporter = TelemetryExporter.for_network(
            self, transport,
            interval=DEFAULT_INTERVAL if interval is None else interval,
            **kwargs)
        if start:
            exporter.start(horizon=horizon)
        return exporter

    def start(self):
        """Start every loaded node's processor.

        Nodes without a program (passive sniffers) are left unstarted.
        """
        for node in self.nodes.values():
            if node.loaded and node.processor.mode.value == "reset":
                node.processor.start()

    def run(self, until=None, max_events=None):
        """Start all nodes and drive the shared kernel."""
        self.start()
        self.kernel.run(until=until, max_events=max_events)
        return self

    def total_energy(self, include_radio=False):
        """Sum of node energies across the network."""
        return sum(node.total_energy(include_radio=include_radio)
                   for node in self.nodes.values())

    def checkpoint(self, unknown="error"):
        """Freeze the whole network into a
        :class:`~repro.sim.checkpoint.Checkpoint`.

        The restored simulation resumes bit-identically (meter digests,
        trace timestamps, radio words); see :mod:`repro.sim.checkpoint`
        for the capture policy and *unknown* callback handling.
        """
        from repro.sim.checkpoint import capture

        return capture(self, unknown=unknown)

    @classmethod
    def from_checkpoint(cls, checkpoint):
        """Rebuild a network from a checkpoint: a
        :class:`~repro.sim.checkpoint.Checkpoint`, its raw dict, or a
        path to a saved checkpoint file."""
        from repro.sim.checkpoint import Checkpoint, restore

        if isinstance(checkpoint, str):
            checkpoint = Checkpoint.load(checkpoint)
        return restore(checkpoint)

    def snapshot(self, include_netstack=None):
        """Aggregate per-node metrics plus channel-level statistics.

        Returns a plain JSON-serializable dict: simulation time, channel
        counters, per-node :meth:`SensorNode.metrics_snapshot` entries,
        and network totals (instructions, energy, radio words, drops).
        """
        nodes = {node_id: node.metrics_snapshot(
                     include_netstack=include_netstack)
                 for node_id, node in self.nodes.items()}
        totals = {
            "instructions": sum(n["cpu"]["instructions"]
                                for n in nodes.values()),
            "energy_j": sum(n["cpu"]["energy_j"] for n in nodes.values()),
            "radio_energy_j": sum(n["radio"]["energy_j"]
                                  for n in nodes.values()),
            "radio_words_sent": sum(n["radio"]["words_sent"]
                                    for n in nodes.values()),
            "radio_words_dropped": sum(n["radio"]["words_dropped"]
                                       for n in nodes.values()),
            "event_drops": sum(n["event_queue"]["dropped"]
                               for n in nodes.values()),
        }
        return {
            "time_s": self.kernel.now,
            "channel": {
                "words_carried": self.channel.words_carried,
                "collisions": self.channel.collisions,
                "noise_corruptions": self.channel.noise_corruptions,
            },
            "totals": totals,
            "nodes": nodes,
        }
