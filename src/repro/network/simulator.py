"""The multi-node discrete-event network simulator."""

from repro.core.kernel import Kernel
from repro.node.node import SensorNode
from repro.radio.channel import Channel


class NetworkSimulator:
    """Several SNAP/LE nodes on one kernel and one shared channel."""

    def __init__(self, comm_range=None, bit_error_rate=0.0, seed=0,
                 corruption="drop"):
        self.kernel = Kernel()
        self.channel = Channel(comm_range=comm_range,
                               bit_error_rate=bit_error_rate, seed=seed,
                               corruption=corruption)
        self.nodes = {}

    def add_node(self, node_id, program=None, position=(0.0, 0.0),
                 config=None, radio_config=None):
        """Create a node, join it to the channel, optionally load code."""
        if node_id in self.nodes:
            raise ValueError("duplicate node id %r" % (node_id,))
        node = SensorNode(kernel=self.kernel, node_id=node_id,
                          config=config, radio_config=radio_config,
                          position=position)
        self.channel.join(node.radio)
        if program is not None:
            node.load(program)
        self.nodes[node_id] = node
        return node

    def start(self):
        """Start every loaded node's processor.

        Nodes without a program (passive sniffers) are left unstarted.
        """
        for node in self.nodes.values():
            if node.loaded and node.processor.mode.value == "reset":
                node.processor.start()

    def run(self, until=None, max_events=None):
        """Start all nodes and drive the shared kernel."""
        self.start()
        self.kernel.run(until=until, max_events=max_events)
        return self

    def total_energy(self, include_radio=False):
        """Sum of node energies across the network."""
        return sum(node.total_energy(include_radio=include_radio)
                   for node in self.nodes.values())
