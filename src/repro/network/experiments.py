"""Network-level experiments.

The paper's introduction frames the goal as maximizing "the lifetime of
a network", which "is a function of the operations (computation,
communication, sensing) performed by its nodes and of the amount of
energy stored in its nodes' batteries".  These experiments run a
convergecast data-gathering workload (every node samples periodically
and reports to a sink over multi-hop routes) and derive per-node power
and battery-lifetime estimates -- for SNAP/LE nodes, and for a
hypothetical mote whose processor follows the paper's Atmel figures.
"""

from dataclasses import dataclass
from typing import Dict

from repro.baseline.energy import AtmelEnergyModel
from repro.core import CoreConfig
from repro.netstack import layout
from repro.netstack.apps import THRESH_COUNT
from repro.netstack.drivers import build_aodv_node
from repro.netstack.sampling import (
    SAMP_NEXT_HOP,
    SAMP_SENT,
    SAMP_SINK,
    build_sampling_node,
)
from repro.network.simulator import NetworkSimulator
from repro.sensors import TemperatureSensor


@dataclass
class NodeReport:
    node_id: int
    instructions: int
    packets_sent: int
    packets_forwarded: int
    energy_j: float
    average_power_w: float


@dataclass
class ConvergecastResult:
    duration_s: float
    sink_deliveries: int
    nodes: Dict[int, NodeReport]
    channel_collisions: int
    #: Full :meth:`NetworkSimulator.snapshot` taken at the end of the
    #: run -- per-node and channel counters for bench JSON dumps.
    metrics: dict = None
    #: Energy drain time-series (list of timeline rows, one per
    #: sample tick and node) when the run was sampled; see
    #: :data:`repro.obs.timeline.TIMELINE_FIELDS`.
    drain: list = None

    @property
    def hottest_node(self):
        """The node burning the most power (the one that dies first)."""
        return max(self.nodes.values(), key=lambda n: n.average_power_w)

    def lifetime_s(self, battery_j, extra_power_w=0.0):
        """Network lifetime (first node death) on a given battery.

        *extra_power_w* adds a constant floor (leakage, radio listening)
        to every node.
        """
        worst = self.hottest_node.average_power_w + extra_power_w
        if worst <= 0:
            return float("inf")
        return battery_j / worst


def convergecast(chain_length=4, period_s=0.1, duration_s=10.0,
                 voltage=0.6, seed=0, sample_every=None, fast_path=True,
                 obs=None, telemetry=None, telemetry_interval=None):
    """Run a convergecast chain: node N .. node 2 report to node 1.

    Nodes sit on a line with radio range one hop; every non-sink node
    samples its temperature sensor each *period_s* and sends the reading
    toward the sink, relaying neighbours' traffic on the way.

    With *sample_every* set, an energy-timeline sampler snapshots every
    node on that period and the result carries the drain time-series in
    its ``drain`` field (the sampler only reads state, so the sampled
    run is bit-identical to an unsampled one).  *fast_path* selects the
    cores' execution engine (results are bit-identical either way; the
    sim-speed benchmark runs both).  *obs* optionally attaches an
    :class:`~repro.obs.Observability` context (or a
    :class:`~repro.obs.Blackbox`, via its ``observe``/``watchdog``)
    to the whole network before the run -- also bit-identical.

    *telemetry* optionally streams the run: pass a
    :class:`~repro.obs.transports.TelemetryTransport` (or an NDJSON
    path) and a :class:`~repro.obs.telemetry.TelemetryExporter` is
    armed over the whole network for the duration, flushing every
    *telemetry_interval* simulated seconds.  Telemetry rides the same
    read-only observability paths, so a streamed run stays bit-identical
    too (``tests/test_telemetry.py`` pins this on the meter digests).
    """
    config = CoreConfig(voltage=voltage, fast_path=fast_path)
    net = NetworkSimulator(comm_range=1.5)
    period_ticks = int(period_s * 1e6)

    sink = net.add_node(1, program=build_aodv_node(1), position=(0.0, 0.0),
                        config=config)
    reporters = {}
    for index in range(1, chain_length):
        node_id = index + 1
        node = net.add_node(
            node_id, program=build_sampling_node(node_id, period_ticks),
            position=(float(index), 0.0), config=config)
        node.attach_sensor(TemperatureSensor(seed=seed + node_id),
                           sensor_id=1)
        reporters[node_id] = node
    if obs is not None:
        obs.observe(net)
    net.run(until=0.001)

    # Static convergecast routes: next hop is the line neighbour toward
    # the sink; every relay also knows the route to the sink.
    for node_id, node in reporters.items():
        node.processor.dmem.poke(SAMP_NEXT_HOP, node_id - 1)
        node.processor.dmem.poke(SAMP_SINK, 1)
        node.processor.dmem.poke(layout.ROUTE_TABLE + 0, 1)
        node.processor.dmem.poke(layout.ROUTE_TABLE + 1, node_id - 1)
        node.processor.dmem.poke(layout.ROUTE_TABLE + 2, node_id - 1)

    # De-synchronize the periodic samplers so the shared channel does
    # not see systematic collisions: spread the first firing of each
    # node's sample timer evenly across one period (a packet plus its
    # relayed copies takes ~8ms of air time at 19.2kbps, so neighbours
    # must not sample in lockstep).
    count = max(1, len(reporters))
    for offset, node in enumerate(reporters.values()):
        stagger = int(period_ticks * (1 + offset) / (count + 1))
        node.processor.timer.schedlo(0, period_ticks + stagger)

    sampler = None
    if sample_every:
        sampler = net.timeline_sampler(sample_every)

    exporter = None
    if telemetry is not None:
        kwargs = {} if telemetry_interval is None else \
            {"interval": telemetry_interval}
        exporter = net.telemetry_exporter(telemetry, horizon=duration_s,
                                          **kwargs)

    net.run(until=duration_s)
    if sampler is not None:
        sampler.sample()  # final aligned row at the end of the run
    if exporter is not None:
        exporter.close()

    reports = {}
    all_nodes = dict(reporters)
    all_nodes[1] = sink
    for node_id, node in sorted(all_nodes.items()):
        meter = node.meter
        dmem = node.processor.dmem
        reports[node_id] = NodeReport(
            node_id=node_id,
            instructions=meter.instructions,
            packets_sent=dmem.peek(SAMP_SENT) if node_id != 1 else 0,
            packets_forwarded=dmem.peek(layout.FWD_COUNT_ADDR),
            energy_j=meter.total_energy,
            average_power_w=meter.total_energy / duration_s)
    return ConvergecastResult(
        duration_s=duration_s,
        sink_deliveries=sink.processor.dmem.peek(THRESH_COUNT),
        nodes=reports,
        channel_collisions=net.channel.collisions,
        metrics=net.snapshot(),
        drain=sampler.rows if sampler is not None else None)


@dataclass
class LifetimeComparison:
    snap_power_w: float
    mote_power_w: float
    snap_lifetime_s: float
    mote_lifetime_s: float

    @property
    def ratio(self):
        return self.snap_lifetime_s / self.mote_lifetime_s


def lifetime_comparison(result, battery_j=2000.0, snap_leakage_w=0.0,
                        mote_sleep_w=None, mote_cycles_per_instruction=1.5):
    """Estimate network lifetime for SNAP/LE nodes versus mote-class
    nodes running the same workload.

    The mote's processor energy is modeled from the paper's published
    figures: the same dynamic instruction stream at the Atmel's energy
    per instruction, plus its idle-sleep floor (TinyOS idles the AVR in
    a light sleep where the timer keeps running).  *battery_j* defaults
    to roughly a coin cell (2000 J ~ 220 mAh at 2.5 V).
    """
    atmel = AtmelEnergyModel()
    if mote_sleep_w is None:
        mote_sleep_w = atmel.deep_sleep_power
    hottest = result.hottest_node
    snap_power = hottest.average_power_w + snap_leakage_w
    mote_active = (hottest.instructions * mote_cycles_per_instruction
                   * atmel.energy_per_cycle) / result.duration_s
    mote_power = mote_active + mote_sleep_w
    return LifetimeComparison(
        snap_power_w=snap_power,
        mote_power_w=mote_power,
        snap_lifetime_s=battery_j / snap_power if snap_power else float("inf"),
        mote_lifetime_s=battery_j / mote_power)
