"""Topology helpers: node placement generators."""

import numpy as np


def line_positions(count, spacing=1.0):
    """Nodes on a line, `spacing` apart -- the classic multi-hop chain."""
    return [(index * spacing, 0.0) for index in range(count)]


def grid_positions(rows, cols, spacing=1.0):
    """A rows x cols grid."""
    return [(col * spacing, row * spacing)
            for row in range(rows) for col in range(cols)]


def random_positions(count, width=10.0, height=10.0, seed=0):
    """Uniform random placement in a width x height field."""
    rng = np.random.RandomState(seed)
    return [(float(rng.uniform(0, width)), float(rng.uniform(0, height)))
            for _ in range(count)]
