"""SEC-DED (single-error-correct, double-error-detect) byte coding.

The TinyOS MICA high-speed radio stack applies SEC-DED coding to each
data byte before transmission (paper, Section 4.6).  We use the classic
extended Hamming(13,8) construction: four Hamming parity bits at the
power-of-two positions of a 12-bit codeword, plus an overall parity bit
for double-error detection.  A codeword fits comfortably in one 16-bit
radio word.

Codeword layout (1-indexed Hamming positions, bit 0 of the word is
position 1)::

    position : 1  2  3  4  5  6  7  8  9 10 11 12     13
    content  : p1 p2 d0 p4 d1 d2 d3 p8 d4 d5 d6 d7   overall

The SNAP assembly implementation in :mod:`repro.netstack.radiostack`
computes the same code; tests cross-check the two.
"""

import enum

#: Hamming positions (1-indexed) holding data bits d0..d7.
_DATA_POSITIONS = (3, 5, 6, 7, 9, 10, 11, 12)
_PARITY_POSITIONS = (1, 2, 4, 8)
#: Bit index (0-based) of the overall parity bit in the 16-bit word.
OVERALL_PARITY_BIT = 12

CODEWORD_BITS = 13
CODEWORD_MASK = (1 << CODEWORD_BITS) - 1


class SecDedStatus(enum.Enum):
    OK = "ok"
    CORRECTED = "corrected"
    UNCORRECTABLE = "uncorrectable"


def _parity(value):
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


def secded_encode(byte):
    """Encode one byte into a 13-bit SEC-DED codeword."""
    byte &= 0xFF
    word = 0
    for bit_index, position in enumerate(_DATA_POSITIONS):
        if byte & (1 << bit_index):
            word |= 1 << (position - 1)
    for parity_position in _PARITY_POSITIONS:
        parity = 0
        for position in range(1, 13):
            if position & parity_position and word & (1 << (position - 1)):
                parity ^= 1
        if parity:
            word |= 1 << (parity_position - 1)
    if _parity(word & 0x0FFF):
        word |= 1 << OVERALL_PARITY_BIT
    return word


def secded_decode(word):
    """Decode a 13-bit codeword.

    Returns ``(byte, status)``.  Single-bit errors (in data, parity, or
    the overall bit) are corrected; double-bit errors are detected and
    reported as :data:`SecDedStatus.UNCORRECTABLE` with byte ``None``.
    """
    word &= CODEWORD_MASK
    syndrome = 0
    for parity_position in _PARITY_POSITIONS:
        parity = 0
        for position in range(1, 13):
            if position & parity_position and word & (1 << (position - 1)):
                parity ^= 1
        if parity:
            syndrome |= parity_position
    overall = _parity(word)

    status = SecDedStatus.OK
    if syndrome == 0 and overall == 0:
        pass
    elif overall == 1:
        # A single-bit error: either at Hamming position `syndrome`, or
        # (when the syndrome is zero) in the overall parity bit itself.
        if syndrome:
            word ^= 1 << (syndrome - 1)
        else:
            word ^= 1 << OVERALL_PARITY_BIT
        status = SecDedStatus.CORRECTED
    else:
        # Nonzero syndrome with even overall parity: two bits flipped.
        return None, SecDedStatus.UNCORRECTABLE

    byte = 0
    for bit_index, position in enumerate(_DATA_POSITIONS):
        if word & (1 << (position - 1)):
            byte |= 1 << bit_index
    return byte, status
