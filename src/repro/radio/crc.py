"""CRC-16-CCITT, the packet CRC used by the TinyOS MICA radio stack.

Polynomial 0x1021, MSB-first, conventional initial value 0xFFFF.  The
bitwise ``crc16_update`` mirrors, step for step, the SNAP assembly
implementation in :mod:`repro.netstack.radiostack`, so tests can check
the simulated processor against this golden model.
"""

POLY = 0x1021
INIT = 0xFFFF


def crc16_update(crc, byte):
    """Update a running CRC with one data byte (bitwise, MSB first)."""
    crc ^= (byte & 0xFF) << 8
    for _ in range(8):
        if crc & 0x8000:
            crc = ((crc << 1) ^ POLY) & 0xFFFF
        else:
            crc = (crc << 1) & 0xFFFF
    return crc


def crc16_ccitt(data, init=INIT):
    """CRC over an iterable of bytes."""
    crc = init
    for byte in data:
        crc = crc16_update(crc, byte)
    return crc
