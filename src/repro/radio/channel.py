"""The shared wireless medium.

A broadcast domain with a disc range model, word-granularity collision
detection, and an optional Bernoulli bit-error process for failure
injection.  Collisions are detected per receiver: a word is corrupted at a
receiver when any *other* transmission in range of that receiver
overlapped it in time.
"""

import math

import numpy as np


#: Noise corruption modes: ``drop`` loses the word at the receiver;
#: ``flip`` delivers it with one random bit inverted (exercising the
#: SEC-DED layer of the radio stack).
CORRUPTION_DROP = "drop"
CORRUPTION_FLIP = "flip"


class Channel:
    """A single shared radio channel."""

    def __init__(self, comm_range=None, bit_error_rate=0.0, seed=0,
                 corruption=CORRUPTION_DROP):
        #: Maximum link distance in the same units as radio positions;
        #: None means every radio hears every other.
        self.comm_range = comm_range
        #: Probability that any given transmitted word is corrupted by
        #: channel noise (applied per receiver, independently).
        self.bit_error_rate = bit_error_rate
        if corruption not in (CORRUPTION_DROP, CORRUPTION_FLIP):
            raise ValueError("unknown corruption mode %r" % (corruption,))
        self.corruption = corruption
        self._rng = np.random.RandomState(seed)
        self._radios = []
        #: Active transmissions: radio -> (start, end).
        self._active = {}
        #: Completed transmission intervals kept for overlap checks:
        #: (radio, start, end).
        self._recent = []
        self.collisions = 0
        self.words_carried = 0
        self.noise_corruptions = 0
        #: Optional :class:`~repro.obs.Observability` context; ``None``
        #: disables all instrumentation.
        self.obs = None

    def join(self, radio, position=None):
        """Attach a radio to the medium."""
        if position is not None:
            radio.position = position
        radio.channel = self
        self._radios.append(radio)

    def in_range(self, sender, receiver):
        if self.comm_range is None:
            return True
        sx, sy = sender.position
        rx, ry = receiver.position
        return math.hypot(sx - rx, sy - ry) <= self.comm_range

    def busy_near(self, radio):
        """Is any in-range radio currently transmitting? (CCA support.)"""
        return any(other is not radio and self.in_range(other, radio)
                   for other in self._active)

    # -- called by Radio ----------------------------------------------------

    def begin_transmission(self, radio, word, start, end):
        self._active[radio] = (start, end)

    def end_transmission(self, radio, word, start, end):
        self._active.pop(radio, None)
        self._recent.append((radio, start, end))
        self._gc(end)
        self.words_carried += 1
        if self.obs is not None:
            self.obs.channel_word()
        for receiver in self._radios:
            if receiver is radio or not self.in_range(radio, receiver):
                continue
            delivered = word
            fate = "ok"
            corrupted = self._collided(radio, receiver, start, end)
            if corrupted:
                # A collision garbles the word beyond any coding layer.
                self.collisions += 1
                fate = "collision"
                if self.obs is not None:
                    self.obs.channel_collision()
            elif (self.bit_error_rate
                  and self._rng.random_sample() < self.bit_error_rate):
                self.noise_corruptions += 1
                if self.obs is not None:
                    self.obs.channel_noise()
                if self.corruption == CORRUPTION_FLIP:
                    # Channel noise flips one bit; the receiver cannot
                    # tell -- detection is the coding layer's job.
                    delivered = word ^ (1 << self._rng.randint(0, 16))
                    fate = "flipped"
                else:
                    corrupted = True
                    fate = "noise"
            outcome = receiver.deliver(delivered, corrupted=corrupted)
            if self.obs is not None:
                # The receiver's own state trumps the channel's verdict:
                # a radio that was not listening lost the word whatever
                # the air did to it.
                if outcome == "not_listening":
                    fate = "not_listening"
                self.obs.channel_delivery(radio.name, receiver.name, end,
                                          delivered, fate)
        if self.obs is not None:
            self.obs.channel_word_done(radio.name, end)

    # -- internals ------------------------------------------------------------

    def _collided(self, sender, receiver, start, end):
        """Did any other in-range transmission overlap [start, end]?"""
        for other, (other_start, other_end) in self._active.items():
            if other is sender:
                continue
            if self.in_range(other, receiver) and other_start < end and start < other_end:
                return True
        for other, other_start, other_end in self._recent:
            if other is sender:
                continue
            if self.in_range(other, receiver) and other_start < end and start < other_end:
                return True
        return False

    def _gc(self, now):
        """Drop completed intervals that can no longer overlap anything."""
        horizon = now - 1.0  # one second is far beyond any word duration
        self._recent = [entry for entry in self._recent if entry[2] >= horizon]
