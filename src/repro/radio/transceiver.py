"""Behavioral model of a TR1000-class radio transceiver.

The radio serializes 16-bit words at the configured bit rate (19.2 kbps by
default, so one word takes ~0.83 ms -- which is why the paper's message
coprocessor buffers words instead of stalling the core, Section 3.3).
Transmit requests queue inside the transceiver; each completed word raises
``on_tx_complete`` so software can pace multi-word packets.  Received
words are delivered whole through ``on_word_received``.
"""

import enum
from dataclasses import dataclass


class RadioMode(enum.Enum):
    OFF = "off"
    RX = "rx"
    TX = "tx"


@dataclass(frozen=True)
class RadioConfig:
    """Physical parameters of the transceiver."""

    bit_rate: float = 19_200.0
    word_bits: int = 16
    #: Power draw while transmitting / receiving, in watts (TR1000-class
    #: figures: ~12 mW TX, ~4.5 mW RX at 3 V).  Used by node-level energy
    #: budgets; the processor's own energy is modeled separately.
    tx_power_w: float = 12e-3
    rx_power_w: float = 4.5e-3

    @property
    def word_duration(self):
        """Seconds to serialize one 16-bit word."""
        return self.word_bits / self.bit_rate


class Radio:
    """One transceiver attached to a node and (optionally) a channel."""

    def __init__(self, kernel, config=None, name="radio", tx_queue_depth=32):
        self.kernel = kernel
        self.config = config or RadioConfig()
        self.name = name
        self.mode = RadioMode.OFF
        self.channel = None
        self.position = (0.0, 0.0)
        #: Callbacks wired by the message coprocessor.
        self.on_word_received = None
        self.on_tx_complete = None
        self._tx_queue = []
        self._tx_queue_depth = tx_queue_depth
        self._tx_busy = False
        self._rx_requested = False
        self.words_sent = 0
        self.words_received = 0
        self.words_dropped = 0
        self.tx_time = 0.0
        self.rx_time = 0.0
        self._rx_since = None
        #: Optional :class:`~repro.obs.Observability` context; ``None``
        #: disables all instrumentation.
        self.obs = None

    # -- control ---------------------------------------------------------

    def set_receive(self, enabled):
        """Enter (or leave) receive mode.

        Transmission takes priority over the mode flag: queued TX words
        still drain, after which the radio returns to the requested mode.
        """
        now = self.kernel.now
        if enabled and self.mode != RadioMode.RX:
            if not self._tx_busy:
                self.mode = RadioMode.RX
                self._rx_since = now
        elif not enabled:
            self._account_rx(now)
            if not self._tx_busy:
                self.mode = RadioMode.OFF
        self._rx_requested = enabled

    def transmit(self, word):
        """Queue one 16-bit word for transmission."""
        if len(self._tx_queue) >= self._tx_queue_depth:
            raise OverflowError("%s: transmit queue overflow" % self.name)
        self._tx_queue.append(word & 0xFFFF)
        if not self._tx_busy:
            self._start_next_word()

    @property
    def tx_pending(self):
        """Words queued or in flight."""
        return len(self._tx_queue) + (1 if self._tx_busy else 0)

    def carrier_sense(self):
        """Clear-channel assessment: is anyone in range transmitting?

        Includes this radio's own in-flight transmission (software should
        not start a second packet while one is still serializing).
        """
        if self._tx_busy:
            return True
        if self.channel is None:
            return False
        return self.channel.busy_near(self)

    # -- transmit path ------------------------------------------------------

    def _start_next_word(self):
        word = self._tx_queue.pop(0)
        self._account_rx(self.kernel.now)
        self.mode = RadioMode.TX
        self._tx_busy = True
        duration = self.config.word_duration
        start = self.kernel.now
        if self.channel is not None:
            self.channel.begin_transmission(self, word, start, start + duration)
        self.kernel.schedule(duration, self._finish_word, word, start)

    def _finish_word(self, word, start):
        self._tx_busy = False
        self.words_sent += 1
        self.tx_time += self.config.word_duration
        if self.obs is not None:
            self.obs.radio_tx(self.name, self.kernel.now, word,
                              len(self._tx_queue))
        if self.channel is not None:
            self.channel.end_transmission(self, word, start, self.kernel.now)
        if self._tx_queue:
            self._start_next_word()
        else:
            if self._rx_requested:
                self.mode = RadioMode.RX
                self._rx_since = self.kernel.now
            else:
                self.mode = RadioMode.OFF
            if self.on_tx_complete is not None:
                self.on_tx_complete()

    # -- receive path ----------------------------------------------------------

    def deliver(self, word, corrupted=False):
        """Called by the channel when a word arrives at this radio.

        Returns the delivery outcome (``"ok"``, ``"not_listening"``, or
        ``"corrupted"``) so the channel can report the fate of each word
        to the journey tracker.
        """
        if self.mode != RadioMode.RX:
            self.words_dropped += 1
            if self.obs is not None:
                self.obs.radio_drop(self.name, self.kernel.now, word,
                                    "not_listening")
            return "not_listening"
        if corrupted:
            self.words_dropped += 1
            if self.obs is not None:
                self.obs.radio_drop(self.name, self.kernel.now, word,
                                    "corrupted")
            return "corrupted"
        self.words_received += 1
        if self.obs is not None:
            self.obs.radio_rx(self.name, self.kernel.now, word)
        if self.on_word_received is not None:
            self.on_word_received(word)
        return "ok"

    # -- accounting ------------------------------------------------------------

    def _account_rx(self, now):
        if self.mode == RadioMode.RX and self._rx_since is not None:
            self.rx_time += now - self._rx_since
            self._rx_since = None

    def radio_energy(self):
        """Radio energy consumed so far (TX + RX listening), in joules."""
        rx_time = self.rx_time
        if self.mode == RadioMode.RX and self._rx_since is not None:
            rx_time += self.kernel.now - self._rx_since
        return (self.tx_time * self.config.tx_power_w
                + rx_time * self.config.rx_power_w)
