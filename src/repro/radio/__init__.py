"""Radio substrate: transceiver model, shared wireless medium, and the
coding layers used by the MICA high-speed radio stack comparison.

The paper's prototype node uses an RFM TR1000 transceiver (as in Berkeley
Motes) at around 19.2 kbps, interfaced through the message coprocessor
word-by-word (Section 3.3).  :class:`Radio` reproduces that interface: a
transmit path that serializes 16-bit words at the configured bit rate and
reports completion, and a receive path that delivers whole words (the
bit/word conversion the message coprocessor performs off the core's
critical path).

:class:`Channel` is the shared medium: a broadcast domain with a range
model, collision detection at word granularity, and an optional random
bit-error process for failure-injection experiments against the SEC-DED
and CRC layers.
"""

from repro.radio.transceiver import Radio, RadioConfig, RadioMode
from repro.radio.channel import CORRUPTION_DROP, CORRUPTION_FLIP, Channel
from repro.radio.crc import crc16_ccitt, crc16_update
from repro.radio.secded import (
    SecDedStatus,
    secded_decode,
    secded_encode,
)

__all__ = [
    "Radio",
    "RadioConfig",
    "RadioMode",
    "Channel",
    "CORRUPTION_DROP",
    "CORRUPTION_FLIP",
    "crc16_ccitt",
    "crc16_update",
    "SecDedStatus",
    "secded_decode",
    "secded_encode",
]
