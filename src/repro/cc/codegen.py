"""Naive stack-machine code generation for the C subset.

Every expression result goes through the stack; every variable access is
a load or store.  No register allocation, no constant folding, no
strength reduction -- matching the paper's observation about its own
unoptimized lcc port ("the compiler generated a lot of load/store
operations that were unnecessary").

Conventions:

* ``int`` is an unsigned 16-bit word; pointers are word addresses.
* arguments are pushed left-to-right by the caller, who pops them after
  the call; the return value comes back in ``r1``.
* ``r1``-``r7`` are caller-scratch; all live state is on the stack.
* the runtime routines ``__mulu``/``__divu``/``__modu`` implement
  ``*``, ``/`` and ``%`` (linked from :mod:`repro.cc.runtime`).
"""

from repro.cc import ast_nodes as ast
from repro.cc.errors import CompileError

#: Intrinsics: name -> (argument count, has result).
_INTRINSICS = {
    "__done": (0, False),
    "__rand": (0, True),
    "__seed": (1, False),
    "__r15_read": (0, True),
    "__r15_write": (1, False),
    "__schedhi": (2, False),
    "__schedlo": (2, False),
    "__cancel": (1, False),
    "__bfs": (3, True),
    "__setaddr": (2, False),
}

_RUNTIME_CALLS = {"*": "__mulu", "/": "__divu", "%": "__modu"}


class _FunctionContext:
    def __init__(self, func, generator):
        self.func = func
        self.generator = generator
        self.locals = {}        # name -> (slot, size)
        self.local_words = 0
        self.params = {name: index for index, name in enumerate(func.params)}
        self.temp_depth = 0
        self.loop_stack = []    # (continue_label, break_label)
        self.return_label = generator.new_label("ret_" + func.name)

    def add_local(self, name, size, line=None):
        if name in self.locals or name in self.params:
            raise CompileError("duplicate local %r" % name, line)
        self.locals[name] = (self.local_words, size)
        self.local_words += size


class CodeGenerator:
    """Generates SNAP assembly text from a parsed program."""

    def __init__(self, program, filename=None):
        self.program = program
        #: Source-file name carried into ``.file``/``.loc`` line-table
        #: directives (None disables line-table emission).
        self.filename = filename
        self.lines = []
        self._label_counter = 0
        self._current_loc = None
        self.global_names = {g.name for g in program.globals}
        self.global_sizes = {g.name: g.size for g in program.globals}
        self.function_names = {f.name for f in program.functions}
        self.functions_by_name = {f.name: f for f in program.functions}

    # -- infrastructure ----------------------------------------------------

    def emit(self, text):
        self.lines.append("    " + text)

    def emit_label(self, label):
        self.lines.append(label + ":")

    def emit_loc(self, line):
        """Tag subsequent instructions with their C source line."""
        if self.filename is None or line is None or line == self._current_loc:
            return
        self._current_loc = line
        self.emit(".loc %d" % line)

    def new_label(self, hint="L"):
        self._label_counter += 1
        return ".L%d_%s" % (self._label_counter, hint)

    def generate(self):
        """Produce the complete assembly module text."""
        self.lines = []
        self._current_loc = None
        if self.filename is not None:
            self.emit('.file "%s"' % self.filename)
        for func in self.program.functions:
            self._function(func)
        if self.program.globals:
            self.lines.append(".data")
            for declaration in self.program.globals:
                self.emit_label("g_" + declaration.name)
                if declaration.init:
                    self.emit(".word " + ", ".join(
                        str(v) for v in declaration.init))
                remaining = declaration.size - len(declaration.init)
                if remaining:
                    self.emit(".space %d" % remaining)
        return "\n".join(self.lines) + "\n"

    # -- functions ------------------------------------------------------------

    def _function(self, func):
        ctx = _FunctionContext(func, self)
        self._collect_locals(func.body, ctx)
        self.emit_label(func.name)
        self.emit_loc(func.line)
        if not func.is_handler:
            self.emit("push lr")
        if ctx.local_words:
            self.emit("subi sp, %d" % ctx.local_words)
        self._statement(func.body, ctx)
        if ctx.temp_depth != 0:
            raise AssertionError("temp stack imbalance in %s" % func.name)
        self.emit("movi r1, 0    ; implicit return value")
        self.emit_label(ctx.return_label)
        if ctx.local_words:
            self.emit("addi sp, %d" % ctx.local_words)
        if func.is_handler:
            self.emit("done")
        else:
            self.emit("pop lr")
            self.emit("ret")

    def _collect_locals(self, node, ctx):
        """Pre-assign every local declared anywhere in the function (one
        frame allocation, C89-style semantics for this subset)."""
        if isinstance(node, ast.Block):
            for statement in node.statements:
                self._collect_locals(statement, ctx)
        elif isinstance(node, ast.LocalDecl):
            ctx.add_local(node.name, node.size)
        elif isinstance(node, ast.If):
            self._collect_locals(node.then_body, ctx)
            if node.else_body is not None:
                self._collect_locals(node.else_body, ctx)
        elif isinstance(node, (ast.While,)):
            self._collect_locals(node.body, ctx)
        elif isinstance(node, ast.For):
            if node.init is not None:
                self._collect_locals(node.init, ctx)
            self._collect_locals(node.body, ctx)

    # -- statements ----------------------------------------------------------------

    def _statement(self, node, ctx):
        self.emit_loc(getattr(node, "line", None))
        if isinstance(node, ast.Block):
            for statement in node.statements:
                self._statement(statement, ctx)
        elif isinstance(node, ast.ExprStmt):
            self._expression(node.expr, ctx)
            self._pop_discard(ctx)
        elif isinstance(node, ast.LocalDecl):
            if node.init is not None:
                self._expression(node.init, ctx)
                self._pop("r1", ctx)
                self.emit("st r1, %d(sp)    ; init %s"
                          % (self._local_offset(node.name, ctx), node.name))
        elif isinstance(node, ast.If):
            self._if(node, ctx)
        elif isinstance(node, ast.While):
            self._while(node, ctx)
        elif isinstance(node, ast.For):
            self._for(node, ctx)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self._expression(node.value, ctx)
                self._pop("r1", ctx)
            else:
                self.emit("movi r1, 0")
            self.emit("jmp %s" % ctx.return_label)
        elif isinstance(node, ast.Break):
            if not ctx.loop_stack:
                raise CompileError("break outside a loop")
            self.emit("jmp %s" % ctx.loop_stack[-1][1])
        elif isinstance(node, ast.Continue):
            if not ctx.loop_stack:
                raise CompileError("continue outside a loop")
            self.emit("jmp %s" % ctx.loop_stack[-1][0])
        else:
            raise AssertionError("unknown statement %r" % (node,))

    def _branch_if_false(self, ctx, label):
        """Pop the condition and jump to *label* when it is zero, using
        the long-range-safe pattern (beqz only reaches +/-32 words)."""
        self._pop("r1", ctx)
        around = self.new_label("cond")
        self.emit("bnez r1, %s" % around)
        self.emit("jmp %s" % label)
        self.emit_label(around)

    def _if(self, node, ctx):
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        self._expression(node.condition, ctx)
        self._branch_if_false(ctx, else_label)
        self._statement(node.then_body, ctx)
        if node.else_body is not None:
            self.emit("jmp %s" % end_label)
            self.emit_label(else_label)
            self._statement(node.else_body, ctx)
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def _while(self, node, ctx):
        top = self.new_label("while")
        end = self.new_label("endwhile")
        self.emit_label(top)
        self._expression(node.condition, ctx)
        self._branch_if_false(ctx, end)
        ctx.loop_stack.append((top, end))
        self._statement(node.body, ctx)
        ctx.loop_stack.pop()
        self.emit("jmp %s" % top)
        self.emit_label(end)

    def _for(self, node, ctx):
        top = self.new_label("for")
        step_label = self.new_label("forstep")
        end = self.new_label("endfor")
        if node.init is not None:
            self._statement(node.init, ctx)
        self.emit_label(top)
        if node.condition is not None:
            self._expression(node.condition, ctx)
            self._branch_if_false(ctx, end)
        ctx.loop_stack.append((step_label, end))
        self._statement(node.body, ctx)
        ctx.loop_stack.pop()
        self.emit_label(step_label)
        if node.step is not None:
            self._expression(node.step, ctx)
            self._pop_discard(ctx)
        self.emit("jmp %s" % top)
        self.emit_label(end)

    # -- stack helpers --------------------------------------------------------------

    def _push(self, reg, ctx):
        self.emit("push %s" % reg)
        ctx.temp_depth += 1

    def _pop(self, reg, ctx):
        self.emit("pop %s" % reg)
        ctx.temp_depth -= 1

    def _pop_discard(self, ctx):
        self.emit("addi sp, 1    ; discard")
        ctx.temp_depth -= 1

    def _local_offset(self, name, ctx):
        slot, _ = ctx.locals[name]
        return ctx.temp_depth + slot

    def _param_offset(self, name, ctx):
        index = ctx.params[name]
        nargs = len(ctx.func.params)
        saved_lr = 0 if ctx.func.is_handler else 1
        return (ctx.temp_depth + ctx.local_words + saved_lr
                + (nargs - 1 - index))

    # -- expressions -------------------------------------------------------------------

    def _expression(self, node, ctx):
        """Evaluate *node*; the result ends up pushed on the stack."""
        if isinstance(node, ast.Num):
            self.emit("movi r1, %d" % (node.value & 0xFFFF))
            self._push("r1", ctx)
        elif isinstance(node, ast.Var):
            self._load_var(node.name, ctx)
        elif isinstance(node, ast.Assign):
            self._assign(node, ctx)
        elif isinstance(node, ast.Binary):
            self._binary(node, ctx)
        elif isinstance(node, ast.Unary):
            self._unary(node, ctx)
        elif isinstance(node, ast.Call):
            self._call(node, ctx)
        elif isinstance(node, ast.Index):
            self._element_address(node, ctx)
            self._pop("r1", ctx)
            self.emit("ld r1, 0(r1)")
            self._push("r1", ctx)
        elif isinstance(node, ast.Deref):
            self._expression(node.pointer, ctx)
            self._pop("r1", ctx)
            self.emit("ld r1, 0(r1)")
            self._push("r1", ctx)
        elif isinstance(node, ast.AddrOf):
            self._address_of(node.target, ctx)
        else:
            raise AssertionError("unknown expression %r" % (node,))

    def _load_var(self, name, ctx):
        if name in ctx.locals:
            slot, size = ctx.locals[name]
            if size > 1:
                self._address_of(ast.Var(name), ctx)
                return
            self.emit("ld r1, %d(sp)    ; %s" % (self._local_offset(name, ctx), name))
        elif name in ctx.params:
            self.emit("ld r1, %d(sp)    ; param %s"
                      % (self._param_offset(name, ctx), name))
        elif name in self.global_names:
            if self.global_sizes[name] > 1:
                self.emit("movi r1, g_%s" % name)
            else:
                self.emit("ld r1, g_%s(r0)" % name)
        elif name in self.function_names:
            self.emit("movi r1, %s" % name)
        else:
            raise CompileError("undefined identifier %r" % name)
        self._push("r1", ctx)

    def _address_of(self, target, ctx):
        if isinstance(target, ast.Var):
            name = target.name
            if name in ctx.locals:
                self.emit("mov r1, sp")
                self.emit("addi r1, %d" % self._local_offset(name, ctx))
            elif name in ctx.params:
                self.emit("mov r1, sp")
                self.emit("addi r1, %d" % self._param_offset(name, ctx))
            elif name in self.global_names:
                self.emit("movi r1, g_%s" % name)
            else:
                raise CompileError("cannot take the address of %r" % name)
            self._push("r1", ctx)
        elif isinstance(target, ast.Index):
            self._element_address(target, ctx)
        else:
            raise CompileError("invalid address-of target")

    def _element_address(self, node, ctx):
        self._expression(node.base, ctx)
        self._expression(node.index, ctx)
        self._pop("r2", ctx)
        self._pop("r1", ctx)
        self.emit("add r1, r2")
        self._push("r1", ctx)

    def _assign(self, node, ctx):
        target = node.target
        if isinstance(target, ast.Var):
            self._expression(node.value, ctx)
            self._pop("r1", ctx)
            name = target.name
            if name in ctx.locals:
                self.emit("st r1, %d(sp)    ; %s"
                          % (self._local_offset(name, ctx), name))
            elif name in ctx.params:
                self.emit("st r1, %d(sp)    ; param %s"
                          % (self._param_offset(name, ctx), name))
            elif name in self.global_names:
                self.emit("st r1, g_%s(r0)" % name)
            else:
                raise CompileError("assignment to undefined %r" % name)
            self._push("r1", ctx)
        elif isinstance(target, (ast.Index, ast.Deref)):
            if isinstance(target, ast.Index):
                self._element_address(target, ctx)
            else:
                self._expression(target.pointer, ctx)
            self._expression(node.value, ctx)
            self._pop("r2", ctx)   # value
            self._pop("r1", ctx)   # address
            self.emit("st r2, 0(r1)")
            self._push("r2", ctx)
        else:
            raise CompileError("invalid assignment target")

    def _unary(self, node, ctx):
        self._expression(node.operand, ctx)
        self._pop("r1", ctx)
        if node.op == "-":
            self.emit("not r1, r1")
            self.emit("addi r1, 1")
        elif node.op == "~":
            self.emit("not r1, r1")
        elif node.op == "!":
            self._normalize_zero_test(invert=True)
        else:
            raise AssertionError("unknown unary %r" % node.op)
        self._push("r1", ctx)

    def _normalize_zero_test(self, invert):
        """r1 <- (r1 == 0) if invert else (r1 != 0)."""
        label = self.new_label("bool")
        self.emit("movi r2, %d" % (1 if invert else 0))
        self.emit("beqz r1, %s" % label)
        self.emit("movi r2, %d" % (0 if invert else 1))
        self.emit_label(label)
        self.emit("mov r1, r2")

    def _binary(self, node, ctx):
        if node.op in ("&&", "||"):
            self._short_circuit(node, ctx)
            return
        self._expression(node.left, ctx)
        self._expression(node.right, ctx)
        self._pop("r2", ctx)
        self._pop("r1", ctx)
        op = node.op
        if op == "+":
            self.emit("add r1, r2")
        elif op == "-":
            self.emit("sub r1, r2")
        elif op == "&":
            self.emit("and r1, r2")
        elif op == "|":
            self.emit("or r1, r2")
        elif op == "^":
            self.emit("xor r1, r2")
        elif op == "<<":
            self.emit("sllv r1, r2")
        elif op == ">>":
            self.emit("srlv r1, r2")
        elif op in _RUNTIME_CALLS:
            self.emit("jal %s" % _RUNTIME_CALLS[op])
        elif op in ("==", "!="):
            self.emit("sub r1, r2")
            self._normalize_zero_test(invert=(op == "=="))
        elif op in ("<", ">", "<=", ">="):
            self._compare(op)
        else:
            raise AssertionError("unknown binary %r" % op)
        self._push("r1", ctx)

    def _compare(self, op):
        """Unsigned comparison via the subtract borrow flag."""
        if op in (">", "<="):
            # a > b  ==  b < a : swap operands
            self.emit("mov r3, r1")
            self.emit("mov r1, r2")
            self.emit("mov r2, r3")
        self.emit("sub r1, r2     ; sets borrow when a < b")
        self.emit("movi r1, 0")
        self.emit("movi r2, 0")
        self.emit("addc r1, r2    ; r1 = borrow")
        if op in ("<=", ">="):
            self.emit("xori r1, 1")

    def _short_circuit(self, node, ctx):
        end = self.new_label("sc")
        keep_going = self.new_label("sc_rhs")
        self._expression(node.left, ctx)
        self._pop("r1", ctx)
        self._normalize_zero_test(invert=False)
        # Long-range-safe short circuit: skip the rhs via jmp.
        if node.op == "&&":
            self.emit("bnez r1, %s" % keep_going)
        else:
            self.emit("beqz r1, %s" % keep_going)
        self.emit("jmp %s" % end)
        self.emit_label(keep_going)
        self._expression(node.right, ctx)
        self._pop("r1", ctx)
        self._normalize_zero_test(invert=False)
        self.emit_label(end)
        self._push("r1", ctx)

    # -- calls --------------------------------------------------------------------------

    def _call(self, node, ctx):
        if node.name in _INTRINSICS:
            self._intrinsic(node, ctx)
            return
        if (node.name in self.functions_by_name
                and len(self.functions_by_name[node.name].params)
                != len(node.args)):
            raise CompileError("wrong argument count calling %r" % node.name)
        for argument in node.args:
            self._expression(argument, ctx)
        self.emit("jal %s" % node.name)
        if node.args:
            self.emit("addi sp, %d    ; pop args" % len(node.args))
            ctx.temp_depth -= len(node.args)
        self._push("r1", ctx)

    def _intrinsic(self, node, ctx):
        argc, has_result = _INTRINSICS[node.name]
        name = node.name
        if name == "__bfs":
            if len(node.args) != 3 or not isinstance(node.args[2], ast.Num):
                raise CompileError("__bfs needs (dst, src, constant-mask)")
            self._expression(node.args[0], ctx)
            self._expression(node.args[1], ctx)
            self._pop("r2", ctx)
            self._pop("r1", ctx)
            self.emit("bfs r1, r2, %d" % node.args[2].value)
            self._push("r1", ctx)
            return
        if len(node.args) != argc:
            raise CompileError("%s takes %d argument(s)" % (name, argc))
        for argument in node.args:
            self._expression(argument, ctx)
        if name == "__done":
            self.emit("done")
        elif name == "__rand":
            self.emit("rand r1")
        elif name == "__seed":
            self._pop("r1", ctx)
            self.emit("seed r1")
        elif name == "__r15_read":
            self.emit("mov r1, r15")
        elif name == "__r15_write":
            self._pop("r1", ctx)
            self.emit("mov r15, r1")
        elif name in ("__schedhi", "__schedlo"):
            self._pop("r2", ctx)
            self._pop("r1", ctx)
            self.emit("%s r1, r2" % name.strip("_"))
        elif name == "__cancel":
            self._pop("r1", ctx)
            self.emit("cancel r1")
        elif name == "__setaddr":
            self._pop("r2", ctx)
            self._pop("r1", ctx)
            self.emit("setaddr r1, r2")
        else:
            raise AssertionError("unhandled intrinsic %r" % name)
        if has_result:
            self._push("r1", ctx)
        else:
            self.emit("movi r1, 0")
            self._push("r1", ctx)
