"""A small, deliberately unoptimizing C compiler targeting the SNAP ISA.

The paper "ported lcc, a freely available retargettable C compiler, to
the SNAP ISA ... we did not introduce any optimizations ... the compiler
generated a lot of load/store operations that were unnecessary
(saving/restoring registers)" (Sections 4.2, 4.5).  This package is that
tool-chain component: a C-subset front end with a naive stack-machine
code generator whose output has exactly the character the paper
describes -- "Arith Reg" instructions most frequent, loads second, with
redundant stack traffic.

Supported language: 16-bit ``int`` (and ``int*``), global scalars and
arrays, functions with parameters and return values, ``if``/``else``,
``while``, ``for``, ``break``, ``continue``, ``return``, the usual
expression operators (including ``*`` ``/`` ``%`` via a linked runtime
library), and SNAP intrinsics:

``__done()``, ``__rand()``, ``__seed(x)``, ``__r15_read()``,
``__r15_write(x)``, ``__schedhi(t, v)``, ``__schedlo(t, v)``,
``__cancel(t)``, ``__bfs(dst, src, mask)``, ``__setaddr(ev, fn)``.

Functions declared with the ``__handler`` qualifier compile as event
handlers: they are entered from the hardware event queue and end with
``done`` instead of ``ret``.
"""

from repro.cc.errors import CompileError
from repro.cc.compiler import build_c_node, compile_c

__all__ = ["CompileError", "compile_c", "build_c_node"]
