"""Compiler driver: C source to SNAP assembly, and full node builds."""

from repro.asm import assemble, link
from repro.cc.codegen import CodeGenerator
from repro.cc.parser import parse
from repro.cc.runtime import runtime_source
from repro.isa.events import Event
from repro.netstack.runtime import boot_source


def compile_c(source, filename=None):
    """Compile C source text to SNAP assembly text.

    With *filename* set, the generated assembly carries ``.file``/
    ``.loc`` directives so the linked program can symbolicate every pc
    back to its C source line.
    """
    program = parse(source)
    return CodeGenerator(program, filename=filename).generate()


def build_c_node(source, handlers=None, node_id=0, start_rx=False,
                 extra_modules=(), source_name="app.c"):
    """Compile *source* and link a complete node image.

    *handlers* maps :class:`~repro.isa.events.Event` to the C function
    that handles it (functions declared ``__handler``).  If the C code
    defines ``init``, boot calls it before ``done``.  *extra_modules*
    are additional assembly module sources to link (e.g. the MAC).
    *source_name* labels the C source in the program's line table (used
    by crash-bundle symbolication).

    Returns the linked :class:`~repro.asm.Program`.
    """
    tree = parse(source)
    asm_text = CodeGenerator(tree, filename=source_name).generate()
    function_names = {f.name for f in tree.functions}
    handler_names = {f.name for f in tree.functions if f.is_handler}
    init_calls = []
    if "init" in function_names:
        init_calls.append("init")
    for event, name in (handlers or {}).items():
        if name not in function_names:
            raise ValueError("handler %r is not defined in the C source"
                             % (name,))
        if name not in handler_names:
            raise ValueError("handler %r must be declared __handler"
                             % (name,))
    boot = boot_source(
        handlers={Event(e): name for e, name in (handlers or {}).items()},
        init_calls=init_calls, node_id=node_id, start_rx=start_rx)
    # The runtime scratch words (NODE_ID, MAC counters, ...) occupy the
    # bottom of DMEM; keep C globals clear of them.
    reserved = assemble(".data\n.space 16\n", name="lowmem")
    modules = [assemble(boot, name="boot"),
               reserved,
               assemble(asm_text, name="cprog"),
               assemble(runtime_source(), name="crt")]
    for index, text in enumerate(extra_modules):
        modules.append(assemble(text, name="extra%d" % index))
    return link(modules)
