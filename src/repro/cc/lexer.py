"""Tokenizer for the C subset."""

import re
from dataclasses import dataclass

from repro.cc.errors import CompileError

KEYWORDS = {"int", "void", "if", "else", "while", "for", "return",
            "break", "continue", "__handler"}

#: Multi-character operators, longest first.
_OPERATORS = ["<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
              "+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
              "<", ">", "=", "(", ")", "{", "}", "[", "]", ";", ",",]

_TOKEN_RE = re.compile(
    r"(?P<ws>\s+)"
    r"|(?P<comment>//[^\n]*|/\*.*?\*/)"
    r"|(?P<hex>0[xX][0-9a-fA-F]+)"
    r"|(?P<num>\d+)"
    r"|(?P<char>'(?:\\.|[^'\\])')"
    r"|(?P<ident>[A-Za-z_]\w*)"
    r"|(?P<op>" + "|".join(re.escape(op) for op in _OPERATORS) + r")",
    re.DOTALL)

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39}


@dataclass(frozen=True)
class Token:
    kind: str       # 'num', 'ident', 'kw', or the operator text itself
    value: object
    line: int


def tokenize(source):
    """Tokenize C source; returns a list of :class:`Token`."""
    tokens = []
    position = 0
    line = 1
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise CompileError("unexpected character %r" % source[position],
                               line=line)
        text = match.group()
        line += text.count("\n")
        position = match.end()
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        if kind == "hex":
            tokens.append(Token("num", int(text, 16), line))
        elif kind == "num":
            tokens.append(Token("num", int(text), line))
        elif kind == "char":
            body = text[1:-1]
            if body.startswith("\\"):
                if body[1] not in _ESCAPES:
                    raise CompileError("unknown escape %r" % body, line=line)
                tokens.append(Token("num", _ESCAPES[body[1]], line))
            else:
                tokens.append(Token("num", ord(body), line))
        elif kind == "ident":
            if text in KEYWORDS:
                tokens.append(Token("kw", text, line))
            else:
                tokens.append(Token("ident", text, line))
        else:
            tokens.append(Token(text, text, line))
    tokens.append(Token("eof", None, line))
    return tokens
