"""The compiler's runtime support library, in SNAP assembly.

SNAP has no hardware multiplier or divider (the execution-unit list in
Section 3.1), so ``*``, ``/`` and ``%`` lower to calls into these
routines.  Convention: operands in r1 and r2, result in r1; r3-r7 are
clobbered.  The multiplier exits early when the remaining multiplier
bits are zero -- average-case behavior in the QDI spirit.
"""


def runtime_source():
    """Assembly source of the C runtime library module."""
    return r"""
; __mulu: r1 = (r1 * r2) mod 2^16.  Shift-and-add.
__mulu:
    movi r3, 0              ; accumulator
.mul_loop:
    beqz r2, .mul_done      ; early exit: no multiplier bits left
    mov r4, r2
    andi r4, 1
    beqz r4, .mul_skip
    add r3, r1
.mul_skip:
    sll r1, 1
    srl r2, 1
    jmp .mul_loop
.mul_done:
    mov r1, r3
    ret

; __udivmod: divide r1 by r2 -> quotient r3, remainder r4.
; Restoring shift-subtract division; division by zero yields
; quotient 0xFFFF and remainder = dividend.
__udivmod:
    movi r3, 0              ; quotient
    movi r4, 0              ; remainder
    bnez r2, .div_ok
    movi r3, 0xFFFF
    mov r4, r1
    ret
.div_ok:
    movi r5, 16             ; bit counter
.div_loop:
    ; remainder = (remainder << 1) | msb(dividend); dividend <<= 1
    sll r4, 1
    mov r6, r1
    srl r6, 15
    or r4, r6
    sll r1, 1
    sll r3, 1               ; quotient <<= 1
    mov r6, r4
    sub r6, r2              ; borrow set when remainder < divisor
    movi r7, 0
    addc r7, r7             ; r7 = borrow
    bnez r7, .div_next      ; remainder < divisor: leave it alone
    mov r4, r6              ; remainder -= divisor
    ori r3, 1               ; quotient bit
.div_next:
    subi r5, 1
    bnez r5, .div_loop
    ret

; __divu: r1 = r1 / r2 (unsigned).
__divu:
    push lr
    jal __udivmod
    mov r1, r3
    pop lr
    ret

; __modu: r1 = r1 % r2 (unsigned).
__modu:
    push lr
    jal __udivmod
    mov r1, r4
    pop lr
    ret
"""
