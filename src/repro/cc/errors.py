"""Compiler error type."""


class CompileError(Exception):
    """A diagnostic from the C front end or code generator."""

    def __init__(self, message, line=None):
        self.line = line
        prefix = "line %d: " % line if line is not None else ""
        super().__init__(prefix + message)
