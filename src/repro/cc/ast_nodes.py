"""AST node definitions for the C subset."""

from dataclasses import dataclass, field
from typing import List, Optional

# -- expressions -----------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    value: int


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Assign:
    target: object     # Var, Index, or Deref
    value: object


@dataclass(frozen=True)
class Binary:
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class Unary:
    op: str            # '-', '~', '!'
    operand: object


@dataclass(frozen=True)
class Call:
    name: str
    args: List[object]


@dataclass(frozen=True)
class Index:
    base: object
    index: object


@dataclass(frozen=True)
class Deref:
    pointer: object


@dataclass(frozen=True)
class AddrOf:
    target: object     # Var or Index


# -- statements --------------------------------------------------------------------
#
# Statement nodes carry the 1-based source line they started on (None
# when synthesized); the code generator turns these into ``.loc``
# directives so the linked program can symbolicate pc -> C line.


@dataclass(frozen=True)
class Block:
    statements: List[object]


@dataclass(frozen=True)
class ExprStmt:
    expr: object
    line: Optional[int] = None


@dataclass(frozen=True)
class LocalDecl:
    name: str
    size: int          # 1 for scalars, N for arrays
    init: Optional[object]
    line: Optional[int] = None


@dataclass(frozen=True)
class If:
    condition: object
    then_body: object
    else_body: Optional[object]
    line: Optional[int] = None


@dataclass(frozen=True)
class While:
    condition: object
    body: object
    line: Optional[int] = None


@dataclass(frozen=True)
class For:
    init: Optional[object]       # ExprStmt or LocalDecl or None
    condition: Optional[object]
    step: Optional[object]       # expression
    body: object
    line: Optional[int] = None


@dataclass(frozen=True)
class Return:
    value: Optional[object]
    line: Optional[int] = None


@dataclass(frozen=True)
class Break:
    line: Optional[int] = None


@dataclass(frozen=True)
class Continue:
    line: Optional[int] = None


# -- top level ------------------------------------------------------------------------


@dataclass(frozen=True)
class GlobalVar:
    name: str
    size: int
    init: List[int] = field(default_factory=list)


@dataclass(frozen=True)
class FuncDef:
    name: str
    params: List[str]
    body: Block
    is_handler: bool = False
    returns_value: bool = True
    line: Optional[int] = None


@dataclass(frozen=True)
class Program:
    globals: List[GlobalVar]
    functions: List[FuncDef]
