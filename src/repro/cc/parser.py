"""Recursive-descent parser for the C subset."""

import dataclasses

from repro.cc import ast_nodes as ast
from repro.cc.errors import CompileError
from repro.cc.lexer import tokenize

#: Binary operator precedence (higher binds tighter).  Assignment and the
#: short-circuit operators are handled separately.
_PRECEDENCE = {
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


def parse(source):
    """Parse C source text into an :class:`ast_nodes.Program`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing --------------------------------------------------

    def _peek(self, ahead=0):
        return self._tokens[min(self._index + ahead, len(self._tokens) - 1)]

    def _next(self):
        token = self._peek()
        self._index += 1
        return token

    def _accept(self, kind, value=None):
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._next()
        return None

    def _expect(self, kind, value=None):
        token = self._accept(kind, value)
        if token is None:
            actual = self._peek()
            raise CompileError("expected %s, got %r"
                               % (value or kind, actual.value),
                               line=actual.line)
        return token

    def _error(self, message):
        raise CompileError(message, line=self._peek().line)

    # -- top level ----------------------------------------------------------

    def parse_program(self):
        globals_ = []
        functions = []
        while self._peek().kind != "eof":
            is_handler = bool(self._accept("kw", "__handler"))
            if self._accept("kw", "void"):
                returns_value = False
            else:
                self._expect("kw", "int")
                returns_value = True
            pointer = bool(self._accept("*"))
            name = self._expect("ident").value
            if self._peek().kind == "(":
                functions.append(self._function(name, is_handler,
                                                returns_value and True))
            else:
                if is_handler:
                    self._error("__handler applies to functions")
                globals_.append(self._global_var(name))
        return ast.Program(globals=globals_, functions=functions)

    def _global_var(self, name):
        size = 1
        init = []
        if self._accept("["):
            size = self._expect("num").value
            self._expect("]")
        if self._accept("="):
            if self._accept("{"):
                while not self._accept("}"):
                    init.append(self._constant_expr())
                    if not self._accept(","):
                        self._expect("}")
                        break
            else:
                init.append(self._constant_expr())
        self._expect(";")
        if len(init) > size:
            self._error("too many initializers for %r" % name)
        return ast.GlobalVar(name=name, size=size, init=init)

    def _constant_expr(self):
        negative = bool(self._accept("-"))
        value = self._expect("num").value
        return (-value) & 0xFFFF if negative else value & 0xFFFF

    def _function(self, name, is_handler, returns_value):
        line = self._peek().line
        self._expect("(")
        params = []
        if not self._accept(")"):
            if self._accept("kw", "void") and self._peek().kind == ")":
                pass
            else:
                while True:
                    self._expect("kw", "int")
                    self._accept("*")
                    params.append(self._expect("ident").value)
                    if not self._accept(","):
                        break
            self._expect(")")
        body = self._block()
        return ast.FuncDef(name=name, params=params, body=body,
                           is_handler=is_handler,
                           returns_value=returns_value, line=line)

    # -- statements -------------------------------------------------------------

    def _block(self):
        self._expect("{")
        statements = []
        while not self._accept("}"):
            statements.append(self._statement())
        return ast.Block(statements=statements)

    def _statement(self):
        """Parse one statement, stamped with its starting source line."""
        line = self._peek().line
        statement = self._bare_statement()
        if line is not None and hasattr(statement, "line"):
            statement = dataclasses.replace(statement, line=line)
        return statement

    def _bare_statement(self):
        token = self._peek()
        if token.kind == "{":
            return self._block()
        if token.kind == "kw":
            if token.value == "int":
                return self._local_decl()
            if token.value == "if":
                return self._if()
            if token.value == "while":
                return self._while()
            if token.value == "for":
                return self._for()
            if token.value == "return":
                self._next()
                value = None
                if self._peek().kind != ";":
                    value = self._expression()
                self._expect(";")
                return ast.Return(value=value)
            if token.value == "break":
                self._next()
                self._expect(";")
                return ast.Break()
            if token.value == "continue":
                self._next()
                self._expect(";")
                return ast.Continue()
        if self._accept(";"):
            return ast.Block(statements=[])
        expr = self._expression()
        self._expect(";")
        return ast.ExprStmt(expr=expr)

    def _local_decl(self):
        self._expect("kw", "int")
        self._accept("*")
        name = self._expect("ident").value
        size = 1
        init = None
        if self._accept("["):
            size = self._expect("num").value
            self._expect("]")
        elif self._accept("="):
            init = self._expression()
        self._expect(";")
        return ast.LocalDecl(name=name, size=size, init=init)

    def _if(self):
        self._expect("kw", "if")
        self._expect("(")
        condition = self._expression()
        self._expect(")")
        then_body = self._statement()
        else_body = None
        if self._accept("kw", "else"):
            else_body = self._statement()
        return ast.If(condition=condition, then_body=then_body,
                      else_body=else_body)

    def _while(self):
        self._expect("kw", "while")
        self._expect("(")
        condition = self._expression()
        self._expect(")")
        return ast.While(condition=condition, body=self._statement())

    def _for(self):
        self._expect("kw", "for")
        self._expect("(")
        init = None
        if not self._accept(";"):
            if self._peek() == ("kw", "int"):
                pass
            if self._peek().kind == "kw" and self._peek().value == "int":
                init = self._local_decl()
            else:
                init = ast.ExprStmt(expr=self._expression())
                self._expect(";")
        condition = None
        if not self._accept(";"):
            condition = self._expression()
            self._expect(";")
        step = None
        if self._peek().kind != ")":
            step = self._expression()
        self._expect(")")
        return ast.For(init=init, condition=condition, step=step,
                       body=self._statement())

    # -- expressions ----------------------------------------------------------------

    def _expression(self):
        return self._assignment()

    def _assignment(self):
        left = self._logical_or()
        if self._accept("="):
            value = self._assignment()
            if not isinstance(left, (ast.Var, ast.Index, ast.Deref)):
                self._error("invalid assignment target")
            return ast.Assign(target=left, value=value)
        return left

    def _logical_or(self):
        left = self._logical_and()
        while self._accept("||"):
            left = ast.Binary(op="||", left=left, right=self._logical_and())
        return left

    def _logical_and(self):
        left = self._binary(0)
        while self._accept("&&"):
            left = ast.Binary(op="&&", left=left, right=self._binary(0))
        return left

    def _binary(self, min_precedence):
        left = self._unary()
        while True:
            token = self._peek()
            precedence = _PRECEDENCE.get(token.kind)
            if precedence is None or precedence < min_precedence:
                return left
            self._next()
            right = self._binary(precedence + 1)
            left = ast.Binary(op=token.kind, left=left, right=right)

    def _unary(self):
        if self._accept("-"):
            return ast.Unary(op="-", operand=self._unary())
        if self._accept("~"):
            return ast.Unary(op="~", operand=self._unary())
        if self._accept("!"):
            return ast.Unary(op="!", operand=self._unary())
        if self._accept("*"):
            return ast.Deref(pointer=self._unary())
        if self._accept("&"):
            target = self._unary()
            if not isinstance(target, (ast.Var, ast.Index)):
                self._error("& requires a variable or array element")
            return ast.AddrOf(target=target)
        return self._postfix()

    def _postfix(self):
        expr = self._primary()
        while True:
            if self._accept("["):
                index = self._expression()
                self._expect("]")
                expr = ast.Index(base=expr, index=index)
            else:
                return expr

    def _primary(self):
        token = self._peek()
        if token.kind == "num":
            self._next()
            return ast.Num(value=token.value & 0xFFFF)
        if token.kind == "(":
            self._next()
            expr = self._expression()
            self._expect(")")
            return expr
        if token.kind == "ident":
            self._next()
            if self._accept("("):
                args = []
                if self._peek().kind != ")":
                    while True:
                        args.append(self._expression())
                        if not self._accept(","):
                            break
                self._expect(")")
                return ast.Call(name=token.value, args=args)
            return ast.Var(name=token.value)
        self._error("unexpected token %r" % (token.value,))
